#!/usr/bin/env sh
# Local CI gate: run everything the hosted pipeline runs, in the same order.
# Fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, PA_THREADS=1)"
PA_THREADS=1 cargo test --workspace -q

echo "==> cargo test (workspace, PA_THREADS=4)"
PA_THREADS=4 cargo test --workspace -q

echo "==> scale bench smoke (writes results/BENCH_scale_smoke.json)"
cargo run --release -p pa-bench --bin scale -- \
  --n 20000 --d 7 --threads 1,2 --iters 1 \
  --out results/BENCH_scale_smoke.json

echo "CI gate passed."
