#!/usr/bin/env sh
# Local CI gate: run everything the hosted pipeline runs, in the same order.
# Fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "CI gate passed."
