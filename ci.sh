#!/usr/bin/env sh
# Local CI gate: run everything the hosted pipeline runs, in the same order.
# Fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, PA_THREADS=1)"
PA_THREADS=1 cargo test --workspace -q

echo "==> cargo test (workspace, PA_THREADS=4)"
PA_THREADS=4 cargo test --workspace -q

echo "==> chaos gate: fault-tolerance suites, serial and parallel"
# Seeded and bounded (proptest case counts are fixed in the test files), so
# this is deterministic-ish and cheap; PA_THREADS exercises both the exact
# serial path and real worker fan-out under injected panics and deadlines.
PA_THREADS=1 cargo test -q -p pa-engine --test fault_containment
PA_THREADS=4 cargo test -q -p pa-engine --test fault_containment
PA_THREADS=1 cargo test -q -p pa-core --test fault_isolation
PA_THREADS=4 cargo test -q -p pa-core --test fault_isolation
PA_THREADS=1 cargo test -q -p pa-service
PA_THREADS=4 cargo test -q -p pa-service

echo "==> service overhead smoke (writes results/BENCH_service_smoke.json)"
cargo run --release -p pa-bench --bin service_overhead -- \
  --n 5000 --queries 8 --iters 1 \
  --out results/BENCH_service_smoke.json

echo "==> scale bench smoke (writes results/BENCH_scale_smoke.json)"
cargo run --release -p pa-bench --bin scale -- \
  --n 20000 --d 7 --threads 1,2 --iters 1 \
  --out results/BENCH_scale_smoke.json

echo "CI gate passed."
