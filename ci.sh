#!/usr/bin/env sh
# Local CI gate: run everything the hosted pipeline runs, in the same order.
# Fails fast on the first broken step.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, PA_THREADS=1)"
PA_THREADS=1 cargo test --workspace -q

echo "==> cargo test (workspace, PA_THREADS=4)"
PA_THREADS=4 cargo test --workspace -q

echo "==> chaos gate: fault-tolerance suites, serial and parallel"
# Seeded and bounded (proptest case counts are fixed in the test files), so
# this is deterministic-ish and cheap; PA_THREADS exercises both the exact
# serial path and real worker fan-out under injected panics and deadlines.
PA_THREADS=1 cargo test -q -p pa-engine --test fault_containment
PA_THREADS=4 cargo test -q -p pa-engine --test fault_containment
PA_THREADS=1 cargo test -q -p pa-core --test fault_isolation
PA_THREADS=4 cargo test -q -p pa-core --test fault_isolation
PA_THREADS=1 cargo test -q -p pa-service
PA_THREADS=4 cargo test -q -p pa-service

echo "==> checkpoint-crash matrix: torn writes, compaction, recovery load"
# Every crash point in the checkpoint lifecycle, serial and parallel:
# * crash_offsets — exhaustive byte-level cuts of the WAL tail and of the
#   checkpoint frame mid-append (fault on checkpoint write / between save
#   and compaction), checkpoints enabled AND disabled;
# * the catalog's seeded FaultInjector suites — torn checkpoint device,
#   unreadable store at recovery load, degraded WAL-only operation;
# * combo_regressions — recovery (plain and checkpoint-aware) must leave
#   the combination cache verifiably cold;
# * snapshot_oracle — pinned-view reads stay byte-identical under
#   concurrent seeded writers at each thread count.
PA_THREADS=1 cargo test -q -p pa-storage --test crash_offsets
PA_THREADS=4 cargo test -q -p pa-storage --test crash_offsets
PA_THREADS=1 cargo test -q -p pa-storage --lib checkpoint
PA_THREADS=4 cargo test -q -p pa-storage --lib checkpoint
PA_THREADS=1 cargo test -q -p pa-engine --test combo_regressions --test snapshot_oracle
PA_THREADS=4 cargo test -q -p pa-engine --test combo_regressions --test snapshot_oracle

echo "==> replication chaos gate: shipped-WAL replicas, failover, split-brain"
# Seeded end-to-end replication suites at both thread counts:
# * storage replication — chaos transports (drop/dup/corrupt/reorder) must
#   still converge to byte identity; compacted primaries force the
#   checkpoint-image bootstrap; stale-term streams are refused;
# * file_faults — FileLogStore/FileCheckpointStore through the same
#   FaultInjector (torn temp-file renames, failed fsyncs, bit rot);
# * replica_set — lag-aware routing with staleness fallback, seeded
#   primary-kill failover promoting the most-caught-up replica, the
#   deposed primary's writes refused (split-brain seal), and the
#   differential oracle under writer + transport + failover chaos.
PA_THREADS=1 cargo test -q -p pa-storage --test replication --test file_faults
PA_THREADS=4 cargo test -q -p pa-storage --test replication --test file_faults
PA_THREADS=1 cargo test -q -p pa-service --test replica_set
PA_THREADS=4 cargo test -q -p pa-service --test replica_set

echo "==> replication bench gate: image bootstrap >= 2x full-history ship (n=1M)"
cargo run --release -p pa-bench --bin replication -- \
  --n 1000000 --gate 2.0 \
  --out results/BENCH_replication.json

echo "==> recovery bench gate: checkpoint+suffix >= 5x full replay (n=1M)"
cargo run --release -p pa-bench --bin recovery -- \
  --n 1000000 --gate 5.0 \
  --out results/BENCH_recovery.json

echo "==> merge-oracle gate: shard-merge protocol, sketch bounds, SQL e2e"
# The mergeable partial-state protocol (DESIGN.md §14) at both thread
# counts: k-way random shard splits with shuffled merges must be
# byte-identical to the single pass for every aggregate (holistic ones
# included), merge algebra laws hold down to the serialized bytes,
# t-digest/HLL stay inside their documented error bounds, and the holistic
# aggregates work end to end through SQL under every legal strategy.
PA_THREADS=1 cargo test -q -p pa-engine --test merge_oracle --test sketch_accuracy
PA_THREADS=4 cargo test -q -p pa-engine --test merge_oracle --test sketch_accuracy
PA_THREADS=1 cargo test -q -p pa-core --test shard_oracle_sql
PA_THREADS=4 cargo test -q -p pa-core --test shard_oracle_sql

echo "==> oracle gates: differential, golden, parser fuzz"
# Covered by the workspace run above, but named here so a divergence fails
# as its own step with the harness's actionable message (strategy pair +
# first divergent row, unified snapshot diff, or the panicking fuzz seed).
cargo test -q -p pa-engine --test differential
cargo test -q --test golden
cargo test -q -p pa-sql --test fuzz_corpus

echo "==> service overhead smoke (writes results/BENCH_service_smoke.json)"
cargo run --release -p pa-bench --bin service_overhead -- \
  --n 5000 --queries 8 --iters 1 \
  --out results/BENCH_service_smoke.json

echo "==> scale bench smoke (writes results/BENCH_scale_smoke.json)"
# Rows now carry an "operators" per-operator breakdown (rows/morsels/ns per
# span) — the JSON artifact a hosted pipeline would upload.
cargo run --release -p pa-bench --bin scale -- \
  --n 20000 --d 7 --threads 1,2 --iters 1 \
  --out results/BENCH_scale_smoke.json

echo "==> code-path gate: case_direct within 2x of hash_dispatch (n=1M, d=50)"
# The dense jump-table CASE path must keep the paper's worst case (wide BY
# list) competitive with the single-pass hash dispatcher; rows also record
# group_path, kernel_path, pack_width and combo_cache_hit_rate in the JSON
# artifact.
cargo run --release -p pa-bench --bin scale -- \
  --n 1000000 --d 50 --threads 1 --iters 2 \
  --assert-case-within 2.0 \
  --out results/BENCH_codepath_gate.json

echo "==> vectorized-kernel gate: case_direct >= 2x scalar baseline (n=1M, d=50)"
# The fused bit-packed kernels (DESIGN.md §12) must hold at least 2x over
# the recorded scalar-path baseline (43.4 ms in results/BENCH_scale.json
# before vectorization → ceiling 21.7 ms), and the kernel-path smoke proves
# the vectorized path actually engaged — case_direct block-at-a-time, the
# sorted scenario through the RLE fast path — rather than silently falling
# back to the scalar loop.
cargo run --release -p pa-bench --bin scale -- \
  --n 1000000 --d 50 --threads 1 --iters 2 \
  --assert-case-max-ms 21.7 --assert-vectorized \
  --out results/BENCH_kernel_gate.json

echo "==> trace overhead smoke (writes results/BENCH_obs_smoke.json)"
# Hard-gates tracing-on vs tracing-off overhead; also records obs-off
# throughput against the scale smoke's case_direct t=1 cell written above.
cargo run --release -p pa-bench --bin obs_overhead -- \
  --n 100000 --iters 3 \
  --baseline results/BENCH_scale_smoke.json \
  --out results/BENCH_obs_smoke.json

echo "CI gate passed."
