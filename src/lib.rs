//! # percentage-aggregations
//!
//! A from-scratch Rust implementation of **Carlos Ordonez, "Vertical and
//! Horizontal Percentage Aggregations" (SIGMOD 2004)**, extended with the
//! generalized horizontal aggregations of the DMKD 2004 companion paper —
//! on top of an in-memory columnar relational engine built for the purpose.
//!
//! ```
//! use percentage_aggregations::prelude::*;
//!
//! // The paper's Table 1 fact table.
//! let catalog = Catalog::new();
//! let schema = Schema::from_pairs(&[
//!     ("state", DataType::Str),
//!     ("city", DataType::Str),
//!     ("salesAmt", DataType::Float),
//! ])
//! .unwrap()
//! .into_shared();
//! let mut f = Table::empty(schema);
//! for (s, c, a) in [("CA", "SF", 83.0), ("CA", "LA", 23.0), ("TX", "Dallas", 85.0)] {
//!     f.push_row(&[Value::str(s), Value::str(c), Value::Float(a)]).unwrap();
//! }
//! catalog.create_table("sales", f).unwrap();
//!
//! // SIGMOD §3.1: what share of its state did each city contribute?
//! let engine = PercentageEngine::new(&catalog);
//! let out = engine
//!     .execute_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city;")
//!     .unwrap();
//! let result = out.table();
//! let t = result.read();
//! assert_eq!(t.num_rows(), 3);
//! ```
//!
//! The crates underneath:
//!
//! * [`storage`] — columnar tables, catalog, hash indexes, WAL.
//! * [`engine`] — physical operators (hash aggregation, joins, windows...).
//! * [`sql`] — the extended SQL dialect (`Vpct`, `Hpct`, `agg(A BY ...)`).
//! * [`core`] — percentage queries, evaluation strategies, code generation.
//! * [`service`] — admission control, degradation, service metrics.
//! * [`workload`] — the papers' evaluation data sets, synthesized.

pub use pa_core as core;
pub use pa_engine as engine;
pub use pa_service as service;
pub use pa_sql as sql;
pub use pa_storage as storage;
pub use pa_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use pa_core::{
        eval_horizontal, eval_vpct, eval_vpct_olap, CoreError, ExtraAgg, FjSource,
        HorizontalOptions, HorizontalQuery, HorizontalResult, HorizontalStrategy, HorizontalTerm,
        Materialization, Measure, MissingRows, ParallelMode, PercentageEngine, QueryResult,
        SqlOutcome, VpctQuery, VpctStrategy, VpctTerm,
    };
    pub use pa_engine::{AggFunc, ExecStats, MetricsRegistry, ResourceGuard, TraceReport, Tracer};
    pub use pa_service::{QueryService, ServiceConfig, ServiceError};
    pub use pa_storage::{Catalog, DataType, MemLogStore, RecoveryReport, Schema, Table, Value};
    pub use pa_workload::{CensusConfig, EmployeeConfig, SalesConfig, Scale, TransactionConfig};
}
