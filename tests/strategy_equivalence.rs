//! Cross-strategy equivalence on generated workloads.
//!
//! The papers' central correctness claim is that every evaluation strategy
//! computes the same result table. These tests run the evaluation-section
//! query shapes at smoke scale and require bit-identical (modulo row order
//! and Int/Float widening) results across every strategy, the hash-dispatch
//! ablation, and the OLAP baseline.

use percentage_aggregations::prelude::*;

fn sorted_rows(t: &Table) -> Vec<Vec<Value>> {
    let all: Vec<usize> = (0..t.num_columns()).collect();
    t.sorted_by(&all).rows().collect()
}

fn close(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
        _ => a == b,
    }
}

fn assert_tables_equal(a: &Table, b: &Table, label: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{label}: row count");
    assert_eq!(a.num_columns(), b.num_columns(), "{label}: column count");
    for (ra, rb) in sorted_rows(a).iter().zip(sorted_rows(b).iter()) {
        for (va, vb) in ra.iter().zip(rb) {
            assert!(close(va, vb), "{label}: {va} vs {vb} in {ra:?} / {rb:?}");
        }
    }
}

fn sales_catalog() -> Catalog {
    let catalog = Catalog::new();
    pa_workload::install_sales(
        &catalog,
        &SalesConfig {
            rows: 20_000,
            seed: 77,
        },
    )
    .unwrap();
    catalog
}

#[test]
fn vpct_strategies_agree_on_sales_workload() {
    let catalog = sales_catalog();
    let engine = PercentageEngine::with_unique_temps(&catalog);
    // The four SIGMOD Table 4 sales query shapes.
    let queries: [(&[&str], &[&str]); 4] = [
        (&["dweek"], &["dweek"]),
        (&["monthNo", "dweek"], &["dweek"]),
        (&["dept", "dweek", "monthNo"], &["dweek", "monthNo"]),
        (
            &["dept", "store", "dweek", "monthNo"],
            &["dweek", "monthNo"],
        ),
    ];
    for (group_by, by) in queries {
        let q = VpctQuery::single("sales", group_by, "salesAmt", by);
        let reference = engine
            .vpct_with(&q, &VpctStrategy::best())
            .unwrap()
            .snapshot();
        for strat in [
            VpctStrategy::without_index(),
            VpctStrategy::with_update(),
            VpctStrategy::fj_from_f(),
            VpctStrategy::synchronized(),
        ] {
            let got = engine.vpct_with(&q, &strat).unwrap().snapshot();
            assert_tables_equal(&reference, &got, &format!("{group_by:?} {strat:?}"));
        }
        // The OLAP window plan computes the same answer set (SIGMOD §4.2).
        let olap = engine.vpct_olap(&q).unwrap().snapshot();
        assert_tables_equal(&reference, &olap, &format!("{group_by:?} OLAP"));
    }
}

#[test]
fn horizontal_strategies_agree_on_sales_workload() {
    let catalog = sales_catalog();
    let engine = PercentageEngine::with_unique_temps(&catalog);
    let queries: [(&[&str], &[&str]); 3] = [
        (&["state"], &["dweek"]),
        (&["monthNo"], &["dweek"]),
        (&["state", "city"], &["dweek", "monthNo"]),
    ];
    for (group_by, by) in queries {
        let q = HorizontalQuery::hpct("sales", group_by, "salesAmt", by);
        let mut reference: Option<Table> = None;
        for strategy in HorizontalStrategy::all() {
            let opts = HorizontalOptions::with_strategy(strategy);
            let got = engine.horizontal_with(&q, &opts).unwrap().snapshot();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_tables_equal(r, &got, strategy.label()),
            }
        }
        for strategy in [
            HorizontalStrategy::CaseDirect,
            HorizontalStrategy::CaseFromFv,
        ] {
            let opts = HorizontalOptions {
                strategy,
                hash_dispatch: true,
                ..HorizontalOptions::default()
            };
            let got = engine.horizontal_with(&q, &opts).unwrap().snapshot();
            assert_tables_equal(
                reference.as_ref().unwrap(),
                &got,
                &format!("{} + dispatch", strategy.label()),
            );
        }
    }
}

#[test]
fn hagg_strategies_agree_on_census_workload() {
    let catalog = Catalog::new();
    pa_workload::install_uscensus(
        &catalog,
        &CensusConfig {
            rows: 10_000,
            seed: 5,
        },
    )
    .unwrap();
    let engine = PercentageEngine::with_unique_temps(&catalog);
    for func in [
        AggFunc::Sum,
        AggFunc::Count,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ] {
        let q = HorizontalQuery::hagg("uscensus", &["iSex"], func, "dIncome", &["iMarital"]);
        let mut reference: Option<Table> = None;
        for strategy in HorizontalStrategy::all() {
            let got = engine
                .horizontal_with(&q, &HorizontalOptions::with_strategy(strategy))
                .unwrap()
                .snapshot();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_tables_equal(r, &got, &format!("{func:?} {}", strategy.label())),
            }
        }
    }
}

#[test]
fn vpct_pair_consistency_vertical_vs_horizontal() {
    // The same percentages computed vertically and horizontally must agree:
    // FH(group)[combo] == FV(group, combo).
    let catalog = sales_catalog();
    let engine = PercentageEngine::with_unique_temps(&catalog);
    let v = engine
        .vpct(&VpctQuery::single(
            "sales",
            &["state", "dweek"],
            "salesAmt",
            &["dweek"],
        ))
        .unwrap()
        .snapshot();
    let h = engine
        .horizontal(&HorizontalQuery::hpct(
            "sales",
            &["state"],
            "salesAmt",
            &["dweek"],
        ))
        .unwrap()
        .snapshot();
    let hcol = |name: &str| h.schema().index_of(name).unwrap();
    // Index horizontal rows by state.
    let mut hrows = std::collections::HashMap::new();
    for r in 0..h.num_rows() {
        hrows.insert(h.get(r, 0).to_string(), r);
    }
    for r in 0..v.num_rows() {
        let state = v.get(r, 0).to_string();
        let day = v.get(r, 1).to_string();
        let pct_v = v.get(r, 2).as_f64().unwrap();
        let hr = hrows[&state];
        let pct_h = h.get(hr, hcol(&format!("dweek={day}"))).as_f64().unwrap();
        assert!(
            (pct_v - pct_h).abs() < 1e-9,
            "{state}/{day}: vertical {pct_v} vs horizontal {pct_h}"
        );
    }
}

#[test]
fn employee_queries_from_table4_shapes() {
    let catalog = Catalog::new();
    pa_workload::install_employee(
        &catalog,
        &EmployeeConfig {
            rows: 10_000,
            seed: 9,
        },
    )
    .unwrap();
    let engine = PercentageEngine::with_unique_temps(&catalog);
    // The four SIGMOD Table 4 employee query shapes.
    let queries: [(&[&str], &[&str]); 4] = [
        (&["gender"], &["gender"]),
        (&["gender", "marstatus"], &["marstatus"]),
        (&["gender", "educat", "marstatus"], &["educat", "marstatus"]),
        (
            &["gender", "educat", "age", "marstatus"],
            &["age", "marstatus"],
        ),
    ];
    for (group_by, by) in queries {
        let q = VpctQuery::single("employee", group_by, "salary", by);
        let best = engine.vpct_with(&q, &VpctStrategy::best()).unwrap();
        let upd = engine.vpct_with(&q, &VpctStrategy::with_update()).unwrap();
        assert_tables_equal(
            &best.snapshot(),
            &upd.snapshot(),
            &format!("employee {group_by:?}"),
        );
        // Percentages of each totals-group sum to 1.
        let t = best.snapshot();
        let j_len = group_by.len() - by.len();
        let mut sums: std::collections::HashMap<String, f64> = Default::default();
        for r in 0..t.num_rows() {
            let key: Vec<String> = (0..j_len).map(|c| t.get(r, c).to_string()).collect();
            if let Some(p) = t.get(r, group_by.len()).as_f64() {
                *sums.entry(key.join("|")).or_default() += p;
            }
        }
        for (k, s) in sums {
            assert!((s - 1.0).abs() < 1e-9, "{group_by:?} group {k}: {s}");
        }
    }
}
