//! Literal reproduction of the papers' worked examples (SIGMOD Tables 1–3,
//! DMKD Tables 1–2 shapes), across the full stack: SQL text → parser →
//! validator → typed query → strategy → physical plan → result.

use percentage_aggregations::prelude::*;

/// SIGMOD Table 1.
fn sigmod_fact_table() -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("RID", DataType::Int),
        ("state", DataType::Str),
        ("city", DataType::Str),
        ("salesAmt", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut f = Table::empty(schema);
    for (rid, state, city, amt) in [
        (1, "CA", "San Francisco", 13.0),
        (2, "CA", "San Francisco", 3.0),
        (3, "CA", "San Francisco", 67.0),
        (4, "CA", "Los Angeles", 23.0),
        (5, "TX", "Houston", 5.0),
        (6, "TX", "Houston", 35.0),
        (7, "TX", "Houston", 10.0),
        (8, "TX", "Houston", 14.0),
        (9, "TX", "Dallas", 53.0),
        (10, "TX", "Dallas", 32.0),
    ] {
        f.push_row(&[
            Value::Int(rid),
            Value::str(state),
            Value::str(city),
            Value::Float(amt),
        ])
        .unwrap();
    }
    catalog.create_table("sales", f).unwrap();
    catalog
}

#[test]
fn sigmod_table_2_vertical_percentages() {
    let catalog = sigmod_fact_table();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city;")
        .unwrap();
    let SqlOutcome::Vertical(result) = out else {
        panic!("expected vertical")
    };
    let t = result.snapshot().sorted_by(&[0, 1]);
    // Table 2: LA 22%, SF 78%, Dallas 57%, Houston 43% (the paper rounds).
    let expect = [
        ("CA", "Los Angeles", 23.0 / 106.0),
        ("CA", "San Francisco", 83.0 / 106.0),
        ("TX", "Dallas", 85.0 / 149.0),
        ("TX", "Houston", 64.0 / 149.0),
    ];
    assert_eq!(t.num_rows(), 4);
    for (row, (state, city, pct)) in expect.iter().enumerate() {
        assert_eq!(t.get(row, 0), Value::str(state));
        assert_eq!(t.get(row, 1), Value::str(city));
        let got = t.get(row, 2).as_f64().unwrap();
        assert!((got - pct).abs() < 1e-12);
    }
    // The paper's rounded figures.
    assert_eq!((t.get(0, 2).as_f64().unwrap() * 100.0).round(), 22.0);
    assert_eq!((t.get(1, 2).as_f64().unwrap() * 100.0).round(), 78.0);
    assert_eq!((t.get(2, 2).as_f64().unwrap() * 100.0).round(), 57.0);
    assert_eq!((t.get(3, 2).as_f64().unwrap() * 100.0).round(), 43.0);
}

/// SIGMOD Table 3: the store × day-of-week horizontal example, rebuilt from
/// the percentages and totals the paper prints (store 2: 7% Mon .. 30% Sun,
/// total 2500; store 4 has the 0% Monday; store 7 peaks on weekends).
#[test]
fn sigmod_table_3_horizontal_percentages() {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("store", DataType::Int),
        ("dweek", DataType::Str),
        ("salesAmt", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut f = Table::empty(schema);
    // Per-store day totals consistent with the paper's Table 3 percentages.
    let days = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Su7"];
    let store2 = [175.0, 150.0, 200.0, 225.0, 400.0, 600.0, 750.0]; // 2500
    let store4 = [0.0, 360.0, 360.0, 360.0, 720.0, 800.0, 1400.0]; // 4000
    let store7 = [128.0, 128.0, 64.0, 64.0, 128.0, 560.0, 528.0]; // 1600
    for (store, totals) in [(2, store2), (4, store4), (7, store7)] {
        for (day, amt) in days.iter().zip(totals) {
            if amt > 0.0 {
                f.push_row(&[Value::Int(store), Value::str(*day), Value::Float(amt)])
                    .unwrap();
            }
        }
    }
    catalog.create_table("sales", f).unwrap();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql(
            "SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) AS totalSales \
             FROM sales GROUP BY store;",
        )
        .unwrap();
    let SqlOutcome::Horizontal(result) = out else {
        panic!("expected horizontal")
    };
    let t = result.snapshot().sorted_by(&[0]);
    assert_eq!(t.num_rows(), 3);
    assert_eq!(t.num_columns(), 9, "store + 7 days + total");
    let col = |name: &str| t.schema().index_of(name).unwrap();
    // Store 2 row: 7% Monday, 30% Sunday, total 2500.
    assert!((t.get(0, col("dweek=Mon")).as_f64().unwrap() - 0.07).abs() < 1e-12);
    assert!((t.get(0, col("dweek=Su7")).as_f64().unwrap() - 0.30).abs() < 1e-12);
    assert_eq!(t.get(0, col("totalSales")), Value::Float(2500.0));
    // "Observe the 0% for store 4 on Monday."
    assert_eq!(t.get(1, col("dweek=Mon")), Value::Float(0.0));
    assert_eq!(t.get(1, col("totalSales")), Value::Float(4000.0));
    // Store 7: 35% Saturday.
    assert!((t.get(2, col("dweek=Sat")).as_f64().unwrap() - 0.35).abs() < 1e-12);
    // Every row adds to 100%.
    for row in 0..3 {
        let sum: f64 = days
            .iter()
            .map(|d| t.get(row, col(&format!("dweek={d}"))).as_f64().unwrap())
            .sum();
        assert!((sum - 1.0).abs() < 1e-12, "row {row}: {sum}");
    }
}

/// DMKD Table 2: binary coding of gender × marital status per employee.
#[test]
fn dmkd_table_2_binary_coding() {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("employeeId", DataType::Int),
        ("gender", DataType::Str),
        ("maritalStatus", DataType::Str),
        ("salary", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut f = Table::empty(schema);
    for (id, g, m, s) in [
        (1, "M", "single", 30_000.0),
        (2, "F", "single", 50_000.0),
        (3, "F", "married", 40_000.0),
        (4, "M", "single", 45_000.0),
    ] {
        f.push_row(&[
            Value::Int(id),
            Value::str(g),
            Value::str(m),
            Value::Float(s),
        ])
        .unwrap();
    }
    catalog.create_table("employee", f).unwrap();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql(
            "SELECT employeeId, sum(1 BY gender, maritalStatus DEFAULT 0), sum(salary) \
             FROM employee GROUP BY employeeId;",
        )
        .unwrap();
    let SqlOutcome::Horizontal(result) = out else {
        panic!("expected horizontal")
    };
    let t = result.snapshot().sorted_by(&[0]);
    assert_eq!(t.num_rows(), 4);
    // 3 observed gender × marital combinations → 3 binary columns + salary.
    assert_eq!(t.num_columns(), 5);
    let col = |name: &str| t.schema().index_of(name).unwrap();
    let msingle = col("gender=M;maritalStatus=single");
    let fsingle = col("gender=F;maritalStatus=single");
    let fmarried = col("gender=F;maritalStatus=married");
    // Employee 1 (M single): 1, 0, 0 — matching DMKD Table 2.
    assert_eq!(t.get(0, msingle).as_f64().unwrap(), 1.0);
    assert_eq!(t.get(0, fsingle).as_f64().unwrap(), 0.0);
    assert_eq!(t.get(0, fmarried).as_f64().unwrap(), 0.0);
    // Employee 3 (F married).
    assert_eq!(t.get(2, fmarried).as_f64().unwrap(), 1.0);
    // Salary carried along.
    assert_eq!(t.get(3, col("sum_salary")), Value::Float(45_000.0));
}

/// DMKD Table 1 shape: multiple horizontal terms + a plain total in one
/// statement ("summarize sales for each store ...").
#[test]
fn dmkd_table_1_multi_term_summary() {
    let catalog = sigmod_fact_table();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql(
            "SELECT state, sum(salesAmt BY city), count(* BY city), sum(salesAmt) \
             FROM sales GROUP BY state;",
        )
        .unwrap();
    let SqlOutcome::Horizontal(result) = out else {
        panic!("expected horizontal")
    };
    let t = result.snapshot().sorted_by(&[0]);
    // state + 4 sum cells + 4 count cells + total.
    assert_eq!(t.num_columns(), 10);
    assert_eq!(t.num_rows(), 2);
    let col = |name: &str| t.schema().index_of(name).unwrap();
    // CA: SF sum 83 over 3 transactions; no Dallas (NULL sum, 0 count).
    assert_eq!(
        t.get(0, col("sum_salesAmt:city=San_Francisco")),
        Value::Float(83.0)
    );
    assert_eq!(
        t.get(0, col("count_star:city=San_Francisco")),
        Value::Int(3)
    );
    assert_eq!(t.get(0, col("sum_salesAmt:city=Dallas")), Value::Null);
    assert_eq!(t.get(0, col("count_star:city=Dallas")), Value::Int(0));
    assert_eq!(t.get(1, col("sum_salesAmt")), Value::Float(149.0));
}

#[test]
fn generated_sql_matches_paper_statements() {
    let catalog = sigmod_fact_table();
    let engine = PercentageEngine::new(&catalog);
    let stmts = engine
        .explain_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city")
        .unwrap();
    // The three-statement scheme of SIGMOD §3.1 plus the index.
    assert!(stmts[0].starts_with("INSERT INTO Fk SELECT state, city, sum(salesAmt)"));
    assert!(stmts[1].contains("FROM Fk GROUP BY state"));
    assert!(stmts[2].starts_with("CREATE INDEX"));
    assert!(stmts[3].contains("CASE WHEN Fj0.total <> 0 THEN"));
    assert!(stmts[3].contains("WHERE Fk.state = Fj0.state"));
}
