//! Cost-shape assertions: the *mechanisms* behind every comparison in the
//! papers' evaluation sections, verified via work counters rather than
//! wall-clock (so they hold in debug builds and on any machine).

use percentage_aggregations::prelude::*;

fn sales_catalog(rows: usize) -> Catalog {
    let catalog = Catalog::new();
    pa_workload::install_sales(&catalog, &SalesConfig { rows, seed: 99 }).unwrap();
    catalog
}

/// Table 4 column (4): `Fj` from `Fk` reads `F` once; from `F` reads twice.
#[test]
fn fj_from_fk_halves_fact_scans() {
    let catalog = sales_catalog(30_000);
    let engine = PercentageEngine::new(&catalog);
    let q = VpctQuery::single("sales", &["monthNo", "dweek"], "salesAmt", &["dweek"]);
    let from_fk = engine.vpct_with(&q, &VpctStrategy::best()).unwrap();
    let from_f = engine.vpct_with(&q, &VpctStrategy::fj_from_f()).unwrap();
    // From-F pays a second full scan of F (30k rows); from-Fk re-reads only
    // the 84-row partial.
    assert!(from_f.stats.rows_scanned >= from_fk.stats.rows_scanned + 29_000);
    // The synchronized scan recovers the single pass.
    let sync = engine.vpct_with(&q, &VpctStrategy::synchronized()).unwrap();
    assert!(sync.stats.rows_scanned <= from_fk.stats.rows_scanned);
}

/// Table 4 column (3): UPDATE logs one WAL record per row; INSERT one per
/// batch. When |FV| ≈ |F| this is the dominating difference.
#[test]
fn update_pays_per_row_logging() {
    let catalog = sales_catalog(20_000);
    let engine = PercentageEngine::new(&catalog);
    // dept,store,dweek,monthNo: |FV| within a factor of the 20k input.
    let q = VpctQuery::single(
        "sales",
        &["dept", "store", "dweek", "monthNo"],
        "salesAmt",
        &["dweek", "monthNo"],
    );
    let ins = engine.vpct_with(&q, &VpctStrategy::best()).unwrap();
    let upd = engine.vpct_with(&q, &VpctStrategy::with_update()).unwrap();
    let fv_rows = ins.snapshot().num_rows() as u64;
    assert!(fv_rows > 10_000, "|FV| comparable to |F| ({fv_rows})");
    assert_eq!(upd.stats.rows_updated, fv_rows);
    assert!(
        upd.stats.wal_records > ins.stats.wal_records + fv_rows / 2,
        "per-row update records ({}) vs bulk insert records ({})",
        upd.stats.wal_records,
        ins.stats.wal_records
    );
}

/// Table 6: the OLAP window plan does row-granular work — sort comparisons
/// and n-row materializations the percentage plan never pays.
#[test]
fn olap_baseline_is_row_granular() {
    let catalog = sales_catalog(20_000);
    let engine = PercentageEngine::new(&catalog);
    let q = VpctQuery::single("sales", &["monthNo", "dweek"], "salesAmt", &["dweek"]);
    let fast = engine.vpct(&q).unwrap();
    let olap = engine.vpct_olap(&q).unwrap();
    // Two window sorts over 20k rows.
    assert!(olap.stats.sort_comparisons > 100_000);
    assert_eq!(fast.stats.sort_comparisons, 0);
    // The window plan materializes ≥ 3 n-row intermediates + distinct;
    // the percentage plan materializes group-sized tables only.
    assert!(olap.stats.rows_materialized > 3 * 20_000);
    assert!(fast.stats.rows_materialized < 2_000);
}

/// Table 5 / DMKD Table 3: direct CASE work scales with n × N; indirect
/// CASE replaces n by |FV|. This is the *legacy* predicate-chain cost shape
/// (`jump_table: false`) — the default jump-table code path makes the same
/// query O(1) per row, asserted at the end.
#[test]
fn indirect_case_cuts_condition_evaluations() {
    let catalog = sales_catalog(20_000);
    let engine = PercentageEngine::new(&catalog);
    // N = 84 columns (dweek × monthNo), |FV| = |dept × dweek × monthNo| ≤ 8400.
    let q = HorizontalQuery::hpct("sales", &["dept"], "salesAmt", &["dweek", "monthNo"]);
    let direct = engine
        .horizontal_with(
            &q,
            &HorizontalOptions {
                strategy: HorizontalStrategy::CaseDirect,
                jump_table: false,
                ..HorizontalOptions::default()
            },
        )
        .unwrap();
    let indirect = engine
        .horizontal_with(
            &q,
            &HorizontalOptions {
                strategy: HorizontalStrategy::CaseFromFv,
                jump_table: false,
                ..HorizontalOptions::default()
            },
        )
        .unwrap();
    assert!(
        direct.stats.case_condition_evals > 20_000 * 42,
        "direct evaluates ~n×N/2 conditions: {}",
        direct.stats.case_condition_evals
    );
    assert!(
        indirect.stats.case_condition_evals < direct.stats.case_condition_evals / 2,
        "indirect {} vs direct {}",
        indirect.stats.case_condition_evals,
        direct.stats.case_condition_evals
    );
    // The default jump-table path removes the chain altogether: what
    // remains is output-sized (the percentage-division pass over |groups|
    // × N cells), not scan-sized n × N work.
    let jump = engine
        .horizontal_with(&q, &HorizontalOptions::default())
        .unwrap();
    assert!(
        jump.stats.case_condition_evals * 50 < direct.stats.case_condition_evals,
        "jump table {} vs legacy chain {}",
        jump.stats.case_condition_evals,
        direct.stats.case_condition_evals
    );
    assert!(jump.stats.dense_group_ops > 0, "{}", jump.stats);
}

/// DMKD Table 3: SPJ re-scans the source once per result column and joins N
/// times — orders of magnitude more scanned rows than one CASE pass.
#[test]
fn spj_scans_explode_with_n() {
    let catalog = sales_catalog(10_000);
    let engine = PercentageEngine::new(&catalog);
    let q = HorizontalQuery::hpct("sales", &["state"], "salesAmt", &["dweek", "monthNo"]);
    let case = engine
        .horizontal_with(
            &q,
            &HorizontalOptions::with_strategy(HorizontalStrategy::CaseDirect),
        )
        .unwrap();
    let spj = engine
        .horizontal_with(
            &q,
            &HorizontalOptions::with_strategy(HorizontalStrategy::SpjDirect),
        )
        .unwrap();
    // 84 combinations → 84 extra scans of F.
    assert!(
        spj.stats.rows_scanned > 80 * 10_000,
        "spj scanned {}",
        spj.stats.rows_scanned
    );
    assert!(spj.stats.rows_scanned > 20 * case.stats.rows_scanned);
    // And SPJ-from-FV replaces those scans of F with scans of the smaller FV.
    let spj_fv = engine
        .horizontal_with(
            &q,
            &HorizontalOptions::with_strategy(HorizontalStrategy::SpjFromFv),
        )
        .unwrap();
    assert!(spj_fv.stats.rows_scanned < spj.stats.rows_scanned / 2);
}

/// The paper's future-work hash dispatch: O(1) per row instead of O(N) —
/// measured against the legacy chain, since the default jump-table path is
/// already O(1). The two O(1) evaluators differ only in lookup machinery:
/// dense composite-code indexing vs hashing.
#[test]
fn hash_dispatch_removes_case_chains() {
    let catalog = sales_catalog(20_000);
    let engine = PercentageEngine::new(&catalog);
    let q = HorizontalQuery::hpct("sales", &["dept"], "salesAmt", &["dweek", "monthNo"]);
    let case = engine
        .horizontal_with(
            &q,
            &HorizontalOptions {
                jump_table: false,
                ..HorizontalOptions::default()
            },
        )
        .unwrap();
    let dispatch = engine
        .horizontal_with(
            &q,
            &HorizontalOptions {
                hash_dispatch: true,
                ..HorizontalOptions::default()
            },
        )
        .unwrap();
    assert!(
        dispatch.stats.case_condition_evals * 50 < case.stats.case_condition_evals,
        "dispatch {} vs case {}",
        dispatch.stats.case_condition_evals,
        case.stats.case_condition_evals
    );
    assert!(
        dispatch.stats.dense_group_ops == 0 && dispatch.stats.hash_group_ops > 0,
        "the ablation runs every lookup through the hash path: {}",
        dispatch.stats
    );
    // The default (dense) evaluator does the same constant per-row work.
    let dense = engine
        .horizontal_with(&q, &HorizontalOptions::default())
        .unwrap();
    assert!(
        dense.stats.case_condition_evals * 50 < case.stats.case_condition_evals,
        "dense {} vs case {}",
        dense.stats.case_condition_evals,
        case.stats.case_condition_evals
    );
}

/// Table 4 column (2): the subkey index removes the transient join build.
#[test]
fn subkey_index_removes_transient_build() {
    let catalog = sales_catalog(20_000);
    let engine = PercentageEngine::new(&catalog);
    let q = VpctQuery::single("sales", &["dept", "dweek"], "salesAmt", &["dweek"]);
    let with_idx = engine.vpct_with(&q, &VpctStrategy::best()).unwrap();
    let without = engine
        .vpct_with(&q, &VpctStrategy::without_index())
        .unwrap();
    assert!(
        without.stats.hash_build_rows > with_idx.stats.hash_build_rows,
        "without {} vs with {}",
        without.stats.hash_build_rows,
        with_idx.stats.hash_build_rows
    );
}

/// DMKD §3.6: exceeding the column limit errors, partitioning remedies it.
#[test]
fn wide_results_partition_under_column_limit() {
    let catalog = sales_catalog(20_000);
    let engine = PercentageEngine::new(&catalog);
    // dept × dweek = 700 columns > 512.
    let q = HorizontalQuery::hpct("sales", &["state"], "salesAmt", &["dept", "dweek"]);
    let strict = HorizontalOptions {
        max_columns: 512,
        ..HorizontalOptions::default()
    };
    assert!(matches!(
        engine.horizontal_with(&q, &strict),
        Err(CoreError::TooManyColumns { .. })
    ));
    let partitioned = HorizontalOptions {
        max_columns: 512,
        allow_partitioning: true,
        ..HorizontalOptions::default()
    };
    let result = engine.horizontal_with(&q, &partitioned).unwrap();
    assert!(result.partitions.len() >= 2);
    let mut total_cells = 0;
    for p in &result.partitions {
        let t = p.read();
        assert!(t.num_columns() <= 512);
        assert_eq!(t.schema().field_at(0).name, "state");
        total_cells += t.num_columns() - 1;
    }
    assert_eq!(total_cells, 700);
}

/// SIGMOD §3.1 (m > 1): the dimension lattice computes shared totals levels
/// once and re-aggregates nested levels from the smallest ancestor.
#[test]
fn lattice_saves_scans_on_multi_term_queries() {
    let catalog = sales_catalog(20_000);
    let engine = PercentageEngine::new(&catalog);
    let q = VpctQuery {
        table: "sales".into(),
        group_by: vec!["dept".into(), "dweek".into(), "monthNo".into()],
        terms: vec![
            percentage_aggregations::core::VpctTerm::new("salesAmt", &["monthNo"]),
            percentage_aggregations::core::VpctTerm::new("salesAmt", &["dweek", "monthNo"]),
            percentage_aggregations::core::VpctTerm::new("salesAmt", &["dept", "dweek", "monthNo"]),
        ],
        extra: vec![],
    };
    // Per-term evaluation: every Fj re-aggregates the 8400-row Fk.
    let per_term = engine.vpct_with(&q, &VpctStrategy::best()).unwrap();
    // Lattice: deeper levels re-aggregate the previous (smaller) level.
    let lattice =
        percentage_aggregations::core::eval_vpct_lattice(engine.catalog(), &q, "lat_").unwrap();
    assert!(
        lattice.stats.rows_scanned < per_term.stats.rows_scanned,
        "lattice {} vs per-term {}",
        lattice.stats.rows_scanned,
        per_term.stats.rows_scanned
    );
    // Same answers.
    let a: Vec<Vec<Value>> = per_term.snapshot().sorted_by(&[0, 1, 2]).rows().collect();
    let b: Vec<Vec<Value>> = lattice.snapshot().sorted_by(&[0, 1, 2]).rows().collect();
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        for (va, vb) in ra.iter().zip(rb) {
            let close = match (va.as_f64(), vb.as_f64()) {
                (Some(x), Some(y)) => (x - y).abs() < 1e-9 * (1.0 + x.abs()),
                _ => va == vb,
            };
            assert!(close, "{va} vs {vb}");
        }
    }
}

/// SIGMOD §6 (future work): a batch of queries over one shared summary
/// scans F once instead of once per query.
#[test]
fn batch_shares_the_fact_scan() {
    let catalog = sales_catalog(20_000);
    let engine = PercentageEngine::new(&catalog);
    // Related queries whose union grouping (state × dweek × monthNo = 420
    // cells) is far coarser than F — the case shared summaries exist for.
    let queries = vec![
        VpctQuery::single("sales", &["state", "dweek"], "salesAmt", &["dweek"]),
        VpctQuery::single("sales", &["state", "monthNo"], "salesAmt", &["monthNo"]),
        VpctQuery::single("sales", &["dweek", "monthNo"], "salesAmt", &["monthNo"]),
    ];
    let batch = engine.vpct_batch(&queries).unwrap();
    let batch_scanned: u64 = batch.iter().map(|r| r.stats.rows_scanned).sum();
    let solo_scanned: u64 = queries
        .iter()
        .map(|q| engine.vpct(q).unwrap().stats.rows_scanned)
        .sum();
    assert!(
        batch_scanned < solo_scanned / 2,
        "batch {batch_scanned} vs solo {solo_scanned}"
    );
    // And identical answers.
    for (q, r) in queries.iter().zip(&batch) {
        let solo = engine.vpct(q).unwrap();
        assert_eq!(solo.snapshot().num_rows(), r.snapshot().num_rows());
    }
}
