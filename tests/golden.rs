//! Golden snapshot tests: the SIGMOD worked example (Table 1's fact table,
//! Tables 2–3's expected outputs) pinned as on-disk fixtures under
//! `tests/golden/`.
//!
//! Each test runs a query over the CSV fact fixture, renders the result in
//! a canonical line format (sorted rows, `|`-separated, shortest-roundtrip
//! float formatting), and compares it byte-for-byte against the recorded
//! `.golden` file. On mismatch the failure message is a unified diff —
//! what changed, not just "snapshots differ". Plan shape is pinned the
//! same way via `EXPLAIN` (which never executes, so its text is
//! deterministic).
//!
//! To accept intentional changes, regenerate in place:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use percentage_aggregations::prelude::*;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Load the fact-table fixture (`header` row, then `Int|Str|Float`-typed
/// columns inferred from the header's `name:type` pairs).
fn load_fixture(name: &str) -> Catalog {
    let path = golden_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    let mut lines = text.lines();
    let header = lines.next().expect("fixture has a header line");
    let mut names = Vec::new();
    let mut types = Vec::new();
    for field in header.split(',') {
        let (name, ty) = field
            .split_once(':')
            .unwrap_or_else(|| panic!("header field {field:?} is not name:type"));
        names.push(name.trim().to_string());
        types.push(match ty.trim() {
            "int" => DataType::Int,
            "str" => DataType::Str,
            "float" => DataType::Float,
            other => panic!("unknown fixture type {other:?}"),
        });
    }
    let pairs: Vec<(&str, DataType)> = names
        .iter()
        .map(String::as_str)
        .zip(types.iter().copied())
        .collect();
    let schema = Schema::from_pairs(&pairs).unwrap().into_shared();
    let mut t = Table::empty(schema);
    for line in lines.filter(|l| !l.trim().is_empty()) {
        let row: Vec<Value> = line
            .split(',')
            .zip(types.iter())
            .map(|(cell, ty)| {
                let cell = cell.trim();
                if cell == "NULL" {
                    return Value::Null;
                }
                match ty {
                    DataType::Int => Value::Int(cell.parse().unwrap()),
                    DataType::Float => Value::Float(cell.parse().unwrap()),
                    _ => Value::str(cell),
                }
            })
            .collect();
        t.push_row(&row).unwrap();
    }
    let catalog = Catalog::new();
    catalog.create_table("sales", t).unwrap();
    catalog
}

/// Canonical snapshot text: header, then all rows sorted by every column.
/// Floats print with Rust's shortest-roundtrip formatting, so the snapshot
/// pins exact bits, not a rounding of them.
fn render(t: &Table) -> String {
    let mut out = String::new();
    let names: Vec<&str> = (0..t.num_columns())
        .map(|c| t.schema().field_at(c).name.as_str())
        .collect();
    let _ = writeln!(out, "{}", names.join("|"));
    let all: Vec<usize> = (0..t.num_columns()).collect();
    for row in t.sorted_by(&all).rows() {
        let cells: Vec<String> = row.iter().map(Value::to_string).collect();
        let _ = writeln!(out, "{}", cells.join("|"));
    }
    out
}

/// Minimal unified diff (full-context) between two snapshots, LCS-based so
/// an inserted row shows as one `+` line rather than cascading mismatches.
fn unified_diff(expected: &str, actual: &str) -> String {
    let a: Vec<&str> = expected.lines().collect();
    let b: Vec<&str> = actual.lines().collect();
    let mut lcs = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in (0..a.len()).rev() {
        for j in (0..b.len()).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = String::from("--- expected (golden)\n+++ actual\n");
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if i < a.len() && j < b.len() && a[i] == b[j] {
            let _ = writeln!(out, " {}", a[i]);
            i += 1;
            j += 1;
        } else if j < b.len() && (i == a.len() || lcs[i][j + 1] >= lcs[i + 1][j]) {
            let _ = writeln!(out, "+{}", b[j]);
            j += 1;
        } else {
            let _ = writeln!(out, "-{}", a[i]);
            i += 1;
        }
    }
    out
}

/// Compare `actual` against the recorded `tests/golden/<name>`; with
/// `UPDATE_GOLDEN=1` rewrite the file instead and pass.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read golden {}: {e}\n(run UPDATE_GOLDEN=1 cargo test --test \
             golden to record it)",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "snapshot {} diverged:\n{}\n(run UPDATE_GOLDEN=1 cargo test --test \
         golden to accept)",
        name,
        unified_diff(&expected, actual)
    );
}

/// SIGMOD Table 2: vertical percentages of `salesAmt` by city per state.
#[test]
fn golden_vpct_sigmod_table_2() {
    let catalog = load_fixture("sales.csv");
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city;")
        .unwrap();
    assert_golden("vpct_by_city.golden", &render(&out.table().read()));
}

/// SIGMOD Table 3 shape on the Table 1 data: one row per state, one
/// percentage column per city.
#[test]
fn golden_hpct_sigmod_table_3_shape() {
    let catalog = load_fixture("sales.csv");
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql("SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state;")
        .unwrap();
    assert_golden("hpct_by_city.golden", &render(&out.table().read()));
}

/// Hagg: horizontal plain aggregation (DMKD's generalization) on the same
/// fixture.
#[test]
fn golden_hagg_sum_by_city() {
    let catalog = load_fixture("sales.csv");
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql("SELECT state, sum(salesAmt BY city) FROM sales GROUP BY state;")
        .unwrap();
    assert_golden("hagg_sum_by_city.golden", &render(&out.table().read()));
}

/// Plan shape for the horizontal query (EXPLAIN never executes, so the
/// text is stable run to run — the guard line carries no `charged=`).
#[test]
fn golden_explain_hpct_plan() {
    let catalog = load_fixture("sales.csv");
    let engine = PercentageEngine::new(&catalog);
    let lines = engine
        .explain_sql("SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state;")
        .unwrap();
    let mut text = lines.join("\n");
    text.push('\n');
    assert_golden("explain_hpct.golden", &text);
}

/// The comparator itself: injected divergence must surface as a unified
/// diff naming the changed lines, not a bare inequality.
#[test]
fn golden_harness_reports_unified_diff() {
    let expected = "state|pct\nCA|0.25\nTX|0.75\n";
    let actual = "state|pct\nCA|0.5\nTX|0.5\n";
    let diff = unified_diff(expected, actual);
    assert!(diff.contains("-CA|0.25"), "{diff}");
    assert!(diff.contains("+CA|0.5"), "{diff}");
    assert!(diff.contains(" state|pct"), "context line kept: {diff}");
}
