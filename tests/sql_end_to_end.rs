//! SQL surface: end-to-end statements, rule errors, and the generated-SQL
//! transcript, all through the public engine API.

use percentage_aggregations::prelude::*;

fn catalog() -> Catalog {
    let catalog = Catalog::new();
    pa_workload::install_sales(
        &catalog,
        &SalesConfig {
            rows: 5_000,
            seed: 31,
        },
    )
    .unwrap();
    pa_workload::install_employee(
        &catalog,
        &EmployeeConfig {
            rows: 5_000,
            seed: 32,
        },
    )
    .unwrap();
    catalog
}

#[test]
fn vertical_statement_with_alias_and_extras() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql(
            "SELECT state, dweek, Vpct(salesAmt BY dweek) AS dayShare, \
             sum(salesAmt) AS daySales, count(*) AS n \
             FROM sales GROUP BY state, dweek;",
        )
        .unwrap();
    let SqlOutcome::Vertical(r) = out else {
        panic!("vertical expected")
    };
    let t = r.snapshot();
    assert_eq!(t.num_rows(), 35, "5 states × 7 days");
    assert_eq!(t.schema().index_of("dayShare").unwrap(), 2);
    assert_eq!(t.schema().index_of("daySales").unwrap(), 3);
    assert_eq!(t.schema().index_of("n").unwrap(), 4);
    // Shares per state sum to 1.
    let mut sums = std::collections::HashMap::new();
    for r in 0..t.num_rows() {
        *sums.entry(t.get(r, 0).to_string()).or_insert(0.0) += t.get(r, 2).as_f64().unwrap();
    }
    for (s, v) in sums {
        assert!((v - 1.0).abs() < 1e-9, "{s}: {v}");
    }
}

#[test]
fn horizontal_statement_count_by() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql("SELECT state, count(transactionId BY dweek) FROM sales GROUP BY state;")
        .unwrap();
    let SqlOutcome::Horizontal(r) = out else {
        panic!("horizontal expected")
    };
    let t = r.snapshot();
    assert_eq!(t.num_columns(), 8, "state + 7 day-count columns");
    // Counts are integers and total 5000 across the grid.
    let mut total = 0i64;
    for row in 0..t.num_rows() {
        for c in 1..8 {
            match t.get(row, c) {
                Value::Int(n) => total += n,
                other => panic!("count cell should be Int, got {other}"),
            }
        }
    }
    assert_eq!(total, 5_000);
}

#[test]
fn rule_violations_from_both_papers() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    for (sql, expect) in [
        (
            "SELECT Vpct(salesAmt BY dweek) FROM sales",
            "rule 1", // GROUP BY required
        ),
        (
            "SELECT state, Vpct(salesAmt BY dweek) FROM sales GROUP BY state",
            "rule 2", // BY ⊄ GROUP BY
        ),
        (
            "SELECT state, Hpct(salesAmt) FROM sales GROUP BY state",
            "rule 2", // BY required
        ),
        (
            "SELECT state, Hpct(salesAmt BY state) FROM sales GROUP BY state",
            "disjoint",
        ),
        (
            "SELECT state, Vpct(salesAmt BY dweek), Hpct(salesAmt BY dept) \
             FROM sales GROUP BY state, dweek",
            "not supported", // mixing families
        ),
        (
            "SELECT dweek, sum(salesAmt) FROM sales GROUP BY state",
            "GROUP BY", // ungrouped plain column
        ),
    ] {
        let err = engine.execute_sql(sql).unwrap_err();
        assert!(
            err.to_string().contains(expect),
            "{sql}\n  got: {err}\n  want substring: {expect}"
        );
    }
}

#[test]
fn execution_errors_are_reported() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    // Unknown table.
    assert!(engine
        .execute_sql("SELECT d, d2, Vpct(a BY d2) FROM nope GROUP BY d, d2")
        .is_err());
    // Unknown measure column.
    assert!(engine
        .execute_sql("SELECT state, dweek, Vpct(bogus BY dweek) FROM sales GROUP BY state, dweek")
        .is_err());
}

#[test]
fn explicit_strategies_through_sql() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    let sql = "SELECT state, dweek, Vpct(salesAmt BY dweek) FROM sales GROUP BY state, dweek;";
    let a = engine
        .execute_sql_with(sql, &VpctStrategy::best(), &HorizontalOptions::default())
        .unwrap();
    let b = engine
        .execute_sql_with(
            sql,
            &VpctStrategy::with_update(),
            &HorizontalOptions::default(),
        )
        .unwrap();
    assert!(b.stats().rows_updated > 0, "update strategy used");
    assert_eq!(a.stats().rows_updated, 0, "insert strategy used");
    let ta = a.table();
    let tb = b.table();
    assert_eq!(ta.read().num_rows(), tb.read().num_rows());
}

#[test]
fn heuristic_optimizer_picks_sources_as_documented() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    // Low selectivity, one BY column → direct; the transcript reads from F.
    let stmts = engine
        .explain_sql("SELECT state, Hpct(salesAmt BY dweek) FROM sales GROUP BY state")
        .unwrap();
    assert!(stmts.iter().any(|s| s.contains("FROM sales")), "{stmts:?}");
    assert!(!stmts[0].contains("INSERT INTO FV"), "{stmts:?}");
    // A selective BY column (dept has 100 values) also stays direct now:
    // the jump-table CASE path prices 101 cells as one array index per
    // row, so selectivity alone no longer routes through FV.
    let stmts = engine
        .explain_sql("SELECT state, Hpct(salesAmt BY dept) FROM sales GROUP BY state")
        .unwrap();
    assert!(!stmts[0].contains("INSERT INTO FV"), "{stmts:?}");
    // Past the cell budget (dept × monthNo ≈ 1313 cells > 1024) → FV.
    let stmts = engine
        .explain_sql("SELECT state, Hpct(salesAmt BY dept, monthNo) FROM sales GROUP BY state")
        .unwrap();
    assert!(stmts[0].contains("INSERT INTO FV"), "{stmts:?}");
}

#[test]
fn employee_census_style_statement() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql(
            "SELECT gender, marstatus, Vpct(salary BY marstatus), avg(salary) AS avgSalary \
             FROM employee GROUP BY gender, marstatus;",
        )
        .unwrap();
    let t = out.table();
    let t = t.read();
    assert_eq!(t.num_rows(), 8, "2 genders × 4 marital statuses");
    let avg_col = t.schema().index_of("avgSalary").unwrap();
    for r in 0..t.num_rows() {
        let avg = t.get(r, avg_col).as_f64().unwrap();
        assert!((20_000.0..=150_000.0).contains(&avg));
    }
}

#[test]
fn dmkd_flagship_count_distinct_by() {
    // DMKD §3.2: count(distinct transactionid BY dayofweekNo) — the number
    // of distinct transactions per store and weekday, horizontally.
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql(
            "SELECT store, count(distinct transactionId BY dweek), sum(salesAmt) \
             FROM sales GROUP BY store;",
        )
        .unwrap();
    let SqlOutcome::Horizontal(r) = out else {
        panic!("horizontal expected")
    };
    let t = r.snapshot();
    assert_eq!(t.num_columns(), 9, "store + 7 day columns + total");
    // transactionId is unique per row here, so the distinct counts must sum
    // to the table's row count.
    let mut total = 0i64;
    for row in 0..t.num_rows() {
        for c in 1..8 {
            total += t.get(row, c).as_i64().unwrap();
        }
    }
    assert_eq!(total, 5_000);
}

#[test]
fn count_distinct_rules() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    // DISTINCT only inside count.
    let err = engine
        .execute_sql("SELECT state, sum(distinct salesAmt BY dweek) FROM sales GROUP BY state")
        .unwrap_err();
    assert!(err.to_string().contains("DISTINCT"), "{err}");
    // count(DISTINCT *) rejected.
    assert!(engine
        .execute_sql("SELECT state, count(distinct * BY dweek) FROM sales GROUP BY state")
        .is_err());
    // Holistic: FV strategies refuse.
    let q = HorizontalQuery::hagg(
        "sales",
        &["state"],
        AggFunc::CountDistinct,
        "transactionId",
        &["dweek"],
    );
    let err = engine
        .horizontal_with(
            &q,
            &HorizontalOptions::with_strategy(HorizontalStrategy::CaseFromFv),
        )
        .unwrap_err();
    assert!(err.to_string().contains("holistic"), "{err}");
    // The optimizer routes it to the direct strategy automatically.
    assert!(engine.horizontal(&q).is_ok());
    // And SPJ-direct agrees with CASE-direct.
    let a = engine
        .horizontal_with(
            &q,
            &HorizontalOptions::with_strategy(HorizontalStrategy::CaseDirect),
        )
        .unwrap()
        .snapshot()
        .sorted_by(&[0]);
    let b = engine
        .horizontal_with(
            &q,
            &HorizontalOptions::with_strategy(HorizontalStrategy::SpjDirect),
        )
        .unwrap()
        .snapshot()
        .sorted_by(&[0]);
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            assert_eq!(a.get(r, c), b.get(r, c), "({r},{c})");
        }
    }
}

#[test]
fn where_group_order_combined_on_horizontal() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql(
            "SELECT state, Hpct(salesAmt BY dweek) FROM sales \
             WHERE monthNo <= 6 GROUP BY state ORDER BY state;",
        )
        .unwrap();
    let t = out.table();
    let t = t.read();
    assert_eq!(t.num_rows(), 5);
    // Ordered by state ascending.
    for r in 1..t.num_rows() {
        assert!(t.get(r - 1, 0).total_cmp(&t.get(r, 0)) != std::cmp::Ordering::Greater);
    }
    // Rows still sum to 1 after filtering.
    for r in 0..t.num_rows() {
        let sum: f64 = (1..t.num_columns())
            .filter_map(|c| t.get(r, c).as_f64())
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

#[test]
fn update_strategy_carries_extra_aggregates() {
    let catalog = catalog();
    let engine = PercentageEngine::new(&catalog);
    let sql = "SELECT state, dweek, Vpct(salesAmt BY dweek), sum(salesAmt) AS tot, \
               count(*) AS n FROM sales GROUP BY state, dweek;";
    let ins = engine
        .execute_sql_with(sql, &VpctStrategy::best(), &HorizontalOptions::default())
        .unwrap();
    let upd = engine
        .execute_sql_with(
            sql,
            &VpctStrategy::with_update(),
            &HorizontalOptions::default(),
        )
        .unwrap();
    let a = ins.table();
    let b = upd.table();
    let (a, b) = (a.read().sorted_by(&[0, 1]), b.read().sorted_by(&[0, 1]));
    assert_eq!(a.num_columns(), 5);
    assert_eq!(b.num_columns(), 5);
    for r in 0..a.num_rows() {
        for c in 0..5 {
            let (x, y) = (a.get(r, c), b.get(r, c));
            let close = match (x.as_f64(), y.as_f64()) {
                (Some(p), Some(q)) => (p - q).abs() < 1e-9 * (1.0 + p.abs()),
                _ => x == y,
            };
            assert!(close, "({r},{c}): {x} vs {y}");
        }
    }
}

#[test]
fn sanitized_value_collisions_get_unique_columns() {
    // Two dimension values that render to the same column name after
    // whitespace sanitization ("a b" and "a_b") must still produce two
    // distinct result columns.
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Str),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::empty(schema);
    t.push_row(&[Value::Int(1), Value::str("a b"), Value::Float(1.0)])
        .unwrap();
    t.push_row(&[Value::Int(1), Value::str("a_b"), Value::Float(3.0)])
        .unwrap();
    catalog.create_table("f", t).unwrap();
    let engine = PercentageEngine::new(&catalog);
    let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
    let result = engine.horizontal(&q).unwrap();
    let t = result.snapshot();
    assert_eq!(t.num_columns(), 3, "g + two distinct cells");
    let names: Vec<&str> = t
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    assert!(names.contains(&"d=a_b"));
    assert!(names.contains(&"d=a_b_2"), "{names:?}");
    // 25% / 75%, whichever column is which.
    let vals: Vec<f64> = (1..3).map(|c| t.get(0, c).as_f64().unwrap()).collect();
    let mut sorted = vals.clone();
    sorted.sort_by(f64::total_cmp);
    assert_eq!(sorted, vec![0.25, 0.75]);
}
