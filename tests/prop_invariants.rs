//! Property-based tests over random fact tables.
//!
//! Random tables include NULL measures, NULL dimension values, negative
//! amounts (zero-sum groups), duplicate rows and empty subsets — the corner
//! cases §3's "issues" sections worry about. Invariants:
//!
//! 1. every vertical strategy computes the same `FV`, and the OLAP window
//!    plan agrees;
//! 2. within each totals-group, non-NULL percentages sum to 1 (or the
//!    group's total is zero/NULL and all its percentages are NULL);
//! 3. every horizontal strategy (± hash dispatch) computes the same `FH`;
//! 4. each `FH` row's percentages sum to 1 under the same proviso;
//! 5. the horizontal cell equals the matching vertical percentage;
//! 6. `sum` re-aggregated from partials equals `sum` from the raw table
//!    (the distributivity the `Fj`-from-`Fk` optimization relies on).

use percentage_aggregations::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Row {
    g: Option<i64>, // outer dimension D1 (nullable)
    d: Option<i64>, // inner dimension D2 (nullable)
    a: Option<f64>, // measure (nullable, may be negative)
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        prop::option::weighted(0.9, 0..4i64),
        prop::option::weighted(0.9, 0..5i64),
        prop::option::weighted(0.85, -3..=3i64),
    )
        .prop_map(|(g, d, a)| Row {
            g,
            d,
            a: a.map(|x| x as f64),
        })
}

fn build_catalog(rows: &[Row]) -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Int),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::empty(schema);
    for r in rows {
        t.push_row(&[Value::from(r.g), Value::from(r.d), Value::from(r.a)])
            .unwrap();
    }
    catalog.create_table("f", t).unwrap();
    catalog
}

fn sorted_rows(t: &Table) -> Vec<Vec<Value>> {
    let all: Vec<usize> = (0..t.num_columns()).collect();
    t.sorted_by(&all).rows().collect()
}

fn value_close(a: &Value, b: &Value) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
        _ => a == b,
    }
}

fn tables_equal(a: &Table, b: &Table) -> bool {
    a.num_rows() == b.num_rows()
        && a.num_columns() == b.num_columns()
        && sorted_rows(a)
            .iter()
            .zip(sorted_rows(b).iter())
            .all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| value_close(x, y)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vertical_strategies_and_olap_agree(rows in prop::collection::vec(row_strategy(), 1..60)) {
        let catalog = build_catalog(&rows);
        let engine = PercentageEngine::with_unique_temps(&catalog);
        let q = VpctQuery::single("f", &["g", "d"], "a", &["d"]);
        let reference = engine.vpct_with(&q, &VpctStrategy::best()).unwrap().snapshot();
        for strat in [
            VpctStrategy::without_index(),
            VpctStrategy::with_update(),
            VpctStrategy::fj_from_f(),
            VpctStrategy::synchronized(),
        ] {
            let got = engine.vpct_with(&q, &strat).unwrap().snapshot();
            prop_assert!(tables_equal(&reference, &got), "{strat:?}\n{reference}\n{got}");
        }
        let olap = engine.vpct_olap(&q).unwrap().snapshot();
        prop_assert!(tables_equal(&reference, &olap), "OLAP\n{reference}\n{olap}");
    }

    #[test]
    fn vertical_group_percentages_sum_to_one_or_all_null(
        rows in prop::collection::vec(row_strategy(), 1..60)
    ) {
        let catalog = build_catalog(&rows);
        let engine = PercentageEngine::new(&catalog);
        let q = VpctQuery::single("f", &["g", "d"], "a", &["d"]);
        let t = engine.vpct(&q).unwrap().snapshot();
        let mut sums: std::collections::HashMap<String, (f64, usize, usize)> = Default::default();
        for r in 0..t.num_rows() {
            let key = t.get(r, 0).to_string();
            let entry = sums.entry(key).or_default();
            match t.get(r, 2).as_f64() {
                Some(p) => {
                    entry.0 += p;
                    entry.1 += 1;
                }
                None => entry.2 += 1,
            }
        }
        for (k, (sum, non_null, _null)) in sums {
            if non_null > 0 {
                prop_assert!((sum - 1.0).abs() < 1e-9, "group {k}: sum {sum}");
            }
        }
    }

    #[test]
    fn horizontal_strategies_agree(rows in prop::collection::vec(row_strategy(), 1..60)) {
        let catalog = build_catalog(&rows);
        let engine = PercentageEngine::with_unique_temps(&catalog);
        let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
        let mut reference: Option<Table> = None;
        for strategy in HorizontalStrategy::all() {
            let got = engine
                .horizontal_with(&q, &HorizontalOptions::with_strategy(strategy))
                .unwrap()
                .snapshot();
            match &reference {
                None => reference = Some(got),
                Some(r) => prop_assert!(
                    tables_equal(r, &got),
                    "{}\n{r}\n{got}",
                    strategy.label()
                ),
            }
        }
        let dispatch = engine
            .horizontal_with(
                &q,
                &HorizontalOptions { hash_dispatch: true, ..HorizontalOptions::default() },
            )
            .unwrap()
            .snapshot();
        prop_assert!(tables_equal(reference.as_ref().unwrap(), &dispatch), "dispatch");
    }

    #[test]
    fn horizontal_rows_sum_to_one_or_null(rows in prop::collection::vec(row_strategy(), 1..60)) {
        let catalog = build_catalog(&rows);
        let engine = PercentageEngine::new(&catalog);
        let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
        let result = engine.horizontal(&q).unwrap();
        let t = result.snapshot();
        for r in 0..t.num_rows() {
            let mut sum = 0.0;
            let mut non_null = 0;
            for c in 1..t.num_columns() {
                if let Some(p) = t.get(r, c).as_f64() {
                    sum += p;
                    non_null += 1;
                }
            }
            if non_null > 0 {
                prop_assert!((sum - 1.0).abs() < 1e-9, "row {r}: {sum}");
            }
        }
    }

    #[test]
    fn horizontal_cells_equal_vertical_percentages(
        rows in prop::collection::vec(row_strategy(), 1..60)
    ) {
        let catalog = build_catalog(&rows);
        let engine = PercentageEngine::with_unique_temps(&catalog);
        let v = engine
            .vpct(&VpctQuery::single("f", &["g", "d"], "a", &["d"]))
            .unwrap()
            .snapshot();
        let h = engine
            .horizontal(&HorizontalQuery::hpct("f", &["g"], "a", &["d"]))
            .unwrap();
        let ht = h.snapshot();
        let names = &h.cell_columns[0];
        let mut hrow = std::collections::HashMap::new();
        for r in 0..ht.num_rows() {
            hrow.insert(ht.get(r, 0).to_string(), r);
        }
        for r in 0..v.num_rows() {
            let g = v.get(r, 0).to_string();
            let d = v.get(r, 1);
            let col_name = names
                .iter()
                .find(|n| **n == format!("d={d}"))
                .expect("cell column exists");
            let c = ht.schema().index_of(col_name).unwrap();
            let pct_h = ht.get(hrow[&g], c);
            let pct_v = v.get(r, 2);
            // Faithful semantic divergence: a cell whose measures are all
            // NULL is NULL under Vpct (sum() of nothing) but 0% under Hpct
            // (SIGMOD's `ELSE 0` CASE form) — unless the group total is
            // itself zero/NULL, in which case both are NULL.
            if pct_v.is_null() {
                prop_assert!(
                    pct_h.is_null() || pct_h.as_f64() == Some(0.0) || pct_h.as_f64() == Some(-0.0),
                    "g={g} d={d}: horizontal {pct_h} for NULL vertical cell"
                );
            } else {
                prop_assert!(
                    value_close(&pct_h, &pct_v),
                    "g={g} d={d}: horizontal {pct_h} vs vertical {pct_v}"
                );
            }
        }
    }

    #[test]
    fn sum_is_distributive_over_partials(rows in prop::collection::vec(row_strategy(), 1..80)) {
        use percentage_aggregations::engine::{hash_aggregate, AggSpec, ExecStats, Expr};
        let catalog = build_catalog(&rows);
        let f_shared = catalog.table("f").unwrap();
        let f = f_shared.read();
        let mut st = ExecStats::default();
        let spec = AggSpec::new(AggFunc::Sum, Expr::col(f.schema(), "a").unwrap(), "s");
        // Fine level (g, d), then re-aggregate to (g).
        let fk = hash_aggregate(&f, &[0, 1], std::slice::from_ref(&spec), &mut st).unwrap();
        let respec = AggSpec::new(AggFunc::Sum, Expr::Col(2), "s");
        let from_fk = hash_aggregate(&fk, &[0], &[respec], &mut st).unwrap();
        let from_f = hash_aggregate(&f, &[0], &[spec], &mut st).unwrap();
        prop_assert!(tables_equal(&from_fk, &from_f), "\n{from_fk}\n{from_f}");
    }

    #[test]
    fn missing_row_postprocess_completes_the_cube(
        rows in prop::collection::vec(row_strategy(), 1..60)
    ) {
        let catalog = build_catalog(&rows);
        let engine = PercentageEngine::new(&catalog);
        let q = VpctQuery::single("f", &["g", "d"], "a", &["d"]);
        let padded = engine
            .vpct_with_missing(&q, &VpctStrategy::best(), MissingRows::PostProcess)
            .unwrap()
            .snapshot();
        // After padding, every (existing g-group) × (existing d-value) pair
        // is present exactly once.
        let f_shared = catalog.table("f").unwrap();
        let f = f_shared.read();
        let mut gs = std::collections::BTreeSet::new();
        let mut ds = std::collections::BTreeSet::new();
        for r in 0..f.num_rows() {
            gs.insert(f.get(r, 0).to_string());
            ds.insert(f.get(r, 1).to_string());
        }
        prop_assert_eq!(padded.num_rows(), gs.len() * ds.len());
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..padded.num_rows() {
            let key = (padded.get(r, 0).to_string(), padded.get(r, 1).to_string());
            prop_assert!(seen.insert(key.clone()), "duplicate {key:?}");
        }
    }
}
