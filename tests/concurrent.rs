//! Concurrent percentage queries over one shared catalog — the paper's
//! closing future-work item ("an intensive database environment where users
//! concurrently submit percentage queries").
//!
//! Each thread runs its own [`PercentageEngine`] with unique temp names;
//! the fact table is only read-locked, so queries proceed in parallel, and
//! every thread must see exactly the same answers as a serial run.

use percentage_aggregations::prelude::*;

fn sales_catalog() -> Catalog {
    let catalog = Catalog::new();
    pa_workload::install_sales(
        &catalog,
        &SalesConfig {
            rows: 30_000,
            seed: 404,
        },
    )
    .unwrap();
    catalog
}

#[test]
fn parallel_vertical_queries_agree_with_serial() {
    let catalog = sales_catalog();
    let serial = {
        let engine = PercentageEngine::new(&catalog);
        let q = VpctQuery::single("sales", &["state", "dweek"], "salesAmt", &["dweek"]);
        engine.vpct(&q).unwrap().snapshot().sorted_by(&[0, 1])
    };
    let results: Vec<Table> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let catalog = &catalog;
                scope.spawn(move || {
                    let engine = PercentageEngine::with_unique_temps(catalog);
                    let q = VpctQuery::single("sales", &["state", "dweek"], "salesAmt", &["dweek"]);
                    let strat = if i % 2 == 0 {
                        VpctStrategy::best()
                    } else {
                        VpctStrategy::fj_from_f()
                    };
                    engine
                        .vpct_with(&q, &strat)
                        .unwrap()
                        .snapshot()
                        .sorted_by(&[0, 1])
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, t) in results.iter().enumerate() {
        assert_eq!(t.num_rows(), serial.num_rows(), "thread {i}");
        for r in 0..t.num_rows() {
            for c in 0..t.num_columns() {
                let (a, b) = (t.get(r, c), serial.get(r, c));
                // Strategies accumulate sums in different orders, so float
                // results may differ in the last ulps.
                let close = match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => (x - y).abs() <= 1e-9 * (1.0 + x.abs()),
                    _ => a == b,
                };
                assert!(close, "thread {i} ({r},{c}): {a} vs {b}");
            }
        }
    }
}

#[test]
fn mixed_families_run_concurrently() {
    let catalog = sales_catalog();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..4 {
            let catalog = &catalog;
            handles.push(scope.spawn(move || {
                let engine = PercentageEngine::with_unique_temps(catalog);
                match i % 4 {
                    0 => {
                        let q =
                            VpctQuery::single("sales", &["state", "dweek"], "salesAmt", &["dweek"]);
                        engine.vpct(&q).unwrap().snapshot().num_rows()
                    }
                    1 => {
                        let q = HorizontalQuery::hpct("sales", &["state"], "salesAmt", &["dweek"]);
                        engine.horizontal(&q).unwrap().snapshot().num_rows()
                    }
                    2 => {
                        let q =
                            VpctQuery::single("sales", &["state", "dweek"], "salesAmt", &["dweek"]);
                        engine.vpct_olap(&q).unwrap().snapshot().num_rows()
                    }
                    _ => {
                        let out = engine
                            .execute_sql(
                                "SELECT dept, Hpct(salesAmt BY dweek) FROM sales GROUP BY dept",
                            )
                            .unwrap();
                        let t = out.table();
                        let n = t.read().num_rows();
                        n
                    }
                }
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            let rows = h.join().unwrap();
            assert!(rows > 0, "thread {i}");
        }
    });
}

#[test]
fn update_strategy_is_isolated_per_engine_temps() {
    // UPDATE mutates the engine's own Fk temp, never the shared fact table.
    let catalog = sales_catalog();
    let before = catalog.table("sales").unwrap().read().num_rows();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let catalog = &catalog;
            scope.spawn(move || {
                let engine = PercentageEngine::with_unique_temps(catalog);
                let q = VpctQuery::single("sales", &["state", "dweek"], "salesAmt", &["dweek"]);
                engine.vpct_with(&q, &VpctStrategy::with_update()).unwrap();
            });
        }
    });
    let f = catalog.table("sales").unwrap();
    let t = f.read();
    assert_eq!(t.num_rows(), before);
    // Measure column untouched (still raw sales amounts, not percentages).
    let amt = t.schema().index_of("salesAmt").unwrap();
    let any_large = (0..100).any(|r| t.get(r, amt).as_f64().unwrap() > 1.5);
    assert!(any_large, "fact table still holds raw amounts");
}
