//! Retail OLAP: strategy shoot-out on the paper's `sales` workload.
//!
//! Generates the SIGMOD `sales` table (10M rows at paper scale; smoke scale
//! here so the example runs in seconds — pass `--release` and `PAPER=1` for
//! the real thing), then runs the evaluation-section queries under every
//! strategy, printing wall time and work counters. This is SIGMOD §4 in
//! miniature.
//!
//! Run with: `cargo run --release --example retail_sales`

use percentage_aggregations::prelude::*;
use std::time::Instant;

fn main() -> Result<(), CoreError> {
    let scale = if std::env::var("PAPER").is_ok() {
        Scale::PAPER
    } else {
        Scale::SMOKE
    };
    let config = SalesConfig::at_scale(scale);
    println!("generating sales with n = {} ...", config.rows);
    let catalog = Catalog::new();
    pa_workload::install_sales(&catalog, &config)?;
    let engine = PercentageEngine::new(&catalog);

    // The four sales queries of SIGMOD Table 4, as (GROUP BY, BY) pairs.
    let queries: [(&[&str], &[&str]); 4] = [
        (&["dweek"], &["dweek"]),
        (&["monthNo", "dweek"], &["dweek"]),
        (&["dept", "dweek", "monthNo"], &["dweek", "monthNo"]),
        (
            &["dept", "store", "dweek", "monthNo"],
            &["dweek", "monthNo"],
        ),
    ];

    println!("\n== vertical percentage strategies (times in ms) ==");
    println!(
        "{:<44} {:>10} {:>10} {:>10} {:>10}",
        "GROUP BY [BY]", "best", "no-index", "update", "Fj-from-F"
    );
    for (group_by, by) in queries {
        let q = VpctQuery::single("sales", group_by, "salesAmt", by);
        let mut times = Vec::new();
        for strat in [
            VpctStrategy::best(),
            VpctStrategy::without_index(),
            VpctStrategy::with_update(),
            VpctStrategy::fj_from_f(),
        ] {
            let t0 = Instant::now();
            let result = engine.vpct_with(&q, &strat)?;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            times.push((ms, result.stats));
        }
        println!(
            "{:<44} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            format!("{group_by:?} {by:?}"),
            times[0].0,
            times[1].0,
            times[2].0,
            times[3].0,
        );
    }

    // Horizontal: CASE from F vs from FV, plus the hash-dispatch ablation.
    println!("\n== horizontal percentage strategies (times in ms) ==");
    println!(
        "{:<44} {:>10} {:>10} {:>12}",
        "GROUP BY [BY]", "from F", "from FV", "hash-dispatch"
    );
    let hqueries: [(&[&str], &[&str]); 3] = [
        (&[], &["dweek"]),
        (&["monthNo"], &["dweek"]),
        (&["dept"], &["dweek", "monthNo"]),
    ];
    for (group_by, by) in hqueries {
        let q = HorizontalQuery::hpct("sales", group_by, "salesAmt", by);
        let mut times = Vec::new();
        for opts in [
            HorizontalOptions::with_strategy(HorizontalStrategy::CaseDirect),
            HorizontalOptions::with_strategy(HorizontalStrategy::CaseFromFv),
            HorizontalOptions {
                hash_dispatch: true,
                ..HorizontalOptions::default()
            },
        ] {
            let t0 = Instant::now();
            let result = engine.horizontal_with(&q, &opts)?;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            times.push((ms, result.stats.case_condition_evals));
        }
        println!(
            "{:<44} {:>10.1} {:>10.1} {:>12.1}",
            format!("{group_by:?} {by:?}"),
            times[0].0,
            times[1].0,
            times[2].0,
        );
    }

    // A peek at an actual result: weekday mix per department.
    let q = HorizontalQuery::hpct("sales", &["dept"], "salesAmt", &["dweek"]);
    let result = engine.horizontal(&q)?;
    println!("\n== weekday sales mix per department (first 8 departments) ==");
    println!("{}", result.snapshot().sorted_by(&[0]).display(8));
    Ok(())
}
