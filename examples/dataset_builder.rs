//! Building a data-mining data set (the DMKD companion's motivation).
//!
//! "In a data mining project, a significant portion of time is devoted to
//! building a data set suitable for analysis" — one observation per row,
//! features as columns. This example reproduces DMKD §3.2: summarize
//! `transactionLine` into one row per store with day-of-week sales,
//! transaction counts and department sales as columns, code a categorical
//! attribute into binary dimensions, and then *use* the tabular output
//! (a small correlation analysis), demonstrating the hand-off to a
//! data-mining algorithm.
//!
//! Run with: `cargo run --release --example dataset_builder`

use percentage_aggregations::prelude::*;

fn main() -> Result<(), CoreError> {
    let catalog = Catalog::new();
    let config = TransactionConfig {
        rows: Scale::SMOKE.rows(1_000_000),
        seed: 0x54_58_4e,
    };
    println!("generating transactionLine with n = {} ...", config.rows);
    pa_workload::install_transaction_line(&catalog, &config)?;
    let engine = PercentageEngine::new(&catalog);

    // DMKD §3.2's flagship query: one row per store, day-of-week sales and
    // transaction counts as columns, plus total sales.
    let q = HorizontalQuery {
        table: "transactionLine".into(),
        group_by: vec!["storeId".into()],
        terms: vec![
            HorizontalTerm::hagg(AggFunc::Sum, "salesAmt", &["dayOfWeekNo"]),
            HorizontalTerm::hagg(AggFunc::CountStar, Measure::LitInt(1), &["dayOfWeekNo"]),
        ],
        extra: vec![ExtraAgg::sum("salesAmt", "totalSales")],
    };
    let result = engine.horizontal(&q)?;
    let dataset = result.snapshot().sorted_by(&[0]);
    println!("\n== tabular data set: one observation per store ==");
    println!("{}", dataset.display(8));

    // Binary coding of a categorical attribute (DMKD §3.2):
    // one 0/1 column per department for each store.
    let q = HorizontalQuery {
        table: "transactionLine".into(),
        group_by: vec!["storeId".into()],
        terms: vec![
            HorizontalTerm::hagg(AggFunc::Max, Measure::LitInt(1), &["deptId"]).with_default_zero(),
        ],
        extra: vec![],
    };
    let coded = engine.horizontal(&q)?;
    println!("== binary department flags per store ==");
    println!("{}", coded.snapshot().sorted_by(&[0]).display(6));

    // Downstream use: correlate Monday sales with Sunday sales across
    // stores — the kind of analysis the tabular form exists for.
    let mon = dataset.schema().index_of("sum_salesAmt:dayOfWeekNo=1")?;
    let sun = dataset.schema().index_of("sum_salesAmt:dayOfWeekNo=7")?;
    let xs: Vec<f64> = (0..dataset.num_rows())
        .filter_map(|r| dataset.get(r, mon).as_f64())
        .collect();
    let ys: Vec<f64> = (0..dataset.num_rows())
        .filter_map(|r| dataset.get(r, sun).as_f64())
        .collect();
    println!(
        "Pearson r (Monday vs Sunday sales across {} stores): {:.3}",
        xs.len(),
        pearson(&xs, &ys)
    );

    // Percentage features instead of raw sums: Hpct gives each store's
    // weekday *mix*, a scale-free feature vector for clustering.
    let q = HorizontalQuery::hpct(
        "transactionLine",
        &["storeId"],
        "salesAmt",
        &["dayOfWeekNo"],
    );
    let mix = engine.horizontal(&q)?;
    println!("\n== scale-free weekday mix (rows add to 100%) ==");
    println!("{}", mix.snapshot().sorted_by(&[0]).display(6));

    // Hand the data set to the mining tool: a CSV file.
    let out_path = std::env::temp_dir().join("store_weekday_mix.csv");
    let mut file =
        std::io::BufWriter::new(std::fs::File::create(&out_path).expect("temp dir is writable"));
    percentage_aggregations::storage::write_csv(&mix.snapshot().sorted_by(&[0]), &mut file)?;
    println!("wrote {}", out_path.display());
    Ok(())
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len()) as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx).powi(2);
        dy += (y - my).powi(2);
    }
    num / (dx.sqrt() * dy.sqrt()).max(f64::EPSILON)
}
