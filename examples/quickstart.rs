//! Quickstart: the paper's running example, end to end.
//!
//! Builds the exact fact table from SIGMOD Table 1, then reproduces
//! Table 2 (`Vpct`) and Table 3's shape (`Hpct` + `sum`) through the SQL
//! API, printing the generated multi-statement SQL along the way.
//!
//! Run with: `cargo run --example quickstart`

use percentage_aggregations::prelude::*;

fn main() -> Result<(), CoreError> {
    // ---- SIGMOD Table 1: the fact table F. ----
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("RID", DataType::Int),
        ("state", DataType::Str),
        ("city", DataType::Str),
        ("salesAmt", DataType::Float),
    ])
    .expect("static schema")
    .into_shared();
    let mut f = Table::empty(schema);
    for (rid, state, city, amt) in [
        (1, "CA", "San Francisco", 13.0),
        (2, "CA", "San Francisco", 3.0),
        (3, "CA", "San Francisco", 67.0),
        (4, "CA", "Los Angeles", 23.0),
        (5, "TX", "Houston", 5.0),
        (6, "TX", "Houston", 35.0),
        (7, "TX", "Houston", 10.0),
        (8, "TX", "Houston", 14.0),
        (9, "TX", "Dallas", 53.0),
        (10, "TX", "Dallas", 32.0),
    ] {
        f.push_row(&[
            Value::Int(rid),
            Value::str(state),
            Value::str(city),
            Value::Float(amt),
        ])?;
    }
    catalog.create_table("sales", f)?;
    println!("== F (paper Table 1) ==");
    println!("{}", catalog.table("sales")?.read().display(12));

    let engine = PercentageEngine::new(&catalog);

    // ---- SIGMOD Table 2: Vpct(salesAmt BY city). ----
    let sql = "SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city;";
    println!("== query ==\n{sql}\n");
    println!("== generated SQL plan ==");
    for stmt in engine.explain_sql(sql)? {
        println!("  {stmt}");
    }
    let SqlOutcome::Vertical(result) = engine.execute_sql(sql)? else {
        unreachable!("Vpct statements are vertical");
    };
    println!("\n== FV (paper Table 2) ==");
    println!("{}", result.snapshot().sorted_by(&[0, 1]).display(10));
    println!("work: {}\n", result.stats);

    // ---- SIGMOD Table 3 shape: Hpct by city, one row per state. ----
    let sql =
        "SELECT state, Hpct(salesAmt BY city), sum(salesAmt) AS totalSales FROM sales GROUP BY state;";
    println!("== query ==\n{sql}\n");
    let SqlOutcome::Horizontal(result) = engine.execute_sql(sql)? else {
        unreachable!("Hpct statements are horizontal");
    };
    println!("== FH (each row adds up to 100%) ==");
    println!("{}", result.snapshot().sorted_by(&[0]).display(10));
    println!("work: {}", result.stats);

    // ---- The OLAP-extensions baseline computes the same answer set. ----
    let q = VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"]);
    let olap = engine.vpct_olap(&q)?;
    println!("== OLAP window-function baseline (same answers, more work) ==");
    println!("{}", olap.snapshot().sorted_by(&[0, 1]).display(10));
    println!("work: {}", olap.stats);
    Ok(())
}
