//! Strategy laboratory: the framework features beyond single queries —
//! generated-SQL inspection, multi-term lattice evaluation, shared-summary
//! batches, count(DISTINCT ..) horizontals, and the disk-latency simulation
//! that recreates the 2004 INSERT-vs-UPDATE asymmetry.
//!
//! Run with: `cargo run --release --example strategy_lab`

use percentage_aggregations::prelude::*;
use std::time::Instant;

fn main() -> Result<(), CoreError> {
    let catalog = Catalog::new();
    pa_workload::install_sales(&catalog, &SalesConfig::at_scale(Scale::SMOKE))?;
    let engine = PercentageEngine::new(&catalog);

    // 1. The code generator: what SQL would run, per strategy.
    let sql = "SELECT state, dweek, Vpct(salesAmt BY dweek) FROM sales GROUP BY state, dweek;";
    println!("== generated SQL (recommended strategy) ==");
    for stmt in engine.explain_sql(sql)? {
        println!("  {stmt}");
    }

    // 2. Multi-term query on the dimension lattice: two percentage terms,
    // one pass over F, the shared totals level computed once.
    let multi = "SELECT state, city, Vpct(salesAmt BY city) AS withinState, \
                 Vpct(salesAmt BY city, state) AS globalShare \
                 FROM sales GROUP BY state, city ORDER BY state, city;";
    let out = engine.execute_sql(multi)?;
    println!("\n== multi-term Vpct via the dimension lattice ==");
    println!("{}", out.table().read().display(8));

    // 3. A batch of related percentage queries over one shared summary.
    let queries = vec![
        VpctQuery::single("sales", &["state", "dweek"], "salesAmt", &["dweek"]),
        VpctQuery::single("sales", &["state", "monthNo"], "salesAmt", &["monthNo"]),
        VpctQuery::single("sales", &["state"], "salesAmt", &[]),
    ];
    let t0 = Instant::now();
    let batch = engine.vpct_batch(&queries)?;
    println!(
        "== shared-summary batch: {} queries in {:.1} ms ==",
        batch.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    for (q, r) in queries.iter().zip(&batch) {
        println!(
            "  {:<40} {} result rows",
            format!("{:?} BY {:?}", q.group_by, q.terms[0].by),
            r.snapshot().num_rows()
        );
    }

    // 4. count(DISTINCT ..) — holistic, so the optimizer must go direct.
    let out = engine.execute_sql(
        "SELECT state, count(distinct transactionId BY dweek) FROM sales GROUP BY state;",
    )?;
    println!("\n== distinct transactions per state and weekday ==");
    println!("{}", out.table().read().sorted_by(&[0]).display(6));

    // 5. The disk simulation: per-record WAL latency recreates the paper's
    // Table 4 UPDATE penalty on a table whose |FV| ≈ |F|.
    let q = VpctQuery::single(
        "sales",
        &["dept", "store", "dweek", "monthNo"],
        "salesAmt",
        &["dweek", "monthNo"],
    );
    let time = |strat: &VpctStrategy| {
        let t0 = Instant::now();
        engine.vpct_with(&q, strat).expect("query runs");
        t0.elapsed().as_secs_f64() * 1e3
    };
    let ins_ram = time(&VpctStrategy::best());
    let upd_ram = time(&VpctStrategy::with_update());
    catalog.with_wal(|w| w.set_record_latency(std::time::Duration::from_micros(20)));
    let ins_disk = time(&VpctStrategy::best());
    let upd_disk = time(&VpctStrategy::with_update());
    catalog.with_wal(|w| w.set_record_latency(std::time::Duration::ZERO));
    println!("== INSERT vs UPDATE materialization of FV ==");
    println!("  in memory     : insert {ins_ram:8.1} ms   update {upd_ram:8.1} ms");
    println!("  20µs log force: insert {ins_disk:8.1} ms   update {upd_disk:8.1} ms");
    println!(
        "  (the paper measured update ≈ 4.4× insert on its disk-based DBMS; \
         in RAM the gap vanishes, with a forced log it returns: {:.1}×)",
        upd_disk / ins_disk
    );
    Ok(())
}
