//! HR analytics on the `employee` workload: percentage breakdowns, the
//! missing-rows issue and its two remedies, and the OLAP-extension
//! comparison — SIGMOD §3.1's issues section as a runnable scenario.
//!
//! Run with: `cargo run --release --example employee_analytics`

use percentage_aggregations::prelude::*;
use std::time::Instant;

fn main() -> Result<(), CoreError> {
    let catalog = Catalog::new();
    let config = EmployeeConfig::at_scale(Scale::SMOKE);
    println!("generating employee with n = {} ...", config.rows);
    pa_workload::install_employee(&catalog, &config)?;
    let engine = PercentageEngine::new(&catalog);

    // Salary share of each marital status within gender.
    let out = engine.execute_sql(
        "SELECT gender, marstatus, Vpct(salary BY marstatus) AS salaryShare, count(*) AS n \
         FROM employee GROUP BY gender, marstatus;",
    )?;
    let SqlOutcome::Vertical(result) = out else {
        unreachable!()
    };
    println!("\n== salary share by marital status within gender ==");
    println!("{}", result.snapshot().sorted_by(&[0, 1]).display(10));

    // Head-count percentages (Vpct of a literal counts rows).
    let q = VpctQuery::single(
        "employee",
        &["gender", "educat"],
        Measure::LitInt(1),
        &["educat"],
    );
    let result = engine.vpct(&q)?;
    println!("== head-count share by education within gender ==");
    println!("{}", result.snapshot().sorted_by(&[0, 1]).display(12));

    // The missing-rows issue: carve a hole, then demonstrate the remedies.
    {
        let shared = catalog.table("employee")?;
        let mut t = shared.write();
        let gender = t.schema().index_of("gender")?;
        let educat = t.schema().index_of("educat")?;
        // Erase every (F, phd) row's education to NULL — now the (F, phd)
        // cube cell is empty.
        for row in 0..t.num_rows() {
            if t.get(row, gender) == Value::str("F") && t.get(row, educat) == Value::str("phd") {
                t.column_mut(educat).set(row, Value::Null)?;
            }
        }
    }
    let q = VpctQuery::single("employee", &["gender", "educat"], "salary", &["educat"]);
    let plain = engine.vpct_with_missing(&q, &VpctStrategy::best(), MissingRows::Ignore)?;
    let padded = engine.vpct_with_missing(&q, &VpctStrategy::best(), MissingRows::PostProcess)?;
    println!(
        "== missing rows: ignore → {} rows; post-process pads to {} rows ==",
        plain.snapshot().num_rows(),
        padded.snapshot().num_rows()
    );
    println!("{}", padded.snapshot().sorted_by(&[0, 1]).display(14));

    // Percentage plan vs OLAP window plan, timed.
    let q = VpctQuery::single(
        "employee",
        &["gender", "marstatus"],
        "salary",
        &["marstatus"],
    );
    let t0 = Instant::now();
    let fast = engine.vpct(&q)?;
    let fast_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let olap = engine.vpct_olap(&q)?;
    let olap_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("== Vpct best strategy vs OLAP extensions ==");
    println!("  Vpct : {fast_ms:8.1} ms  ({})", fast.stats);
    println!("  OLAP : {olap_ms:8.1} ms  ({})", olap.stats);
    println!(
        "  speed-up: {:.1}x (paper reports ~6x on employee, ~30x on sales)",
        olap_ms / fast_ms
    );
    Ok(())
}
