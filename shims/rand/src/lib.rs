//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the surface it uses: `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng`
//! (`seed_from_u64`), `rngs::StdRng`, and `distributions::{Distribution,
//! Uniform}`. The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic, fast, and of ample quality for synthetic workloads and
//! tests (not cryptographic).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Blanket convenience API over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniform<T>,
        Self: Sized,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample_between(lo, hi_inclusive, self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (same construction the xoshiro authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Standard-distribution sampling for primitive types.
pub trait Standard: Sized {
    /// Sample from the type's standard distribution.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `lo..=hi_inclusive` (`lo <= hi_inclusive`).
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi_inclusive: Self, rng: &mut R) -> Self;
}

/// Unbiased uniform draw from `0..=span` via rejection (Lemire-style
/// threshold would be faster; span sizes here make rejection negligible).
fn uniform_u64_inclusive<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let buckets = span + 1;
    let zone = u64::MAX - (u64::MAX - buckets + 1) % buckets;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % buckets;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                debug_assert!(lo <= hi, "empty uniform range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_inclusive(span, rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, isize, usize);

impl SampleUniform for u64 {
    fn sample_between<R: RngCore + ?Sized>(lo: u64, hi: u64, rng: &mut R) -> u64 {
        debug_assert!(lo <= hi, "empty uniform range");
        lo.wrapping_add(uniform_u64_inclusive(hi - lo, rng))
    }
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + f64::standard(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`] and [`distributions::Uniform`].
pub trait IntoUniform<T> {
    /// Convert to `(lo, hi_inclusive)` bounds.
    fn bounds(self) -> (T, T);
}

impl IntoUniform<f64> for Range<f64> {
    fn bounds(self) -> (f64, f64) {
        (self.start, self.end) // half-open handled by the f64 sampler
    }
}

macro_rules! impl_into_uniform_int {
    ($($t:ty),*) => {$(
        impl IntoUniform<$t> for Range<$t> {
            fn bounds(self) -> ($t, $t) {
                debug_assert!(self.start < self.end, "empty uniform range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniform<$t> for RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_into_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, isize, usize);

/// Distributions (`Uniform`) in the rand 0.8 module layout.
pub mod distributions {
    use super::{IntoUniform, RngCore, SampleUniform};

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a precomputed range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi_inclusive: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over the half-open range `lo..hi`.
        pub fn new(lo: T, hi: T) -> Uniform<T>
        where
            std::ops::Range<T>: IntoUniform<T>,
        {
            let (lo, hi_inclusive) = (lo..hi).bounds();
            Uniform { lo, hi_inclusive }
        }

        /// Uniform over the closed range `lo..=hi`.
        pub fn new_inclusive(lo: T, hi: T) -> Uniform<T> {
            Uniform {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_between(self.lo, self.hi_inclusive, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn uniform_int_stays_in_range_and_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Uniform::new(0i64, 5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((0..5).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn uniform_float_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Uniform::new(2.0f64, 3.0);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_supports_both_range_forms() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let a = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&a));
            let b = rng.gen_range(0usize..=9);
            assert!(b <= 9);
        }
    }
}
