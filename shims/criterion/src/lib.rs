//! Offline shim for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the bench harness is
//! vendored with criterion's macro/API surface (`criterion_group!`,
//! `criterion_main!`, `Criterion`, `BenchmarkGroup`, `Bencher`,
//! `BenchmarkId`, `black_box`) over a simple wall-clock runner: warm-up,
//! then `sample_size` timed samples of adaptively sized iteration batches,
//! reporting min/median/mean per iteration. No statistical regression
//! analysis — sufficient to compare the paper's strategy columns.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a parameter suffix.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing configuration shared by `Criterion` and groups.
#[derive(Debug, Clone, Copy)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 10,
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.config.warm_up_time = d;
        self
    }

    /// Set the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.config.measurement_time = d;
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.config.sample_size = n.max(2);
        self
    }

    /// Parse CLI arguments (accepted and ignored; present for API parity).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.config, None, &id.to_string(), f);
        self
    }

    /// Run one benchmark taking an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Criterion
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.config, None, &id.to_string(), |b| f(b, input));
        self
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            config,
        }
    }

    /// Print the trailing summary (no-op; per-bench lines already printed).
    pub fn final_summary(&mut self) {}
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Set the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Set the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.config, Some(&self.name), &id.to_string(), f);
        self
    }

    /// Run one benchmark within the group, taking an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.config, Some(&self.name), &id.to_string(), |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing handle passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Config, group: Option<&str>, id: &str, mut f: F) {
    let full_name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };

    // Warm-up: single iterations until the warm-up window elapses; the
    // time of the last one sizes the measurement batches.
    let warm_start = Instant::now();
    let per_iter = loop {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_start.elapsed() >= config.warm_up_time {
            break b.elapsed.max(Duration::from_nanos(1));
        }
    };

    // Batch size so `sample_size` samples roughly fill the window.
    let budget = config.measurement_time.as_secs_f64() / config.sample_size as f64;
    let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{full_name:<48} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples.len(),
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declare a benchmark group, in either criterion macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("x", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("agg", 100).to_string(), "agg/100");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
