//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal lock API it actually uses: `Mutex`,
//! `RwLock`, and their guards, with parking_lot's no-poisoning semantics
//! (a panicking holder does not wedge later acquisitions). Backed by
//! `std::sync`; poison errors are swallowed by taking the inner guard.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire the lock without blocking; `None` when already held.
    /// Recovers from poisoning like [`Mutex::lock`].
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_when_held_and_succeeds_when_free() {
        let m = Mutex::new(1);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none(), "held lock must not be re-entered");
        }
        *m.try_lock().expect("free lock") += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after holder panicked");
    }
}
