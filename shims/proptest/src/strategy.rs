//! Strategies: composable random-value generators.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The generator driving strategies during a test run.
pub type TestRng = StdRng;

/// How many times `prop_filter` retries before giving up on a case.
const FILTER_RETRIES: usize = 500;

/// A composable generator of random values.
pub trait Strategy {
    /// The type of value generated.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred` (retrying); `reason` is
    /// reported if generation keeps failing.
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// previous depth and returns one producing a deeper value. Generated
    /// depth is bounded by `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth.max(1) {
            let deeper = recurse(strat).boxed();
            // Each level: 1 part leaves, 2 parts deeper structure.
            strat = Union::new(vec![(1u32, base.clone()), (2u32, deeper)]).boxed();
        }
        strat
    }

    /// Type-erase into a cheaply clonable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

impl<T: Debug> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_RETRIES} candidates in a row",
            self.reason
        );
    }
}

/// Weighted union of strategies over one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug> Union<T> {
    /// Union over `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

impl<T> Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

// ---- primitive strategies ------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, isize, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

// ---- any::<T>() ----------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy over a type's full domain, driven by the raw generator.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary {
    ($($t:ty => |$rng:ident| $gen:expr),+ $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )+};
}

impl_arbitrary!(
    bool => |rng| rng.gen::<bool>(),
    u8 => |rng| rng.gen::<u64>() as u8,
    u16 => |rng| rng.gen::<u64>() as u16,
    u32 => |rng| rng.gen::<u32>(),
    u64 => |rng| rng.gen::<u64>(),
    usize => |rng| rng.gen::<u64>() as usize,
    i8 => |rng| rng.gen::<u64>() as i8,
    i16 => |rng| rng.gen::<u64>() as i16,
    i32 => |rng| rng.gen::<u64>() as i32,
    i64 => |rng| rng.gen::<i64>(),
    isize => |rng| rng.gen::<u64>() as isize,
);

// ---- collections and options --------------------------------------------

/// Length bounds accepted by [`vec`]: `lo..hi` or `lo..=hi`.
pub trait SizeRange {
    /// `(lo, hi_inclusive)` element-count bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategy for `Vec<T>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi_inclusive: usize,
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (lo, hi_inclusive) = size.bounds();
    VecStrategy {
        element,
        lo,
        hi_inclusive,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.lo..=self.hi_inclusive);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `Option<T>`: `Some` with probability `p`.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
    p_some: f64,
}

/// `prop::option::of(strategy)` — `Some` half the time.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    option_weighted(0.5, inner)
}

/// `prop::option::weighted(p, strategy)` — `Some` with probability `p`.
pub fn option_weighted<S: Strategy>(p_some: f64, inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner, p_some }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(self.p_some) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

// ---- regex-lite string strategies ----------------------------------------

/// One parsed pattern element: a set of candidate chars plus a repetition.
#[derive(Debug, Clone)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Character pool for `.`: printable ASCII plus a few multi-byte code
/// points so "never panics" tests exercise non-ASCII input.
fn dot_chars() -> Vec<char> {
    let mut chars: Vec<char> = (' '..='~').collect();
    chars.extend(['é', 'ß', 'λ', '中', '🦀', '\t', '\u{0}']);
    chars
}

fn parse_class(pattern: &[char], mut i: usize) -> (Vec<char>, usize) {
    // pattern[i] is the char after '['.
    let mut chars = Vec::new();
    while i < pattern.len() && pattern[i] != ']' {
        if i + 2 < pattern.len() && pattern[i + 1] == '-' && pattern[i + 2] != ']' {
            let (lo, hi) = (pattern[i], pattern[i + 2]);
            assert!(lo <= hi, "bad class range {lo}-{hi}");
            chars.extend(lo..=hi);
            i += 3;
        } else {
            chars.push(pattern[i]);
            i += 1;
        }
    }
    assert!(i < pattern.len(), "unterminated [class] in pattern");
    (chars, i + 1) // past ']'
}

fn parse_repeat(pattern: &[char], i: usize) -> (usize, usize, usize) {
    // Returns (min, max, next_index); pattern[i] may be '{'.
    if i < pattern.len() && pattern[i] == '{' {
        let close = pattern[i..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| p + i)
            .expect("unterminated {m,n} in pattern");
        let body: String = pattern[i + 1..close].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((m, n)) => (
                m.parse().expect("bad {m,n} lower bound"),
                n.parse().expect("bad {m,n} upper bound"),
            ),
            None => {
                let n = body.parse().expect("bad {n} count");
                (n, n)
            }
        };
        (min, max, close + 1)
    } else {
        (1, 1, i)
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let (set, next) = match chars[i] {
            '[' => parse_class(&chars, i + 1),
            '.' => (dot_chars(), i + 1),
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in pattern");
                (vec![chars[i + 1]], i + 2)
            }
            c => (vec![c], i + 1),
        };
        let (min, max, next) = parse_repeat(&chars, next);
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
        i = next;
    }
    atoms
}

/// String patterns act as strategies (regex-lite subset: literals, `.`,
/// `[...]` classes with ranges, `{m,n}` repetition).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                let idx = rng.gen_range(0..atom.chars.len());
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1234)
    }

    #[test]
    fn pattern_identifier_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn pattern_printable_class_and_dot() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[ -~]{0,8}".generate(&mut r);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
            let _ = ".{0,80}".generate(&mut r); // must not panic
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut r = rng();
        let u = crate::prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| u.generate(&mut r)).count();
        assert!((800..1000).contains(&trues), "trues={trues}");
    }

    #[test]
    fn filter_and_map_compose() {
        let mut r = rng();
        let s = (0i64..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert_eq!(v % 20, 0);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut r = rng();
        for _ in 0..200 {
            let t = strat.generate(&mut r);
            assert!(depth(&t) <= 5, "depth {} too deep", depth(&t));
        }
    }

    #[test]
    fn vec_and_option_bounds() {
        let mut r = rng();
        let s = vec(option_weighted(0.9, 0i64..5), 2..10);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..10).contains(&v.len()));
        }
    }
}
