//! Deterministic seeded case runner behind the `proptest!` macro.

use crate::strategy::{Strategy, TestRng};
use rand::SeedableRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a, so each test gets a stable seed derived from its own name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn base_seed(test_name: &str) -> (u64, bool) {
    match std::env::var("PA_PROPTEST_SEED") {
        Ok(s) => {
            let seed = s
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PA_PROPTEST_SEED must be a u64, got {s:?}"));
            (seed, true)
        }
        Err(_) => (fnv1a(test_name.as_bytes()), false),
    }
}

/// Run `config.cases` generated inputs through `test_fn`, panicking with a
/// seed-bearing report on the first failure.
pub fn run_cases<S, F>(test_name: &str, config: &ProptestConfig, strategy: &S, test_fn: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let (seed, overridden) = base_seed(test_name);
    for case in 0..config.cases {
        // Independent per-case rng so any failing case reproduces from the
        // printed base seed regardless of how earlier cases consumed bits.
        let mut rng =
            TestRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let input = strategy.generate(&mut rng);
        let desc = format!("{input:?}");
        let result = catch_unwind(AssertUnwindSafe(|| test_fn(input)));
        if let Err(payload) = result {
            eprintln!(
                "proptest failure in `{test_name}` (case {case}/{total}, seed {seed}{src})\n\
                 \x20 input: {desc}\n\
                 \x20 rerun: PA_PROPTEST_SEED={seed} cargo test {test_name}",
                total = config.cases,
                src = if overridden {
                    ", from PA_PROPTEST_SEED"
                } else {
                    ", derived from test name"
                },
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run_cases(
            "runs_all_cases",
            &ProptestConfig::with_cases(17),
            &(0i64..100),
            |_v| counter.set(counter.get() + 1),
        );
        count += counter.get();
        assert_eq!(count, 17);
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = |_: ()| {
            let vals = std::cell::RefCell::new(Vec::new());
            run_cases(
                "deterministic_across_runs",
                &ProptestConfig::with_cases(8),
                &(0i64..1000),
                |v| vals.borrow_mut().push(v),
            );
            vals.into_inner()
        };
        assert_eq!(collect(()), collect(()));
    }

    #[test]
    fn failure_carries_seed_report() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_cases(
                "failure_carries_seed_report",
                &ProptestConfig::with_cases(50),
                &(0i64..10),
                |v| assert!(v < 5, "boom"),
            )
        }));
        assert!(result.is_err(), "a case >= 5 must fail within 50 cases");
    }
}
