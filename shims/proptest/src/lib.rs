//! Offline shim for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the proptest surface its tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_recursive`, boxed strategies, regex-lite
//! string strategies, range and tuple strategies, `prop::collection::vec`,
//! `prop::option`, the `proptest!` / `prop_oneof!` / `prop_assert*!` macros,
//! and a deterministic seeded runner.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case is reported verbatim, with its seed.
//! - **Deterministic seeds.** Each test derives its base seed from the test
//!   name, so CI runs are reproducible; `PA_PROPTEST_SEED=<u64>` overrides
//!   it, and every failure message prints the exact value to re-run with.
//! - **Regex strategies** support the subset the tests use: literal chars,
//!   `.`, `[...]` classes with ranges, and `{m,n}` repetition.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection`, `prop::option` module layout, as in real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Option strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
        pub use crate::strategy::option_weighted as weighted;
    }
}

/// Everything a property test needs, as in `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property test; failure reports the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted or unweighted union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: an optional `#![proptest_config(..)]` followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &__config,
                &__strategy,
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}
