//! Query-level fault isolation: an injected panic, exhausted budget, or
//! expired deadline fails exactly one query with a typed error, sweeps that
//! query's temporary tables, and leaves the engine serving follow-ups.
//! Transient log-device errors are absorbed by the WAL retry policy;
//! permanent ones fail fast with the original typed error.

use pa_core::{CoreError, PercentageEngine, QueryLimits, TestClock};
use pa_engine::chaos;
use pa_storage::{Catalog, FaultInjector, FaultPlan, MemLogStore, StorageError, Value, Wal};
use pa_workload::{install_sales, SalesConfig};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The chaos panic injector is process-global: tests that arm it hold this
/// lock for their whole arm..observe window.
static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_window() -> std::sync::MutexGuard<'static, ()> {
    CHAOS.lock().unwrap_or_else(|e| e.into_inner())
}

const SQL: &str = "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city;";

fn sales_catalog(rows: usize) -> Catalog {
    let catalog = Catalog::without_wal();
    install_sales(&catalog, &SalesConfig { rows, seed: 7 }).unwrap();
    catalog
}

fn rows_of(outcome: &pa_core::SqlOutcome) -> Vec<Vec<Value>> {
    outcome.table().read().rows().collect()
}

#[test]
fn injected_panic_fails_one_query_and_the_engine_stays_usable() {
    let _w = chaos_window();
    let catalog = sales_catalog(2048);
    let engine = PercentageEngine::with_unique_temps(&catalog);
    let names_before = catalog.table_names();

    chaos::arm(0);
    let err = engine.execute_sql(SQL).unwrap_err();
    assert!(!chaos::is_armed(), "the injected panic fired");
    match &err {
        CoreError::WorkerPanicked { operator, payload } => {
            assert_eq!(operator, "execute_sql");
            assert_eq!(payload, chaos::CHAOS_PANIC_MSG);
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    assert_eq!(err.abort_cause(), Some(pa_core::AbortCause::WorkerPanic));
    assert_eq!(
        catalog.table_names(),
        names_before,
        "the failed query's temporaries were swept"
    );

    // The same engine instance serves the follow-up, and its answer matches
    // a fresh fault-free engine's.
    let after = engine.execute_sql(SQL).unwrap();
    let fresh_catalog = sales_catalog(2048);
    let fresh = PercentageEngine::with_unique_temps(&fresh_catalog)
        .execute_sql(SQL)
        .unwrap();
    assert_eq!(rows_of(&after), rows_of(&fresh));
    assert!(after.stats().rows_charged > 0, "work accounting survived");
}

#[test]
fn failed_queries_never_leak_temp_tables() {
    let _w = chaos_window();
    let catalog = sales_catalog(1024);
    let engine = PercentageEngine::with_unique_temps(&catalog);
    let names_before = catalog.table_names();

    // Budget abort: typed, and nothing left behind.
    let err = engine
        .execute_sql_limited(
            SQL,
            QueryLimits {
                row_budget: Some(16),
                deadline: None,
            },
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::BudgetExceeded { .. }), "{err:?}");
    assert_eq!(err.abort_cause(), Some(pa_core::AbortCause::Budget));
    assert_eq!(catalog.table_names(), names_before);

    // Panic abort: same sweep guarantee, repeated to catch ratchets.
    for _ in 0..3 {
        chaos::arm(0);
        let err = engine.execute_sql(SQL).unwrap_err();
        assert!(matches!(err, CoreError::WorkerPanicked { .. }), "{err:?}");
        assert_eq!(catalog.table_names(), names_before);
    }

    // A parse failure never mints a temp namespace at all.
    assert!(engine.execute_sql("SELECT nonsense;").is_err());
    assert_eq!(catalog.table_names(), names_before);
}

#[test]
fn deadline_is_enforced_on_the_engines_injected_clock() {
    let catalog = sales_catalog(1024);
    // Every guard charge advances the clock 1ms; a 0ms allowance expires at
    // the first morsel boundary, with no wall-clock time involved.
    let clock = Arc::new(TestClock::with_auto_step(Duration::from_millis(1)));
    let engine = PercentageEngine::with_unique_temps(&catalog)
        .with_clock(clock)
        .with_deadline(Duration::ZERO);
    let names_before = catalog.table_names();

    let err = engine.execute_sql(SQL).unwrap_err();
    match &err {
        CoreError::DeadlineExceeded {
            elapsed_ms,
            limit_ms,
        } => {
            assert!(elapsed_ms > limit_ms, "{elapsed_ms} vs {limit_ms}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(err.abort_cause(), Some(pa_core::AbortCause::Deadline));
    assert_eq!(catalog.table_names(), names_before);

    // A per-call limit relaxes the engine default: large allowance, query
    // runs to completion on the same ticking clock.
    let ok = engine
        .execute_sql_limited(
            SQL,
            QueryLimits {
                row_budget: None,
                deadline: Some(Duration::from_secs(3600)),
            },
        )
        .unwrap();
    assert!(ok.stats().rows_charged > 0);
}

#[test]
fn transient_log_errors_are_absorbed_by_retry() {
    // The very first append hits a transient device error; the WAL retry
    // policy absorbs it and the workload proceeds as if nothing happened.
    let store = FaultInjector::new(
        MemLogStore::new(),
        FaultPlan {
            error_on_op: Some(0),
            ..FaultPlan::default()
        },
    );
    let catalog = Catalog::from_wal(Wal::with_store(Box::new(store), 1 << 20));
    install_sales(&catalog, &SalesConfig { rows: 512, seed: 7 }).unwrap();

    let engine = PercentageEngine::with_unique_temps(&catalog);
    let outcome = engine.execute_sql(SQL).unwrap();
    assert!(outcome.table().read().num_rows() > 0);

    let stats = catalog.wal_stats();
    assert!(
        stats.retries >= 1,
        "the transient error was retried: {stats:?}"
    );
    assert_eq!(stats.write_errors, 0, "and absorbed, not surfaced");
}

#[test]
fn permanent_log_corruption_fails_fast_with_the_typed_error() {
    // Tear the log mid-write: the device goes offline and every later
    // operation fails permanently. The retry policy must NOT burn backoff
    // on it — permanent errors surface immediately, with their type intact.
    let store = FaultInjector::new(
        MemLogStore::new(),
        FaultPlan {
            torn_write_at: Some(64),
            ..FaultPlan::default()
        },
    );
    let catalog = Catalog::from_wal(Wal::with_store(Box::new(store), 1 << 20));

    // Catalog DDL deliberately absorbs log-device failures (the in-memory
    // state proceeds; the loss is counted) — so queries still run...
    install_sales(&catalog, &SalesConfig { rows: 512, seed: 7 }).unwrap();
    let engine = PercentageEngine::with_unique_temps(&catalog);
    engine.execute_sql(SQL).unwrap();
    let stats = catalog.wal_stats();
    assert!(
        stats.write_errors >= 1,
        "the dead device was noticed: {stats:?}"
    );
    assert_eq!(stats.retries, 0, "permanent errors are not retried");

    // ...but the WAL layer itself reports the original typed error.
    let err = catalog
        .with_wal(|w| {
            w.log_create_table(
                "doomed",
                pa_storage::Schema::from_pairs(&[("x", pa_storage::DataType::Int)])
                    .unwrap()
                    .into_shared()
                    .as_ref(),
            )
        })
        .unwrap_err();
    assert!(!err.is_transient(), "permanent, not retryable: {err:?}");
    let core_err = CoreError::from(err);
    assert_eq!(core_err.abort_cause(), Some(pa_core::AbortCause::Storage));
}

#[test]
fn guard_settings_and_work_accounting_surface_in_explain() {
    let catalog = sales_catalog(256);
    let engine =
        PercentageEngine::with_unique_temps(&catalog).with_deadline(Duration::from_millis(250));
    let plan = engine.explain_sql(SQL).unwrap();
    let guard_line = plan
        .iter()
        .find(|l| l.starts_with("-- guard:"))
        .expect("explain surfaces the guard configuration");
    assert!(guard_line.contains("deadline=250ms"), "{guard_line}");

    let outcome = engine
        .execute_sql_limited(SQL, QueryLimits::none())
        .unwrap();
    assert!(outcome.stats().rows_charged > 0);
    assert_eq!(outcome.stats().degraded_to, None);
    assert_eq!(outcome.stats().abort_cause, None);
}

#[test]
fn storage_error_promotion_is_lossless() {
    let e = StorageError::TransientIo("device hiccup".into());
    assert!(e.is_transient());
    let e = StorageError::Io("device on fire".into());
    assert!(!e.is_transient());
    let core_err = CoreError::from(e);
    assert!(matches!(
        &core_err,
        CoreError::Storage(StorageError::Io(msg)) if msg == "device on fire"
    ));
}
