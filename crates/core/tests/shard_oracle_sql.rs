//! SQL end-to-end coverage for the holistic aggregates (DESIGN.md §14):
//! `median(x)`, `percentile(x, p)`, `approx_percentile(x, p)` and
//! `approx_count_distinct(x)` riding as extra aggregates inside `Vpct` and
//! `Hpct` statements.
//!
//! What is proven here:
//! * exact interpolation semantics (PERCENTILE_CONT: p50 of
//!   [10,20,30,40] = 25.0) through the full parse → validate → plan →
//!   execute path;
//! * every vertical strategy produces a byte-identical result table when
//!   holistic extras ride along (the Fk pass always scans F, so holistic
//!   lanes are legal under all five knob settings);
//! * for horizontal queries the direct strategies (CaseDirect/SpjDirect)
//!   agree with each other, the FV-based strategies reject holistic lanes
//!   with a typed [`CoreError::Unsupported`], and the optimizer routes the
//!   default path onto a direct strategy so plain `execute_sql` just works;
//! * serial and morsel-parallel evaluation are byte-identical (the measure
//!   is integer-valued, so float sums are exact under regrouping; the
//!   holistic lanes sort at finalize and are order-insensitive by design).

use pa_core::{
    CoreError, HorizontalOptions, HorizontalStrategy, ParallelMode, PercentageEngine, VpctStrategy,
};
use pa_storage::{Catalog, DataType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STATES: [&str; 4] = ["CA", "TX", "NY", "WA"];
const CITIES: [&str; 3] = ["alpha", "beta", "gamma"];
const DWEEK: [&str; 5] = ["Mon", "Tue", "Wed", "Thu", "Fri"];

/// Seeded fact table with an integer-valued float measure (exact addition
/// under any regrouping) and NULLs in the measure column.
fn fact_catalog(rows: usize, seed: u64) -> Catalog {
    let schema = Schema::from_pairs(&[
        ("state", DataType::Str),
        ("city", DataType::Str),
        ("dweek", DataType::Str),
        ("store", DataType::Int),
        ("amt", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::with_capacity(schema, rows);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rows {
        t.push_row(&[
            Value::str(STATES[rng.gen_range(0..STATES.len() as i64) as usize]),
            Value::str(CITIES[rng.gen_range(0..CITIES.len() as i64) as usize]),
            Value::str(DWEEK[rng.gen_range(0..DWEEK.len() as i64) as usize]),
            Value::Int(rng.gen_range(0..40i64)),
            if rng.gen_bool(0.05) {
                Value::Null
            } else {
                Value::Float(rng.gen_range(1..500i64) as f64)
            },
        ])
        .unwrap();
    }
    let catalog = Catalog::new();
    catalog.create_table("sales", t).unwrap();
    catalog
}

fn rows_of(outcome: &pa_core::SqlOutcome) -> Vec<Vec<Value>> {
    outcome.table().read().rows().collect()
}

/// PERCENTILE_CONT reference on a sorted slice.
fn percentile_cont(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[test]
fn median_interpolates_like_percentile_cont() {
    let schema = Schema::from_pairs(&[("g", DataType::Str), ("a", DataType::Float)])
        .unwrap()
        .into_shared();
    let mut t = Table::with_capacity(schema, 4);
    for a in [10.0, 20.0, 30.0, 40.0] {
        t.push_row(&[Value::str("x"), Value::Float(a)]).unwrap();
    }
    let catalog = Catalog::new();
    catalog.create_table("f", t).unwrap();
    let engine = PercentageEngine::new(&catalog);
    let out = engine
        .execute_sql(
            "SELECT g, Vpct(a), median(a) AS med, percentile(a, 0.25) AS q1, \
             percentile(a, 0.0) AS lo, percentile(a, 1.0) AS hi \
             FROM f GROUP BY g",
        )
        .unwrap();
    let rows = rows_of(&out);
    assert_eq!(rows.len(), 1);
    let t = out.table();
    let t = t.read();
    let col = |name: &str| t.schema().index_of(name).unwrap();
    assert_eq!(
        rows[0][col("med")],
        Value::Float(25.0),
        "p50 of [10,20,30,40] interpolates to 25.0"
    );
    assert_eq!(rows[0][col("q1")], Value::Float(17.5));
    assert_eq!(rows[0][col("lo")], Value::Float(10.0));
    assert_eq!(rows[0][col("hi")], Value::Float(40.0));
}

#[test]
fn holistic_extras_ride_vpct_under_every_strategy() {
    let catalog = fact_catalog(4_000, 9);
    let engine = PercentageEngine::new(&catalog);
    let sql = "SELECT state, city, Vpct(amt BY city), median(amt) AS med, \
               percentile(amt, 0.9) AS p90, approx_count_distinct(store) AS stores \
               FROM sales GROUP BY state, city ORDER BY state, city";

    let reference = engine.execute_sql(sql).unwrap();
    let ref_rows = rows_of(&reference);
    assert_eq!(ref_rows.len(), (STATES.len() * CITIES.len()));
    assert!(
        reference.stats().holistic_lanes >= 3,
        "median, percentile and approx_count_distinct lanes must be counted, got {}",
        reference.stats().holistic_lanes
    );

    // Independent oracle: recompute each group's median / p90 / distinct
    // stores straight from the fact table.
    let shared = catalog.table("sales").unwrap();
    let fact = shared.read();
    let table = reference.table();
    let table = table.read();
    let col = |name: &str| table.schema().index_of(name).unwrap();
    for row in &ref_rows {
        let (state, city) = (&row[0], &row[1]);
        let mut vals: Vec<f64> = Vec::new();
        let mut stores: std::collections::BTreeSet<i64> = Default::default();
        for r in fact.rows() {
            if &r[0] == state && &r[1] == city {
                if let Value::Float(a) = r[4] {
                    vals.push(a);
                }
                if let Value::Int(s) = r[3] {
                    stores.insert(s);
                }
            }
        }
        vals.sort_by(f64::total_cmp);
        assert_eq!(
            row[col("med")],
            Value::Float(percentile_cont(&vals, 0.5)),
            "median mismatch for {state:?}/{city:?}"
        );
        assert_eq!(
            row[col("p90")],
            Value::Float(percentile_cont(&vals, 0.9)),
            "p90 mismatch for {state:?}/{city:?}"
        );
        // approx_count_distinct is an HLL estimate: hold it to the
        // documented 3σ relative-error bound, not to exactness.
        let Value::Int(est) = row[col("stores")] else {
            panic!("approx_count_distinct produced a non-int");
        };
        let truth = stores.len() as f64;
        let rel = (est as f64 - truth) / truth;
        assert!(
            rel.abs() <= 3.0 * pa_engine::HLL_STD_ERROR,
            "distinct stores estimate {est} too far from exact {truth} \
             for {state:?}/{city:?} (rel {rel:+.4})"
        );
    }

    // Every vertical strategy yields the identical table: holistic lanes
    // live in the Fk pass, which always scans F.
    let strategies = [
        ("best", VpctStrategy::best()),
        ("without_index", VpctStrategy::without_index()),
        ("with_update", VpctStrategy::with_update()),
        ("fj_from_f", VpctStrategy::fj_from_f()),
        ("synchronized", VpctStrategy::synchronized()),
    ];
    for (label, strat) in strategies {
        let out = engine
            .execute_sql_with(sql, &strat, &HorizontalOptions::default())
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(rows_of(&out), ref_rows, "strategy {label} diverged");
    }
}

#[test]
fn holistic_extras_ride_hpct_direct_strategies_only() {
    let catalog = fact_catalog(4_000, 23);
    let engine = PercentageEngine::new(&catalog);
    let sql = "SELECT state, Hpct(amt BY dweek), median(amt) AS med, \
               approx_percentile(amt, 0.5) AS apx, approx_count_distinct(city) AS cities \
               FROM sales GROUP BY state ORDER BY state";

    // The optimizer must route the default path onto a direct strategy.
    let default_out = engine.execute_sql(sql).unwrap();
    let default_rows = rows_of(&default_out);
    assert_eq!(default_rows.len(), STATES.len());
    assert!(default_out.stats().holistic_lanes >= 3);

    for strategy in [
        HorizontalStrategy::CaseDirect,
        HorizontalStrategy::SpjDirect,
    ] {
        let out = engine
            .execute_sql_with(
                sql,
                &VpctStrategy::best(),
                &HorizontalOptions::with_strategy(strategy),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", strategy.label()));
        assert_eq!(rows_of(&out), default_rows, "{} diverged", strategy.label());
    }

    for strategy in [
        HorizontalStrategy::CaseFromFv,
        HorizontalStrategy::SpjFromFv,
    ] {
        let err = engine
            .execute_sql_with(
                sql,
                &VpctStrategy::best(),
                &HorizontalOptions::with_strategy(strategy),
            )
            .unwrap_err();
        match err {
            CoreError::Unsupported(msg) => assert!(
                msg.contains("holistic"),
                "{}: unexpected message {msg:?}",
                strategy.label()
            ),
            other => panic!("{}: expected Unsupported, got {other}", strategy.label()),
        }
    }

    // Sanity-check one value against an independent oracle: the exact
    // median per state.
    let shared = catalog.table("sales").unwrap();
    let fact = shared.read();
    let table = default_out.table();
    let table = table.read();
    let med = table.schema().index_of("med").unwrap();
    for row in &default_rows {
        let mut vals: Vec<f64> = fact
            .rows()
            .filter(|r| r[0] == row[0])
            .filter_map(|r| match r[4] {
                Value::Float(a) => Some(a),
                _ => None,
            })
            .collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(
            row[med],
            Value::Float(percentile_cont(&vals, 0.5)),
            "median mismatch for {:?}",
            row[0]
        );
    }
}

#[test]
fn holistic_hpct_serial_and_parallel_are_byte_identical() {
    let catalog = fact_catalog(6_000, 41);
    let engine = PercentageEngine::new(&catalog);
    let sql = "SELECT state, city, Hpct(amt BY dweek), median(amt) AS med, \
               percentile(amt, 0.95) AS p95, approx_count_distinct(store) AS stores \
               FROM sales GROUP BY state, city ORDER BY state, city";
    for strategy in [
        HorizontalStrategy::CaseDirect,
        HorizontalStrategy::SpjDirect,
    ] {
        let mut runs = Vec::new();
        for (label, mode) in [
            ("serial", ParallelMode::Serial),
            ("2 threads", ParallelMode::Threads(2)),
            ("4 threads", ParallelMode::Threads(4)),
        ] {
            let opts = HorizontalOptions {
                parallel: mode,
                ..HorizontalOptions::with_strategy(strategy)
            };
            let out = engine
                .execute_sql_with(sql, &VpctStrategy::best(), &opts)
                .unwrap_or_else(|e| panic!("{} {label}: {e}", strategy.label()));
            runs.push((label, rows_of(&out)));
        }
        for (label, rows) in &runs[1..] {
            assert_eq!(
                rows,
                &runs[0].1,
                "{} {label} diverged from serial",
                strategy.label()
            );
        }
    }
}

#[test]
fn validation_errors_surface_through_execute_sql() {
    let catalog = fact_catalog(100, 7);
    let engine = PercentageEngine::new(&catalog);
    // Missing rank.
    let err = engine
        .execute_sql("SELECT state, Vpct(amt), percentile(amt) AS p FROM sales GROUP BY state")
        .unwrap_err();
    assert!(err.to_string().contains("rank"), "got: {err}");
    // Out-of-range rank.
    let err = engine
        .execute_sql("SELECT state, Vpct(amt), percentile(amt, 1.5) AS p FROM sales GROUP BY state")
        .unwrap_err();
    assert!(err.to_string().contains("between 0 and 1"), "got: {err}");
    // median takes no second argument.
    let err = engine
        .execute_sql("SELECT state, Vpct(amt), median(amt, 0.5) AS p FROM sales GROUP BY state")
        .unwrap_err();
    assert!(err.to_string().contains("second argument"), "got: {err}");
}
