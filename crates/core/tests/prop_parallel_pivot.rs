//! Serial-vs-parallel byte-identity at the query level.
//!
//! The pivot operator is property-tested across worker counts {1, 2, 4, 7}
//! on random tables (NULLs, dictionary strings, duplicate keys), and every
//! horizontal strategy plus the vertical strategies are checked end to end
//! on a fact table large enough to actually engage the parallel path:
//! evaluating the same query serial and parallel must produce identical
//! result tables (same rows, same order — integer-valued measures make
//! float sums exact under any regrouping).

use pa_core::{
    dispatch::{pivot_aggregate_with_config, PivotTask},
    eval_horizontal, eval_vpct, HorizontalOptions, HorizontalStrategy, HorizontalTerm,
    ParallelConfig, ParallelMode, VpctQuery, VpctStrategy,
};
use pa_engine::{AggFunc, ExecStats, Expr, ResourceGuard};
use pa_storage::{Catalog, DataType, Schema, Table, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Row {
    g: Option<i64>,
    s: Option<usize>,
    a: Option<i64>,
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            prop::option::weighted(0.9, 0..6i64),
            prop::option::weighted(0.9, 0..4usize),
            prop::option::weighted(0.85, -50..=50i64),
        )
            .prop_map(|(g, s, a)| Row { g, s, a }),
        0..max,
    )
}

const NAMES: [&str; 4] = ["north", "south", "east", "west"];

fn table_of(rows: &[Row]) -> Table {
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("s", DataType::Str),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::with_capacity(schema, rows.len());
    for r in rows {
        t.push_row(&[
            Value::from(r.g),
            r.s.map_or(Value::Null, |i| Value::str(NAMES[i])),
            Value::from(r.a.map(|x| x as f64)),
        ])
        .unwrap();
    }
    t
}

fn snapshot(t: &Table) -> Vec<Vec<Value>> {
    t.rows().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_pivot_identical_to_serial(rows in rows_strategy(300)) {
        let t = table_of(&rows);
        let a = Expr::col(t.schema(), "a").unwrap();
        let mut combos: Vec<Vec<Value>> =
            NAMES.iter().map(|n| vec![Value::str(*n)]).collect();
        combos.push(vec![Value::Null]);
        let tasks = vec![PivotTask {
            by_cols: vec![1],
            lanes: vec![
                (AggFunc::Sum, a.clone()),
                (AggFunc::Count, a.clone()),
                (AggFunc::Min, a.clone()),
            ],
            combos,
            total: Some(a.clone()),
        }];
        let extras = vec![(AggFunc::CountStar, Expr::lit(1))];
        let mut outs = Vec::new();
        for threads in [1usize, 2, 4, 7] {
            let config = ParallelConfig {
                threads,
                morsel_rows: 16,
                min_parallel_rows: 0,
            ..ParallelConfig::serial()
            };
            outs.push(pivot_aggregate_with_config(
                &t,
                &[0],
                &tasks,
                &extras,
                &ResourceGuard::unlimited(),
                &mut ExecStats::default(),
                &config,
            )
            .unwrap());
        }
        let serial = snapshot(&outs[0]);
        for (i, out) in outs.iter().enumerate().skip(1) {
            prop_assert_eq!(&serial, &snapshot(out), "variant {}", i);
        }
    }
}

/// Fact table big enough (≈3 default morsels) that `ParallelMode::Threads`
/// genuinely fans out inside a full query evaluation.
fn big_catalog() -> Catalog {
    let n = 140_000usize;
    let schema = Schema::from_pairs(&[
        ("store", DataType::Int),
        ("dept", DataType::Str),
        ("amt", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::with_capacity(schema, n);
    let depts = ["grocery", "toys", "garden", "auto", "books"];
    for i in 0..n {
        t.push_row(&[
            if i % 31 == 0 {
                Value::Null
            } else {
                Value::Int((i as i64 * 17) % 13)
            },
            Value::str(depts[(i * 7) % depts.len()]),
            if i % 23 == 0 {
                Value::Null
            } else {
                Value::Float((i % 199) as f64)
            },
        ])
        .unwrap();
    }
    let catalog = Catalog::new();
    catalog.create_table("sales", t).unwrap();
    catalog
}

#[test]
fn every_horizontal_strategy_is_parallel_deterministic() {
    let catalog = big_catalog();
    let q = pa_core::HorizontalQuery {
        table: "sales".into(),
        group_by: vec!["store".into()],
        terms: vec![HorizontalTerm::hpct("amt", &["dept"])],
        extra: Vec::new(),
    };
    let mut variants: Vec<(String, HorizontalOptions)> = Vec::new();
    for strategy in HorizontalStrategy::all() {
        variants.push((
            strategy.label().to_string(),
            HorizontalOptions::with_strategy(strategy),
        ));
    }
    variants.push((
        "CASE hash dispatch".into(),
        HorizontalOptions {
            hash_dispatch: true,
            ..HorizontalOptions::default()
        },
    ));
    for (label, opts) in variants {
        let serial = eval_horizontal(
            &catalog,
            &q,
            &HorizontalOptions {
                parallel: ParallelMode::Serial,
                ..opts.clone()
            },
            "s_",
        )
        .unwrap_or_else(|e| panic!("{label} serial: {e}"));
        let parallel = eval_horizontal(
            &catalog,
            &q,
            &HorizontalOptions {
                parallel: ParallelMode::Threads(4),
                ..opts
            },
            "p_",
        )
        .unwrap_or_else(|e| panic!("{label} parallel: {e}"));
        assert_eq!(
            snapshot(&serial.snapshot()),
            snapshot(&parallel.snapshot()),
            "{label}"
        );
    }
}

#[test]
fn every_vpct_strategy_is_parallel_deterministic() {
    let catalog = big_catalog();
    let q = VpctQuery::single("sales", &["store", "dept"], "amt", &["dept"]);
    let strategies = [
        ("best", VpctStrategy::best()),
        ("without_index", VpctStrategy::without_index()),
        ("with_update", VpctStrategy::with_update()),
        ("fj_from_f", VpctStrategy::fj_from_f()),
        ("synchronized", VpctStrategy::synchronized()),
    ];
    for (label, strat) in strategies {
        // The vertical evaluator follows the environment; pin it per phase.
        // Tests in this binary that race with these env writes don't read
        // the environment (they use explicit configs/modes).
        std::env::set_var("PA_THREADS", "1");
        let serial =
            eval_vpct(&catalog, &q, &strat, "s_").unwrap_or_else(|e| panic!("{label} serial: {e}"));
        std::env::set_var("PA_THREADS", "4");
        std::env::set_var("PA_MORSEL_ROWS", "4096");
        std::env::set_var("PA_MIN_PARALLEL_ROWS", "1");
        let parallel = eval_vpct(&catalog, &q, &strat, "p_")
            .unwrap_or_else(|e| panic!("{label} parallel: {e}"));
        std::env::remove_var("PA_THREADS");
        std::env::remove_var("PA_MORSEL_ROWS");
        std::env::remove_var("PA_MIN_PARALLEL_ROWS");
        assert_eq!(
            snapshot(&serial.snapshot()),
            snapshot(&parallel.snapshot()),
            "{label}"
        );
    }
}
