//! Result-column naming and vertical partitioning for horizontal results.
//!
//! DMKD §3.6 calls out two practical issues: the maximum number of columns
//! in the DBMS and the maximum column-name length when names are generated
//! from subgroup values. Names here follow the papers' convention
//! (`"Dh=vh1 .. Dk=vk1"`, compacted to `dweek=Mon`), abbreviated with a
//! stable hash suffix when over-long, and over-wide results are split into
//! partitions each carrying the `D1..Dj` key.

use pa_storage::{hash::hash_values, Value};

/// Maximum generated column-name length (Teradata V2R4 allowed 30; we use a
/// modern-but-finite default).
pub const MAX_NAME_LEN: usize = 64;

fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Str(s) => s.replace([' ', '\t', '\n'], "_"),
        other => other.to_string(),
    }
}

/// Name for one cell column: `prefix:by1=v1;by2=v2`, with `prefix:` omitted
/// when `prefix` is empty. Over-long names are truncated and suffixed with a
/// stable 8-hex-digit hash of the combination so uniqueness survives
/// abbreviation.
pub fn cell_column_name(prefix: &str, by_cols: &[String], combo: &[Value]) -> String {
    debug_assert_eq!(by_cols.len(), combo.len());
    let body: Vec<String> = by_cols
        .iter()
        .zip(combo)
        .map(|(c, v)| format!("{c}={}", render_value(v)))
        .collect();
    let mut name = if prefix.is_empty() {
        body.join(";")
    } else {
        format!("{prefix}:{}", body.join(";"))
    };
    if name.len() > MAX_NAME_LEN {
        let h = hash_values(combo);
        let tag = format!("~{h:08x}", h = (h & 0xffff_ffff));
        let keep = MAX_NAME_LEN - tag.len();
        // Truncate on a char boundary.
        let mut cut = keep;
        while !name.is_char_boundary(cut) {
            cut -= 1;
        }
        name.truncate(cut);
        name.push_str(&tag);
    }
    name
}

/// Disambiguate duplicate names in place by appending `_2`, `_3`, ...
/// (duplicates can appear after abbreviation or when distinct values render
/// identically, e.g. `"a b"` vs `"a_b"`).
pub fn dedup_names(names: &mut [String]) {
    for i in 0..names.len() {
        if names[..i].iter().any(|n| n == &names[i]) {
            let mut k = 2;
            loop {
                let candidate = format!("{}_{k}", names[i]);
                if !names[..i].iter().any(|n| n == &candidate) {
                    names[i] = candidate;
                    break;
                }
                k += 1;
            }
        }
    }
}

/// Split `n_cells` cell columns into partitions so that each partition table
/// holds at most `max_columns` total columns including the `n_key` key
/// columns. Returns the half-open cell index ranges, one per partition.
pub fn partition_ranges(
    n_cells: usize,
    n_key: usize,
    max_columns: usize,
) -> Vec<std::ops::Range<usize>> {
    let per = max_columns.saturating_sub(n_key).max(1);
    let mut out = Vec::new();
    let mut start = 0;
    while start < n_cells {
        let end = (start + per).min(n_cells);
        out.push(start..end);
        start = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_paper_convention() {
        let by = vec!["dweek".to_string()];
        assert_eq!(cell_column_name("", &by, &[Value::str("Mon")]), "dweek=Mon");
        let by2 = vec!["region".to_string(), "month".to_string()];
        assert_eq!(
            cell_column_name("hpct_sales", &by2, &[Value::Int(4), Value::Int(12)]),
            "hpct_sales:region=4;month=12"
        );
    }

    #[test]
    fn spaces_in_values_are_sanitized() {
        let by = vec!["city".to_string()];
        assert_eq!(
            cell_column_name("", &by, &[Value::str("San Francisco")]),
            "city=San_Francisco"
        );
        assert_eq!(cell_column_name("", &by, &[Value::Null]), "city=NULL");
    }

    #[test]
    fn long_names_abbreviate_uniquely() {
        let by = vec!["averyveryverylongdimensionname".to_string()];
        let a = cell_column_name("", &by, &[Value::str("x".repeat(100))]);
        let b = cell_column_name("", &by, &[Value::str("x".repeat(101))]);
        assert!(a.len() <= MAX_NAME_LEN);
        assert!(b.len() <= MAX_NAME_LEN);
        assert_ne!(a, b, "hash suffix keeps abbreviated names distinct");
    }

    #[test]
    fn dedup_appends_counters() {
        let mut names = vec![
            "a".to_string(),
            "a".to_string(),
            "a".to_string(),
            "b".to_string(),
        ];
        dedup_names(&mut names);
        assert_eq!(names, vec!["a", "a_2", "a_3", "b"]);
    }

    #[test]
    fn partitioning_math() {
        // 10 cells, 2 key cols, max 5 columns → 3 cells per partition.
        let ranges = partition_ranges(10, 2, 5);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
        // Everything fits.
        assert_eq!(partition_ranges(4, 1, 100), vec![0..4]);
        // Degenerate: key columns alone exceed the limit — still one cell
        // per partition rather than an infinite loop.
        assert_eq!(partition_ranges(2, 10, 5), vec![0..1, 1..2]);
        assert_eq!(partition_ranges(0, 1, 5), vec![0..0]);
    }
}
