//! Dimension-lattice planning — the paper's multi-term and multi-query
//! optimizations.
//!
//! SIGMOD §3.1: "If m > 1 then partial aggregations need to be computed
//! bottom-up based on the dimension lattice to speed up computation", and
//! §6 (future work): "A set of percentage queries on the same table may be
//! efficiently evaluated using shared summaries."
//!
//! Both reduce to the same idea, borrowed from cube computation
//! [Gray et al. 1996]: an aggregation level `L` (a set of grouping columns)
//! can be computed from any already-materialized level `S ⊇ L` because
//! `sum()` is distributive — and the smallest such ancestor is the cheapest
//! source. [`plan_levels`] orders the needed levels top-down and picks each
//! level's minimal ancestor; [`eval_vpct_lattice`] evaluates a multi-term
//! `Vpct` query with that plan; [`eval_vpct_batch`] shares one partial
//! aggregate across a whole set of percentage queries.

use crate::error::{CoreError, Result};
use crate::query::VpctQuery;
use crate::vertical::QueryResult;
use pa_engine::{
    create_table_as, hash_join_guarded, multi_hash_aggregate_guarded, AggFunc, AggSpec, ExecStats,
    Expr, JoinType, ProjSpec, ResourceGuard,
};
use pa_storage::{Catalog, Table};

/// One aggregation level: a set of grouping columns (stored sorted,
/// case-normalized, deduplicated).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Level(Vec<String>);

impl Level {
    /// Normalize a column list into a level.
    pub fn new(cols: &[String]) -> Level {
        let mut v: Vec<String> = cols.iter().map(|c| c.to_ascii_lowercase()).collect();
        v.sort();
        v.dedup();
        Level(v)
    }

    /// Number of grouping columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether `self` can be computed from `other` (`self ⊆ other`).
    pub fn subset_of(&self, other: &Level) -> bool {
        self.0.iter().all(|c| other.0.binary_search(c).is_ok())
    }

    /// The normalized columns.
    pub fn columns(&self) -> &[String] {
        &self.0
    }
}

/// Where a level's aggregation reads from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelSource {
    /// Scan the fact table.
    FactTable,
    /// Re-aggregate the previously planned level at this index.
    Planned(usize),
}

/// One step of a lattice plan: materialize `level` from `source`.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStep {
    /// The level to materialize.
    pub level: Level,
    /// Its cheapest available ancestor.
    pub source: LevelSource,
}

/// Plan the materialization order for a set of needed levels plus the root
/// (the full GROUP BY). Returns steps root-first; each non-root level reads
/// from its minimal already-planned ancestor, falling back to the fact
/// table when none covers it (which can only happen for the root).
pub fn plan_levels(root: &Level, needed: &[Level]) -> Vec<LevelStep> {
    let mut steps = vec![LevelStep {
        level: root.clone(),
        source: LevelSource::FactTable,
    }];
    // Distinct needed levels, widest first so later levels can reuse them.
    let mut levels: Vec<Level> = Vec::new();
    for l in needed {
        if l != root && !levels.contains(l) {
            levels.push(l.clone());
        }
    }
    levels.sort_by_key(|l| std::cmp::Reverse(l.arity()));
    for level in levels {
        // Minimal ancestor among already-planned steps.
        let mut best: Option<(usize, usize)> = None; // (step idx, arity)
        for (i, step) in steps.iter().enumerate() {
            if level.subset_of(&step.level) {
                let arity = step.level.arity();
                if best.is_none_or(|(_, a)| arity < a) {
                    best = Some((i, arity));
                }
            }
        }
        let source = match best {
            Some((i, _)) => LevelSource::Planned(i),
            None => LevelSource::FactTable,
        };
        steps.push(LevelStep { level, source });
    }
    steps
}

/// Evaluate a multi-term vertical percentage query bottom-up on the
/// dimension lattice: `Fk` once from `F`, then every distinct totals level
/// from its minimal ancestor, then one join-and-divide pass. Produces the
/// same table as [`crate::eval_vpct`]; identical totals levels across terms
/// are computed once.
pub fn eval_vpct_lattice(catalog: &Catalog, q: &VpctQuery, prefix: &str) -> Result<QueryResult> {
    eval_vpct_lattice_guarded(catalog, q, prefix, &ResourceGuard::unlimited())
}

/// [`eval_vpct_lattice`] with an explicit [`ResourceGuard`] metering every
/// aggregate and join in the lattice plan.
pub fn eval_vpct_lattice_guarded(
    catalog: &Catalog,
    q: &VpctQuery,
    prefix: &str,
    guard: &ResourceGuard,
) -> Result<QueryResult> {
    q.validate()?;
    let mut stats = ExecStats::default();
    let statements = crate::codegen::vpct_statements(q, &crate::strategy::VpctStrategy::best());

    let f_shared = catalog.table(&q.table)?;
    let f = f_shared.read();
    let f_schema = f.schema().clone();
    let k_cols: Vec<usize> = q
        .group_by
        .iter()
        .map(|n| {
            f_schema
                .index_of(n)
                .map_err(|_| CoreError::InvalidQuery(format!("unknown GROUP BY column {n}")))
        })
        .collect::<Result<Vec<_>>>()?;
    let k_len = k_cols.len();

    // Plan the lattice.
    let root = Level::new(&q.group_by);
    let needed: Vec<Level> = q
        .terms
        .iter()
        .map(|t| Level::new(&q.totals_key(t)))
        .collect();
    let steps = plan_levels(&root, &needed);

    // Root: Fk with one sum per term plus extras, exactly like eval_vpct.
    let mut fk_specs: Vec<AggSpec> = Vec::new();
    for term in &q.terms {
        fk_specs.push(AggSpec::new(
            AggFunc::Sum,
            term.measure.to_expr(&f_schema)?,
            term.name.clone(),
        ));
    }
    for extra in &q.extra {
        let input = match (&extra.func, &extra.measure) {
            (AggFunc::CountStar, _) => Expr::lit(1),
            (_, Some(m)) => m.to_expr(&f_schema)?,
            (f, None) => {
                return Err(CoreError::InvalidQuery(format!(
                    "{} requires a measure",
                    f.sql_name()
                )));
            }
        };
        fk_specs.push(AggSpec::new(extra.func, input, extra.name.clone()));
    }
    let fk = multi_hash_aggregate_guarded(&f, &[(k_cols, fk_specs)], guard, &mut stats)?
        .pop()
        .expect("one level");
    drop(f);

    // Materialize each planned level. A level's table layout is
    // [its columns in normalized order][one sum column per term].
    let mut level_tables: Vec<Table> = vec![fk];
    for (idx, step) in steps.iter().enumerate().skip(1) {
        let src = match step.source {
            LevelSource::Planned(i) => &level_tables[i],
            LevelSource::FactTable => unreachable!("only the root reads F"),
        };
        let src_schema = src.schema();
        let group_cols: Vec<usize> = step
            .level
            .columns()
            .iter()
            .map(|n| src_schema.index_of(n).map_err(CoreError::from))
            .collect::<Result<Vec<_>>>()?;
        // Re-aggregate every term's sum column (distributive).
        let specs: Vec<AggSpec> = q
            .terms
            .iter()
            .map(|t| {
                let pos = src_schema.index_of(&t.name)?;
                Ok(AggSpec::new(AggFunc::Sum, Expr::Col(pos), t.name.clone()))
            })
            .collect::<Result<Vec<_>>>()?;
        let table = multi_hash_aggregate_guarded(src, &[(group_cols, specs)], guard, &mut stats)?
            .pop()
            .expect("one level");
        debug_assert_eq!(idx, level_tables.len());
        level_tables.push(table);
    }

    // Join Fk against each term's totals level and divide.
    let mut cur = level_tables[0].clone();
    let fk_width_orig = cur.num_columns();
    let mut pct_exprs: Vec<Expr> = Vec::new();
    for (t, term) in q.terms.iter().enumerate() {
        let totals_level = Level::new(&q.totals_key(term));
        let sum_pos = k_len + t;
        if totals_level.arity() == 0 {
            // Global totals: the paper's corner case; take the grand total
            // from the root's sums.
            let mut grand = 0.0;
            let mut any = false;
            for r in 0..level_tables[0].num_rows() {
                if let Some(x) = level_tables[0].get(r, sum_pos).as_f64() {
                    grand += x;
                    any = true;
                }
            }
            stats.rows_scanned += level_tables[0].num_rows() as u64;
            let total = if any {
                pa_storage::Value::Float(grand)
            } else {
                pa_storage::Value::Null
            };
            pct_exprs.push(Expr::Col(sum_pos).safe_div(Expr::Lit(total)));
            continue;
        }
        let (step_idx, _) = steps
            .iter()
            .enumerate()
            .find(|(_, s)| s.level == totals_level)
            .expect("level was planned");
        let fj = &level_tables[step_idx];
        let j_len = totals_level.arity();
        // Join keys: totals columns, positioned in `cur` via the root's
        // group-by order, and 0..j_len in the level table.
        let cur_keys: Vec<usize> = totals_level
            .columns()
            .iter()
            .map(|n| {
                q.group_by
                    .iter()
                    .position(|g| g.eq_ignore_ascii_case(n))
                    .expect("totals ⊆ group_by")
            })
            .collect();
        let fj_keys: Vec<usize> = (0..j_len).collect();
        // Level tables carry one re-aggregated sum per term, in term order;
        // term t's total lands just past the joined-in key columns.
        let total_pos = cur.num_columns() + j_len + t;
        cur = hash_join_guarded(
            &cur,
            fj,
            &cur_keys,
            &fj_keys,
            JoinType::Inner,
            None,
            guard,
            &mut stats,
        )?;
        pct_exprs.push(Expr::Col(sum_pos).safe_div(Expr::Col(total_pos)));
    }

    // Final projection, matching eval_vpct's output layout.
    let mut projections: Vec<ProjSpec> = Vec::new();
    for (i, name) in q.group_by.iter().enumerate() {
        projections.push(ProjSpec::typed(
            Expr::Col(i),
            name.clone(),
            cur.schema().field_at(i).dtype,
        ));
    }
    for (t, term) in q.terms.iter().enumerate() {
        projections.push(ProjSpec::typed(
            pct_exprs[t].clone(),
            term.name.clone(),
            pa_storage::DataType::Float,
        ));
    }
    for (e, extra) in q.extra.iter().enumerate() {
        let pos = k_len + q.terms.len() + e;
        debug_assert!(pos < fk_width_orig);
        projections.push(ProjSpec::typed(
            Expr::Col(pos),
            extra.name.clone(),
            cur.schema().field_at(pos).dtype,
        ));
    }
    let fv = pa_engine::project(&cur, &projections, &mut stats)?;
    let shared = create_table_as(catalog, &format!("{prefix}FV"), fv, &mut stats)?;
    Ok(QueryResult {
        table: shared,
        stats,
        statements,
    })
}

/// Evaluate a batch of single-measure percentage queries against the same
/// fact table with one **shared summary**: a partial aggregate at the union
/// of every query's GROUP BY, from which each query's `Fk` re-aggregates
/// (SIGMOD §6 future work). Queries must share the table and carry no extra
/// aggregate terms. Results are returned in input order and registered as
/// `{prefix}q{i}_FV`.
pub fn eval_vpct_batch(
    catalog: &Catalog,
    queries: &[VpctQuery],
    prefix: &str,
) -> Result<Vec<QueryResult>> {
    eval_vpct_batch_guarded(catalog, queries, prefix, &ResourceGuard::unlimited())
}

/// [`eval_vpct_batch`] with an explicit [`ResourceGuard`] shared across the
/// whole batch: the summary scan and every per-query evaluation draw from
/// the same row budget.
pub fn eval_vpct_batch_guarded(
    catalog: &Catalog,
    queries: &[VpctQuery],
    prefix: &str,
    guard: &ResourceGuard,
) -> Result<Vec<QueryResult>> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let table = &queries[0].table;
    for q in queries {
        q.validate()?;
        if &q.table != table {
            return Err(CoreError::Unsupported(
                "batched queries must target the same fact table".into(),
            ));
        }
        if !q.extra.is_empty() {
            return Err(CoreError::Unsupported(
                "batched evaluation supports percentage terms only".into(),
            ));
        }
    }

    // Distinct measures across the batch, and the union grouping level.
    let mut measures: Vec<crate::query::Measure> = Vec::new();
    for q in queries {
        for t in &q.terms {
            if !measures.contains(&t.measure) {
                measures.push(t.measure.clone());
            }
        }
    }
    let mut union_cols: Vec<String> = Vec::new();
    for q in queries {
        for g in &q.group_by {
            if !union_cols.iter().any(|c| c.eq_ignore_ascii_case(g)) {
                union_cols.push(g.clone());
            }
        }
    }

    // One scan of F builds the shared summary.
    let mut stats = ExecStats::default();
    let f_shared = catalog.table(table)?;
    let f = f_shared.read();
    let f_schema = f.schema().clone();
    let union_idx: Vec<usize> = union_cols
        .iter()
        .map(|n| f_schema.index_of(n).map_err(CoreError::from))
        .collect::<Result<Vec<_>>>()?;
    let specs: Vec<AggSpec> = measures
        .iter()
        .enumerate()
        .map(|(i, m)| {
            Ok(AggSpec::new(
                AggFunc::Sum,
                m.to_expr(&f_schema)?,
                format!("__m{i}"),
            ))
        })
        .collect::<Result<Vec<_>>>()?;
    let summary = multi_hash_aggregate_guarded(&f, &[(union_idx, specs)], guard, &mut stats)?
        .pop()
        .expect("one level");
    drop(f);
    let summary_name = format!("{prefix}summary");
    create_table_as(catalog, &summary_name, summary, &mut stats)?;

    // Each query runs against the summary: its measure column is the
    // summary's partial sum (distributive), its fact table is the summary.
    let mut out = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let mut rq = q.clone();
        rq.table = summary_name.clone();
        for term in &mut rq.terms {
            let m_idx = measures
                .iter()
                .position(|m| m == &term.measure)
                .expect("collected");
            term.measure = crate::query::Measure::Column(format!("__m{m_idx}"));
        }
        let mut result = crate::vertical::eval_vpct_guarded(
            catalog,
            &rq,
            &crate::strategy::VpctStrategy::best(),
            &format!("{prefix}q{i}_"),
            guard,
        )?;
        // Fold the shared-summary cost into the first result's accounting.
        if i == 0 {
            result.stats += stats;
        }
        out.push(result);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::VpctTerm;
    use crate::strategy::VpctStrategy;
    use crate::vertical::eval_vpct;
    use crate::vertical::tests::sales_catalog;
    use pa_storage::Value;

    fn level(cols: &[&str]) -> Level {
        Level::new(&cols.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn level_normalization_and_subset() {
        let a = level(&["B", "a"]);
        assert_eq!(a.columns(), &["a".to_string(), "b".to_string()]);
        assert!(level(&["a"]).subset_of(&a));
        assert!(!a.subset_of(&level(&["a"])));
        assert!(level(&[]).subset_of(&a));
        assert_eq!(level(&["a", "a"]).arity(), 1);
    }

    #[test]
    fn plan_chains_nested_levels() {
        // Root {a,b,c,d}; needed {a,b,c}, {a,b}, {a}: each from the previous.
        let root = level(&["a", "b", "c", "d"]);
        let needed = vec![level(&["a"]), level(&["a", "b", "c"]), level(&["a", "b"])];
        let steps = plan_levels(&root, &needed);
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0].source, LevelSource::FactTable);
        assert_eq!(steps[1].level, level(&["a", "b", "c"]));
        assert_eq!(steps[1].source, LevelSource::Planned(0));
        assert_eq!(steps[2].level, level(&["a", "b"]));
        assert_eq!(steps[2].source, LevelSource::Planned(1), "minimal ancestor");
        assert_eq!(steps[3].source, LevelSource::Planned(2));
    }

    #[test]
    fn plan_deduplicates_levels() {
        let root = level(&["a", "b"]);
        let needed = vec![level(&["a"]), level(&["a"]), root.clone()];
        let steps = plan_levels(&root, &needed);
        assert_eq!(steps.len(), 2, "duplicate + root folded away");
    }

    #[test]
    fn plan_incomparable_levels_both_read_root() {
        let root = level(&["a", "b"]);
        let needed = vec![level(&["a"]), level(&["b"])];
        let steps = plan_levels(&root, &needed);
        assert_eq!(steps[1].source, LevelSource::Planned(0));
        assert_eq!(steps[2].source, LevelSource::Planned(0));
    }

    #[test]
    fn lattice_matches_reference_on_multi_term_query() {
        let catalog = sales_catalog();
        let q = VpctQuery {
            table: "sales".into(),
            group_by: vec!["state".into(), "city".into()],
            terms: vec![
                VpctTerm::new("salesAmt", &["city"]),
                VpctTerm::new("salesAmt", &["state", "city"]),
            ],
            extra: vec![],
        };
        let reference = eval_vpct(&catalog, &q, &VpctStrategy::best(), "r_").unwrap();
        let lattice = eval_vpct_lattice(&catalog, &q, "l_").unwrap();
        let a: Vec<Vec<Value>> = reference.snapshot().sorted_by(&[0, 1]).rows().collect();
        let b: Vec<Vec<Value>> = lattice.snapshot().sorted_by(&[0, 1]).rows().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn lattice_shares_duplicate_totals_levels() {
        // Two terms with the same BY list: the totals level is computed once.
        let catalog = sales_catalog();
        let q = VpctQuery {
            table: "sales".into(),
            group_by: vec!["state".into(), "city".into()],
            terms: vec![VpctTerm::new("salesAmt", &["city"]), {
                let mut t = VpctTerm::new("salesAmt", &["city"]);
                t.name = "second_copy".into();
                t
            }],
            extra: vec![],
        };
        let per_term = eval_vpct(&catalog, &q, &VpctStrategy::best(), "p_").unwrap();
        let lattice = eval_vpct_lattice(&catalog, &q, "l_").unwrap();
        let a: Vec<Vec<Value>> = per_term.snapshot().sorted_by(&[0, 1]).rows().collect();
        let b: Vec<Vec<Value>> = lattice.snapshot().sorted_by(&[0, 1]).rows().collect();
        assert_eq!(a, b);
        assert!(
            lattice.stats.rows_scanned < per_term.stats.rows_scanned,
            "lattice {} vs per-term {}",
            lattice.stats.rows_scanned,
            per_term.stats.rows_scanned
        );
    }

    #[test]
    fn batch_shares_one_summary() {
        let catalog = sales_catalog();
        let q1 = VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"]);
        let q2 = VpctQuery::single("sales", &["state"], "salesAmt", &[]);
        let results = eval_vpct_batch(&catalog, &[q1.clone(), q2.clone()], "b_").unwrap();
        assert_eq!(results.len(), 2);
        // Batched results equal per-query evaluation.
        for (q, r) in [(q1, &results[0]), (q2, &results[1])] {
            let solo = eval_vpct(&catalog, &q, &VpctStrategy::best(), "s_").unwrap();
            let a: Vec<Vec<Value>> = solo.snapshot().sorted_by(&[0]).rows().collect();
            let b: Vec<Vec<Value>> = r.snapshot().sorted_by(&[0]).rows().collect();
            assert_eq!(a, b, "{}", q.terms[0].name);
        }
        assert!(catalog.contains("b_summary"));
    }

    #[test]
    fn batch_rejects_mixed_tables_and_extras() {
        let catalog = sales_catalog();
        let q1 = VpctQuery::single("sales", &["state"], "salesAmt", &[]);
        let mut q2 = q1.clone();
        q2.table = "other".into();
        assert!(matches!(
            eval_vpct_batch(&catalog, &[q1.clone(), q2], "x_"),
            Err(CoreError::Unsupported(_))
        ));
        let mut q3 = q1.clone();
        q3.extra.push(crate::query::ExtraAgg::count_star("n"));
        assert!(matches!(
            eval_vpct_batch(&catalog, &[q3], "x_"),
            Err(CoreError::Unsupported(_))
        ));
        assert!(eval_vpct_batch(&catalog, &[], "x_").unwrap().is_empty());
    }

    #[test]
    fn single_term_lattice_equals_reference() {
        let catalog = sales_catalog();
        let q = VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"]);
        let reference = eval_vpct(&catalog, &q, &VpctStrategy::best(), "r_").unwrap();
        let lattice = eval_vpct_lattice(&catalog, &q, "l_").unwrap();
        let a: Vec<Vec<Value>> = reference.snapshot().sorted_by(&[0, 1]).rows().collect();
        let b: Vec<Vec<Value>> = lattice.snapshot().sorted_by(&[0, 1]).rows().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn lattice_handles_global_totals_term() {
        let catalog = sales_catalog();
        let q = VpctQuery {
            table: "sales".into(),
            group_by: vec!["state".into()],
            terms: vec![VpctTerm::new("salesAmt", &[])],
            extra: vec![],
        };
        let result = eval_vpct_lattice(&catalog, &q, "g_").unwrap();
        let t = result.snapshot().sorted_by(&[0]);
        assert_eq!(t.get(0, 1), Value::Float(106.0 / 255.0));
        assert_eq!(t.get(1, 1), Value::Float(149.0 / 255.0));
    }
}
