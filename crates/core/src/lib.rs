//! # pa-core — vertical and horizontal percentage aggregations
//!
//! Reference implementation of Ordonez, *"Vertical and Horizontal Percentage
//! Aggregations"* (SIGMOD 2004), extended with the generalized horizontal
//! aggregations of the DMKD 2004 companion paper. Queries can be defined
//! programmatically ([`VpctQuery`], [`HorizontalQuery`]) or parsed from the
//! SQL dialect (via `pa-sql`), evaluated under any of the strategies the
//! papers benchmark, and compared against the OLAP window-function baseline.

#![warn(missing_docs)]

pub mod codegen;
pub mod dispatch;
pub mod error;
pub mod executor;
pub mod horizontal;
pub mod lattice;
pub mod missing;
pub mod naming;
pub mod olap;
pub mod optimizer;
pub mod query;
pub mod strategy;
pub mod vertical;

pub use error::{CoreError, Result};
pub use executor::{PercentageEngine, QueryLimits, SqlOutcome};
pub use horizontal::{eval_horizontal, eval_horizontal_guarded, HorizontalResult};
pub use lattice::{
    eval_vpct_batch, eval_vpct_batch_guarded, eval_vpct_lattice, eval_vpct_lattice_guarded,
    plan_levels, Level, LevelSource, LevelStep,
};
pub use missing::MissingRows;
pub use olap::eval_vpct_olap;
pub use optimizer::{choose_horizontal_strategy, choose_parallelism, choose_vpct_strategy};
pub use pa_engine::{
    AbortCause, Clock, Deadline, Degradation, ExecStats, MetricsRegistry, ParallelConfig,
    ResourceGuard, SpanRecord, SystemClock, TestClock, TraceReport, Tracer,
};
pub use query::{
    from_sql, ExtraAgg, HorizontalQuery, HorizontalTerm, Measure, Query, VpctQuery, VpctTerm,
};
pub use strategy::{
    FjSource, HorizontalOptions, HorizontalStrategy, Materialization, ParallelMode, VpctStrategy,
};
pub use vertical::{eval_vpct, eval_vpct_guarded, QueryResult};
