//! Evaluation strategies — the knobs SIGMOD Table 4/5 and DMKD Table 3 turn.

/// Where the coarse totals table `Fj` is aggregated from (SIGMOD Table 4,
/// column 4 turns this off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FjSource {
    /// Re-scan the fact table `F` for every totals level.
    FromF,
    /// Re-aggregate the partial aggregate `Fk` (sum is distributive); the
    /// paper's recommended default — "this is crucial when F is much larger
    /// than Fk".
    FromFk,
}

/// How the result table `FV` is materialized (SIGMOD Table 4, column 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Materialization {
    /// `INSERT INTO FV SELECT .. FROM Fj, Fk WHERE ..` — bulk build of a
    /// third temporary table.
    Insert,
    /// `UPDATE Fk SET A = ..` in place; `FV = Fk`. Saves the third table
    /// (disk space) at the cost of per-row logged writes.
    Update,
}

/// Full strategy for a vertical percentage query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpctStrategy {
    /// Source for the totals aggregation.
    pub fj_source: FjSource,
    /// INSERT vs UPDATE materialization.
    pub materialization: Materialization,
    /// Build identical hash indexes on the common subkey `D1..Dj` of `Fk`
    /// and `Fj` before the division join (SIGMOD Table 4, column 2 turns
    /// this off).
    pub subkey_index: bool,
    /// Compute `Fk` and every `Fj` in one synchronized scan of `F`
    /// (only meaningful with [`FjSource::FromF`]).
    pub synchronized_scan: bool,
}

impl VpctStrategy {
    /// The paper's recommended configuration (Table 4 "best strategy"
    /// column): index the common subkey, INSERT the result, compute `Fj`
    /// from `Fk`.
    pub fn best() -> VpctStrategy {
        VpctStrategy {
            fj_source: FjSource::FromFk,
            materialization: Materialization::Insert,
            subkey_index: true,
            synchronized_scan: false,
        }
    }

    /// Table 4 column (2): drop the subkey indexes.
    pub fn without_index() -> VpctStrategy {
        VpctStrategy {
            subkey_index: false,
            ..VpctStrategy::best()
        }
    }

    /// Table 4 column (3): UPDATE instead of INSERT.
    pub fn with_update() -> VpctStrategy {
        VpctStrategy {
            materialization: Materialization::Update,
            ..VpctStrategy::best()
        }
    }

    /// Table 4 column (4): compute `Fj` from `F` instead of from `Fk`.
    pub fn fj_from_f() -> VpctStrategy {
        VpctStrategy {
            fj_source: FjSource::FromF,
            ..VpctStrategy::best()
        }
    }

    /// Both aggregations from `F` in a single synchronized scan.
    pub fn synchronized() -> VpctStrategy {
        VpctStrategy {
            fj_source: FjSource::FromF,
            synchronized_scan: true,
            ..VpctStrategy::best()
        }
    }
}

impl Default for VpctStrategy {
    fn default() -> Self {
        VpctStrategy::best()
    }
}

/// Evaluation strategies for horizontal queries (SIGMOD Table 5 compares the
/// two CASE variants; DMKD Table 3 adds the two SPJ variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizontalStrategy {
    /// One scan of `F` with `N` CASE-guarded aggregate terms.
    CaseDirect,
    /// First compute the vertical aggregate `FV` (`GROUP BY D1..Dk`), then
    /// run the CASE transposition over `FV`.
    CaseFromFv,
    /// DMKD SPJ: `N` filtered aggregation queries from `F`, assembled with
    /// `N` left outer joins onto the key table `F0`.
    SpjDirect,
    /// SPJ with the `N` aggregations reading the pre-aggregated `FV`.
    SpjFromFv,
}

impl HorizontalStrategy {
    /// All four strategies, in DMKD Table 3 column order.
    pub fn all() -> [HorizontalStrategy; 4] {
        [
            HorizontalStrategy::SpjDirect,
            HorizontalStrategy::SpjFromFv,
            HorizontalStrategy::CaseDirect,
            HorizontalStrategy::CaseFromFv,
        ]
    }

    /// Whether the strategy pre-aggregates into `FV`.
    pub fn uses_fv(&self) -> bool {
        matches!(
            self,
            HorizontalStrategy::CaseFromFv | HorizontalStrategy::SpjFromFv
        )
    }

    /// Display name matching the tables in the papers.
    pub fn label(&self) -> &'static str {
        match self {
            HorizontalStrategy::CaseDirect => "CASE from F",
            HorizontalStrategy::CaseFromFv => "CASE from FV",
            HorizontalStrategy::SpjDirect => "SPJ from F",
            HorizontalStrategy::SpjFromFv => "SPJ from FV",
        }
    }
}

/// How the morsel-parallel scan layer is engaged for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelMode {
    /// Follow the environment (`PA_THREADS` etc. via
    /// [`pa_engine::ParallelConfig::from_env`]); inputs below the serial
    /// threshold still take the exact serial code path.
    #[default]
    Auto,
    /// Force the exact serial code path regardless of environment.
    Serial,
    /// Force a specific worker count (still subject to the per-morsel
    /// worker cap and the serial threshold for small inputs).
    Threads(usize),
}

/// Options for horizontal evaluation beyond the strategy choice.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizontalOptions {
    /// Evaluation strategy.
    pub strategy: HorizontalStrategy,
    /// Replace the O(N)-per-row CASE evaluation with an O(1) hash dispatch
    /// from subgroup combination to result column — the optimization the
    /// paper flags as out of the query optimizer's reach ("could be reduced
    /// ... to O(1) using a hash-based search"). Implemented here as an
    /// ablation; only affects the CASE strategies.
    pub hash_dispatch: bool,
    /// Evaluate the CASE strategies through the code-path pivot when every
    /// term's BY columns dense-encode (see [`pa_engine::DenseKeySpace`]):
    /// the per-row O(N) predicate chain becomes one precomputed
    /// `composite code → output column` array index. On by default —
    /// ineligible inputs (float BY columns, domains over the dense budget)
    /// fall back to the legacy CASE chain automatically. Turn off to force
    /// the legacy chain (cost-model ablations and differential tests).
    pub jump_table: bool,
    /// Maximum columns a single result table may have (the DBMS limit the
    /// papers worry about). Teradata V2R4's limit was 2048.
    pub max_columns: usize,
    /// Allow splitting an over-wide result into vertically partitioned
    /// tables, each keyed by `D1..Dj` (the papers' prescribed remedy).
    /// When false, exceeding `max_columns` is an error.
    pub allow_partitioning: bool,
    /// Morsel-parallel scan engagement for the aggregation passes.
    pub parallel: ParallelMode,
    /// Wall-clock deadline for the whole query. `None` (the default) means
    /// no deadline; `Some(d)` arms a [`pa_engine::Deadline`] on the
    /// per-query guard, so the plan aborts with
    /// [`crate::CoreError::DeadlineExceeded`] at the next morsel boundary
    /// after `d` elapses.
    pub deadline: Option<std::time::Duration>,
    /// Force the per-row scalar kernels even where the vectorized
    /// bit-packed block path (DESIGN.md §12) is eligible. Ablation and
    /// differential-test knob — equivalent to `PA_VECTOR=0` but scoped to
    /// one query instead of racing on process env.
    pub scalar_kernels: bool,
}

impl Default for HorizontalOptions {
    fn default() -> Self {
        HorizontalOptions {
            strategy: HorizontalStrategy::CaseDirect,
            hash_dispatch: false,
            jump_table: true,
            max_columns: 2048,
            allow_partitioning: false,
            parallel: ParallelMode::Auto,
            deadline: None,
            scalar_kernels: false,
        }
    }
}

impl HorizontalOptions {
    /// Options with a given strategy, defaults elsewhere.
    pub fn with_strategy(strategy: HorizontalStrategy) -> HorizontalOptions {
        HorizontalOptions {
            strategy,
            ..HorizontalOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_strategy_matches_paper_recommendations() {
        let s = VpctStrategy::best();
        assert_eq!(s.fj_source, FjSource::FromFk);
        assert_eq!(s.materialization, Materialization::Insert);
        assert!(s.subkey_index);
        assert!(!s.synchronized_scan);
        assert_eq!(VpctStrategy::default(), s);
    }

    #[test]
    fn knob_constructors_flip_one_knob() {
        assert!(!VpctStrategy::without_index().subkey_index);
        assert_eq!(
            VpctStrategy::with_update().materialization,
            Materialization::Update
        );
        assert_eq!(VpctStrategy::fj_from_f().fj_source, FjSource::FromF);
        let sync = VpctStrategy::synchronized();
        assert!(sync.synchronized_scan);
        assert_eq!(sync.fj_source, FjSource::FromF);
    }

    #[test]
    fn horizontal_strategy_metadata() {
        assert!(HorizontalStrategy::CaseFromFv.uses_fv());
        assert!(!HorizontalStrategy::CaseDirect.uses_fv());
        assert_eq!(HorizontalStrategy::all().len(), 4);
        assert_eq!(HorizontalStrategy::SpjDirect.label(), "SPJ from F");
    }

    #[test]
    fn default_options() {
        let o = HorizontalOptions::default();
        assert_eq!(o.strategy, HorizontalStrategy::CaseDirect);
        assert_eq!(o.max_columns, 2048);
        assert!(!o.hash_dispatch);
        assert!(o.jump_table, "code-path CASE evaluation is the default");
        assert_eq!(o.parallel, ParallelMode::Auto);
        assert_eq!(o.deadline, None);
        let o = HorizontalOptions::with_strategy(HorizontalStrategy::SpjFromFv);
        assert_eq!(o.strategy, HorizontalStrategy::SpjFromFv);
    }
}
