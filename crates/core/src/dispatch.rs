//! Hash-dispatch pivot operator — the paper's "future work" optimization.
//!
//! SIGMOD §3.2 observes that the CASE strategy makes the evaluator test `N`
//! disjoint boolean conjunctions per input row because "the query optimizer
//! has no way to stop comparisons", and that a hash-based search would cut
//! the per-row cost from `O(N)` to `O(1)`. This operator is that evaluator:
//! one pass over the source, one group-key probe plus one subgroup-key probe
//! per row, accumulating straight into the `groups × cells` matrix.
//!
//! The output layout is identical to the CASE strategy's raw table
//! (`[D1..Dj][term cells × lanes][term total?][extra lanes]`), so the
//! surrounding pipeline cannot tell which evaluator produced it — only the
//! work counters differ (`case_condition_evals` stays at zero).

use crate::error::Result;
use pa_engine::guard::CANCEL_CHECK_INTERVAL;
use pa_engine::{AggFunc, ExecStats, Expr, ResourceGuard, RowKeyMap};
use pa_storage::{DataType, Field, Schema, Table, Value};

/// One horizontal term's piece of a pivot pass.
#[derive(Debug, Clone)]
pub struct PivotTask {
    /// Subgrouping columns in the source table.
    pub by_cols: Vec<usize>,
    /// Aggregations feeding each cell lane.
    pub lanes: Vec<(AggFunc, Expr)>,
    /// The distinct subgroup combinations, in result-column order.
    pub combos: Vec<Vec<Value>>,
    /// Group-total sum expression for percentage terms.
    pub total: Option<Expr>,
}

#[derive(Debug, Clone)]
enum Acc {
    Sum { sum: f64, any: bool },
    Count(i64),
    CountDistinct(pa_storage::FxHashSet<Value>),
    CountStar(i64),
    Avg { sum: f64, n: i64 },
    Min(Value),
    Max(Value),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Sum => Acc::Sum {
                sum: 0.0,
                any: false,
            },
            AggFunc::Count => Acc::Count(0),
            AggFunc::CountDistinct => Acc::CountDistinct(Default::default()),
            AggFunc::CountStar => Acc::CountStar(0),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(Value::Null),
            AggFunc::Max => Acc::Max(Value::Null),
        }
    }

    fn update(&mut self, v: &Value) {
        match self {
            Acc::CountStar(n) => *n += 1,
            _ if v.is_null() => {}
            Acc::Sum { sum, any } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *any = true;
                }
            }
            Acc::Count(n) => *n += 1,
            Acc::CountDistinct(seen) => {
                seen.insert(v.clone());
            }
            Acc::Avg { sum, n } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *n += 1;
                }
            }
            Acc::Min(m) => {
                if m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Less {
                    *m = v.clone();
                }
            }
            Acc::Max(m) => {
                if m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Greater {
                    *m = v.clone();
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Sum { sum, any } => {
                if *any {
                    Value::Float(*sum)
                } else {
                    Value::Null
                }
            }
            Acc::Count(n) | Acc::CountStar(n) => Value::Int(*n),
            Acc::CountDistinct(seen) => Value::Int(seen.len() as i64),
            Acc::Avg { sum, n } => {
                if *n > 0 {
                    Value::Float(sum / *n as f64)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone(),
        }
    }
}

fn lane_dtype(func: AggFunc, input: &Expr, schema: &Schema) -> DataType {
    match func {
        AggFunc::Sum | AggFunc::Avg => DataType::Float,
        AggFunc::Count | AggFunc::CountDistinct | AggFunc::CountStar => DataType::Int,
        AggFunc::Min | AggFunc::Max => input.output_type(schema).unwrap_or(DataType::Float),
    }
}

/// One-pass pivot aggregation with O(1) cell dispatch per row.
///
/// Produces the raw horizontal table: the `j_cols` key columns followed by,
/// for each task, `lanes × combos` cell columns (lane-major within a combo)
/// and the optional total column, then the flattened extra lanes.
pub fn pivot_aggregate(
    src: &Table,
    j_cols: &[usize],
    tasks: &[PivotTask],
    extra_lanes: &[(AggFunc, Expr)],
    stats: &mut ExecStats,
) -> Result<Table> {
    pivot_aggregate_guarded(
        src,
        j_cols,
        tasks,
        extra_lanes,
        &ResourceGuard::unlimited(),
        stats,
    )
}

/// [`pivot_aggregate`] under a [`ResourceGuard`]: the scan is charged up
/// front, each new group charges as its accumulator lane is allocated (the
/// pivot's memory actually grows with `groups × cells`, so group discovery
/// is exactly where a runaway `Hpct` must be stopped), and the loop checks
/// for cancellation periodically.
pub fn pivot_aggregate_guarded(
    src: &Table,
    j_cols: &[usize],
    tasks: &[PivotTask],
    extra_lanes: &[(AggFunc, Expr)],
    guard: &ResourceGuard,
    stats: &mut ExecStats,
) -> Result<Table> {
    stats.statements += 1;
    // Per-task subgroup-combination maps (combo tuple → cell index).
    let mut combo_maps: Vec<RowKeyMap> = Vec::with_capacity(tasks.len());
    for task in tasks {
        let mut m = RowKeyMap::with_capacity(task.combos.len());
        let mut discard = ExecStats::default();
        for combo in &task.combos {
            m.get_or_insert_key(combo, &mut discard);
        }
        combo_maps.push(m);
    }

    // Row width of the accumulator matrix.
    let mut task_base: Vec<usize> = Vec::with_capacity(tasks.len());
    let mut width = 0usize;
    for task in tasks {
        task_base.push(width);
        width += task.lanes.len() * task.combos.len() + usize::from(task.total.is_some());
    }
    let extra_base = width;
    width += extra_lanes.len();

    let template: Vec<Acc> = {
        let mut t = Vec::with_capacity(width);
        for task in tasks {
            for _combo in &task.combos {
                for (func, _) in &task.lanes {
                    t.push(Acc::new(*func));
                }
            }
            if task.total.is_some() {
                t.push(Acc::new(AggFunc::Sum));
            }
        }
        for (func, _) in extra_lanes {
            t.push(Acc::new(*func));
        }
        t
    };

    let mut groups = RowKeyMap::new();
    let mut accs: Vec<Acc> = Vec::new();
    let n = src.num_rows();
    stats.rows_scanned += n as u64;
    guard.charge(n as u64)?;
    for row in 0..n {
        if row % CANCEL_CHECK_INTERVAL == 0 {
            guard.check()?;
        }
        let gid = if j_cols.is_empty() {
            if groups.is_empty() {
                groups.get_or_insert_key(&[], stats);
            }
            0
        } else {
            groups.get_or_insert_row(src, j_cols, row, stats)
        };
        if (gid + 1) * width > accs.len() {
            // A fresh group allocates `width` accumulator cells; charge it as
            // one output row so group explosions trip the budget mid-scan.
            guard.charge(1)?;
            accs.extend_from_slice(&template);
        }
        let base = gid * width;
        for (t, task) in tasks.iter().enumerate() {
            // O(1): one probe finds the cell, no CASE chain.
            let Some(cid) = groups_lookup(&combo_maps[t], src, &task.by_cols, row, stats) else {
                continue;
            };
            let cell = base + task_base[t] + cid * task.lanes.len();
            for (l, (_func, input)) in task.lanes.iter().enumerate() {
                let v = input.eval(src, row, stats)?;
                accs[cell + l].update(&v);
            }
            if let Some(total) = &task.total {
                let tpos = base + task_base[t] + task.lanes.len() * task.combos.len();
                let v = total.eval(src, row, stats)?;
                accs[tpos].update(&v);
            }
        }
        for (x, (_func, input)) in extra_lanes.iter().enumerate() {
            let v = input.eval(src, row, stats)?;
            accs[base + extra_base + x].update(&v);
        }
    }
    // Global aggregation yields one row even over empty input.
    if j_cols.is_empty() && groups.is_empty() {
        groups.get_or_insert_key(&[], stats);
        accs.extend_from_slice(&template);
    }

    // Materialize in the CASE raw layout.
    let src_schema = src.schema();
    let mut fields: Vec<Field> = j_cols
        .iter()
        .map(|&c| src_schema.field_at(c).clone())
        .collect();
    for (t, task) in tasks.iter().enumerate() {
        for i in 0..task.combos.len() {
            for (l, (func, input)) in task.lanes.iter().enumerate() {
                fields.push(Field::new(
                    format!("__c{t}_{i}_{l}"),
                    lane_dtype(*func, input, src_schema),
                ));
            }
        }
        if task.total.is_some() {
            fields.push(Field::new(format!("__tot{t}"), DataType::Float));
        }
    }
    for (x, (func, input)) in extra_lanes.iter().enumerate() {
        fields.push(Field::new(
            format!("__x{x}_0"),
            lane_dtype(*func, input, src_schema),
        ));
    }
    let schema = Schema::new(fields)?.into_shared();
    let n_groups = groups.len();
    let mut out = Table::with_capacity(schema, n_groups);
    for gid in 0..n_groups {
        let mut row: Vec<Value> = groups.keys()[gid].clone();
        let base = gid * width;
        for w in 0..width {
            row.push(accs[base + w].finish());
        }
        out.push_row(&row)?;
    }
    stats.rows_materialized += n_groups as u64;
    Ok(out)
}

fn groups_lookup(
    map: &RowKeyMap,
    src: &Table,
    cols: &[usize],
    row: usize,
    stats: &mut ExecStats,
) -> Option<usize> {
    map.lookup_row(src, cols, row, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("store", DataType::Int),
            ("dweek", DataType::Str),
            ("amt", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for (s, d, a) in [
            (1, "Mon", 10.0),
            (1, "Tue", 30.0),
            (2, "Mon", 5.0),
            (1, "Mon", 10.0),
            (2, "Tue", 15.0),
        ] {
            t.push_row(&[Value::Int(s), Value::str(d), Value::Float(a)])
                .unwrap();
        }
        t
    }

    fn task(t: &Table) -> PivotTask {
        PivotTask {
            by_cols: vec![1],
            lanes: vec![(AggFunc::Sum, Expr::col(t.schema(), "amt").unwrap())],
            combos: vec![vec![Value::str("Mon")], vec![Value::str("Tue")]],
            total: Some(Expr::col(t.schema(), "amt").unwrap()),
        }
    }

    #[test]
    fn pivot_matches_manual_sums() {
        let t = sales();
        let mut st = ExecStats::default();
        let raw = pivot_aggregate(&t, &[0], &[task(&t)], &[], &mut st).unwrap();
        let raw = raw.sorted_by(&[0]);
        // store 1: Mon 20, Tue 30, total 50; store 2: Mon 5, Tue 15, total 20.
        assert_eq!(raw.get(0, 1), Value::Float(20.0));
        assert_eq!(raw.get(0, 2), Value::Float(30.0));
        assert_eq!(raw.get(0, 3), Value::Float(50.0));
        assert_eq!(raw.get(1, 1), Value::Float(5.0));
        assert_eq!(raw.get(1, 3), Value::Float(20.0));
        assert_eq!(st.case_condition_evals, 0, "no CASE chain evaluated");
    }

    #[test]
    fn global_group_and_extras() {
        let t = sales();
        let mut st = ExecStats::default();
        let extras = vec![(AggFunc::CountStar, Expr::lit(1))];
        let raw = pivot_aggregate(&t, &[], &[task(&t)], &extras, &mut st).unwrap();
        assert_eq!(raw.num_rows(), 1);
        assert_eq!(raw.get(0, 0), Value::Float(25.0)); // Mon global
        assert_eq!(raw.get(0, 1), Value::Float(45.0)); // Tue global
        assert_eq!(raw.get(0, 2), Value::Float(70.0)); // total
        assert_eq!(raw.get(0, 3), Value::Int(5)); // count(*)
    }

    #[test]
    fn empty_input_global_row() {
        let t = Table::empty(sales().schema().clone());
        let mut st = ExecStats::default();
        let raw = pivot_aggregate(&t, &[], &[task(&t)], &[], &mut st).unwrap();
        assert_eq!(raw.num_rows(), 1);
        assert_eq!(raw.get(0, 0), Value::Null);
    }

    #[test]
    fn min_max_and_avg_lanes() {
        let t = sales();
        let amt = Expr::col(t.schema(), "amt").unwrap();
        let task = PivotTask {
            by_cols: vec![1],
            lanes: vec![
                (AggFunc::Min, amt.clone()),
                (AggFunc::Max, amt.clone()),
                (AggFunc::Avg, amt),
            ],
            combos: vec![vec![Value::str("Mon")], vec![Value::str("Tue")]],
            total: None,
        };
        let mut st = ExecStats::default();
        let raw = pivot_aggregate(&t, &[0], &[task], &[], &mut st)
            .unwrap()
            .sorted_by(&[0]);
        // store 1 Mon: amounts 10,10 → min 10, max 10, avg 10.
        assert_eq!(raw.get(0, 1), Value::Float(10.0));
        assert_eq!(raw.get(0, 2), Value::Float(10.0));
        assert_eq!(raw.get(0, 3), Value::Float(10.0));
        // store 2 Tue: 15.
        assert_eq!(raw.get(1, 4), Value::Float(15.0));
    }
}
