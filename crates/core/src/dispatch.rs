//! Hash-dispatch pivot operator — the paper's "future work" optimization.
//!
//! SIGMOD §3.2 observes that the CASE strategy makes the evaluator test `N`
//! disjoint boolean conjunctions per input row because "the query optimizer
//! has no way to stop comparisons", and that a hash-based search would cut
//! the per-row cost from `O(N)` to `O(1)`. This operator is that evaluator:
//! one pass over the source, one group-key probe plus one subgroup-key probe
//! per row, accumulating straight into the `groups × cells` matrix.
//!
//! The scan is morsel-driven like the engine's hash aggregation: when the
//! [`ParallelConfig`] allows it, contiguous morsel runs fan out over scoped
//! workers, each accumulating into a thread-local `groups × cells` matrix
//! (the combo maps are built once and shared read-only), and the partials
//! merge in worker order so output is identical to the serial scan. Numeric
//! `sum`/`avg`/`count` lanes over plain columns read through
//! [`pa_storage::Column::get_f64`] instead of boxing a `Value` per cell.
//!
//! The output layout is identical to the CASE strategy's raw table
//! (`[D1..Dj][term cells × lanes][term total?][extra lanes]`), so the
//! surrounding pipeline cannot tell which evaluator produced it — only the
//! work counters differ (`case_condition_evals` stays at zero).

use crate::error::Result;
use pa_engine::{
    raw_acc, Acc, AggFunc, BlockCoder, DenseGroupMap, DenseKeySpace, ExecStats, Expr, GroupMap,
    LaneSrc, NumSlice, ParallelConfig, RawLane, ResourceGuard, RowKeyMap, SpanHandle, BLOCK_ROWS,
};
use pa_storage::{Column, DataType, Field, Schema, Table, Value};

/// One horizontal term's piece of a pivot pass.
#[derive(Debug, Clone)]
pub struct PivotTask {
    /// Subgrouping columns in the source table.
    pub by_cols: Vec<usize>,
    /// Aggregations feeding each cell lane.
    pub lanes: Vec<(AggFunc, Expr)>,
    /// The distinct subgroup combinations, in result-column order.
    pub combos: Vec<Vec<Value>>,
    /// Group-total sum expression for percentage terms.
    pub total: Option<Expr>,
}

fn lane_dtype(func: AggFunc, input: &Expr, schema: &Schema) -> DataType {
    match func {
        AggFunc::Sum | AggFunc::Avg | AggFunc::Percentile(_) | AggFunc::ApproxPercentile(_) => {
            DataType::Float
        }
        AggFunc::Count
        | AggFunc::CountDistinct
        | AggFunc::CountStar
        | AggFunc::ApproxCountDistinct => DataType::Int,
        AggFunc::Min | AggFunc::Max => input.output_type(schema).unwrap_or(DataType::Float),
    }
}

/// How one lane reads its input per row (mirrors the aggregate operator's
/// kernel split: typed column reads for numeric sum/avg/count, generic
/// expression evaluation for everything else).
#[derive(Debug, Clone, Copy)]
enum LaneKernel {
    NumericCol(usize),
    CountStar,
    Generic,
}

fn classify_lane(func: AggFunc, input: &Expr, src: &Table) -> LaneKernel {
    match func {
        AggFunc::CountStar => LaneKernel::CountStar,
        AggFunc::Sum | AggFunc::Avg | AggFunc::Count => match *input {
            Expr::Col(c)
                if c < src.num_columns()
                    && matches!(src.column(c).data_type(), DataType::Int | DataType::Float) =>
            {
                LaneKernel::NumericCol(c)
            }
            _ => LaneKernel::Generic,
        },
        _ => LaneKernel::Generic,
    }
}

/// Per-task subgroup-combination lookup: combo tuple → cell index.
///
/// When the task's BY columns dense-encode (see [`DenseKeySpace`]), the
/// lookup is a precomputed *jump table* — `composite code → cell`, one
/// array index per row, no hashing and no key comparison. Otherwise it
/// falls back to the hash map. `u32::MAX` marks a code with no cell (the
/// row belongs to no listed combination and is skipped, exactly like a
/// failed hash probe).
enum CellMap {
    /// Jump table over the BY columns' composite-code space.
    Dense {
        space: DenseKeySpace,
        code_to_cell: Vec<u32>,
    },
    /// Hash fallback (combo tuple → cell index).
    Hash(RowKeyMap),
}

impl CellMap {
    /// Build the lookup for one task, preferring the jump table within
    /// `budget` codes. A combo whose value lies outside the encoded domain
    /// (possible when the combos were cached before the dictionary grew, or
    /// came from another snapshot) matches no row of `src`, so leaving its
    /// code unmapped is exact.
    fn build(src: &Table, task: &PivotTask, budget: usize) -> CellMap {
        if let Some(space) = DenseKeySpace::try_build(src, &task.by_cols, budget) {
            let mut code_to_cell = vec![u32::MAX; space.size()];
            for (cid, combo) in task.combos.iter().enumerate() {
                if let Some(code) = space.code_of_key(src, combo) {
                    code_to_cell[code] = cid as u32;
                }
            }
            return CellMap::Dense {
                space,
                code_to_cell,
            };
        }
        let mut m = RowKeyMap::with_capacity(task.combos.len());
        let mut discard = ExecStats::default();
        for combo in &task.combos {
            m.get_or_insert_key(combo, &mut discard);
        }
        CellMap::Hash(m)
    }

    fn is_dense(&self) -> bool {
        matches!(self, CellMap::Dense { .. })
    }

    /// Cell index for `src[row]`'s subgroup key, or `None` when the row
    /// belongs to no listed combination.
    #[inline]
    fn lookup_row(
        &self,
        src: &Table,
        by_cols: &[usize],
        row: usize,
        stats: &mut ExecStats,
    ) -> Option<usize> {
        match self {
            CellMap::Dense {
                space,
                code_to_cell,
            } => {
                let cell = code_to_cell[space.code_of_row(src, row)];
                (cell != u32::MAX).then_some(cell as usize)
            }
            CellMap::Hash(m) => m.lookup_row(src, by_cols, row, stats),
        }
    }
}

/// Everything a scan worker needs, shared read-only across threads.
struct PivotCtx<'a> {
    src: &'a Table,
    j_cols: &'a [usize],
    tasks: &'a [PivotTask],
    extra_lanes: &'a [(AggFunc, Expr)],
    group_space: &'a Option<DenseKeySpace>,
    cell_maps: &'a [CellMap],
    task_base: &'a [usize],
    extra_base: usize,
    width: usize,
    template: &'a [Acc],
    /// Aggregate function at each accumulator-matrix position, parallel to
    /// `template` (the fused path converts raw sums/counts through it).
    template_funcs: &'a [AggFunc],
    lane_kernels: &'a [Vec<LaneKernel>],
    total_kernels: &'a [Option<LaneKernel>],
    extra_kernels: &'a [LaneKernel],
    /// Typed views of `src`'s numeric columns, resolved once so the scalar
    /// loop stops re-matching the column enum per row.
    col_slices: Vec<Option<NumSlice<'a>>>,
}

/// Per-worker state for the fused vectorized pivot scan (DESIGN.md §12):
/// every path dense, every lane typed — built by [`PivotCtx::try_fused`].
struct FusedPivot<'a> {
    group_coder: BlockCoder<'a>,
    /// Per task: cell-code coder plus its jump table.
    cell_tables: Vec<(BlockCoder<'a>, &'a [u32])>,
    lane_srcs: Vec<Vec<LaneSrc<'a>>>,
    total_srcs: Vec<Option<LaneSrc<'a>>>,
    extra_srcs: Vec<LaneSrc<'a>>,
}

impl FusedPivot<'_> {
    /// Widest bit-packed dimension across the group and cell coders.
    fn pack_width(&self) -> u32 {
        self.cell_tables
            .iter()
            .map(|(c, _)| c.pack_width())
            .fold(self.group_coder.pack_width(), u32::max)
    }
}

/// Scatter one lane of a block into flat accumulator indices `idx[k] + off`
/// (`usize::MAX` skips the row), one update per row in row order — the same
/// update sequence the scalar `Acc` loop performs, so float sums match bit
/// for bit.
fn scatter_lane(lane: &mut RawLane, src: &LaneSrc<'_>, start: usize, idx: &[usize], off: usize) {
    match src {
        LaneSrc::CountStar => {
            for &f in idx {
                if f != usize::MAX {
                    lane.counts[f + off] += 1;
                }
            }
        }
        LaneSrc::Col(NumSlice::Float(data, vwords)) => {
            for (k, &f) in idx.iter().enumerate() {
                if f == usize::MAX {
                    continue;
                }
                let row = start + k;
                // Branch on validity: the NaN placeholder must never reach
                // the sum, and adding 0.0 for NULLs would flip a -0.0.
                if vwords[row >> 6] >> (row & 63) & 1 == 1 {
                    lane.sums[f + off] += data[row];
                    lane.counts[f + off] += 1;
                }
            }
        }
        LaneSrc::Col(NumSlice::Int(data, vwords)) => {
            for (k, &f) in idx.iter().enumerate() {
                if f == usize::MAX {
                    continue;
                }
                let row = start + k;
                if vwords[row >> 6] >> (row & 63) & 1 == 1 {
                    lane.sums[f + off] += data[row] as f64;
                    lane.counts[f + off] += 1;
                }
            }
        }
    }
}

impl<'a> PivotCtx<'a> {
    /// Build the fused scan state when every path vectorizes: dense group
    /// and cell spaces whose dimensions all read through packed/typed
    /// vectors, and only typed numeric / `count(*)` lanes. `None` sends the
    /// scan down the (hoisted) scalar loop. Deterministic, so every worker
    /// and the planning pass agree.
    fn try_fused(&self, config: &ParallelConfig) -> Option<FusedPivot<'a>> {
        if !config.vector || self.j_cols.is_empty() {
            return None;
        }
        let group_coder = BlockCoder::try_new(self.src, self.group_space.as_ref()?)?;
        let mut cell_tables = Vec::with_capacity(self.cell_maps.len());
        for m in self.cell_maps {
            let CellMap::Dense {
                space,
                code_to_cell,
            } = m
            else {
                return None;
            };
            cell_tables.push((
                BlockCoder::try_new(self.src, space)?,
                code_to_cell.as_slice(),
            ));
        }
        let lane_src = |k: &LaneKernel| -> Option<LaneSrc<'a>> {
            match k {
                LaneKernel::NumericCol(c) => LaneSrc::for_column(self.src.column(*c)),
                LaneKernel::CountStar => Some(LaneSrc::CountStar),
                LaneKernel::Generic => None,
            }
        };
        let lane_srcs: Option<Vec<Vec<LaneSrc<'a>>>> = self
            .lane_kernels
            .iter()
            .map(|ks| ks.iter().map(lane_src).collect())
            .collect();
        let total_srcs: Option<Vec<Option<LaneSrc<'a>>>> = self
            .total_kernels
            .iter()
            .map(|k| match k {
                None => Some(None),
                Some(k) => lane_src(k).map(Some),
            })
            .collect();
        let extra_srcs: Option<Vec<LaneSrc<'a>>> =
            self.extra_kernels.iter().map(lane_src).collect();
        Some(FusedPivot {
            group_coder,
            cell_tables,
            lane_srcs: lane_srcs?,
            total_srcs: total_srcs?,
            extra_srcs: extra_srcs?,
        })
    }

    /// Vectorized scan of one chunk: block-at-a-time group codes → gids,
    /// jump-table cell dispatch over code blocks, and raw sum/count
    /// accumulation, converted to the scalar path's `Acc` matrix at the
    /// end. Guard/span cadence matches the scalar scan (one charge per
    /// morsel plus one per fresh group), so budgets and traces are
    /// path-independent.
    #[allow(clippy::too_many_arguments)]
    fn scan_fused(
        &self,
        fused: &FusedPivot<'a>,
        chunk: std::ops::Range<usize>,
        guard: &ResourceGuard,
        stats: &mut ExecStats,
        config: &ParallelConfig,
        span: &mut SpanHandle,
    ) -> Result<(GroupMap, Vec<Acc>)> {
        let space = self
            .group_space
            .clone()
            .expect("fused pivot requires a dense group space");
        let mut map = DenseGroupMap::new(space);
        let width = self.width;
        let mut lanes = RawLane::default();
        let mut gcodes = [0u32; BLOCK_ROWS];
        let mut gids = [0u32; BLOCK_ROWS];
        let mut ccodes = [0u32; BLOCK_ROWS];
        let mut idx = [usize::MAX; BLOCK_ROWS];
        let mut tidx = [usize::MAX; BLOCK_ROWS];
        stats.pack_width = stats.pack_width.max(fused.pack_width() as u64);
        for morsel in config.morsels(chunk) {
            guard.charge(morsel.len() as u64)?;
            span.add_morsels(1);
            span.add_rows(morsel.len() as u64);
            let mut start = morsel.start;
            while start < morsel.end {
                let blen = BLOCK_ROWS.min(morsel.end - start);
                stats.vectorized_kernel_rows += blen as u64;

                // Group codes → gids; fresh groups charge one output row
                // each, exactly like the scalar loop's discovery charge.
                fused.group_coder.fill(start, &mut gcodes[..blen]);
                let before = map.len();
                for k in 0..blen {
                    gids[k] = map.get_or_insert_code(gcodes[k] as usize) as u32;
                }
                let fresh = map.len() - before;
                if fresh > 0 {
                    guard.charge(fresh as u64)?;
                    span.add_rows(fresh as u64);
                }
                lanes.ensure(map.len() * width);

                for (t, task) in self.tasks.iter().enumerate() {
                    let (coder, code_to_cell) = &fused.cell_tables[t];
                    let nlanes = task.lanes.len();
                    let base_off = self.task_base[t];
                    let total_off = base_off + nlanes * task.combos.len();
                    let has_total = task.total.is_some();
                    coder.fill(start, &mut ccodes[..blen]);
                    // RLE fast path: a constant cell-code block (sorted or
                    // low-cardinality BY column) resolves the jump table
                    // once for the whole block.
                    let constant = ccodes[..blen].iter().all(|&c| c == ccodes[0]);
                    if constant {
                        stats.rle_runs += 1;
                        let cell = code_to_cell[ccodes[0] as usize];
                        if cell == u32::MAX {
                            continue; // no listed combo: the whole block skips this task
                        }
                        let cell_off = base_off + cell as usize * nlanes;
                        for k in 0..blen {
                            let g = gids[k] as usize * width;
                            idx[k] = g + cell_off;
                            tidx[k] = g + total_off;
                        }
                    } else {
                        for k in 0..blen {
                            let cell = code_to_cell[ccodes[k] as usize];
                            if cell == u32::MAX {
                                idx[k] = usize::MAX;
                                tidx[k] = usize::MAX;
                            } else {
                                let g = gids[k] as usize * width;
                                idx[k] = g + base_off + cell as usize * nlanes;
                                tidx[k] = g + total_off;
                            }
                        }
                    }
                    for (l, src) in fused.lane_srcs[t].iter().enumerate() {
                        scatter_lane(&mut lanes, src, start, &idx[..blen], l);
                    }
                    if has_total {
                        let src = fused.total_srcs[t]
                            .as_ref()
                            .expect("total lane classified for fused scan");
                        scatter_lane(&mut lanes, src, start, &tidx[..blen], 0);
                    }
                }

                if !fused.extra_srcs.is_empty() {
                    for k in 0..blen {
                        idx[k] = gids[k] as usize * width + self.extra_base;
                    }
                    for (x, src) in fused.extra_srcs.iter().enumerate() {
                        scatter_lane(&mut lanes, src, start, &idx[..blen], x);
                    }
                }
                start += blen;
            }
        }
        // Collapse into the Acc matrix the scalar scan produces, so the
        // merge/materialize machinery — and the output bytes — are shared.
        let n = map.len();
        lanes.ensure(n * width);
        let mut accs = Vec::with_capacity(n * width);
        for gid in 0..n {
            for (w, func) in self.template_funcs.iter().enumerate() {
                let f = gid * width + w;
                accs.push(raw_acc(*func, lanes.sums[f], lanes.counts[f]));
            }
        }
        Ok((GroupMap::Dense(map), accs))
    }

    /// Scan one contiguous chunk morsel by morsel into a thread-local
    /// partial matrix. One guard charge per morsel meters the budget and
    /// observes cancellation; each freshly discovered group charges one
    /// output row (a group found by several workers charges once per
    /// worker — a conservative over-count that still stops `groups × cells`
    /// explosions mid-scan).
    fn scan(
        &self,
        chunk: std::ops::Range<usize>,
        guard: &ResourceGuard,
        stats: &mut ExecStats,
        config: &ParallelConfig,
        span: &mut SpanHandle,
    ) -> Result<(GroupMap, Vec<Acc>)> {
        if let Some(fused) = self.try_fused(config) {
            return self.scan_fused(&fused, chunk, guard, stats, config, span);
        }
        let mut groups = GroupMap::for_space(self.group_space.clone());
        let mut accs: Vec<Acc> = Vec::new();
        for morsel in config.morsels(chunk) {
            guard.charge(morsel.len() as u64)?;
            span.add_morsels(1);
            span.add_rows(morsel.len() as u64);
            stats.scalar_kernel_rows += morsel.len() as u64;
            for row in morsel {
                let gid = if self.j_cols.is_empty() {
                    if groups.is_empty() {
                        groups.get_or_insert_key(&[], stats);
                    }
                    0
                } else {
                    groups.get_or_insert_row(self.src, self.j_cols, row, stats)
                };
                if (gid + 1) * self.width > accs.len() {
                    // A fresh group allocates `width` accumulator cells;
                    // charge it as one output row so group explosions trip
                    // the budget mid-scan.
                    guard.charge(1)?;
                    span.add_rows(1);
                    accs.extend_from_slice(self.template);
                }
                let base = gid * self.width;
                for (t, task) in self.tasks.iter().enumerate() {
                    // O(1): one jump-table index (or hash probe) finds the
                    // cell, no CASE chain.
                    let Some(cid) =
                        self.cell_maps[t].lookup_row(self.src, &task.by_cols, row, stats)
                    else {
                        continue;
                    };
                    let cell = base + self.task_base[t] + cid * task.lanes.len();
                    for (l, (_func, input)) in task.lanes.iter().enumerate() {
                        self.absorb(
                            &mut accs[cell + l],
                            self.lane_kernels[t][l],
                            input,
                            row,
                            stats,
                        )?;
                    }
                    if let Some(total) = &task.total {
                        let tpos = base + self.task_base[t] + task.lanes.len() * task.combos.len();
                        let kernel = self.total_kernels[t].expect("total lane classified");
                        self.absorb(&mut accs[tpos], kernel, total, row, stats)?;
                    }
                }
                for (x, (_func, input)) in self.extra_lanes.iter().enumerate() {
                    self.absorb(
                        &mut accs[base + self.extra_base + x],
                        self.extra_kernels[x],
                        input,
                        row,
                        stats,
                    )?;
                }
            }
        }
        Ok((groups, accs))
    }

    fn absorb(
        &self,
        acc: &mut Acc,
        kernel: LaneKernel,
        input: &Expr,
        row: usize,
        stats: &mut ExecStats,
    ) -> Result<()> {
        match kernel {
            LaneKernel::CountStar => acc.update_f64(None),
            LaneKernel::NumericCol(c) => {
                let s = self.col_slices[c]
                    .as_ref()
                    .expect("numeric lane has a typed slice");
                acc.update_f64(s.get_f64(row));
            }
            LaneKernel::Generic => {
                let v = input.eval(self.src, row, stats)?;
                acc.update(&v)?;
            }
        }
        Ok(())
    }
}

/// One-pass pivot aggregation with O(1) cell dispatch per row.
///
/// Produces the raw horizontal table: the `j_cols` key columns followed by,
/// for each task, `lanes × combos` cell columns (lane-major within a combo)
/// and the optional total column, then the flattened extra lanes.
pub fn pivot_aggregate(
    src: &Table,
    j_cols: &[usize],
    tasks: &[PivotTask],
    extra_lanes: &[(AggFunc, Expr)],
    stats: &mut ExecStats,
) -> Result<Table> {
    pivot_aggregate_guarded(
        src,
        j_cols,
        tasks,
        extra_lanes,
        &ResourceGuard::unlimited(),
        stats,
    )
}

/// [`pivot_aggregate`] under a [`ResourceGuard`]: the scan is charged morsel
/// by morsel, and each new group charges as its accumulator lane is
/// allocated (the pivot's memory actually grows with `groups × cells`, so
/// group discovery is exactly where a runaway `Hpct` must be stopped).
/// Parallelism follows the environment configuration
/// ([`ParallelConfig::from_env`]).
pub fn pivot_aggregate_guarded(
    src: &Table,
    j_cols: &[usize],
    tasks: &[PivotTask],
    extra_lanes: &[(AggFunc, Expr)],
    guard: &ResourceGuard,
    stats: &mut ExecStats,
) -> Result<Table> {
    pivot_aggregate_with_config(
        src,
        j_cols,
        tasks,
        extra_lanes,
        guard,
        stats,
        &ParallelConfig::from_env(),
    )
}

/// [`pivot_aggregate_guarded`] with an explicit [`ParallelConfig`] (tests
/// and benches pin thread counts here instead of racing on env vars).
pub fn pivot_aggregate_with_config(
    src: &Table,
    j_cols: &[usize],
    tasks: &[PivotTask],
    extra_lanes: &[(AggFunc, Expr)],
    guard: &ResourceGuard,
    stats: &mut ExecStats,
    config: &ParallelConfig,
) -> Result<Table> {
    stats.statements += 1;
    stats.holistic_lanes += tasks
        .iter()
        .flat_map(|t| &t.lanes)
        .map(|(func, _)| func)
        .chain(extra_lanes.iter().map(|(func, _)| func))
        .filter(|func| func.is_holistic())
        .count() as u64;
    guard.check()?;
    // Group-key code space and per-task cell lookups, built once before the
    // fan-out and shared read-only across scan workers (workers clone the
    // space, so every worker assigns identical composite codes and the
    // merge can fold partials by code). Each pass — the group path and each
    // task's cell path — records which side it took.
    let group_space = DenseKeySpace::try_build(src, j_cols, config.dense_budget);
    if group_space.is_some() {
        stats.dense_group_ops += 1;
    } else {
        stats.hash_group_ops += 1;
    }
    let cell_maps: Vec<CellMap> = tasks
        .iter()
        .map(|task| {
            let m = CellMap::build(src, task, config.dense_budget);
            if m.is_dense() {
                stats.dense_group_ops += 1;
            } else {
                stats.hash_group_ops += 1;
            }
            m
        })
        .collect();

    // Row width of the accumulator matrix.
    let mut task_base: Vec<usize> = Vec::with_capacity(tasks.len());
    let mut width = 0usize;
    for task in tasks {
        task_base.push(width);
        width += task.lanes.len() * task.combos.len() + usize::from(task.total.is_some());
    }
    let extra_base = width;
    width += extra_lanes.len();

    let template: Vec<Acc> = {
        let mut t = Vec::with_capacity(width);
        for task in tasks {
            for _combo in &task.combos {
                for (func, _) in &task.lanes {
                    t.push(Acc::new(*func));
                }
            }
            if task.total.is_some() {
                t.push(Acc::new(AggFunc::Sum));
            }
        }
        for (func, _) in extra_lanes {
            t.push(Acc::new(*func));
        }
        t
    };

    let lane_kernels: Vec<Vec<LaneKernel>> = tasks
        .iter()
        .map(|task| {
            task.lanes
                .iter()
                .map(|(func, input)| classify_lane(*func, input, src))
                .collect()
        })
        .collect();
    let total_kernels: Vec<Option<LaneKernel>> = tasks
        .iter()
        .map(|task| {
            task.total
                .as_ref()
                .map(|total| classify_lane(AggFunc::Sum, total, src))
        })
        .collect();
    let extra_kernels: Vec<LaneKernel> = extra_lanes
        .iter()
        .map(|(func, input)| classify_lane(*func, input, src))
        .collect();
    // Function at each matrix position, parallel to `template`: the fused
    // path converts its raw sums/counts through these.
    let template_funcs: Vec<AggFunc> = {
        let mut t = Vec::with_capacity(width);
        for task in tasks {
            for _combo in &task.combos {
                for (func, _) in &task.lanes {
                    t.push(*func);
                }
            }
            if task.total.is_some() {
                t.push(AggFunc::Sum);
            }
        }
        for (func, _) in extra_lanes {
            t.push(*func);
        }
        t
    };
    let col_slices: Vec<Option<NumSlice<'_>>> = (0..src.num_columns())
        .map(|c| NumSlice::for_column(src.column(c)))
        .collect();

    let ctx = PivotCtx {
        src,
        j_cols,
        tasks,
        extra_lanes,
        group_space: &group_space,
        cell_maps: &cell_maps,
        task_base: &task_base,
        extra_base,
        width,
        template: &template,
        template_funcs: &template_funcs,
        lane_kernels: &lane_kernels,
        total_kernels: &total_kernels,
        extra_kernels: &extra_kernels,
        col_slices,
    };

    let n = src.num_rows();
    stats.rows_scanned += n as u64;
    let chunks = config.chunks(n);
    let mut span = guard.span("pivot");
    // Probing here (a) labels the trace with the chosen kernel path and
    // (b) warms the lazy packed code vectors serially, before workers race
    // on the per-column build cell.
    span.set_detail(if ctx.try_fused(config).is_some() {
        "vectorized"
    } else {
        "scalar"
    });

    let (mut groups, mut accs) = if chunks.len() <= 1 {
        ctx.scan(0..n, guard, stats, config, &mut span)?
    } else {
        type WorkerOut = Result<(GroupMap, Vec<Acc>, ExecStats)>;
        let panicked = |p: Box<dyn std::any::Any + Send>| crate::CoreError::WorkerPanicked {
            operator: "pivot_aggregate".into(),
            payload: pa_engine::error::panic_payload(p),
        };
        let worker_results: Vec<WorkerOut> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .enumerate()
                .map(|(w, chunk)| {
                    let ctx = &ctx;
                    // Worker-index child spans merge deterministically in the
                    // trace report regardless of thread close order.
                    let mut wspan = span.child("worker", w as u32);
                    s.spawn(move || -> WorkerOut {
                        // Contain panics at the thread boundary: convert to a
                        // typed error and cancel siblings through the shared
                        // guard so they stop within one morsel.
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> WorkerOut {
                            let mut wstats = ExecStats::default();
                            let (groups, accs) =
                                ctx.scan(chunk, guard, &mut wstats, config, &mut wspan)?;
                            Ok((groups, accs, wstats))
                        }))
                        .unwrap_or_else(|p| {
                            guard.cancel();
                            Err(panicked(p))
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| Err(panicked(p))))
                .collect()
        });
        // A panic is the root cause; siblings that observed the cancelled
        // guard only report the secondary `Cancelled` — surface the panic.
        if let Some(Err(e)) = worker_results
            .iter()
            .find(|r| matches!(r, Err(crate::CoreError::WorkerPanicked { .. })))
        {
            return Err(e.clone());
        }
        // Deterministic ordered merge: worker 0's partial seeds the global
        // matrix (its group order is the serial prefix order), later
        // workers fold in, in worker order.
        let mut iter = worker_results.into_iter();
        let (mut groups, mut accs, wstats) = iter.next().expect("at least one worker")?;
        *stats += wstats;
        for result in iter {
            let (wgroups, waccs, wstats) = result?;
            *stats += wstats;
            let mut waccs = waccs.into_iter();
            for gid in groups.merge_ids(wgroups, stats) {
                let gid = gid as usize;
                if (gid + 1) * width > accs.len() {
                    accs.extend_from_slice(&template);
                }
                for w in 0..width {
                    let partial = waccs.next().expect("partial accs cover groups × width");
                    accs[gid * width + w].merge(partial)?;
                }
            }
        }
        (groups, accs)
    };

    // Global aggregation yields one row even over empty input.
    if j_cols.is_empty() && groups.is_empty() {
        groups.get_or_insert_key(&[], stats);
        accs.extend_from_slice(&template);
    }

    // Materialize in the CASE raw layout.
    let src_schema = src.schema();
    let mut fields: Vec<Field> = j_cols
        .iter()
        .map(|&c| src_schema.field_at(c).clone())
        .collect();
    for (t, task) in tasks.iter().enumerate() {
        for i in 0..task.combos.len() {
            for (l, (func, input)) in task.lanes.iter().enumerate() {
                fields.push(Field::new(
                    format!("__c{t}_{i}_{l}"),
                    lane_dtype(*func, input, src_schema),
                ));
            }
        }
        if task.total.is_some() {
            fields.push(Field::new(format!("__tot{t}"), DataType::Float));
        }
    }
    for (x, (func, input)) in extra_lanes.iter().enumerate() {
        fields.push(Field::new(
            format!("__x{x}_0"),
            lane_dtype(*func, input, src_schema),
        ));
    }
    // Column-direct build: key columns come straight from the group map
    // (no per-row `Vec<Value>` clone), accumulator lanes fill one typed
    // column at a time.
    let acc_dtypes: Vec<DataType> = fields[j_cols.len()..].iter().map(|f| f.dtype).collect();
    let schema = Schema::new(fields)?.into_shared();
    let n_groups = groups.len();
    let mut columns = groups.build_key_columns(src, j_cols)?;
    for (w, &dtype) in acc_dtypes.iter().enumerate() {
        let mut col = Column::new(dtype);
        for gid in 0..n_groups {
            col.push(accs[gid * width + w].finish())?;
        }
        columns.push(col);
    }
    stats.rows_materialized += n_groups as u64;
    Ok(Table::from_columns(schema, columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("store", DataType::Int),
            ("dweek", DataType::Str),
            ("amt", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for (s, d, a) in [
            (1, "Mon", 10.0),
            (1, "Tue", 30.0),
            (2, "Mon", 5.0),
            (1, "Mon", 10.0),
            (2, "Tue", 15.0),
        ] {
            t.push_row(&[Value::Int(s), Value::str(d), Value::Float(a)])
                .unwrap();
        }
        t
    }

    fn task(t: &Table) -> PivotTask {
        PivotTask {
            by_cols: vec![1],
            lanes: vec![(AggFunc::Sum, Expr::col(t.schema(), "amt").unwrap())],
            combos: vec![vec![Value::str("Mon")], vec![Value::str("Tue")]],
            total: Some(Expr::col(t.schema(), "amt").unwrap()),
        }
    }

    #[test]
    fn pivot_matches_manual_sums() {
        let t = sales();
        let mut st = ExecStats::default();
        let raw = pivot_aggregate(&t, &[0], &[task(&t)], &[], &mut st).unwrap();
        let raw = raw.sorted_by(&[0]);
        // store 1: Mon 20, Tue 30, total 50; store 2: Mon 5, Tue 15, total 20.
        assert_eq!(raw.get(0, 1), Value::Float(20.0));
        assert_eq!(raw.get(0, 2), Value::Float(30.0));
        assert_eq!(raw.get(0, 3), Value::Float(50.0));
        assert_eq!(raw.get(1, 1), Value::Float(5.0));
        assert_eq!(raw.get(1, 3), Value::Float(20.0));
        assert_eq!(st.case_condition_evals, 0, "no CASE chain evaluated");
    }

    #[test]
    fn global_group_and_extras() {
        let t = sales();
        let mut st = ExecStats::default();
        let extras = vec![(AggFunc::CountStar, Expr::lit(1))];
        let raw = pivot_aggregate(&t, &[], &[task(&t)], &extras, &mut st).unwrap();
        assert_eq!(raw.num_rows(), 1);
        assert_eq!(raw.get(0, 0), Value::Float(25.0)); // Mon global
        assert_eq!(raw.get(0, 1), Value::Float(45.0)); // Tue global
        assert_eq!(raw.get(0, 2), Value::Float(70.0)); // total
        assert_eq!(raw.get(0, 3), Value::Int(5)); // count(*)
    }

    #[test]
    fn empty_input_global_row() {
        let t = Table::empty(sales().schema().clone());
        let mut st = ExecStats::default();
        let raw = pivot_aggregate(&t, &[], &[task(&t)], &[], &mut st).unwrap();
        assert_eq!(raw.num_rows(), 1);
        assert_eq!(raw.get(0, 0), Value::Null);
    }

    #[test]
    fn min_max_and_avg_lanes() {
        let t = sales();
        let amt = Expr::col(t.schema(), "amt").unwrap();
        let task = PivotTask {
            by_cols: vec![1],
            lanes: vec![
                (AggFunc::Min, amt.clone()),
                (AggFunc::Max, amt.clone()),
                (AggFunc::Avg, amt),
            ],
            combos: vec![vec![Value::str("Mon")], vec![Value::str("Tue")]],
            total: None,
        };
        let mut st = ExecStats::default();
        let raw = pivot_aggregate(&t, &[0], &[task], &[], &mut st)
            .unwrap()
            .sorted_by(&[0]);
        // store 1 Mon: amounts 10,10 → min 10, max 10, avg 10.
        assert_eq!(raw.get(0, 1), Value::Float(10.0));
        assert_eq!(raw.get(0, 2), Value::Float(10.0));
        assert_eq!(raw.get(0, 3), Value::Float(10.0));
        // store 2 Tue: 15.
        assert_eq!(raw.get(1, 4), Value::Float(15.0));
    }

    #[test]
    fn parallel_pivot_identical_to_serial() {
        // A table large enough for many small morsels: store ∈ 0..23,
        // dweek cycles over 7 names, integer-valued amounts so chunked
        // float sums are exact.
        let schema = Schema::from_pairs(&[
            ("store", DataType::Int),
            ("dweek", DataType::Str),
            ("amt", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let days = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
        let mut t = Table::with_capacity(schema, 9_000);
        for i in 0..9_000usize {
            t.push_row(&[
                Value::Int((i as i64 * 31) % 23),
                Value::str(days[i % 7]),
                if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Float((i % 97) as f64)
                },
            ])
            .unwrap();
        }
        let amt = Expr::col(t.schema(), "amt").unwrap();
        let tasks = vec![PivotTask {
            by_cols: vec![1],
            lanes: vec![(AggFunc::Sum, amt.clone()), (AggFunc::Count, amt.clone())],
            combos: days.iter().map(|d| vec![Value::str(*d)]).collect(),
            total: Some(amt),
        }];
        let extras = vec![(AggFunc::CountStar, Expr::lit(1))];
        let serial = pivot_aggregate_with_config(
            &t,
            &[0],
            &tasks,
            &extras,
            &ResourceGuard::unlimited(),
            &mut ExecStats::default(),
            &ParallelConfig::serial(),
        )
        .unwrap();
        for threads in [2, 4, 7] {
            let config = ParallelConfig {
                threads,
                morsel_rows: 256,
                min_parallel_rows: 0,
                ..ParallelConfig::serial()
            };
            let parallel = pivot_aggregate_with_config(
                &t,
                &[0],
                &tasks,
                &extras,
                &ResourceGuard::unlimited(),
                &mut ExecStats::default(),
                &config,
            )
            .unwrap();
            let s_rows: Vec<Vec<Value>> = serial.rows().collect();
            let p_rows: Vec<Vec<Value>> = parallel.rows().collect();
            assert_eq!(s_rows, p_rows, "threads={threads}");
        }
    }
}
