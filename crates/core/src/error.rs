//! Core error type.

use pa_engine::EngineError;
use pa_sql::SqlError;
use pa_storage::StorageError;
use std::fmt;

/// Errors raised by the percentage-aggregation framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Storage failure.
    Storage(StorageError),
    /// Operator failure.
    Engine(EngineError),
    /// SQL parse/validation failure.
    Sql(SqlError),
    /// Query definition invalid against the target table's schema.
    InvalidQuery(String),
    /// A horizontal result would exceed the configured column limit and
    /// partitioned output was not requested (SIGMOD §3.2 / DMKD §3.6).
    TooManyColumns {
        /// Columns the result needs.
        needed: usize,
        /// Configured ceiling.
        limit: usize,
    },
    /// A feature was asked of a query shape that does not support it.
    Unsupported(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Engine(e) => write!(f, "engine: {e}"),
            CoreError::Sql(e) => write!(f, "sql: {e}"),
            CoreError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            CoreError::TooManyColumns { needed, limit } => write!(
                f,
                "horizontal result needs {needed} columns, exceeding the {limit}-column limit; \
                 use partitioned evaluation"
            ),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Engine(e) => Some(e),
            CoreError::Sql(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<SqlError> for CoreError {
    fn from(e: SqlError) -> Self {
        CoreError::Sql(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_layer_errors() {
        let e: CoreError = StorageError::TableNotFound("F".into()).into();
        assert!(e.to_string().contains("table not found"));
        let e: CoreError = EngineError::ExprType("x".into()).into();
        assert!(e.to_string().starts_with("engine:"));
        let e: CoreError = SqlError::Rule("r".into()).into();
        assert!(e.to_string().starts_with("sql:"));
    }

    #[test]
    fn column_limit_message() {
        let e = CoreError::TooManyColumns {
            needed: 5000,
            limit: 2048,
        };
        assert!(e.to_string().contains("5000"));
        assert!(e.to_string().contains("2048"));
    }
}
