//! Core error type.

use pa_engine::{AbortCause, EngineError};
use pa_sql::SqlError;
use pa_storage::StorageError;
use std::fmt;

/// Errors raised by the percentage-aggregation framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Storage failure.
    Storage(StorageError),
    /// Operator failure.
    Engine(EngineError),
    /// SQL parse/validation failure.
    Sql(SqlError),
    /// Query definition invalid against the target table's schema.
    InvalidQuery(String),
    /// A horizontal result would exceed the configured column limit and
    /// partitioned output was not requested (SIGMOD §3.2 / DMKD §3.6).
    TooManyColumns {
        /// Columns the result needs.
        needed: usize,
        /// Configured ceiling.
        limit: usize,
    },
    /// A feature was asked of a query shape that does not support it.
    Unsupported(String),
    /// A [`pa_engine::ResourceGuard`] row budget ran out mid-plan — the
    /// typed alternative to letting a runaway pivot or join exhaust memory.
    BudgetExceeded {
        /// The configured ceiling, in rows of work.
        budget: u64,
        /// The running total that tripped it.
        attempted: u64,
    },
    /// The query was cooperatively cancelled through its guard.
    Cancelled,
    /// A [`pa_engine::ResourceGuard`] wall-clock deadline passed mid-plan.
    DeadlineExceeded {
        /// Wall time the query had consumed when the trip was observed.
        elapsed_ms: u64,
        /// The configured allowance.
        limit_ms: u64,
    },
    /// A DML call reached an engine serving in read-only replica mode.
    /// Replicas apply mutations only through the replication stream;
    /// clients must route writes to the primary.
    ReadOnlyReplica,
    /// A worker thread panicked mid-plan. The panic was contained at the
    /// operator boundary; the engine and catalog remain usable.
    WorkerPanicked {
        /// Which operator's worker pool caught the panic.
        operator: String,
        /// The stringified panic payload.
        payload: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Engine(e) => write!(f, "engine: {e}"),
            CoreError::Sql(e) => write!(f, "sql: {e}"),
            CoreError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            CoreError::TooManyColumns { needed, limit } => write!(
                f,
                "horizontal result needs {needed} columns, exceeding the {limit}-column limit; \
                 use partitioned evaluation"
            ),
            CoreError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CoreError::BudgetExceeded { budget, attempted } => write!(
                f,
                "row budget exceeded: plan needed {attempted} rows of work, budget is {budget}"
            ),
            CoreError::Cancelled => write!(f, "query cancelled"),
            CoreError::DeadlineExceeded {
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms}ms elapsed against a {limit_ms}ms allowance"
            ),
            CoreError::ReadOnlyReplica => write!(
                f,
                "engine is serving as a read-only replica: route writes to the primary"
            ),
            CoreError::WorkerPanicked { operator, payload } => {
                write!(f, "worker panicked in {operator}: {payload}")
            }
        }
    }
}

impl CoreError {
    /// Classify this error as an [`AbortCause`] for [`pa_engine::ExecStats`]
    /// observability, or `None` when it is a plan/validation error rather
    /// than a runtime abort.
    pub fn abort_cause(&self) -> Option<AbortCause> {
        match self {
            CoreError::BudgetExceeded { .. } => Some(AbortCause::Budget),
            CoreError::DeadlineExceeded { .. } => Some(AbortCause::Deadline),
            CoreError::Cancelled => Some(AbortCause::Cancelled),
            CoreError::WorkerPanicked { .. } => Some(AbortCause::WorkerPanic),
            CoreError::Storage(_) => Some(AbortCause::Storage),
            CoreError::Engine(EngineError::Storage(_)) => Some(AbortCause::Storage),
            _ => None,
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Engine(e) => Some(e),
            CoreError::Sql(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        // Guard trips surface as first-class core errors so callers can
        // match on them without digging through the engine layer.
        match e {
            EngineError::BudgetExceeded { budget, attempted } => {
                CoreError::BudgetExceeded { budget, attempted }
            }
            EngineError::Cancelled => CoreError::Cancelled,
            EngineError::DeadlineExceeded {
                elapsed_ms,
                limit_ms,
            } => CoreError::DeadlineExceeded {
                elapsed_ms,
                limit_ms,
            },
            EngineError::WorkerPanicked { operator, payload } => {
                CoreError::WorkerPanicked { operator, payload }
            }
            other => CoreError::Engine(other),
        }
    }
}

impl From<SqlError> for CoreError {
    fn from(e: SqlError) -> Self {
        CoreError::Sql(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_layer_errors() {
        let e: CoreError = StorageError::TableNotFound("F".into()).into();
        assert!(e.to_string().contains("table not found"));
        let e: CoreError = EngineError::ExprType("x".into()).into();
        assert!(e.to_string().starts_with("engine:"));
        let e: CoreError = SqlError::Rule("r".into()).into();
        assert!(e.to_string().starts_with("sql:"));
    }

    #[test]
    fn guard_errors_promote_to_core_variants() {
        let e: CoreError = EngineError::BudgetExceeded {
            budget: 10,
            attempted: 20,
        }
        .into();
        assert!(matches!(
            e,
            CoreError::BudgetExceeded {
                budget: 10,
                attempted: 20
            }
        ));
        let e: CoreError = EngineError::Cancelled.into();
        assert!(matches!(e, CoreError::Cancelled));
        let e: CoreError = EngineError::DeadlineExceeded {
            elapsed_ms: 7,
            limit_ms: 5,
        }
        .into();
        assert!(matches!(
            e,
            CoreError::DeadlineExceeded {
                elapsed_ms: 7,
                limit_ms: 5
            }
        ));
        let e: CoreError = EngineError::WorkerPanicked {
            operator: "pivot_aggregate".into(),
            payload: "boom".into(),
        }
        .into();
        assert!(matches!(e, CoreError::WorkerPanicked { .. }));
        assert!(e.to_string().contains("pivot_aggregate"), "{e}");
    }

    #[test]
    fn abort_causes_classify_runtime_failures() {
        use pa_engine::AbortCause;
        let cases: Vec<(CoreError, Option<AbortCause>)> = vec![
            (
                CoreError::BudgetExceeded {
                    budget: 1,
                    attempted: 2,
                },
                Some(AbortCause::Budget),
            ),
            (
                CoreError::DeadlineExceeded {
                    elapsed_ms: 2,
                    limit_ms: 1,
                },
                Some(AbortCause::Deadline),
            ),
            (CoreError::Cancelled, Some(AbortCause::Cancelled)),
            (
                CoreError::WorkerPanicked {
                    operator: "x".into(),
                    payload: "y".into(),
                },
                Some(AbortCause::WorkerPanic),
            ),
            (
                CoreError::Storage(StorageError::Io("disk".into())),
                Some(AbortCause::Storage),
            ),
            (CoreError::InvalidQuery("bad".into()), None),
            (CoreError::Unsupported("no".into()), None),
        ];
        for (err, want) in cases {
            assert_eq!(err.abort_cause(), want, "{err}");
        }
    }

    #[test]
    fn column_limit_message() {
        let e = CoreError::TooManyColumns {
            needed: 5000,
            limit: 2048,
        };
        assert!(e.to_string().contains("5000"));
        assert!(e.to_string().contains("2048"));
    }
}
