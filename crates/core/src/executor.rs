//! High-level facade: the percentage-query engine.
//!
//! [`PercentageEngine`] ties the pieces together — parse SQL (or take typed
//! queries), pick a strategy (explicitly or via the heuristic optimizer),
//! evaluate, and manage temporary-table naming.

use crate::error::{CoreError, Result};
use crate::horizontal::{eval_horizontal_guarded, HorizontalResult};
use crate::missing::{postprocess_pad, preprocess_pad, MissingRows};
use crate::olap::eval_vpct_olap;
use crate::optimizer::{choose_horizontal_strategy, choose_vpct_strategy};
use crate::query::{from_sql, HorizontalQuery, Query, VpctQuery};
use crate::strategy::{HorizontalOptions, VpctStrategy};
use crate::vertical::{eval_vpct_guarded, QueryResult};
use pa_engine::{Clock, Deadline, ResourceGuard, TraceReport, Tracer};
use pa_storage::Catalog;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-call execution limits, layered over the engine's defaults. The
/// serving layer uses this to apply per-session budgets and deadlines
/// without rebuilding the engine: `Some` overrides the corresponding
/// engine-level limit for one query, `None` inherits it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryLimits {
    /// Row budget for this query (overrides the engine guard's budget).
    pub row_budget: Option<u64>,
    /// Wall-clock allowance for this query, measured on the engine's
    /// clock (overrides the engine-level default deadline).
    pub deadline: Option<Duration>,
}

impl QueryLimits {
    /// No per-call overrides: inherit everything from the engine.
    pub fn none() -> QueryLimits {
        QueryLimits::default()
    }
}

/// Outcome of executing a SQL statement: the family is decided by the
/// validator.
#[derive(Debug)]
pub enum SqlOutcome {
    /// A `Vpct` statement.
    Vertical(QueryResult),
    /// An `Hpct`/`Hagg` statement.
    Horizontal(HorizontalResult),
}

impl SqlOutcome {
    /// The result table regardless of family (single-partition horizontal
    /// results only).
    pub fn table(&self) -> pa_storage::SharedTable {
        match self {
            SqlOutcome::Vertical(r) => r.table.clone(),
            SqlOutcome::Horizontal(r) => r.table(),
        }
    }

    /// Work counters regardless of family.
    pub fn stats(&self) -> pa_engine::ExecStats {
        match self {
            SqlOutcome::Vertical(r) => r.stats,
            SqlOutcome::Horizontal(r) => r.stats,
        }
    }

    /// Mutable work counters — the serving layer records degradation and
    /// abort causes here.
    pub fn stats_mut(&mut self) -> &mut pa_engine::ExecStats {
        match self {
            SqlOutcome::Vertical(r) => &mut r.stats,
            SqlOutcome::Horizontal(r) => &mut r.stats,
        }
    }
}

/// The percentage-query engine over a catalog.
///
/// ```
/// use pa_core::{PercentageEngine, SqlOutcome};
/// use pa_storage::{Catalog, DataType, Schema, Table, Value};
///
/// let catalog = Catalog::new();
/// let schema = Schema::from_pairs(&[("state", DataType::Str), ("amt", DataType::Float)])
///     .unwrap()
///     .into_shared();
/// let mut f = Table::empty(schema);
/// f.push_row(&[Value::str("CA"), Value::Float(30.0)]).unwrap();
/// f.push_row(&[Value::str("TX"), Value::Float(70.0)]).unwrap();
/// catalog.create_table("sales", f).unwrap();
///
/// let engine = PercentageEngine::new(&catalog);
/// let out = engine
///     .execute_sql("SELECT state, Vpct(amt) FROM sales GROUP BY state ORDER BY state;")
///     .unwrap();
/// let table = out.table();
/// let t = table.read();
/// assert_eq!(t.get(0, 1), Value::Float(0.3));
/// assert_eq!(t.get(1, 1), Value::Float(0.7));
/// ```
#[derive(Debug)]
pub struct PercentageEngine<'a> {
    catalog: &'a Catalog,
    counter: AtomicU64,
    reuse_temps: bool,
    guard: ResourceGuard,
    clock: Arc<dyn Clock>,
    deadline: Option<Duration>,
    temp_cleanup: bool,
    read_only: AtomicBool,
}

impl<'a> PercentageEngine<'a> {
    /// Engine that reuses one set of temporary-table names (`tmp_Fk`, ...),
    /// replacing them per query — the right mode for benchmarks and
    /// single-threaded use.
    pub fn new(catalog: &'a Catalog) -> PercentageEngine<'a> {
        PercentageEngine {
            catalog,
            counter: AtomicU64::new(0),
            reuse_temps: true,
            guard: ResourceGuard::unlimited(),
            clock: pa_engine::SystemClock::shared(),
            deadline: None,
            temp_cleanup: false,
            read_only: AtomicBool::new(false),
        }
    }

    /// Engine that mints fresh temporary names per query (`q3_Fk`, ...),
    /// keeping every intermediate inspectable. This is also the mode for
    /// concurrent callers: the atomic counter gives every in-flight query
    /// a collision-free namespace.
    pub fn with_unique_temps(catalog: &'a Catalog) -> PercentageEngine<'a> {
        PercentageEngine {
            reuse_temps: false,
            ..PercentageEngine::new(catalog)
        }
    }

    /// Attach a [`ResourceGuard`] metering every query this engine runs.
    /// The row budget applies *per top-level query* — each `execute_sql` /
    /// `vpct` / `horizontal` call runs under a fresh meter derived from this
    /// guard, so a long-lived engine never exhausts its budget across
    /// queries. The attached handle accumulates the total rows charged
    /// (for observability) and cancels all in-flight and future queries.
    /// Clone the guard before attaching to keep a handle for cancellation:
    ///
    /// ```
    /// use pa_core::{PercentageEngine, ResourceGuard};
    /// let catalog = pa_storage::Catalog::new();
    /// let guard = ResourceGuard::with_row_budget(1_000_000);
    /// let engine = PercentageEngine::new(&catalog).with_guard(guard.clone());
    /// // `guard.cancel()` from any thread stops the engine's queries.
    /// ```
    pub fn with_guard(mut self, guard: ResourceGuard) -> Self {
        self.guard = guard;
        self
    }

    /// Default wall-clock deadline for every query this engine runs; each
    /// top-level call gets the full allowance, counted from when the call
    /// starts. Per-call [`QueryLimits`] and
    /// [`HorizontalOptions::deadline`] override it.
    pub fn with_deadline(mut self, allow: Duration) -> Self {
        self.deadline = Some(allow);
        self
    }

    /// Measure deadlines on an injected clock instead of the system
    /// monotonic clock — deterministic deadline tests use
    /// [`pa_engine::TestClock`] here.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Drop each query's temporary tables from the catalog after the query
    /// succeeds (they are always dropped when it fails). Result tables stay
    /// readable through the returned handles — dropping unregisters the
    /// name without freeing shared data. The serving layer enables this so
    /// a long-lived catalog does not accrete per-query namespaces.
    pub fn with_temp_cleanup(mut self) -> Self {
        self.temp_cleanup = true;
        self
    }

    /// The guard metering this engine's queries.
    pub fn guard(&self) -> &ResourceGuard {
        &self.guard
    }

    /// The engine-level default deadline, if any.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The catalog this engine runs against.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// Serve as a read-only replica: every DML helper returns
    /// [`CoreError::ReadOnlyReplica`]. Read queries still run (they may
    /// create temporary tables, which are not user DML).
    pub fn with_read_only(self) -> Self {
        self.read_only.store(true, Ordering::Relaxed);
        self
    }

    /// Flip replica mode at runtime — failover promotes a replica's engine
    /// to primary by clearing this flag (`&self`: the serving layer shares
    /// the engine across threads).
    pub fn set_read_only(&self, read_only: bool) {
        self.read_only.store(read_only, Ordering::Relaxed);
    }

    /// Whether DML is currently refused.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Relaxed)
    }

    /// The write gate every DML helper passes: replica mode first (typed
    /// core error), then the catalog's split-brain seal (a deposed primary
    /// surfaces [`pa_storage::StorageError::Sealed`]).
    fn ensure_primary(&self) -> Result<()> {
        if self.is_read_only() {
            return Err(CoreError::ReadOnlyReplica);
        }
        self.catalog.ensure_writable()?;
        Ok(())
    }

    /// Append `rows` to `table` through the primary write path — WAL-logged
    /// bulk insert via the catalog's invalidation funnel, then a checkpoint
    /// if the cut policy is due. Returns the table's new row count.
    pub fn append_rows(&self, table: &str, rows: &[Vec<pa_storage::Value>]) -> Result<u64> {
        self.ensure_primary()?;
        let shared = self.catalog.table(table)?;
        let total = {
            let mut t = shared.write();
            let start = t.num_rows();
            t.push_rows(rows)?;
            self.catalog
                .with_wal_mutating(table, |w| w.log_bulk_insert(table, &t, start))?;
            t.num_rows() as u64
        };
        self.catalog.maybe_checkpoint();
        Ok(total)
    }

    /// Update one row's cells in place through the primary write path,
    /// logging before/after images (the expensive per-row WAL path the
    /// paper's UPDATE asymmetry measures).
    pub fn update_cells(
        &self,
        table: &str,
        row: usize,
        cols: &[usize],
        values: &[pa_storage::Value],
    ) -> Result<()> {
        self.ensure_primary()?;
        let shared = self.catalog.table(table)?;
        {
            let mut t = shared.write();
            if row >= t.num_rows() {
                return Err(pa_storage::StorageError::RowOutOfBounds {
                    index: row,
                    len: t.num_rows(),
                }
                .into());
            }
            let before: Vec<pa_storage::Value> = cols
                .iter()
                .map(|&c| {
                    if c >= t.num_columns() {
                        return Err(pa_storage::StorageError::ColumnNotFound(format!(
                            "column index {c} out of range for {table}"
                        )));
                    }
                    Ok(t.column(c).get(row))
                })
                .collect::<std::result::Result<_, _>>()?;
            t.set_cells(row, cols, values)?;
            self.catalog
                .with_wal_mutating(table, |w| w.log_update(table, row, cols, &before, values))?;
        }
        self.catalog.maybe_checkpoint();
        Ok(())
    }

    fn prefix(&self) -> String {
        if self.reuse_temps {
            "tmp_".to_string()
        } else {
            format!("q{}_", self.counter.fetch_add(1, Ordering::Relaxed))
        }
    }

    /// Pin `table` at the current catalog epoch and rewrite the reference
    /// to the snapshot's hidden alias, so the whole query scans one frozen
    /// version while concurrent writers keep mutating the live table. The
    /// returned guard must outlive the query: dropping it releases the
    /// pin. `None` (name untouched) when the table is absent — the query
    /// then surfaces its own typed not-found error downstream.
    fn pin_source(&self, table: &mut String) -> Option<Arc<pa_storage::SnapshotView>> {
        let view = self.catalog.pin_table(table)?;
        *table = view.alias().to_string();
        Some(view)
    }

    /// [`PercentageEngine::pin_source`] for either query family.
    fn pin_query(&self, query: &mut Query) -> Option<Arc<pa_storage::SnapshotView>> {
        let table = match query {
            Query::Vertical(q) => &mut q.table,
            Query::Horizontal(q) => &mut q.table,
        };
        self.pin_source(table)
    }

    /// The fault boundary every top-level query runs inside.
    ///
    /// Mints one temp-table prefix for the whole query (WHERE views,
    /// intermediates and result share the namespace), derives a per-query
    /// guard layering the per-call limits over the engine defaults, catches
    /// panics that escape the plan (converting them to
    /// [`CoreError::WorkerPanicked`] and cancelling the guard so sibling
    /// workers stop), and guarantees the catalog is swept of this query's
    /// temporaries on every failure path. Returns the closure's value plus
    /// the rows this query charged against its guard.
    fn run_query<T>(
        &self,
        op: &str,
        limits: QueryLimits,
        opt_deadline: Option<Duration>,
        f: impl FnOnce(&str, &ResourceGuard) -> Result<T>,
    ) -> Result<(T, u64)> {
        let (v, charged, _) = self.run_query_traced(op, limits, opt_deadline, None, f)?;
        Ok((v, charged))
    }

    /// [`PercentageEngine::run_query`] with an optional per-query tracer:
    /// when `Some`, the query runs with a root `query` span open and the
    /// tracer riding on the per-query guard, so every operator underneath
    /// records child spans. The drained [`TraceReport`] comes back alongside
    /// the result — also on the error path's `None`, since a failed query
    /// drops its report with it.
    fn run_query_traced<T>(
        &self,
        op: &str,
        limits: QueryLimits,
        opt_deadline: Option<Duration>,
        tracer: Option<Tracer>,
        f: impl FnOnce(&str, &ResourceGuard) -> Result<T>,
    ) -> Result<(T, u64, Option<TraceReport>)> {
        let prefix = self.prefix();
        let allow = limits.deadline.or(opt_deadline).or(self.deadline);
        let deadline = allow.map(|d| Deadline::with_clock(d, Arc::clone(&self.clock)));
        let mut qguard = self.guard.per_query_limited(limits.row_budget, deadline);
        if qguard.is_unlimited() {
            // No limits anywhere: still meter the query so `rows_charged`
            // reports its cost and a panic can cancel surviving workers.
            qguard = ResourceGuard::counting();
        }
        if let Some(t) = &tracer {
            qguard = qguard.with_tracer(t.clone());
        }
        // The root span must open before any operator span and close after
        // the last one, so operator timestamps land inside it.
        let root = tracer.as_ref().map(|t| t.span("query"));
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&prefix, &qguard)))
            .unwrap_or_else(|p| {
                // A panic on the query's own thread (parallel workers catch
                // their own): contain it and stop any surviving workers.
                qguard.cancel();
                Err(CoreError::WorkerPanicked {
                    operator: op.to_string(),
                    payload: pa_engine::error::panic_payload(p),
                })
            });
        drop(root);
        let report = tracer.as_ref().map(Tracer::take_report);
        let charged = qguard.rows_charged();
        match out {
            Ok(v) => {
                if self.temp_cleanup {
                    self.catalog.drop_prefixed(&prefix);
                }
                Ok((v, charged, report))
            }
            Err(e) => {
                // Scope guard: a failed query must not leak temporaries,
                // whatever stage it died in.
                self.catalog.drop_prefixed(&prefix);
                Err(e)
            }
        }
    }

    /// Heuristic vertical evaluation under an externally supplied prefix
    /// and guard. Multi-term queries (`m > 1`) evaluate bottom-up on the
    /// dimension lattice (SIGMOD §3.1: "partial aggregations need to be
    /// computed bottom-up based on the dimension lattice").
    fn eval_vertical(
        &self,
        q: &VpctQuery,
        prefix: &str,
        guard: &ResourceGuard,
    ) -> Result<QueryResult> {
        if q.terms.len() > 1 {
            return crate::lattice::eval_vpct_lattice_guarded(self.catalog, q, prefix, guard);
        }
        let strat = choose_vpct_strategy(self.catalog, q);
        eval_vpct_guarded(self.catalog, q, &strat, prefix, guard)
    }

    /// Evaluate a vertical percentage query with the recommended strategy.
    pub fn vpct(&self, q: &VpctQuery) -> Result<QueryResult> {
        self.vpct_limited(q, QueryLimits::none())
    }

    /// [`PercentageEngine::vpct`] with per-call limits.
    pub fn vpct_limited(&self, q: &VpctQuery, limits: QueryLimits) -> Result<QueryResult> {
        let mut q = q.clone();
        let _pin = self.pin_source(&mut q.table);
        let (mut r, charged) = self.run_query("vpct", limits, None, |prefix, guard| {
            self.eval_vertical(&q, prefix, guard)
        })?;
        r.stats.rows_charged = charged;
        Ok(r)
    }

    /// Evaluate a batch of percentage queries with one shared summary
    /// (SIGMOD §6 future work). See [`crate::lattice::eval_vpct_batch`].
    pub fn vpct_batch(&self, queries: &[VpctQuery]) -> Result<Vec<QueryResult>> {
        let mut queries: Vec<VpctQuery> = queries.to_vec();
        let _pins: Vec<_> = queries
            .iter_mut()
            .map(|q| self.pin_source(&mut q.table))
            .collect();
        let (results, _) =
            self.run_query("vpct_batch", QueryLimits::none(), None, |prefix, guard| {
                crate::lattice::eval_vpct_batch_guarded(self.catalog, &queries, prefix, guard)
            })?;
        Ok(results)
    }

    /// Evaluate a vertical percentage query with an explicit strategy.
    pub fn vpct_with(&self, q: &VpctQuery, strat: &VpctStrategy) -> Result<QueryResult> {
        let mut q = q.clone();
        let _pin = self.pin_source(&mut q.table);
        let (mut r, charged) =
            self.run_query("vpct", QueryLimits::none(), None, |prefix, guard| {
                eval_vpct_guarded(self.catalog, &q, strat, prefix, guard)
            })?;
        r.stats.rows_charged = charged;
        Ok(r)
    }

    /// Evaluate with explicit strategy and missing-row handling.
    pub fn vpct_with_missing(
        &self,
        q: &VpctQuery,
        strat: &VpctStrategy,
        missing: MissingRows,
    ) -> Result<QueryResult> {
        let mut q = q.clone();
        // PreProcess pads the *live* fact table in place; pinning would
        // redirect the pad into the frozen alias, corrupting the snapshot
        // and losing the pad. That mode runs unpinned by design.
        let _pin = if matches!(missing, MissingRows::PreProcess) {
            None
        } else {
            self.pin_source(&mut q.table)
        };
        let (mut r, charged) = self.run_query(
            "vpct",
            QueryLimits::none(),
            None,
            |prefix, guard| match missing {
                MissingRows::Ignore => eval_vpct_guarded(self.catalog, &q, strat, prefix, guard),
                MissingRows::PreProcess => {
                    let mut stats = pa_engine::ExecStats::default();
                    preprocess_pad(self.catalog, &q, &mut stats)?;
                    let mut result = eval_vpct_guarded(self.catalog, &q, strat, prefix, guard)?;
                    result.stats += stats;
                    Ok(result)
                }
                MissingRows::PostProcess => {
                    let mut result = eval_vpct_guarded(self.catalog, &q, strat, prefix, guard)?;
                    let mut stats = pa_engine::ExecStats::default();
                    postprocess_pad(self.catalog, &q, &result, &mut stats)?;
                    result.stats += stats;
                    Ok(result)
                }
            },
        )?;
        r.stats.rows_charged = charged;
        Ok(r)
    }

    /// Evaluate a vertical percentage query through the OLAP window-function
    /// baseline (the comparison of SIGMOD Table 6).
    pub fn vpct_olap(&self, q: &VpctQuery) -> Result<QueryResult> {
        let mut q = q.clone();
        let _pin = self.pin_source(&mut q.table);
        let (r, _) = self.run_query("vpct_olap", QueryLimits::none(), None, |prefix, _| {
            eval_vpct_olap(self.catalog, &q, prefix)
        })?;
        Ok(r)
    }

    /// Evaluate a horizontal query, picking the CASE source heuristically.
    pub fn horizontal(&self, q: &HorizontalQuery) -> Result<HorizontalResult> {
        let strategy = choose_horizontal_strategy(self.catalog, q)?;
        self.horizontal_limited(
            q,
            &HorizontalOptions::with_strategy(strategy),
            QueryLimits::none(),
        )
    }

    /// Evaluate a horizontal query with explicit options.
    pub fn horizontal_with(
        &self,
        q: &HorizontalQuery,
        opts: &HorizontalOptions,
    ) -> Result<HorizontalResult> {
        self.horizontal_limited(q, opts, QueryLimits::none())
    }

    /// [`PercentageEngine::horizontal_with`] with per-call limits. The
    /// deadline precedence is `limits` > [`HorizontalOptions::deadline`] >
    /// the engine default.
    pub fn horizontal_limited(
        &self,
        q: &HorizontalQuery,
        opts: &HorizontalOptions,
        limits: QueryLimits,
    ) -> Result<HorizontalResult> {
        let mut q = q.clone();
        let _pin = self.pin_source(&mut q.table);
        let (mut r, charged) =
            self.run_query("horizontal", limits, opts.deadline, |prefix, guard| {
                eval_horizontal_guarded(self.catalog, &q, opts, prefix, guard)
            })?;
        r.stats.rows_charged = charged;
        Ok(r)
    }

    /// Parse, validate and execute a SQL statement in the percentage
    /// dialect. A `WHERE` clause is applied to the fact table first ("F can
    /// be a temporary table resulting from some query", SIGMOD §2); an
    /// `ORDER BY` clause sorts the materialized result (result rows "can be
    /// returned in the order given by GROUP BY").
    pub fn execute_sql(&self, sql: &str) -> Result<SqlOutcome> {
        self.execute_sql_limited(sql, QueryLimits::none())
    }

    /// [`PercentageEngine::execute_sql`] with per-call limits — the serving
    /// layer's entry point for session budgets and deadlines.
    pub fn execute_sql_limited(&self, sql: &str, limits: QueryLimits) -> Result<SqlOutcome> {
        let stmt = pa_sql::parse(sql)?;
        let mut query = from_sql(&stmt)?;
        let _pin = self.pin_query(&mut query);
        let (mut outcome, charged) =
            self.run_query("execute_sql", limits, None, |prefix, guard| {
                let mut query = query;
                self.apply_where(&stmt, &mut query, prefix, guard)?;
                let outcome = match query {
                    Query::Vertical(q) => {
                        SqlOutcome::Vertical(self.eval_vertical(&q, prefix, guard)?)
                    }
                    Query::Horizontal(q) => {
                        let strategy = choose_horizontal_strategy(self.catalog, &q)?;
                        let opts = HorizontalOptions::with_strategy(strategy);
                        SqlOutcome::Horizontal(eval_horizontal_guarded(
                            self.catalog,
                            &q,
                            &opts,
                            prefix,
                            guard,
                        )?)
                    }
                };
                apply_order(&outcome, &stmt.order_by, guard)?;
                Ok(outcome)
            })?;
        outcome.stats_mut().rows_charged = charged;
        Ok(outcome)
    }

    /// [`PercentageEngine::execute_sql_limited`] under a per-query tracer:
    /// returns the outcome together with the drained per-operator
    /// [`TraceReport`]. This is the programmatic face of
    /// [`PercentageEngine::explain_analyze_sql`]; the bench binaries use it
    /// to attach per-operator breakdowns to their JSON artifacts. The input
    /// may be a bare SELECT or an `EXPLAIN [ANALYZE]` form — the query under
    /// the wrapper is what runs.
    pub fn execute_sql_traced(
        &self,
        sql: &str,
        limits: QueryLimits,
    ) -> Result<(SqlOutcome, TraceReport)> {
        let stmt = pa_sql::parse_statement(sql)?.select().clone();
        let mut query = from_sql(&stmt)?;
        let _pin = self.pin_query(&mut query);
        let tracer = Tracer::enabled(Arc::clone(&self.clock));
        let (mut outcome, charged, report) = self.run_query_traced(
            "execute_sql",
            limits,
            None,
            Some(tracer),
            |prefix, guard| {
                let mut query = query;
                self.apply_where(&stmt, &mut query, prefix, guard)?;
                let outcome = match query {
                    Query::Vertical(q) => {
                        SqlOutcome::Vertical(self.eval_vertical(&q, prefix, guard)?)
                    }
                    Query::Horizontal(q) => {
                        let strategy = choose_horizontal_strategy(self.catalog, &q)?;
                        let opts = HorizontalOptions::with_strategy(strategy);
                        SqlOutcome::Horizontal(eval_horizontal_guarded(
                            self.catalog,
                            &q,
                            &opts,
                            prefix,
                            guard,
                        )?)
                    }
                };
                apply_order(&outcome, &stmt.order_by, guard)?;
                Ok(outcome)
            },
        )?;
        outcome.stats_mut().rows_charged = charged;
        Ok((outcome, report.unwrap_or_default()))
    }

    /// Evaluate a vertical query under a per-query tracer, returning the
    /// per-operator [`TraceReport`] alongside the result.
    pub fn vpct_traced(&self, q: &VpctQuery) -> Result<(QueryResult, TraceReport)> {
        let mut q = q.clone();
        let _pin = self.pin_source(&mut q.table);
        let tracer = Tracer::enabled(Arc::clone(&self.clock));
        let (mut r, charged, report) = self.run_query_traced(
            "vpct",
            QueryLimits::none(),
            None,
            Some(tracer),
            |prefix, guard| self.eval_vertical(&q, prefix, guard),
        )?;
        r.stats.rows_charged = charged;
        Ok((r, report.unwrap_or_default()))
    }

    /// Evaluate a horizontal query with explicit options under a per-query
    /// tracer, returning the per-operator [`TraceReport`] alongside the
    /// result.
    pub fn horizontal_traced(
        &self,
        q: &HorizontalQuery,
        opts: &HorizontalOptions,
    ) -> Result<(HorizontalResult, TraceReport)> {
        let mut q = q.clone();
        let _pin = self.pin_source(&mut q.table);
        let tracer = Tracer::enabled(Arc::clone(&self.clock));
        let (mut r, charged, report) = self.run_query_traced(
            "horizontal",
            QueryLimits::none(),
            opts.deadline,
            Some(tracer),
            |prefix, guard| eval_horizontal_guarded(self.catalog, &q, opts, prefix, guard),
        )?;
        r.stats.rows_charged = charged;
        Ok((r, report.unwrap_or_default()))
    }

    /// Like [`PercentageEngine::execute_sql`] but with explicit strategy
    /// knobs for each family.
    pub fn execute_sql_with(
        &self,
        sql: &str,
        vstrat: &VpctStrategy,
        hopts: &HorizontalOptions,
    ) -> Result<SqlOutcome> {
        self.execute_sql_with_limited(sql, vstrat, hopts, QueryLimits::none())
    }

    /// [`PercentageEngine::execute_sql_with`] with per-call limits.
    pub fn execute_sql_with_limited(
        &self,
        sql: &str,
        vstrat: &VpctStrategy,
        hopts: &HorizontalOptions,
        limits: QueryLimits,
    ) -> Result<SqlOutcome> {
        let stmt = pa_sql::parse(sql)?;
        let mut query = from_sql(&stmt)?;
        let _pin = self.pin_query(&mut query);
        // An options-level deadline only applies to the family it belongs
        // to.
        let opt_deadline = match &query {
            Query::Horizontal(_) => hopts.deadline,
            Query::Vertical(_) => None,
        };
        let (mut outcome, charged) =
            self.run_query("execute_sql", limits, opt_deadline, |prefix, guard| {
                let mut query = query;
                self.apply_where(&stmt, &mut query, prefix, guard)?;
                let outcome = match query {
                    Query::Vertical(q) => SqlOutcome::Vertical(eval_vpct_guarded(
                        self.catalog,
                        &q,
                        vstrat,
                        prefix,
                        guard,
                    )?),
                    Query::Horizontal(q) => SqlOutcome::Horizontal(eval_horizontal_guarded(
                        self.catalog,
                        &q,
                        hopts,
                        prefix,
                        guard,
                    )?),
                };
                apply_order(&outcome, &stmt.order_by, guard)?;
                Ok(outcome)
            })?;
        outcome.stats_mut().rows_charged = charged;
        Ok(outcome)
    }

    /// Materialize the WHERE-filtered fact table as a view-like temporary
    /// (in the query's own prefix namespace, so failure cleanup sweeps it)
    /// and point the query at it.
    fn apply_where(
        &self,
        stmt: &pa_sql::SelectStmt,
        query: &mut Query,
        prefix: &str,
        guard: &ResourceGuard,
    ) -> Result<()> {
        let Some(pred) = &stmt.where_clause else {
            return Ok(());
        };
        let table = match query {
            Query::Vertical(q) => q.table.clone(),
            Query::Horizontal(q) => q.table.clone(),
        };
        let shared = self.catalog.table(&table)?;
        let filtered = {
            let f = shared.read();
            let expr = crate::query::ast_to_expr(pred, f.schema())?;
            let mut stats = pa_engine::ExecStats::default();
            let mut span = guard.span("filter");
            span.add_rows(f.num_rows() as u64);
            span.add_morsels(1);
            pa_engine::filter(&f, &expr, &mut stats)?
        };
        let view_name = format!("{prefix}Fwhere");
        self.catalog.create_or_replace_table(&view_name, filtered);
        match query {
            Query::Vertical(q) => q.table = view_name,
            Query::Horizontal(q) => q.table = view_name,
        }
        Ok(())
    }

    /// Generated SQL for a statement without executing it (the paper's
    /// code-generator use case). The transcript ends with a comment line
    /// describing the guard the statement would run under.
    pub fn explain_sql(&self, sql: &str) -> Result<Vec<String>> {
        let stmt = pa_sql::parse_statement(sql)?.select().clone();
        let mut stmts = self.plan_statements(&stmt)?;
        stmts.push(self.guard_comment(None));
        Ok(stmts)
    }

    /// `EXPLAIN ANALYZE`: the generated plan of
    /// [`PercentageEngine::explain_sql`], *executed* under a per-query
    /// tracer, with one `-- op` line per recorded span (actual rows, morsels
    /// and nanoseconds) and the `-- guard:` line rendered **after** the run
    /// so `charged=` reports the rows the query actually metered — the
    /// pre-run rendering read 0 for every plan. Accepts a bare SELECT or the
    /// `EXPLAIN [ANALYZE]` forms.
    pub fn explain_analyze_sql(&self, sql: &str) -> Result<Vec<String>> {
        let stmt = pa_sql::parse_statement(sql)?.select().clone();
        let mut lines = self.plan_statements(&stmt)?;
        let (outcome, report) = self.execute_sql_traced(&stmt.to_string(), QueryLimits::none())?;
        if let Some(root) = report.root() {
            render_span_lines(&report, root, 0, &mut lines);
        }
        let stats = outcome.stats();
        lines.push(format!(
            "-- aggregates: holistic_lanes={} sketch_spills={}",
            stats.holistic_lanes, stats.sketch_spills
        ));
        lines.push(self.guard_comment(Some(stats.rows_charged)));
        Ok(lines)
    }

    /// The generated-SQL transcript for a statement (shared by the explain
    /// entry points).
    fn plan_statements(&self, stmt: &pa_sql::SelectStmt) -> Result<Vec<String>> {
        Ok(match from_sql(stmt)? {
            Query::Vertical(q) => {
                let strat = choose_vpct_strategy(self.catalog, &q);
                crate::codegen::vpct_statements(&q, &strat)
            }
            Query::Horizontal(q) => {
                let strategy = choose_horizontal_strategy(self.catalog, &q)?;
                crate::codegen::horizontal_statements(&q, strategy, None)
            }
        })
    }

    /// The `-- guard:` transcript line. `charged` is `Some` only on the
    /// post-run path (`EXPLAIN ANALYZE`), where the per-query meter has a
    /// real total; plain `EXPLAIN` never executes, so it has no `charged=`
    /// field to misreport.
    fn guard_comment(&self, charged: Option<u64>) -> String {
        let budget = self
            .guard
            .row_budget()
            .map_or_else(|| "none".to_string(), |b| b.to_string());
        let deadline = self
            .deadline
            .or_else(|| self.guard.deadline())
            .map_or_else(|| "none".to_string(), |d| format!("{}ms", d.as_millis()));
        let temps = if self.reuse_temps { "reuse" } else { "unique" };
        let mut line = format!("-- guard: budget={budget} deadline={deadline} temps={temps}");
        if let Some(c) = charged {
            line.push_str(&format!(" charged={c}"));
        }
        line
    }
}

/// One `-- op` transcript line per span, children indented under parents.
fn render_span_lines(
    report: &TraceReport,
    span: &pa_engine::SpanRecord,
    depth: usize,
    out: &mut Vec<String>,
) {
    out.push(format!(
        "-- op {:indent$}{}: rows={} morsels={} time={}ns",
        "",
        span.name(),
        span.rows,
        span.morsels,
        span.duration_ns(),
        indent = depth * 2,
    ));
    for child in report.children(span.id) {
        render_span_lines(report, child, depth + 1, out);
    }
}

/// Sort a freshly materialized result in place by the named columns.
fn apply_order(outcome: &SqlOutcome, order_by: &[String], guard: &ResourceGuard) -> Result<()> {
    if order_by.is_empty() {
        return Ok(());
    }
    let shared = outcome.table();
    let mut t = shared.write();
    let mut span = guard.span("sort");
    span.add_rows(t.num_rows() as u64);
    span.add_morsels(1);
    let cols = order_by
        .iter()
        .map(|n| {
            t.schema()
                .index_of(n)
                .map_err(|_| CoreError::InvalidQuery(format!("ORDER BY column {n} not in result")))
        })
        .collect::<Result<Vec<_>>>()?;
    *t = t.sorted_by(&cols);
    Ok(())
}

// Re-exported here so `use pa_core::executor::*` is self-sufficient.
pub use crate::missing::MissingRows as Missing;

impl CoreError {
    /// Helper: whether this error is a usage-rule violation (parse-level or
    /// structural), as opposed to an execution failure.
    pub fn is_rule_violation(&self) -> bool {
        matches!(
            self,
            CoreError::Sql(pa_sql::SqlError::Rule(_)) | CoreError::InvalidQuery(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertical::tests::sales_catalog;
    use pa_storage::Value;

    #[test]
    fn sql_round_trip_vertical() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let out = engine
            .execute_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city;")
            .unwrap();
        let SqlOutcome::Vertical(r) = out else {
            panic!("expected vertical")
        };
        let t = r.snapshot().sorted_by(&[0, 1]);
        assert_eq!(t.get(0, 2), Value::Float(23.0 / 106.0));
    }

    #[test]
    fn sql_round_trip_horizontal() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let out = engine
            .execute_sql(
                "SELECT state, Hpct(salesAmt BY city), sum(salesAmt) FROM sales GROUP BY state;",
            )
            .unwrap();
        let SqlOutcome::Horizontal(r) = out else {
            panic!("expected horizontal")
        };
        let t = r.snapshot().sorted_by(&[0]);
        assert_eq!(t.num_columns(), 6, "state + 4 cities + total");
        // CA row, cities sorted: Dallas 0%, Houston 0%, LA 23/106, SF 83/106.
        assert_eq!(t.get(0, 1), Value::Float(0.0));
        assert_eq!(t.get(0, 3), Value::Float(23.0 / 106.0));
        assert_eq!(t.get(0, 4), Value::Float(83.0 / 106.0));
        assert_eq!(t.get(0, 5), Value::Float(106.0));
    }

    #[test]
    fn rule_violations_surface() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let err = engine
            .execute_sql("SELECT Vpct(salesAmt BY city) FROM sales")
            .unwrap_err();
        assert!(err.is_rule_violation(), "{err}");
    }

    #[test]
    fn unique_temp_mode_keeps_intermediates() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::with_unique_temps(&catalog);
        engine
            .execute_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city")
            .unwrap();
        engine
            .execute_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city")
            .unwrap();
        assert!(catalog.contains("q0_FV"));
        assert!(catalog.contains("q1_FV"));
    }

    #[test]
    fn reuse_mode_replaces_temps() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        engine
            .execute_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city")
            .unwrap();
        let names_before = catalog.table_names().len();
        engine
            .execute_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city")
            .unwrap();
        assert_eq!(catalog.table_names().len(), names_before);
    }

    #[test]
    fn explain_returns_generated_statements() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let stmts = engine
            .explain_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city")
            .unwrap();
        assert!(stmts[0].starts_with("INSERT INTO Fk"));
        assert!(!catalog.contains("tmp_Fk"), "explain does not execute");
    }

    #[test]
    fn missing_row_modes_via_engine() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let q = VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"]);
        let plain = engine
            .vpct_with_missing(&q, &VpctStrategy::best(), MissingRows::Ignore)
            .unwrap();
        let n_plain = plain.snapshot().num_rows();
        let padded = engine
            .vpct_with_missing(&q, &VpctStrategy::best(), MissingRows::PostProcess)
            .unwrap();
        // 2 states × 4 cities = 8 cells; 4 exist.
        assert_eq!(n_plain, 4);
        assert_eq!(padded.snapshot().num_rows(), 8);
    }

    #[test]
    fn where_clause_filters_the_fact_table() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let out = engine
            .execute_sql(
                "SELECT state,city,Vpct(salesAmt BY city) FROM sales \
                 WHERE state = 'TX' GROUP BY state,city;",
            )
            .unwrap();
        let t = out.table();
        let t = t.read().sorted_by(&[0, 1]);
        assert_eq!(t.num_rows(), 2, "only TX cities");
        assert_eq!(t.get(0, 2), Value::Float(85.0 / 149.0)); // Dallas
        assert_eq!(t.get(1, 2), Value::Float(64.0 / 149.0)); // Houston

        // Numeric predicate on the measure.
        let out = engine
            .execute_sql(
                "SELECT state, Hpct(salesAmt BY city) FROM sales \
                 WHERE salesAmt > 30 GROUP BY state;",
            )
            .unwrap();
        let t = out.table();
        assert!(t.read().num_rows() >= 1);

        // Unknown column in WHERE errors.
        assert!(engine
            .execute_sql(
                "SELECT state,city,Vpct(salesAmt BY city) FROM sales \
                 WHERE bogus = 1 GROUP BY state,city"
            )
            .is_err());
    }

    #[test]
    fn order_by_sorts_the_result() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let out = engine
            .execute_sql(
                "SELECT state,city,Vpct(salesAmt BY city) AS pct FROM sales \
                 GROUP BY state,city ORDER BY pct;",
            )
            .unwrap();
        let t = out.table();
        let t = t.read();
        let mut prev = f64::NEG_INFINITY;
        for r in 0..t.num_rows() {
            let p = t.get(r, 2).as_f64().unwrap();
            assert!(p >= prev, "row {r} out of order");
            prev = p;
        }
        // Positional and plain-column ORDER BY.
        assert!(engine
            .execute_sql(
                "SELECT state,city,Vpct(salesAmt BY city) FROM sales \
                 GROUP BY state,city ORDER BY 1,2"
            )
            .is_ok());
        // Unknown ORDER BY column errors.
        assert!(engine
            .execute_sql(
                "SELECT state,city,Vpct(salesAmt BY city) FROM sales \
                 GROUP BY state,city ORDER BY bogus"
            )
            .is_err());
    }

    #[test]
    fn multi_term_sql_goes_through_the_lattice() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let out = engine
            .execute_sql(
                "SELECT state, city, Vpct(salesAmt BY city) AS within_state, \
                 Vpct(salesAmt BY state, city) AS global_share \
                 FROM sales GROUP BY state, city;",
            )
            .unwrap();
        let t = out.table();
        let t = t.read().sorted_by(&[0, 1]);
        assert_eq!(t.get(0, 2), Value::Float(23.0 / 106.0));
        assert_eq!(t.get(0, 3), Value::Float(23.0 / 255.0));
    }

    #[test]
    fn batch_api_through_engine() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let q1 = VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"]);
        let q2 = VpctQuery::single("sales", &["state"], "salesAmt", &[]);
        let results = engine.vpct_batch(&[q1, q2]).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].snapshot().num_rows(), 2);
    }

    #[test]
    fn row_budget_stops_a_runaway_pivot_with_a_typed_error() {
        let catalog = sales_catalog();
        // Budget below even one scan of the 10-row fact table: the Hpct
        // pivot must fail fast with the typed error, not run to completion.
        let engine = PercentageEngine::new(&catalog).with_guard(ResourceGuard::with_row_budget(3));
        let err = engine
            .execute_sql(
                "SELECT state, Hpct(salesAmt BY city), sum(salesAmt) FROM sales GROUP BY state;",
            )
            .unwrap_err();
        assert!(
            matches!(err, CoreError::BudgetExceeded { budget: 3, .. }),
            "expected BudgetExceeded, got {err}"
        );
        // The same budget also protects the vertical path.
        let err = engine
            .execute_sql("SELECT state,city,Vpct(salesAmt BY city) FROM sales GROUP BY state,city;")
            .unwrap_err();
        assert!(matches!(err, CoreError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn budget_is_per_query_not_engine_lifetime() {
        let catalog = sales_catalog();
        // A budget that comfortably covers one query but not many: every
        // repetition must succeed, because each top-level call runs under a
        // fresh meter derived from the engine's guard.
        let guard = ResourceGuard::with_row_budget(500);
        let engine = PercentageEngine::new(&catalog).with_guard(guard.clone());
        engine
            .execute_sql("SELECT state, Vpct(salesAmt) FROM sales GROUP BY state;")
            .unwrap();
        let one_query = guard.rows_charged();
        assert!(one_query > 0, "the query's work was metered");
        for i in 0..30 {
            engine
                .execute_sql("SELECT state, Vpct(salesAmt) FROM sales GROUP BY state;")
                .unwrap_or_else(|e| panic!("query {i} hit the engine-lifetime budget: {e}"));
        }
        assert_eq!(
            guard.rows_charged(),
            31 * one_query,
            "the attached handle metered cumulative work across queries"
        );
    }

    #[test]
    fn generous_budget_answers_normally_and_meters_work() {
        let catalog = sales_catalog();
        let guard = ResourceGuard::with_row_budget(1_000_000);
        let engine = PercentageEngine::new(&catalog).with_guard(guard.clone());
        let out = engine
            .execute_sql(
                "SELECT state, Hpct(salesAmt BY city), sum(salesAmt) FROM sales GROUP BY state;",
            )
            .unwrap();
        assert_eq!(out.table().read().num_columns(), 6);
        assert!(guard.rows_charged() > 0, "the query's work was metered");
    }

    #[test]
    fn cancellation_surfaces_as_core_cancelled() {
        let catalog = sales_catalog();
        let guard = ResourceGuard::with_row_budget(u64::MAX);
        let engine = PercentageEngine::new(&catalog).with_guard(guard.clone());
        engine.guard().cancel();
        let err = engine
            .execute_sql("SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state;")
            .unwrap_err();
        assert!(matches!(err, CoreError::Cancelled), "{err}");
    }

    #[test]
    fn budget_guards_the_lattice_and_batch_paths() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog).with_guard(ResourceGuard::with_row_budget(3));
        // Multi-term query routes through the lattice.
        let err = engine
            .execute_sql(
                "SELECT state, city, Vpct(salesAmt BY city) AS a, \
                 Vpct(salesAmt BY state, city) AS b FROM sales GROUP BY state, city;",
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::BudgetExceeded { .. }), "{err}");
        // Batch evaluation shares the same budget.
        let q1 = VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"]);
        let q2 = VpctQuery::single("sales", &["state"], "salesAmt", &[]);
        let err = engine.vpct_batch(&[q1, q2]).unwrap_err();
        assert!(matches!(err, CoreError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn explain_analyze_reports_ops_and_post_run_guard_charge() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let sql = "SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state;";
        let lines = engine
            .explain_analyze_sql(&format!("EXPLAIN ANALYZE {sql}"))
            .unwrap();
        let ops: Vec<&String> = lines.iter().filter(|l| l.starts_with("-- op")).collect();
        assert!(
            ops.first().is_some_and(|l| l.contains("query:")),
            "{lines:?}"
        );
        assert!(ops.len() >= 2, "operator spans under the query: {ops:?}");
        assert!(
            ops.iter()
                .all(|l| l.contains("rows=") && l.contains("morsels=") && l.contains("time=")),
            "{ops:?}"
        );
        // Regression (the pre-run rendering would report 0 here): the
        // `-- guard:` line is built after execution, so `charged=` is the
        // per-query meter's actual total.
        let guard_line = lines.last().unwrap();
        assert!(guard_line.starts_with("-- guard:"), "{guard_line}");
        // The aggregate-protocol summary precedes the guard line.
        let agg_line = &lines[lines.len() - 2];
        assert!(
            agg_line.starts_with("-- aggregates: holistic_lanes=")
                && agg_line.contains("sketch_spills="),
            "{agg_line}"
        );
        let charged: u64 = guard_line
            .split("charged=")
            .nth(1)
            .expect("charged= field present")
            .parse()
            .unwrap();
        let out = engine.execute_sql(sql).unwrap();
        assert_eq!(charged, out.stats().rows_charged);
        assert!(charged > 0);
        // A bare SELECT is accepted too, and plain EXPLAIN (which never
        // executes) has no `charged=` field to misreport.
        assert!(engine
            .explain_analyze_sql(sql)
            .unwrap()
            .iter()
            .any(|l| l.starts_with("-- op")));
        let plain = engine.explain_sql(sql).unwrap();
        assert!(plain.last().unwrap().starts_with("-- guard:"));
        assert!(!plain.last().unwrap().contains("charged="));
    }

    #[test]
    fn traced_hpct_op_rows_and_times_cover_the_query_serial_and_parallel() {
        use crate::strategy::{HorizontalStrategy, ParallelMode};
        use pa_engine::SpanRecord;
        use pa_storage::{DataType, Schema, Table};

        // Large enough that `Threads(4)` crosses the serial threshold and
        // actually fans out (4 default-size morsels).
        let n: usize = 260_096;
        let schema = Schema::from_pairs(&[
            ("state", DataType::Int),
            ("city", DataType::Int),
            ("amt", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut f = Table::empty(schema);
        for i in 0..n {
            f.push_row(&[
                Value::Int((i % 7) as i64),
                Value::Int((i % 13) as i64),
                Value::Float((i % 97) as f64),
            ])
            .unwrap();
        }
        let catalog = Catalog::new();
        catalog.create_table("facts", f).unwrap();
        let engine = PercentageEngine::new(&catalog);
        let q = crate::query::HorizontalQuery::hpct("facts", &["state"], "amt", &["city"]);

        for (mode, want_workers) in [
            (ParallelMode::Serial, false),
            (ParallelMode::Threads(4), true),
        ] {
            let opts = HorizontalOptions {
                parallel: mode,
                ..HorizontalOptions::with_strategy(HorizontalStrategy::CaseFromFv)
            };
            let (r, report) = engine.horizontal_traced(&q, &opts).unwrap();
            let root = report.root().expect("root span recorded");
            assert_eq!(root.label, "query");

            // Per-operator rows fold up to exactly the rows the query's
            // guard metered.
            assert_eq!(
                report.rows_inclusive(root.id),
                r.stats.rows_charged,
                "{mode:?}: span rows must sum to the query total"
            );
            assert!(r.stats.rows_charged >= n as u64, "{mode:?}");

            // Every span's window nests inside the query's window, and the
            // top-level operators (which run sequentially) account for the
            // bulk of — and never more than — the query's wall clock.
            for s in report.spans() {
                assert!(
                    s.start_ns >= root.start_ns && s.end_ns <= root.end_ns,
                    "{mode:?}: span {} outside the query window",
                    s.name()
                );
            }
            let op_ns: u64 = report.children(root.id).map(SpanRecord::duration_ns).sum();
            assert!(op_ns <= report.total_ns(), "{mode:?}");
            assert!(
                2 * op_ns >= report.total_ns(),
                "{mode:?}: operators cover at least half the query ({op_ns} of {})",
                report.total_ns()
            );

            let workers = report
                .spans()
                .iter()
                .filter(|s| s.label == "worker")
                .count();
            if want_workers {
                assert!(workers >= 2, "parallel run records worker spans");
            } else {
                assert_eq!(workers, 0, "serial run records no worker spans");
            }
        }
    }

    #[test]
    fn olap_via_engine_matches() {
        let catalog = sales_catalog();
        let engine = PercentageEngine::new(&catalog);
        let q = VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"]);
        let fast = engine.vpct(&q).unwrap();
        let olap = engine.vpct_olap(&q).unwrap();
        let a: Vec<Vec<Value>> = fast.snapshot().sorted_by(&[0, 1]).rows().collect();
        let b: Vec<Vec<Value>> = olap.snapshot().sorted_by(&[0, 1]).rows().collect();
        assert_eq!(a, b);
    }
}
