//! SQL code generation.
//!
//! The paper's experiments were driven by "a Java program that generated SQL
//! code to evaluate percentage queries given a query with the proposed
//! aggregate functions". This module is that program: given a typed query
//! and a strategy, it emits the exact multi-statement SQL the paper shows.
//! The executor attaches the transcript to every result so plans stay
//! inspectable, and golden tests pin the generated text to the paper's
//! statements.

use crate::query::{HorizontalQuery, VpctQuery};
use crate::strategy::{FjSource, HorizontalStrategy, Materialization, VpctStrategy};
use pa_storage::Value;

fn join_names(names: &[String]) -> String {
    names.join(", ")
}

fn render_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

/// Boolean conjunction `Dh = vh AND .. AND Dk = vk` for one combination.
fn combo_predicate(by: &[String], combo: &[Value]) -> String {
    by.iter()
        .zip(combo)
        .map(|(c, v)| format!("{c} = {}", render_literal(v)))
        .collect::<Vec<_>>()
        .join(" and ")
}

/// Placeholder predicate used before the distinct combinations are known.
fn combo_placeholder(by: &[String], i: usize) -> String {
    by.iter()
        .map(|c| format!("{c} = v_{c}_{i}"))
        .collect::<Vec<_>>()
        .join(" and ")
}

/// Generated statements for a vertical percentage plan (SIGMOD §3.1).
pub fn vpct_statements(q: &VpctQuery, strat: &VpctStrategy) -> Vec<String> {
    let mut out = Vec::new();
    let k_list = join_names(&q.group_by);

    // Fk.
    let sums: Vec<String> = q
        .terms
        .iter()
        .map(|t| format!("sum({}) AS {}", t.measure.sql(), t.name))
        .chain(q.extra.iter().map(|e| {
            let arg = e
                .measure
                .as_ref()
                .map(|m| m.sql())
                .unwrap_or_else(|| "*".into());
            let f = e.func.sql_name().replace("(*)", "");
            format!("{f}({arg}) AS {}", e.name)
        }))
        .collect();
    out.push(format!(
        "INSERT INTO Fk SELECT {k_list}, {} FROM {} GROUP BY {k_list};",
        sums.join(", "),
        q.table
    ));
    if strat.synchronized_scan && strat.fj_source == FjSource::FromF {
        out.push("-- Fk and every Fj computed in one synchronized scan of F".into());
    }

    // Fj per term.
    for (t, term) in q.terms.iter().enumerate() {
        let j = q.totals_key(term);
        let src = match strat.fj_source {
            FjSource::FromF => q.table.as_str(),
            FjSource::FromFk => "Fk",
        };
        let measure = match strat.fj_source {
            FjSource::FromF => term.measure.sql(),
            FjSource::FromFk => term.name.clone(),
        };
        if j.is_empty() {
            out.push(format!(
                "INSERT INTO Fj{t} SELECT sum({measure}) AS total FROM {src};"
            ));
        } else {
            let j_list = join_names(&j);
            out.push(format!(
                "INSERT INTO Fj{t} SELECT {j_list}, sum({measure}) AS total \
                 FROM {src} GROUP BY {j_list};"
            ));
        }
        if strat.subkey_index && !j.is_empty() {
            out.push(format!("CREATE INDEX ON Fj{t} ({});", join_names(&j)));
        }
    }

    // FV.
    match strat.materialization {
        Materialization::Insert => {
            let mut select_cols: Vec<String> =
                q.group_by.iter().map(|c| format!("Fk.{c}")).collect();
            let mut from = vec!["Fk".to_string()];
            let mut preds: Vec<String> = Vec::new();
            for (t, term) in q.terms.iter().enumerate() {
                let j = q.totals_key(term);
                select_cols.push(format!(
                    "CASE WHEN Fj{t}.total <> 0 THEN Fk.{n}/Fj{t}.total ELSE NULL END AS {n}",
                    n = term.name
                ));
                from.push(format!("Fj{t}"));
                for c in &j {
                    preds.push(format!("Fk.{c} = Fj{t}.{c}"));
                }
            }
            for e in &q.extra {
                select_cols.push(format!("Fk.{}", e.name));
            }
            let where_clause = if preds.is_empty() {
                String::new()
            } else {
                format!(" WHERE {}", preds.join(" AND "))
            };
            out.push(format!(
                "INSERT INTO FV SELECT {} FROM {}{};",
                select_cols.join(", "),
                from.join(", "),
                where_clause
            ));
        }
        Materialization::Update => {
            for (t, term) in q.terms.iter().enumerate() {
                let j = q.totals_key(term);
                let preds: Vec<String> = j.iter().map(|c| format!("Fk.{c} = Fj{t}.{c}")).collect();
                let where_clause = if preds.is_empty() {
                    String::new()
                } else {
                    format!(" WHERE {}", preds.join(" AND "))
                };
                out.push(format!(
                    "UPDATE Fk SET {n} = CASE WHEN Fj{t}.total <> 0 \
                     THEN Fk.{n}/Fj{t}.total ELSE NULL END{w}; /* FV = Fk */",
                    n = term.name,
                    w = where_clause
                ));
            }
        }
    }
    out
}

/// Generated statements for a horizontal plan (SIGMOD §3.2 / DMKD §3.4).
/// When the distinct subgroup combinations are already known, pass them for
/// concrete CASE/WHERE text; otherwise symbolic placeholders are emitted.
pub fn horizontal_statements(
    q: &HorizontalQuery,
    strategy: HorizontalStrategy,
    combos: Option<&[Vec<Value>]>,
) -> Vec<String> {
    let mut out = Vec::new();
    let j_list = join_names(&q.group_by);
    let group_clause = if q.group_by.is_empty() {
        String::new()
    } else {
        format!(" GROUP BY {j_list}")
    };
    let select_keys = if q.group_by.is_empty() {
        String::new()
    } else {
        format!("{j_list}, ")
    };

    // FV for the indirect strategies: one vertical aggregation at D1..Dk.
    if strategy.uses_fv() {
        let mut all_cols: Vec<String> = q.group_by.clone();
        for term in &q.terms {
            for b in &term.by {
                if !all_cols.iter().any(|c| c.eq_ignore_ascii_case(b)) {
                    all_cols.push(b.clone());
                }
            }
        }
        let k_list = join_names(&all_cols);
        let aggs: Vec<String> = q
            .terms
            .iter()
            .map(|t| {
                let f = t.func.sql_name().replace("(*)", "");
                format!("{f}({}) AS {}", t.measure.sql(), t.name)
            })
            .collect();
        out.push(format!(
            "INSERT INTO FV SELECT {k_list}, {} FROM {} GROUP BY {k_list};",
            aggs.join(", "),
            q.table
        ));
    }
    let src = if strategy.uses_fv() {
        "FV"
    } else {
        q.table.as_str()
    };

    match strategy {
        HorizontalStrategy::CaseDirect | HorizontalStrategy::CaseFromFv => {
            for term in &q.terms {
                out.push(format!(
                    "SELECT DISTINCT {} FROM {src};",
                    join_names(&term.by)
                ));
            }
            let mut cells: Vec<String> = Vec::new();
            for term in &q.terms {
                let measure = if strategy.uses_fv() {
                    term.name.clone()
                } else {
                    term.measure.sql()
                };
                let n = combos.map(|c| c.len()).unwrap_or(2);
                for i in 0..n {
                    let pred = match combos {
                        Some(cs) => combo_predicate(&term.by, &cs[i]),
                        None => combo_placeholder(&term.by, i + 1),
                    };
                    let cell = format!("sum(CASE WHEN {pred} THEN {measure} ELSE NULL END)");
                    if term.percentage {
                        cells.push(format!("{cell}/sum({measure})"));
                    } else {
                        cells.push(cell);
                    }
                }
                if combos.is_none() {
                    cells.push("..".into());
                }
            }
            for e in &q.extra {
                let arg = e
                    .measure
                    .as_ref()
                    .map(|m| m.sql())
                    .unwrap_or_else(|| "*".into());
                cells.push(format!("{}({arg})", e.func.sql_name().replace("(*)", "")));
            }
            out.push(format!(
                "INSERT INTO FH SELECT {select_keys}{} FROM {src}{group_clause};",
                cells.join(", ")
            ));
        }
        HorizontalStrategy::SpjDirect | HorizontalStrategy::SpjFromFv => {
            out.push(format!(
                "INSERT INTO F0 SELECT DISTINCT {j_list} FROM {src};"
            ));
            for term in &q.terms {
                out.push(format!(
                    "SELECT DISTINCT {} FROM {src};",
                    join_names(&term.by)
                ));
                let measure = if strategy.uses_fv() {
                    term.name.clone()
                } else {
                    term.measure.sql()
                };
                let n = combos.map(|c| c.len()).unwrap_or(2);
                for i in 0..n {
                    let pred = match combos {
                        Some(cs) => combo_predicate(&term.by, &cs[i]),
                        None => combo_placeholder(&term.by, i + 1),
                    };
                    out.push(format!(
                        "INSERT INTO F{idx} SELECT {select_keys}sum({measure}) \
                         FROM {src} WHERE {pred}{group_clause};",
                        idx = i + 1
                    ));
                }
                if combos.is_none() {
                    out.push("..".into());
                }
            }
            let n = combos.map(|c| c.len()).unwrap_or(2);
            let join_chain: Vec<String> = (1..=n)
                .map(|i| {
                    let on: Vec<String> = q
                        .group_by
                        .iter()
                        .map(|c| format!("F0.{c} = F{i}.{c}"))
                        .collect();
                    format!(
                        "LEFT OUTER JOIN F{i} ON {}",
                        if on.is_empty() {
                            "1 = 1".to_string()
                        } else {
                            on.join(" and ")
                        }
                    )
                })
                .collect();
            out.push(format!(
                "INSERT INTO FH SELECT {keys}{cols} FROM F0 {joins};",
                keys = if q.group_by.is_empty() {
                    String::new()
                } else {
                    q.group_by
                        .iter()
                        .map(|c| format!("F0.{c}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                        + ", "
                },
                cols = (1..=n)
                    .map(|i| format!("F{i}.A"))
                    .collect::<Vec<_>>()
                    .join(", "),
                joins = join_chain.join(" ")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::VpctQuery;

    fn q() -> VpctQuery {
        VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"])
    }

    #[test]
    fn vpct_best_strategy_statements_match_paper_shape() {
        let stmts = vpct_statements(&q(), &VpctStrategy::best());
        assert!(stmts[0].starts_with("INSERT INTO Fk SELECT state, city, sum(salesAmt)"));
        assert!(stmts[0].ends_with("GROUP BY state, city;"));
        // Fj from Fk (the recommended source).
        assert!(stmts[1].contains("FROM Fk"), "{}", stmts[1]);
        assert!(stmts[1].contains("GROUP BY state"));
        // Subkey index.
        assert!(stmts[2].starts_with("CREATE INDEX ON Fj0 (state)"));
        // Division with the zero guard.
        let fv = stmts.last().unwrap();
        assert!(fv.starts_with("INSERT INTO FV"));
        assert!(fv.contains("CASE WHEN Fj0.total <> 0"));
        assert!(fv.contains("WHERE Fk.state = Fj0.state"));
    }

    #[test]
    fn vpct_update_strategy_emits_update() {
        let stmts = vpct_statements(&q(), &VpctStrategy::with_update());
        let last = stmts.last().unwrap();
        assert!(last.starts_with("UPDATE Fk SET"));
        assert!(last.contains("/* FV = Fk */"));
    }

    #[test]
    fn vpct_from_f_reads_fact_table_twice() {
        let stmts = vpct_statements(&q(), &VpctStrategy::fj_from_f());
        assert!(stmts[1].contains("FROM sales"), "{}", stmts[1]);
    }

    #[test]
    fn global_totals_have_no_group_by() {
        let q = VpctQuery::single("sales", &["state"], "salesAmt", &[]);
        let stmts = vpct_statements(&q, &VpctStrategy::best());
        let fj = &stmts[1];
        assert!(!fj.contains("GROUP BY"), "{fj}");
    }

    #[test]
    fn horizontal_case_direct_with_known_combos() {
        let q = HorizontalQuery::hpct("sales", &["store"], "salesAmt", &["dweek"]);
        let combos = vec![vec![Value::str("Mon")], vec![Value::str("Tue")]];
        let stmts = horizontal_statements(&q, HorizontalStrategy::CaseDirect, Some(&combos));
        assert!(stmts[0].starts_with("SELECT DISTINCT dweek FROM sales"));
        let ins = &stmts[1];
        assert!(
            ins.contains("sum(CASE WHEN dweek = 'Mon' THEN salesAmt ELSE NULL END)/sum(salesAmt)")
        );
        assert!(ins.contains("GROUP BY store"));
    }

    #[test]
    fn horizontal_indirect_prepends_fv() {
        let q = HorizontalQuery::hpct("sales", &["store"], "salesAmt", &["dweek"]);
        let stmts = horizontal_statements(&q, HorizontalStrategy::CaseFromFv, None);
        assert!(stmts[0].starts_with("INSERT INTO FV SELECT store, dweek, sum(salesAmt)"));
        assert!(stmts.last().unwrap().contains("FROM FV"));
    }

    #[test]
    fn spj_emits_outer_join_chain() {
        let q = HorizontalQuery::hagg(
            "sales",
            &["store"],
            pa_engine::AggFunc::Sum,
            "salesAmt",
            &["dweek"],
        );
        let combos = vec![vec![Value::str("Mon")], vec![Value::str("Tue")]];
        let stmts = horizontal_statements(&q, HorizontalStrategy::SpjDirect, Some(&combos));
        assert!(stmts[0].starts_with("INSERT INTO F0 SELECT DISTINCT store"));
        assert!(stmts[2].contains("WHERE dweek = 'Mon'"));
        let last = stmts.last().unwrap();
        assert!(last.contains("LEFT OUTER JOIN F1 ON F0.store = F1.store"));
        assert!(last.contains("LEFT OUTER JOIN F2"));
    }

    #[test]
    fn string_literals_escaped() {
        let q = HorizontalQuery::hpct("f", &["s"], "a", &["d"]);
        let combos = vec![vec![Value::str("it's")]];
        let stmts = horizontal_statements(&q, HorizontalStrategy::CaseDirect, Some(&combos));
        assert!(stmts[1].contains("d = 'it''s'"), "{}", stmts[1]);
    }
}
