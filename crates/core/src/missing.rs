//! Missing-row handling for vertical percentage queries (SIGMOD §3.1).
//!
//! "This happens when there are no rows for some subset of the grouping
//! columns based on the k−j BY columns" — a cube cell with no rows produces
//! no result row, though 0% would be expected (e.g. a store with no Monday
//! transactions). The paper offers two optional remedies:
//!
//! * **pre-processing** — insert the missing rows into `F` itself with a
//!   zero measure. Correct for measures, but it corrupts row-count
//!   percentages (`Vpct(1)`) — the paper says so, and a test pins it.
//! * **post-processing** — insert the missing rows into the result `FV`
//!   with 0% (or NULL when the group's total was zero/NULL).
//!
//! Both are defined for single-term queries, matching the paper's framing.

use crate::error::{CoreError, Result};
use crate::query::{Measure, VpctQuery};
use crate::vertical::QueryResult;
use pa_engine::{distinct_keys, insert_into, ExecStats, RowKeyMap};
use pa_storage::{Catalog, Table, Value};

/// The user's choice for the missing-row issue. Optional by design: "the
/// user may not always want to insert missing rows".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissingRows {
    /// Leave missing cells absent (the default).
    #[default]
    Ignore,
    /// Pad `F` before evaluation.
    PreProcess,
    /// Pad `FV` after evaluation.
    PostProcess,
}

fn single_term(q: &VpctQuery) -> Result<()> {
    if q.terms.len() != 1 {
        return Err(CoreError::Unsupported(
            "missing-row handling is defined for single-term percentage queries".into(),
        ));
    }
    Ok(())
}

/// Pre-processing: insert one zero-measure row into `F` for every
/// (existing `D1..Dj` group) × (existing `Dj+1..Dk` combination) with no
/// rows. Returns the number of rows inserted.
pub fn preprocess_pad(catalog: &Catalog, q: &VpctQuery, stats: &mut ExecStats) -> Result<u64> {
    q.validate()?;
    single_term(q)?;
    let term = &q.terms[0];
    let totals = q.totals_key(term);
    if totals.is_empty() || term.by.is_empty() {
        return Ok(0); // Global totals or no subgrouping: nothing can be missing.
    }

    let f_shared = catalog.table(&q.table)?;
    let (j_keys, by_keys, existing, schema, j_cols, by_cols) = {
        let f = f_shared.read();
        let schema = f.schema().clone();
        let j_cols: Vec<usize> = totals
            .iter()
            .map(|n| schema.index_of(n).map_err(CoreError::from))
            .collect::<Result<Vec<_>>>()?;
        let by_cols: Vec<usize> = term
            .by
            .iter()
            .map(|n| schema.index_of(n).map_err(CoreError::from))
            .collect::<Result<Vec<_>>>()?;
        let j_keys = distinct_keys(&f, &j_cols, stats)?;
        let by_keys = distinct_keys(&f, &by_cols, stats)?;
        let all_cols: Vec<usize> = j_cols.iter().chain(&by_cols).copied().collect();
        let mut existing = RowKeyMap::new();
        for row in 0..f.num_rows() {
            existing.get_or_insert_row(&f, &all_cols, row, stats);
        }
        (j_keys, by_keys, existing, schema, j_cols, by_cols)
    };

    let measure_col = match &term.measure {
        Measure::Column(name) => Some(schema.index_of(name)?),
        _ => None,
    };

    let mut pad = Table::empty(schema.clone());
    let mut probe: Vec<Value> = Vec::new();
    for j in &j_keys {
        for b in &by_keys {
            probe.clear();
            probe.extend(j.iter().cloned());
            probe.extend(b.iter().cloned());
            if existing.lookup_key(&probe, stats).is_some() {
                continue;
            }
            let mut row: Vec<Value> = vec![Value::Null; schema.len()];
            for (c, v) in j_cols.iter().zip(j) {
                row[*c] = v.clone();
            }
            for (c, v) in by_cols.iter().zip(b) {
                row[*c] = v.clone();
            }
            if let Some(mc) = measure_col {
                row[mc] = Value::Int(0);
            }
            pad.push_row(&row)?;
        }
    }
    let inserted = pad.num_rows() as u64;
    if inserted > 0 {
        insert_into(catalog, &q.table, &pad, stats)?;
    }
    Ok(inserted)
}

/// Post-processing: append one row per missing (group × combination) to the
/// already-computed `FV` with a 0% percentage — or NULL when every existing
/// percentage of that group is NULL (zero/NULL group total). Extra
/// aggregate columns of padded rows are NULL. Returns rows appended.
pub fn postprocess_pad(
    catalog: &Catalog,
    q: &VpctQuery,
    result: &QueryResult,
    stats: &mut ExecStats,
) -> Result<u64> {
    q.validate()?;
    single_term(q)?;
    let term = &q.terms[0];
    let totals = q.totals_key(term);
    if totals.is_empty() || term.by.is_empty() {
        return Ok(0);
    }

    // Distinct Dj+1..Dk combinations come from F (the paper: "this requires
    // getting all distinct combinations ... from F").
    let by_keys = {
        let f_shared = catalog.table(&q.table)?;
        let f = f_shared.read();
        let by_cols: Vec<usize> = term
            .by
            .iter()
            .map(|n| f.schema().index_of(n).map_err(CoreError::from))
            .collect::<Result<Vec<_>>>()?;
        distinct_keys(&f, &by_cols, stats)?
    };

    let fv = result.table.read();
    let fv_schema = fv.schema().clone();
    let j_cols: Vec<usize> = totals
        .iter()
        .map(|n| fv_schema.index_of(n).map_err(CoreError::from))
        .collect::<Result<Vec<_>>>()?;
    let by_cols: Vec<usize> = term
        .by
        .iter()
        .map(|n| fv_schema.index_of(n).map_err(CoreError::from))
        .collect::<Result<Vec<_>>>()?;
    let pct_col = fv_schema.index_of(&term.name)?;

    // Existing (group, combo) pairs, plus per-group "has any non-NULL pct".
    let all_cols: Vec<usize> = j_cols.iter().chain(&by_cols).copied().collect();
    let mut existing = RowKeyMap::new();
    let mut groups = RowKeyMap::new();
    let mut group_has_value: Vec<bool> = Vec::new();
    for row in 0..fv.num_rows() {
        existing.get_or_insert_row(&fv, &all_cols, row, stats);
        let g = groups.get_or_insert_row(&fv, &j_cols, row, stats);
        if g == group_has_value.len() {
            group_has_value.push(false);
        }
        if !fv.get(row, pct_col).is_null() {
            group_has_value[g] = true;
        }
    }

    let mut pad = Table::empty(fv_schema.clone());
    let mut probe: Vec<Value> = Vec::new();
    for (g, key) in groups.keys().iter().enumerate() {
        let j = key.clone();
        for b in &by_keys {
            probe.clear();
            probe.extend(j.iter().cloned());
            probe.extend(b.iter().cloned());
            if existing.lookup_key(&probe, stats).is_some() {
                continue;
            }
            let mut row: Vec<Value> = vec![Value::Null; fv_schema.len()];
            for (c, v) in j_cols.iter().zip(&j) {
                row[*c] = v.clone();
            }
            for (c, v) in by_cols.iter().zip(b) {
                row[*c] = v.clone();
            }
            row[pct_col] = if group_has_value[g] {
                Value::Float(0.0)
            } else {
                Value::Null
            };
            pad.push_row(&row)?;
        }
    }
    drop(fv);

    let appended = pad.num_rows() as u64;
    if appended > 0 {
        let mut target = result.table.write();
        let start = target.num_rows();
        target.extend_from(&pad)?;
        catalog.with_wal_mutating("FV", |w| w.log_bulk_insert("FV", &target, start))?;
        stats.rows_materialized += appended;
        stats.statements += 1;
    }
    Ok(appended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::VpctStrategy;
    use crate::vertical::eval_vpct;
    use pa_storage::{DataType, Schema};

    /// Stores × days with a hole: store 4 has no Monday rows.
    fn catalog() -> Catalog {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("store", DataType::Int),
            ("dweek", DataType::Str),
            ("amt", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for (s, d, a) in [(2, "Mon", 100.0), (2, "Tue", 300.0), (4, "Tue", 800.0)] {
            t.push_row(&[Value::Int(s), Value::str(d), Value::Float(a)])
                .unwrap();
        }
        catalog.create_table("sales", t).unwrap();
        catalog
    }

    fn q() -> VpctQuery {
        VpctQuery::single("sales", &["store", "dweek"], "amt", &["dweek"])
    }

    #[test]
    fn ignore_leaves_hole() {
        let catalog = catalog();
        let result = eval_vpct(&catalog, &q(), &VpctStrategy::best(), "i_").unwrap();
        assert_eq!(result.snapshot().num_rows(), 3, "store 4 Monday missing");
    }

    #[test]
    fn postprocess_appends_zero_percent_rows() {
        let catalog = catalog();
        let result = eval_vpct(&catalog, &q(), &VpctStrategy::best(), "p_").unwrap();
        let mut stats = ExecStats::default();
        let added = postprocess_pad(&catalog, &q(), &result, &mut stats).unwrap();
        assert_eq!(added, 1);
        let t = result.snapshot().sorted_by(&[0, 1]);
        assert_eq!(t.num_rows(), 4);
        // store 4, Mon → 0%.
        assert_eq!(t.get(2, 0), Value::Int(4));
        assert_eq!(t.get(2, 1), Value::str("Mon"));
        assert_eq!(t.get(2, 2), Value::Float(0.0));
        // store 4, Tue untouched: 100%.
        assert_eq!(t.get(3, 2), Value::Float(1.0));
    }

    #[test]
    fn postprocess_null_group_pads_null() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("d", DataType::Str),
            ("a", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::Int(1), Value::str("x"), Value::Float(2.0)])
            .unwrap();
        t.push_row(&[Value::Int(2), Value::str("y"), Value::Null])
            .unwrap();
        catalog.create_table("f", t).unwrap();
        let q = VpctQuery::single("f", &["g", "d"], "a", &["d"]);
        let result = eval_vpct(&catalog, &q, &VpctStrategy::best(), "n_").unwrap();
        let mut stats = ExecStats::default();
        postprocess_pad(&catalog, &q, &result, &mut stats).unwrap();
        let t = result.snapshot().sorted_by(&[0, 1]);
        assert_eq!(t.num_rows(), 4);
        // Group 1 has a real total → its padded "y" cell is 0%.
        assert_eq!(t.get(1, 2), Value::Float(0.0));
        // Group 2's total is NULL → its padded "x" cell is NULL.
        assert_eq!(t.get(2, 2), Value::Null);
    }

    #[test]
    fn preprocess_pads_fact_table_and_fixes_measures() {
        let catalog = catalog();
        let mut stats = ExecStats::default();
        let added = preprocess_pad(&catalog, &q(), &mut stats).unwrap();
        assert_eq!(added, 1);
        assert_eq!(catalog.table("sales").unwrap().read().num_rows(), 4);
        let result = eval_vpct(&catalog, &q(), &VpctStrategy::best(), "pre_").unwrap();
        let t = result.snapshot().sorted_by(&[0, 1]);
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.get(2, 2), Value::Float(0.0), "store 4 Monday now 0%");
    }

    #[test]
    fn preprocess_corrupts_row_count_percentages_as_paper_warns() {
        // The paper: padding "causes F to produce an incorrect row count %
        // using Vpct(1)". Verify the caveat is real.
        let catalog = catalog();
        preprocess_pad(&catalog, &q(), &mut ExecStats::default()).unwrap();
        let count_q =
            VpctQuery::single("sales", &["store", "dweek"], Measure::LitInt(1), &["dweek"]);
        let result = eval_vpct(&catalog, &count_q, &VpctStrategy::best(), "c_").unwrap();
        let t = result.snapshot().sorted_by(&[0, 1]);
        // Store 4 truly has 1 transaction (Tue) → true Tue share is 100%,
        // but the padded Monday row drags it to 50%.
        assert_eq!(t.get(3, 0), Value::Int(4));
        assert_eq!(t.get(3, 2), Value::Float(0.5));
    }

    #[test]
    fn handlers_reject_multi_term_queries() {
        let catalog = catalog();
        let mut q2 = q();
        q2.terms
            .push(crate::query::VpctTerm::new("amt", &["dweek"]));
        q2.terms[1].name = "second".into();
        assert!(matches!(
            preprocess_pad(&catalog, &q2, &mut ExecStats::default()),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn nothing_to_do_for_global_totals() {
        let catalog = catalog();
        let q = VpctQuery::single("sales", &["store"], "amt", &[]);
        assert_eq!(
            preprocess_pad(&catalog, &q, &mut ExecStats::default()).unwrap(),
            0
        );
    }
}
