//! Heuristic strategy selection — the papers' recommendations as code.
//!
//! SIGMOD §4.1 distills the experiments into rules of thumb:
//!
//! * vertical: "we recommend creating indexes on the common subkey of `Fk`
//!   and `Fj`, using INSERT instead of UPDATE ... and computing `Fj` from
//!   `Fk`" — i.e. [`VpctStrategy::best`], unconditionally.
//! * horizontal: "computing `FH` directly from `F` when there are no more
//!   than two columns in the list `Dj+1..Dk` and each of them has low
//!   selectivity, and computing `FH` from `FV` ... when there are three or
//!   more grouping columns or when the grouping columns have high
//!   selectivity."
//!
//! Selectivity is estimated by sampling distinct counts from a prefix of
//! the table (dictionary sizes give exact answers for string dimensions).

use crate::error::Result;
use crate::query::{HorizontalQuery, VpctQuery};
use crate::strategy::{HorizontalStrategy, ParallelMode, VpctStrategy};
use pa_engine::ParallelConfig;
use pa_storage::{Catalog, Column, FxHashSet, Table};

/// Distinct values of one column above which it counts as "high
/// selectivity". The paper's low-cardinality dimensions top out at
/// monthNo(12); the selective ones start at dept(100) and age(100).
pub const LOW_SELECTIVITY_MAX: usize = 32;

/// Estimated BY-domain size (product of per-column distinct counts) above
/// which a horizontal query routes through `FV` instead of evaluating the
/// CASE terms directly from `F`.
///
/// The paper's rule — direct only for "no more than two columns ... each of
/// them [with] low selectivity" — priced the per-row O(N) CASE chain. With
/// jump-table CASE evaluation (see [`pa_engine::DenseKeySpace`]) a direct
/// scan pays O(1) per row regardless of how many output columns the BY
/// domain expands to, so column count and per-column selectivity stop
/// mattering on their own; what is left is the width of the accumulator
/// block and the dispatch table, which grow with the *product* of the
/// distinct counts. Past this budget the jump table stops paying for
/// itself (and the result is about to hit `max_columns` anyway), so the
/// FV pre-aggregation — which shrinks the scanned input instead — wins.
pub const DIRECT_CELL_BUDGET: usize = 1024;

/// Rows sampled when estimating a column's distinct count.
const SAMPLE_ROWS: usize = 100_000;

/// Estimate the number of distinct values in a column by scanning a prefix
/// sample. Dictionary-encoded strings are answered exactly from the
/// dictionary. The estimate is a lower bound, which is the safe direction
/// for the "low selectivity" test.
pub fn estimate_distinct(table: &Table, col: usize) -> usize {
    estimate_distinct_up_to(table, col, LOW_SELECTIVITY_MAX)
}

/// [`estimate_distinct`] with a caller-chosen early-exit threshold: stops
/// scanning once more than `cap` distinct values have been seen, so the
/// result is exact below `cap` and a lower bound above it.
pub fn estimate_distinct_up_to(table: &Table, col: usize, cap: usize) -> usize {
    match table.column(col) {
        Column::Str { dict, .. } => dict.len(),
        column => {
            let n = table.num_rows().min(SAMPLE_ROWS);
            let mut seen: FxHashSet<Option<i64>> = FxHashSet::default();
            for row in 0..n {
                seen.insert(column.key_fragment(row));
                if seen.len() > cap {
                    // Early exit: already over the caller's threshold.
                    return seen.len();
                }
            }
            seen.len()
        }
    }
}

/// Pick the strategy for a vertical percentage query. Per the paper's
/// findings the recommended configuration dominates, so this is constant;
/// it exists as the seam where a cost model would plug in.
pub fn choose_vpct_strategy(_catalog: &Catalog, _q: &VpctQuery) -> VpctStrategy {
    VpctStrategy::best()
}

/// Resolve a [`ParallelMode`] against the input size: the requested worker
/// count (environment for `Auto`), with inputs below the serial threshold
/// always taking the exact serial code path. The engine re-checks the
/// threshold per operator; resolving here keeps one decision per query so
/// every aggregation pass of one evaluation agrees.
pub fn choose_parallelism(mode: ParallelMode, input_rows: usize) -> ParallelConfig {
    let config = match mode {
        ParallelMode::Auto => ParallelConfig::from_env(),
        ParallelMode::Serial => ParallelConfig::serial(),
        ParallelMode::Threads(n) => ParallelConfig::with_threads(n),
    };
    if config.effective_threads(input_rows) <= 1 {
        ParallelConfig {
            threads: 1,
            ..config
        }
    } else {
        config
    }
}

/// Pick the CASE evaluation source for a horizontal query.
///
/// The paper's rule ("direct from `F` for at most two low-selectivity
/// subgrouping columns, from `FV` otherwise") priced the O(N)-per-row CASE
/// chain that a SQL optimizer is stuck with. Our default evaluation is the
/// jump-table code path, where a direct scan costs O(1) per row however
/// many columns the BY list expands to — so the rule is recalibrated to
/// what still matters: the estimated BY-domain *cell count* per term. At
/// most [`DIRECT_CELL_BUDGET`] cells, the direct scan wins (one pass over
/// `F`, no `FV` materialization); past it, pre-aggregating into `FV`
/// shrinks the scanned input and the direct scan's dense structures would
/// not fit a cache-resident table anyway.
pub fn choose_horizontal_strategy(
    catalog: &Catalog,
    q: &HorizontalQuery,
) -> Result<HorizontalStrategy> {
    // Holistic aggregates cannot re-aggregate from FV at all.
    if q.terms.iter().any(|t| t.func.is_holistic()) || q.extra.iter().any(|e| e.func.is_holistic())
    {
        return Ok(HorizontalStrategy::CaseDirect);
    }
    let f_shared = catalog.table(&q.table)?;
    let f = f_shared.read();
    for term in &q.terms {
        let mut cells: usize = 1;
        for b in &term.by {
            let col = f.schema().index_of(b)?;
            // +1 for the NULL slot each dimension carries in the dense
            // encoding; saturating keeps huge domains from wrapping.
            let distinct = estimate_distinct_up_to(&f, col, DIRECT_CELL_BUDGET) + 1;
            cells = cells.saturating_mul(distinct);
            if cells > DIRECT_CELL_BUDGET {
                return Ok(HorizontalStrategy::CaseFromFv);
            }
        }
    }
    Ok(HorizontalStrategy::CaseDirect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{Catalog, DataType, Schema, Value};

    fn catalog(day_card: i64) -> Catalog {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("store", DataType::Int),
            ("day", DataType::Int),
            ("dept", DataType::Str),
            ("amt", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = pa_storage::Table::empty(schema);
        for i in 0..500i64 {
            t.push_row(&[
                Value::Int(i % 10),
                Value::Int(i % day_card),
                Value::str(format!("dept{}", i % 100)),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        catalog.create_table("sales", t).unwrap();
        catalog
    }

    #[test]
    fn distinct_estimates() {
        let catalog = catalog(7);
        let f = catalog.table("sales").unwrap();
        let t = f.read();
        assert_eq!(estimate_distinct(&t, 1), 7);
        assert_eq!(estimate_distinct(&t, 2), 100, "dictionary is exact");
        assert!(estimate_distinct(&t, 3) > LOW_SELECTIVITY_MAX);
    }

    #[test]
    fn low_selectivity_small_by_goes_direct() {
        let catalog = catalog(7);
        let q = crate::HorizontalQuery::hpct("sales", &["store"], "amt", &["day"]);
        assert_eq!(
            choose_horizontal_strategy(&catalog, &q).unwrap(),
            HorizontalStrategy::CaseDirect
        );
    }

    #[test]
    fn high_selectivity_small_domain_goes_direct() {
        // dept has 100 distinct values — "high selectivity" under the
        // paper's rule, which would have routed through FV. The jump-table
        // recalibration keeps it direct: 101 cells is far under
        // DIRECT_CELL_BUDGET and one O(1)-per-row scan of F beats
        // materializing FV first.
        let catalog = catalog(7);
        let q = crate::HorizontalQuery::hpct("sales", &["store"], "amt", &["dept"]);
        assert_eq!(
            choose_horizontal_strategy(&catalog, &q).unwrap(),
            HorizontalStrategy::CaseDirect
        );
    }

    #[test]
    fn over_budget_domain_goes_indirect() {
        // (100+1) dept slots × (11+1) day slots = 1212 cells > 1024.
        let catalog = catalog(11);
        let q = crate::HorizontalQuery::hpct("sales", &["store"], "amt", &["dept", "day"]);
        assert_eq!(
            choose_horizontal_strategy(&catalog, &q).unwrap(),
            HorizontalStrategy::CaseFromFv
        );
    }

    #[test]
    fn three_by_columns_over_budget_go_indirect() {
        // 11 × 3 × 101 = 3333 cells — three BY columns alone no longer
        // force FV, but this product blows the cell budget.
        let catalog = catalog(2);
        let mut q = crate::HorizontalQuery::hpct("sales", &[], "amt", &["store", "day", "dept"]);
        q.terms[0].by = vec!["store".into(), "day".into(), "dept".into()];
        assert_eq!(
            choose_horizontal_strategy(&catalog, &q).unwrap(),
            HorizontalStrategy::CaseFromFv
        );
    }

    #[test]
    fn three_low_cardinality_by_columns_go_direct() {
        // (10+1) store × (2+1) day × (2+1) day = 99 cells ≤ 1024: the
        // paper's hard two-column cutoff is gone.
        let catalog = catalog(2);
        let mut q = crate::HorizontalQuery::hpct("sales", &[], "amt", &["store", "day"]);
        q.terms[0].by = vec!["store".into(), "day".into(), "day".into()];
        assert_eq!(
            choose_horizontal_strategy(&catalog, &q).unwrap(),
            HorizontalStrategy::CaseDirect
        );
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(
            choose_parallelism(ParallelMode::Serial, 10_000_000).threads,
            1
        );
        let forced = choose_parallelism(ParallelMode::Threads(4), 10_000_000);
        assert_eq!(forced.threads, 4);
        assert_eq!(
            choose_parallelism(ParallelMode::Threads(4), 100).threads,
            1,
            "small inputs resolve to the serial path"
        );
    }

    #[test]
    fn vpct_choice_is_the_recommended_default() {
        let catalog = catalog(7);
        let q = crate::VpctQuery::single("sales", &["store", "day"], "amt", &["day"]);
        assert_eq!(choose_vpct_strategy(&catalog, &q), VpctStrategy::best());
    }
}
