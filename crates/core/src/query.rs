//! Typed percentage-query definitions.
//!
//! These are the validated, schema-resolved forms of the SQL statements the
//! papers write. They can be built directly (the programmatic API) or
//! converted from a parsed [`SelectStmt`] (the SQL API).

use crate::error::{CoreError, Result};
use pa_engine::AggFunc;
use pa_sql::{AggName, AstExpr, QueryKind, SelectItem, SelectStmt};
use pa_storage::Schema;

/// The measure expression `A`: a column of `F` or a literal
/// (`Vpct(1)` computes row-count percentages; `sum(1 BY ..)`/`max(1 BY ..)`
/// code categorical attributes).
#[derive(Debug, Clone, PartialEq)]
pub enum Measure {
    /// Column of the fact table.
    Column(String),
    /// Integer literal (usually `1`).
    LitInt(i64),
    /// Float literal.
    LitFloat(f64),
}

impl Measure {
    /// Resolve to an engine expression against `schema`.
    pub fn to_expr(&self, schema: &Schema) -> Result<pa_engine::Expr> {
        Ok(match self {
            Measure::Column(name) => pa_engine::Expr::col(schema, name)
                .map_err(|_| CoreError::InvalidQuery(format!("unknown measure column {name}")))?,
            Measure::LitInt(i) => pa_engine::Expr::lit(*i),
            Measure::LitFloat(x) => pa_engine::Expr::lit(*x),
        })
    }

    /// SQL rendering.
    pub fn sql(&self) -> String {
        match self {
            Measure::Column(name) => name.clone(),
            Measure::LitInt(i) => i.to_string(),
            Measure::LitFloat(x) => x.to_string(),
        }
    }

    /// Short label used in generated column names.
    pub fn label(&self) -> String {
        match self {
            Measure::Column(name) => name.clone(),
            Measure::LitInt(i) => format!("lit{i}"),
            Measure::LitFloat(x) => format!("lit{x}"),
        }
    }
}

impl From<&str> for Measure {
    fn from(s: &str) -> Self {
        Measure::Column(s.to_string())
    }
}

/// A non-percentage aggregate term carried alongside percentage terms
/// (SIGMOD rule 3: "vertical percentage aggregations can be combined with
/// other aggregations in the same statement").
#[derive(Debug, Clone, PartialEq)]
pub struct ExtraAgg {
    /// Aggregate function.
    pub func: AggFunc,
    /// Measure (`None` only for `count(*)`).
    pub measure: Option<Measure>,
    /// Output column name.
    pub name: String,
}

impl ExtraAgg {
    /// `sum(column) AS name`.
    pub fn sum(column: &str, name: &str) -> ExtraAgg {
        ExtraAgg {
            func: AggFunc::Sum,
            measure: Some(column.into()),
            name: name.to_string(),
        }
    }

    /// `count(*) AS name`.
    pub fn count_star(name: &str) -> ExtraAgg {
        ExtraAgg {
            func: AggFunc::CountStar,
            measure: None,
            name: name.to_string(),
        }
    }
}

/// One `Vpct(A BY Dj+1..Dk)` term.
#[derive(Debug, Clone, PartialEq)]
pub struct VpctTerm {
    /// Measure `A`.
    pub measure: Measure,
    /// BY columns (`Dj+1..Dk`). Must be a subset of the query's GROUP BY;
    /// empty means totals are computed over all rows of `F` (SIGMOD §3.1:
    /// "if no BY clause is present then all rows in F are used to compute
    /// totals" — the `BY = GROUP BY` corner is given the same global-total
    /// semantics, since both leave `D1..Dj` empty).
    pub by: Vec<String>,
    /// Output column name.
    pub name: String,
}

impl VpctTerm {
    /// Build a term with a generated output name.
    pub fn new(measure: impl Into<Measure>, by: &[&str]) -> VpctTerm {
        let measure = measure.into();
        let name = if by.is_empty() {
            format!("vpct_{}", measure.label())
        } else {
            format!("vpct_{}_by_{}", measure.label(), by.join("_"))
        };
        VpctTerm {
            measure,
            by: by.iter().map(|s| s.to_string()).collect(),
            name,
        }
    }
}

/// A vertical percentage query:
/// `SELECT D1..Dk, Vpct(..), .. FROM table GROUP BY D1..Dk`.
#[derive(Debug, Clone, PartialEq)]
pub struct VpctQuery {
    /// Fact table name in the catalog.
    pub table: String,
    /// GROUP BY columns `D1..Dk`.
    pub group_by: Vec<String>,
    /// Percentage terms (m ≥ 1).
    pub terms: Vec<VpctTerm>,
    /// Additional plain aggregates on the same GROUP BY.
    pub extra: Vec<ExtraAgg>,
}

impl VpctQuery {
    /// Single-term convenience constructor.
    pub fn single(
        table: &str,
        group_by: &[&str],
        measure: impl Into<Measure>,
        by: &[&str],
    ) -> VpctQuery {
        VpctQuery {
            table: table.to_string(),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            terms: vec![VpctTerm::new(measure, by)],
            extra: Vec::new(),
        }
    }

    /// Totals key of a term: `D1..Dj` = GROUP BY minus the term's BY list,
    /// in GROUP BY order. An absent BY clause means "all rows in F are used
    /// to compute totals" (SIGMOD §3.1), i.e. an empty totals key.
    pub fn totals_key(&self, term: &VpctTerm) -> Vec<String> {
        if term.by.is_empty() {
            return Vec::new();
        }
        self.group_by
            .iter()
            .filter(|g| !term.by.iter().any(|b| b.eq_ignore_ascii_case(g)))
            .cloned()
            .collect()
    }

    /// Structural validation (schema-independent).
    pub fn validate(&self) -> Result<()> {
        if self.group_by.is_empty() {
            return Err(CoreError::InvalidQuery(
                "Vpct requires a GROUP BY clause (rule 1)".into(),
            ));
        }
        if self.terms.is_empty() {
            return Err(CoreError::InvalidQuery("no Vpct terms".into()));
        }
        for term in &self.terms {
            for b in &term.by {
                if !self.group_by.iter().any(|g| g.eq_ignore_ascii_case(b)) {
                    return Err(CoreError::InvalidQuery(format!(
                        "Vpct BY column {b} is not in GROUP BY (rule 2)"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// One horizontal aggregation term `Hagg(A BY Dj+1..Dk [DEFAULT 0])` —
/// `Hpct` is the special case `func = Sum` with `percentage = true`.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizontalTerm {
    /// Underlying vertical aggregate applied per cell.
    pub func: AggFunc,
    /// Measure `A`.
    pub measure: Measure,
    /// Subgrouping columns (`Dj+1..Dk`); required, disjoint from GROUP BY.
    pub by: Vec<String>,
    /// Divide each cell by the group total of `measure` (the `Hpct`
    /// semantics). Only meaningful with `func = Sum`.
    pub percentage: bool,
    /// Missing cells become 0 instead of NULL (`DEFAULT 0`).
    pub default_zero: bool,
    /// Prefix for generated cell column names.
    pub name: String,
}

impl HorizontalTerm {
    /// `Hpct(measure BY by)`.
    pub fn hpct(measure: impl Into<Measure>, by: &[&str]) -> HorizontalTerm {
        let measure = measure.into();
        HorizontalTerm {
            func: AggFunc::Sum,
            name: format!("hpct_{}", measure.label()),
            measure,
            by: by.iter().map(|s| s.to_string()).collect(),
            percentage: true,
            default_zero: false,
        }
    }

    /// `Hagg(measure BY by)` for a standard aggregate.
    pub fn hagg(func: AggFunc, measure: impl Into<Measure>, by: &[&str]) -> HorizontalTerm {
        let measure = measure.into();
        HorizontalTerm {
            func,
            name: format!(
                "{}_{}",
                func.sql_name().replace("(*)", "_star"),
                measure.label()
            ),
            measure,
            by: by.iter().map(|s| s.to_string()).collect(),
            percentage: false,
            default_zero: false,
        }
    }

    /// Builder: switch missing cells to 0.
    pub fn with_default_zero(mut self) -> HorizontalTerm {
        self.default_zero = true;
        self
    }
}

/// A horizontal query:
/// `SELECT D1..Dj, Hpct/Hagg(..), .. FROM table GROUP BY D1..Dj`.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizontalQuery {
    /// Fact table name.
    pub table: String,
    /// GROUP BY columns `D1..Dj` (may be empty — one global result row).
    pub group_by: Vec<String>,
    /// Horizontal terms (≥ 1).
    pub terms: Vec<HorizontalTerm>,
    /// Additional plain aggregates on the same GROUP BY.
    pub extra: Vec<ExtraAgg>,
}

impl HorizontalQuery {
    /// Single-`Hpct` convenience constructor.
    pub fn hpct(
        table: &str,
        group_by: &[&str],
        measure: impl Into<Measure>,
        by: &[&str],
    ) -> HorizontalQuery {
        HorizontalQuery {
            table: table.to_string(),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            terms: vec![HorizontalTerm::hpct(measure, by)],
            extra: Vec::new(),
        }
    }

    /// Single-`Hagg` convenience constructor.
    pub fn hagg(
        table: &str,
        group_by: &[&str],
        func: AggFunc,
        measure: impl Into<Measure>,
        by: &[&str],
    ) -> HorizontalQuery {
        HorizontalQuery {
            table: table.to_string(),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            terms: vec![HorizontalTerm::hagg(func, measure, by)],
            extra: Vec::new(),
        }
    }

    /// Structural validation (schema-independent).
    pub fn validate(&self) -> Result<()> {
        if self.terms.is_empty() {
            return Err(CoreError::InvalidQuery("no horizontal terms".into()));
        }
        for term in &self.terms {
            if term.by.is_empty() {
                return Err(CoreError::InvalidQuery(
                    "horizontal aggregations require a non-empty BY clause (rule 2)".into(),
                ));
            }
            for b in &term.by {
                if self.group_by.iter().any(|g| g.eq_ignore_ascii_case(b)) {
                    return Err(CoreError::InvalidQuery(format!(
                        "BY column {b} must be disjoint from GROUP BY (rule 2)"
                    )));
                }
            }
            if term.percentage && term.func != AggFunc::Sum {
                return Err(CoreError::InvalidQuery(
                    "percentage semantics require sum()".into(),
                ));
            }
        }
        Ok(())
    }
}

/// A percentage/horizontal query of either family, as classified by the SQL
/// validator.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Vertical percentage query.
    Vertical(VpctQuery),
    /// Horizontal percentage / aggregation query.
    Horizontal(HorizontalQuery),
}

fn measure_from_ast(e: &AstExpr) -> Result<Measure> {
    match e {
        AstExpr::Column(c) => Ok(Measure::Column(c.clone())),
        AstExpr::Int(i) => Ok(Measure::LitInt(*i)),
        AstExpr::Float(x) => Ok(Measure::LitFloat(*x)),
        AstExpr::Star => Ok(Measure::LitInt(1)),
        other => Err(CoreError::Unsupported(format!(
            "aggregate argument must be a column or literal, got {other}"
        ))),
    }
}

fn agg_func_of(name: AggName, distinct: bool, param: Option<f64>) -> AggFunc {
    use pa_engine::PBits;
    match name {
        AggName::Sum | AggName::Vpct | AggName::Hpct => AggFunc::Sum,
        AggName::Count if distinct => AggFunc::CountDistinct,
        AggName::Count => AggFunc::Count,
        AggName::Avg => AggFunc::Avg,
        AggName::Min => AggFunc::Min,
        AggName::Max => AggFunc::Max,
        // median is sugar for the exact 50th percentile.
        AggName::Median => AggFunc::Percentile(PBits::new(0.5)),
        // The validator guarantees the rank is present and in [0, 1].
        AggName::Percentile => AggFunc::Percentile(PBits::new(param.unwrap_or(0.5))),
        AggName::ApproxPercentile => AggFunc::ApproxPercentile(PBits::new(param.unwrap_or(0.5))),
        AggName::ApproxCountDistinct => AggFunc::ApproxCountDistinct,
    }
}

/// Convert a parsed and rule-validated statement into a typed query.
pub fn from_sql(stmt: &SelectStmt) -> Result<Query> {
    let kind = pa_sql::validate(stmt)?;
    match kind {
        QueryKind::Vertical => {
            let mut q = VpctQuery {
                table: stmt.from.clone(),
                group_by: stmt.group_by.clone(),
                terms: Vec::new(),
                extra: Vec::new(),
            };
            for item in &stmt.items {
                let SelectItem::Aggregate { call, alias } = item else {
                    continue;
                };
                let measure = measure_from_ast(&call.arg)?;
                if call.func == AggName::Vpct {
                    let mut term = VpctTerm {
                        by: call.by.clone(),
                        name: String::new(),
                        measure,
                    };
                    term.name = alias.clone().unwrap_or_else(|| {
                        let by: Vec<&str> = call.by.iter().map(String::as_str).collect();
                        VpctTerm::new(term.measure.clone(), &by).name
                    });
                    q.terms.push(term);
                } else {
                    let func = if matches!(call.arg, AstExpr::Star) {
                        AggFunc::CountStar
                    } else {
                        agg_func_of(call.func, call.distinct, call.param)
                    };
                    q.extra.push(ExtraAgg {
                        func,
                        measure: (!matches!(call.arg, AstExpr::Star)).then_some(measure),
                        name: alias.clone().unwrap_or_else(|| {
                            format!("{}_{}", call.func.sql_name(), expr_label(&call.arg))
                        }),
                    });
                }
            }
            q.validate()?;
            Ok(Query::Vertical(q))
        }
        QueryKind::Horizontal | QueryKind::PlainAggregate => {
            let mut q = HorizontalQuery {
                table: stmt.from.clone(),
                group_by: stmt.group_by.clone(),
                terms: Vec::new(),
                extra: Vec::new(),
            };
            for item in &stmt.items {
                let SelectItem::Aggregate { call, alias } = item else {
                    continue;
                };
                let measure = measure_from_ast(&call.arg)?;
                if call.func == AggName::Hpct || !call.by.is_empty() {
                    let mut term = HorizontalTerm {
                        func: if matches!(call.arg, AstExpr::Star) {
                            AggFunc::CountStar
                        } else {
                            agg_func_of(call.func, call.distinct, call.param)
                        },
                        measure,
                        by: call.by.clone(),
                        percentage: call.func == AggName::Hpct,
                        default_zero: call.default_zero,
                        name: String::new(),
                    };
                    term.name = alias.clone().unwrap_or_else(|| {
                        let label = if matches!(call.arg, AstExpr::Star) {
                            "star".to_string()
                        } else {
                            term.measure.label()
                        };
                        format!("{}_{}", call.func.sql_name(), label)
                    });
                    q.terms.push(term);
                } else {
                    let func = if matches!(call.arg, AstExpr::Star) {
                        AggFunc::CountStar
                    } else {
                        agg_func_of(call.func, call.distinct, call.param)
                    };
                    q.extra.push(ExtraAgg {
                        func,
                        measure: (!matches!(call.arg, AstExpr::Star)).then_some(measure),
                        name: alias.clone().unwrap_or_else(|| {
                            format!("{}_{}", call.func.sql_name(), expr_label(&call.arg))
                        }),
                    });
                }
            }
            if q.terms.is_empty() {
                return Err(CoreError::Unsupported(
                    "plain aggregate statements are evaluated by pa-engine directly; \
                     the percentage framework expects Vpct/Hpct/BY terms"
                        .into(),
                ));
            }
            q.validate()?;
            Ok(Query::Horizontal(q))
        }
    }
}

/// Convert a WHERE-clause AST expression into an engine expression against
/// `schema`.
pub fn ast_to_expr(e: &AstExpr, schema: &Schema) -> Result<pa_engine::Expr> {
    use pa_engine::{ArithOp, CmpOp, Expr};
    use pa_sql::BinOp;
    Ok(match e {
        AstExpr::Column(c) => Expr::col(schema, c)
            .map_err(|_| CoreError::InvalidQuery(format!("unknown column {c} in WHERE")))?,
        AstExpr::Int(i) => Expr::lit(*i),
        AstExpr::Float(x) => Expr::lit(*x),
        AstExpr::Str(s) => Expr::lit(s.as_str()),
        AstExpr::Star => {
            return Err(CoreError::InvalidQuery(
                "'*' is not a scalar expression".into(),
            ));
        }
        AstExpr::Binary { op, left, right } => {
            let l = Box::new(ast_to_expr(left, schema)?);
            let r = Box::new(ast_to_expr(right, schema)?);
            match op {
                BinOp::Add => Expr::Arith(ArithOp::Add, l, r),
                BinOp::Sub => Expr::Arith(ArithOp::Sub, l, r),
                BinOp::Mul => Expr::Arith(ArithOp::Mul, l, r),
                BinOp::Div => Expr::Arith(ArithOp::Div, l, r),
                BinOp::Eq => Expr::Cmp(CmpOp::Eq, l, r),
                BinOp::Ne => Expr::Cmp(CmpOp::Ne, l, r),
                BinOp::Lt => Expr::Cmp(CmpOp::Lt, l, r),
                BinOp::Le => Expr::Cmp(CmpOp::Le, l, r),
                BinOp::Gt => Expr::Cmp(CmpOp::Gt, l, r),
                BinOp::Ge => Expr::Cmp(CmpOp::Ge, l, r),
                BinOp::And => Expr::And(l, r),
                BinOp::Or => Expr::Or(l, r),
            }
        }
    })
}

fn expr_label(e: &AstExpr) -> String {
    match e {
        AstExpr::Column(c) => c.clone(),
        AstExpr::Star => "star".into(),
        AstExpr::Int(i) => i.to_string(),
        AstExpr::Float(x) => x.to_string(),
        other => format!("{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_sql::parse;

    #[test]
    fn totals_key_is_group_by_minus_by() {
        let q = VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"]);
        assert_eq!(q.totals_key(&q.terms[0]), vec!["state".to_string()]);
        // Absent BY → global totals → empty totals key.
        let q2 = VpctQuery::single("sales", &["state", "city"], "salesAmt", &[]);
        assert!(q2.totals_key(&q2.terms[0]).is_empty());
        // BY = GROUP BY → also empty totals key (global totals).
        let q3 = VpctQuery::single("sales", &["state"], "salesAmt", &["state"]);
        assert!(q3.totals_key(&q3.terms[0]).is_empty());
    }

    #[test]
    fn vpct_validation() {
        let mut q = VpctQuery::single("f", &[], "a", &[]);
        assert!(q.validate().is_err(), "GROUP BY required");
        q.group_by = vec!["d".into()];
        assert!(q.validate().is_ok());
        q.terms[0].by = vec!["other".into()];
        assert!(q.validate().is_err(), "BY must be subset of GROUP BY");
    }

    #[test]
    fn horizontal_validation() {
        let q = HorizontalQuery::hpct("f", &["s"], "a", &["d"]);
        assert!(q.validate().is_ok());
        let bad = HorizontalQuery::hpct("f", &["s"], "a", &["s"]);
        assert!(bad.validate().is_err(), "BY disjoint from GROUP BY");
        let empty = HorizontalQuery::hpct("f", &["s"], "a", &[]);
        assert!(empty.validate().is_err(), "BY required");
    }

    #[test]
    fn from_sql_vertical() {
        let stmt = parse(
            "SELECT state,city,Vpct(salesAmt BY city),sum(salesAmt) AS tot FROM sales \
                   GROUP BY state,city",
        )
        .unwrap();
        let Query::Vertical(q) = from_sql(&stmt).unwrap() else {
            panic!("expected vertical");
        };
        assert_eq!(q.table, "sales");
        assert_eq!(q.terms.len(), 1);
        assert_eq!(q.terms[0].by, vec!["city"]);
        assert_eq!(q.extra.len(), 1);
        assert_eq!(q.extra[0].name, "tot");
    }

    #[test]
    fn from_sql_horizontal_with_percentage_and_hagg() {
        let stmt =
            parse("SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) FROM sales GROUP BY store")
                .unwrap();
        let Query::Horizontal(q) = from_sql(&stmt).unwrap() else {
            panic!("expected horizontal");
        };
        assert_eq!(q.terms.len(), 1);
        assert!(q.terms[0].percentage);
        assert_eq!(q.extra.len(), 1);

        let stmt = parse("SELECT tid, max(1 BY deptId DEFAULT 0) FROM t GROUP BY tid").unwrap();
        let Query::Horizontal(q) = from_sql(&stmt).unwrap() else {
            panic!("expected horizontal");
        };
        assert_eq!(q.terms[0].func, AggFunc::Max);
        assert!(q.terms[0].default_zero);
        assert!(!q.terms[0].percentage);
        assert_eq!(q.terms[0].measure, Measure::LitInt(1));
    }

    #[test]
    fn from_sql_rejects_plain_aggregates() {
        let stmt = parse("SELECT d, sum(a) FROM f GROUP BY d").unwrap();
        assert!(matches!(from_sql(&stmt), Err(CoreError::Unsupported(_))));
    }

    #[test]
    fn from_sql_count_star_by() {
        let stmt = parse("SELECT s, count(* BY d) FROM f GROUP BY s").unwrap();
        let Query::Horizontal(q) = from_sql(&stmt).unwrap() else {
            panic!()
        };
        assert_eq!(q.terms[0].func, AggFunc::CountStar);
    }

    #[test]
    fn measure_expr_resolution() {
        let schema = Schema::from_pairs(&[("a", pa_storage::DataType::Float)]).unwrap();
        assert!(Measure::Column("a".into()).to_expr(&schema).is_ok());
        assert!(Measure::Column("zz".into()).to_expr(&schema).is_err());
        assert!(Measure::LitInt(1).to_expr(&schema).is_ok());
        assert_eq!(Measure::LitInt(1).label(), "lit1");
        assert_eq!(Measure::from("a").sql(), "a");
    }
}
