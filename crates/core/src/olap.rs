//! The OLAP-extensions baseline (SIGMOD §4.2).
//!
//! The paper compares percentage queries against the SQL-99 OLAP window
//! form, e.g. for one term:
//!
//! ```sql
//! SELECT DISTINCT D1..Dk,
//!        sum(A) OVER (PARTITION BY D1..Dk)
//!      / sum(A) OVER (PARTITION BY D1..Dj)
//! FROM F;
//! ```
//!
//! "The optimizer groups rows and computes aggregates using its own
//! temporary tables and indexes. We have no control over these temporary
//! tables." — the single-statement plan materializes *row-level* window
//! columns over all of `F` (one sort + one n-row spool per window), divides
//! per row, and collapses with DISTINCT at the end. That row-granular work
//! is what makes it an order of magnitude slower than the percentage plans
//! on large tables, and this module reproduces it mechanically.

use crate::error::{CoreError, Result};
use crate::query::{Measure, VpctQuery};
use crate::vertical::QueryResult;
use pa_engine::{
    create_table_as, distinct, project, window_aggregate, AggFunc, ExecStats, Expr, ProjSpec,
};
use pa_storage::{Catalog, DataType, Table};

/// Evaluate a vertical percentage query through the OLAP window-function
/// plan. Produces the same answer set as [`crate::eval_vpct`] (modulo row
/// order); registered as `{prefix}OLAP`.
pub fn eval_vpct_olap(catalog: &Catalog, q: &VpctQuery, prefix: &str) -> Result<QueryResult> {
    q.validate()?;
    if !q.extra.is_empty() {
        return Err(CoreError::Unsupported(
            "the OLAP baseline reproduces percentage terms only".into(),
        ));
    }
    let mut stats = ExecStats::default();

    let f_shared = catalog.table(&q.table)?;
    let f = f_shared.read();
    let schema = f.schema().clone();

    let k_cols: Vec<usize> = q
        .group_by
        .iter()
        .map(|n| {
            schema
                .index_of(n)
                .map_err(|_| CoreError::InvalidQuery(format!("unknown GROUP BY column {n}")))
        })
        .collect::<Result<Vec<_>>>()?;

    // Window function and measure column per term. A literal measure maps to
    // count(*) windows: sum(c) over w / sum(c) over w' == count rows ratio.
    let term_measures: Vec<(AggFunc, usize)> = q
        .terms
        .iter()
        .map(|t| match &t.measure {
            Measure::Column(name) => Ok((
                AggFunc::Sum,
                schema
                    .index_of(name)
                    .map_err(|_| CoreError::InvalidQuery(format!("unknown measure {name}")))?,
            )),
            Measure::LitInt(_) | Measure::LitFloat(_) => Ok((AggFunc::CountStar, 0)),
        })
        .collect::<Result<Vec<_>>>()?;

    // One window per aggregation level, appended column by column, exactly
    // like the optimizer's chained window spools. Each window re-sorts its
    // whole n-row input.
    let mut statements = Vec::new();
    let mut cur: Table = f.clone(); // the first spool: F itself materialized
    stats.rows_scanned += cur.num_rows() as u64;
    drop(f);
    let mut num_pos: Vec<usize> = Vec::new();
    let mut den_pos: Vec<usize> = Vec::new();
    for (t, term) in q.terms.iter().enumerate() {
        let (func, mcol) = term_measures[t];
        let pos = cur.num_columns();
        cur = window_aggregate(&cur, &k_cols, func, mcol, &format!("__sumk{t}"), &mut stats)?;
        num_pos.push(pos);
        let totals: Vec<usize> = q
            .totals_key(term)
            .iter()
            .map(|n| schema.index_of(n).map_err(CoreError::from))
            .collect::<Result<Vec<_>>>()?;
        let pos = cur.num_columns();
        cur = window_aggregate(&cur, &totals, func, mcol, &format!("__sumj{t}"), &mut stats)?;
        den_pos.push(pos);
        statements.push(format!(
            "-- window pair {t}: sum({m}) OVER (PARTITION BY {k}) and OVER (PARTITION BY {j})",
            m = term.measure.sql(),
            k = q.group_by.join(", "),
            j = q.totals_key(term).join(", "),
        ));
    }

    // Row-level division over all n rows.
    let mut proj: Vec<ProjSpec> = Vec::new();
    for (i, name) in q.group_by.iter().enumerate() {
        // Window operators only append columns, so F's positions survive.
        proj.push(ProjSpec::typed(
            Expr::Col(k_cols[i]),
            name.clone(),
            schema.field_at(k_cols[i]).dtype,
        ));
    }
    for (t, term) in q.terms.iter().enumerate() {
        proj.push(ProjSpec::typed(
            Expr::Col(num_pos[t]).safe_div(Expr::Col(den_pos[t])),
            term.name.clone(),
            DataType::Float,
        ));
    }
    let divided = project(&cur, &proj, &mut stats)?;

    // DISTINCT collapse down to one row per group.
    let all: Vec<usize> = (0..divided.num_columns()).collect();
    let fv = distinct(&divided, &all, &mut stats)?;
    statements.push(format!(
        "SELECT DISTINCT {k}, {terms} FROM {f};",
        k = q.group_by.join(", "),
        terms = q
            .terms
            .iter()
            .map(|t| format!(
                "sum({m}) OVER (PARTITION BY {k}) / sum({m}) OVER (PARTITION BY {j}) AS {n}",
                m = t.measure.sql(),
                k = q.group_by.join(", "),
                j = q.totals_key(t).join(", "),
                n = t.name
            ))
            .collect::<Vec<_>>()
            .join(", "),
        f = q.table
    ));

    let shared = create_table_as(catalog, &format!("{prefix}OLAP"), fv, &mut stats)?;
    Ok(QueryResult {
        table: shared,
        stats,
        statements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::VpctStrategy;
    use crate::vertical::eval_vpct;
    use crate::vertical::tests::sales_catalog;
    use pa_storage::Value;

    fn q() -> VpctQuery {
        VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"])
    }

    #[test]
    fn olap_plan_matches_percentage_plan() {
        let catalog = sales_catalog();
        let fast = eval_vpct(&catalog, &q(), &VpctStrategy::best(), "a_").unwrap();
        let olap = eval_vpct_olap(&catalog, &q(), "b_").unwrap();
        let a: Vec<Vec<Value>> = fast.snapshot().sorted_by(&[0, 1]).rows().collect();
        let b: Vec<Vec<Value>> = olap.snapshot().sorted_by(&[0, 1]).rows().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn olap_plan_does_row_granular_work() {
        let catalog = sales_catalog();
        let fast = eval_vpct(&catalog, &q(), &VpctStrategy::best(), "a_").unwrap();
        let olap = eval_vpct_olap(&catalog, &q(), "b_").unwrap();
        // The window plan sorts and materializes n-row intermediates.
        assert!(olap.stats.sort_comparisons > 0);
        assert!(
            olap.stats.rows_materialized > fast.stats.rows_materialized,
            "olap {} vs fast {}",
            olap.stats.rows_materialized,
            fast.stats.rows_materialized
        );
    }

    #[test]
    fn global_totals_term() {
        let catalog = sales_catalog();
        let q = VpctQuery::single("sales", &["state"], "salesAmt", &[]);
        let olap = eval_vpct_olap(&catalog, &q, "g_").unwrap();
        let t = olap.snapshot().sorted_by(&[0]);
        assert_eq!(t.get(0, 1), Value::Float(106.0 / 255.0));
        assert_eq!(t.get(1, 1), Value::Float(149.0 / 255.0));
    }

    #[test]
    fn literal_measure_uses_count_windows() {
        let catalog = sales_catalog();
        let q = VpctQuery::single("sales", &["state", "city"], Measure::LitInt(1), &["city"]);
        let fast = eval_vpct(&catalog, &q, &VpctStrategy::best(), "c_").unwrap();
        let olap = eval_vpct_olap(&catalog, &q, "d_").unwrap();
        let a: Vec<Vec<Value>> = fast.snapshot().sorted_by(&[0, 1]).rows().collect();
        let b: Vec<Vec<Value>> = olap.snapshot().sorted_by(&[0, 1]).rows().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn extras_unsupported() {
        let catalog = sales_catalog();
        let mut q = q();
        q.extra.push(crate::query::ExtraAgg::count_star("n"));
        assert!(matches!(
            eval_vpct_olap(&catalog, &q, "e_"),
            Err(CoreError::Unsupported(_))
        ));
    }
}
