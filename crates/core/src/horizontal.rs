//! Horizontal aggregation evaluation (SIGMOD §3.2 and DMKD §3).
//!
//! All four strategies the papers benchmark are implemented over a shared
//! pipeline:
//!
//! 1. (indirect variants) compute the vertical pre-aggregate `FV` grouped by
//!    `D1..Dk`;
//! 2. discover the `N` distinct subgroup combinations (`SELECT DISTINCT
//!    Dj+1..Dk`), which define the result columns;
//! 3. produce a *raw* table `[D1..Dj][cell lanes][totals][extras]` — via
//!    CASE-guarded aggregates (one scan, O(N) conditions per row), via the
//!    hash-dispatch pivot operator (one scan, O(1) per row — the paper's
//!    "future work" optimization), or via SPJ (`N` filtered aggregation
//!    passes assembled with `N` left outer joins onto `F0`);
//! 4. post-project: percentage division (`Hpct` cells divide by the group
//!    total; missing cells count as 0, matching SIGMOD's `ELSE 0` CASE
//!    form), `DEFAULT 0` substitution, column naming, optional vertical
//!    partitioning when the column limit is exceeded.

use crate::error::{CoreError, Result};
use crate::naming::{cell_column_name, dedup_names, partition_ranges};
use crate::query::{ExtraAgg, HorizontalQuery};
use crate::strategy::{HorizontalOptions, HorizontalStrategy};
use crate::vertical::QueryResult;
use pa_engine::{
    create_table_as, distinct_keys, filter, hash_aggregate_with_config, hash_join_guarded, project,
    AggFunc, AggSpec, ExecStats, Expr, JoinType, ParallelConfig, ProjSpec, ResourceGuard,
};
use pa_storage::{Catalog, DataType, Schema, SharedTable, Table, Value};

/// Result of a horizontal query: one table normally, several when the
/// column limit forces vertical partitioning (each partition repeats the
/// `D1..Dj` key — DMKD §3.6).
#[derive(Debug)]
pub struct HorizontalResult {
    /// Result partitions (`FH`, or `FH_p0..`), registered in the catalog.
    pub partitions: Vec<SharedTable>,
    /// Work counters for the whole plan.
    pub stats: ExecStats,
    /// Generated SQL transcript.
    pub statements: Vec<String>,
    /// Names of the generated cell columns, per term.
    pub cell_columns: Vec<Vec<String>>,
}

impl HorizontalResult {
    /// The single result table.
    ///
    /// # Panics
    ///
    /// Panics if the result was vertically partitioned (more than one
    /// partition); iterate `partitions` instead for partitioned output.
    pub fn table(&self) -> SharedTable {
        assert_eq!(self.partitions.len(), 1, "result is partitioned");
        self.partitions[0].clone()
    }

    /// Owned snapshot of the single result table.
    ///
    /// # Panics
    ///
    /// Panics if the result was vertically partitioned, like [`Self::table`].
    pub fn snapshot(&self) -> Table {
        self.table().read().clone()
    }

    /// Convert into a [`QueryResult`].
    ///
    /// # Panics
    ///
    /// Panics if the result was vertically partitioned, like [`Self::table`].
    pub fn into_query_result(self) -> QueryResult {
        assert_eq!(self.partitions.len(), 1, "result is partitioned");
        QueryResult {
            table: self.partitions.into_iter().next().expect("one partition"),
            stats: self.stats,
            statements: self.statements,
        }
    }
}

/// How one term's raw lanes combine into the final cell value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Combine {
    /// One raw lane per cell.
    Single,
    /// Two lanes, `sum / count` (avg re-aggregated from `FV`).
    AvgPair,
}

/// Per-term plan against the chosen source table (`F` or `FV`).
#[derive(Debug)]
struct TermPlan {
    by_src_cols: Vec<usize>,
    /// Aggregations computing each cell lane from source rows.
    lanes: Vec<(AggFunc, Expr)>,
    combine: Combine,
    /// Group-total aggregation for percentage terms.
    total: Option<Expr>,
    combos: Vec<Vec<Value>>,
    names: Vec<String>,
}

impl TermPlan {
    fn lanes_per_cell(&self) -> usize {
        self.lanes.len()
    }
}

fn extra_direct_spec(extra: &ExtraAgg, schema: &Schema, name: &str) -> Result<AggSpec> {
    let input = match (&extra.func, &extra.measure) {
        (AggFunc::CountStar, _) => Expr::lit(1),
        (_, Some(m)) => m.to_expr(schema)?,
        (f, None) => {
            return Err(CoreError::InvalidQuery(format!(
                "{} requires a measure",
                f.sql_name()
            )));
        }
    };
    Ok(AggSpec::new(extra.func, input, name))
}

/// Distributive re-aggregation of a partial aggregate (Gray et al.): how
/// `func` partials computed at the `D1..Dk` level combine into `D1..Dj`.
fn reagg_func(func: AggFunc) -> AggFunc {
    match func {
        AggFunc::Sum | AggFunc::Count | AggFunc::CountStar => AggFunc::Sum,
        AggFunc::Min => AggFunc::Min,
        AggFunc::Max => AggFunc::Max,
        AggFunc::Avg => unreachable!("avg is handled as a sum/count pair"),
        AggFunc::CountDistinct
        | AggFunc::Percentile(_)
        | AggFunc::ApproxPercentile(_)
        | AggFunc::ApproxCountDistinct => {
            unreachable!("holistic aggregates are rejected by FV strategies upstream")
        }
    }
}

/// The table horizontal aggregation reads from: the fact table (held via
/// its read guard) or the owned `FV` pre-aggregate.
enum Source<'a> {
    Fact(parking_lot::RwLockReadGuard<'a, Table>),
    Fv(Table),
}

impl Source<'_> {
    fn table(&self) -> &Table {
        match self {
            Source::Fact(g) => g,
            Source::Fv(t) => t,
        }
    }
}

/// Evaluate a horizontal query under the given options. Temporaries are
/// registered as `{prefix}FV`, `{prefix}F0`/`{prefix}F{i}` (SPJ) and the
/// result as `{prefix}FH` (or `{prefix}FH_p0..` when partitioned).
pub fn eval_horizontal(
    catalog: &Catalog,
    q: &HorizontalQuery,
    opts: &HorizontalOptions,
    prefix: &str,
) -> Result<HorizontalResult> {
    eval_horizontal_guarded(catalog, q, opts, prefix, &ResourceGuard::unlimited())
}

/// [`eval_horizontal`] under a [`ResourceGuard`]: every aggregation scan,
/// pivot group and join output row is charged against the guard, so a
/// runaway `Hpct` pivot fails with [`CoreError::BudgetExceeded`] instead of
/// exhausting memory.
pub fn eval_horizontal_guarded(
    catalog: &Catalog,
    q: &HorizontalQuery,
    opts: &HorizontalOptions,
    prefix: &str,
    guard: &ResourceGuard,
) -> Result<HorizontalResult> {
    q.validate()?;
    let mut stats = ExecStats::default();

    let f_shared = catalog.table(&q.table)?;
    let f_guard = f_shared.read();
    let f_schema = f_guard.schema().clone();
    // One parallelism decision per query, sized on the fact table; every
    // aggregation pass of this evaluation shares it (the engine still
    // drops small intermediate inputs like FV to the serial path).
    let mut par = crate::optimizer::choose_parallelism(opts.parallel, f_guard.num_rows());
    if opts.scalar_kernels {
        par.vector = false;
    }

    for term in &q.terms {
        for b in &term.by {
            f_schema
                .index_of(b)
                .map_err(|_| CoreError::InvalidQuery(format!("unknown BY column {b}")))?;
        }
    }
    let j_cols_f: Vec<usize> = q
        .group_by
        .iter()
        .map(|n| {
            f_schema
                .index_of(n)
                .map_err(|_| CoreError::InvalidQuery(format!("unknown GROUP BY column {n}")))
        })
        .collect::<Result<Vec<_>>>()?;

    // ---------- Build the source (F directly, or the FV pre-aggregate) and
    // the per-term / per-extra lane descriptions against it. ----------
    type TermLanes = (Vec<(AggFunc, Expr)>, Combine, Option<Expr>);
    let mut term_lanes: Vec<TermLanes> = Vec::new();
    let mut extra_specs_src: Vec<(Vec<(AggFunc, Expr)>, Combine)> = Vec::new();
    let (source, j_cols): (Source<'_>, Vec<usize>) = if opts.strategy.uses_fv() {
        // Holistic aggregates cannot be re-aggregated from the FV partial
        // (Gray et al.): reject rather than silently double-count.
        for term in q.terms.iter() {
            if term.func.is_holistic() {
                return Err(CoreError::Unsupported(format!(
                    "{} is holistic and cannot use an FV-based strategy; \
                     evaluate it with CaseDirect or SpjDirect",
                    term.func.display_name()
                )));
            }
        }
        for extra in &q.extra {
            if extra.func.is_holistic() {
                return Err(CoreError::Unsupported(format!(
                    "{} is holistic and cannot use an FV-based strategy; \
                     evaluate it with CaseDirect or SpjDirect",
                    extra.func.display_name()
                )));
            }
        }
        // FV keys: group_by then each term's by columns (deduped).
        let mut key_names: Vec<String> = q.group_by.clone();
        for term in &q.terms {
            for b in &term.by {
                if !key_names.iter().any(|c| c.eq_ignore_ascii_case(b)) {
                    key_names.push(b.clone());
                }
            }
        }
        let key_cols_f: Vec<usize> = key_names
            .iter()
            .map(|n| f_schema.index_of(n).map_err(CoreError::from))
            .collect::<Result<Vec<_>>>()?;

        let mut specs: Vec<AggSpec> = Vec::new();
        let mut partial_pos: Vec<Vec<usize>> = Vec::new(); // per term, lane cols
        let mut term_funcs: Vec<AggFunc> = Vec::new();
        for (t, term) in q.terms.iter().enumerate() {
            let measure = term.measure.to_expr(&f_schema)?;
            let base = key_cols_f.len() + specs.len();
            term_funcs.push(term.func);
            match term.func {
                AggFunc::Avg => {
                    specs.push(AggSpec::new(
                        AggFunc::Sum,
                        measure.clone(),
                        format!("__ps{t}"),
                    ));
                    specs.push(AggSpec::new(AggFunc::Count, measure, format!("__pc{t}")));
                    partial_pos.push(vec![base, base + 1]);
                }
                func => {
                    specs.push(AggSpec::new(func, measure, format!("__p{t}")));
                    partial_pos.push(vec![base]);
                }
            }
        }
        let mut extra_partial_pos: Vec<Vec<usize>> = Vec::new();
        for (e, extra) in q.extra.iter().enumerate() {
            let base = key_cols_f.len() + specs.len();
            match extra.func {
                AggFunc::Avg => {
                    let m = extra
                        .measure
                        .as_ref()
                        .ok_or_else(|| CoreError::InvalidQuery("avg requires a measure".into()))?
                        .to_expr(&f_schema)?;
                    specs.push(AggSpec::new(AggFunc::Sum, m.clone(), format!("__es{e}")));
                    specs.push(AggSpec::new(AggFunc::Count, m, format!("__ec{e}")));
                    extra_partial_pos.push(vec![base, base + 1]);
                }
                _ => {
                    specs.push(extra_direct_spec(extra, &f_schema, &format!("__e{e}"))?);
                    extra_partial_pos.push(vec![base]);
                }
            }
        }
        let fv =
            hash_aggregate_with_config(&f_guard, &key_cols_f, &specs, guard, &mut stats, &par)?;
        drop(f_guard);
        create_table_as(catalog, &format!("{prefix}FV"), fv.clone(), &mut stats)?;

        for (t, term) in q.terms.iter().enumerate() {
            let lanes: Vec<(AggFunc, Expr)> = match term.func {
                AggFunc::Avg => vec![
                    (AggFunc::Sum, Expr::Col(partial_pos[t][0])),
                    (AggFunc::Sum, Expr::Col(partial_pos[t][1])),
                ],
                func => vec![(reagg_func(func), Expr::Col(partial_pos[t][0]))],
            };
            let combine = if term.func == AggFunc::Avg {
                Combine::AvgPair
            } else {
                Combine::Single
            };
            let total = term.percentage.then(|| Expr::Col(partial_pos[t][0]));
            term_lanes.push((lanes, combine, total));
        }
        for (e, extra) in q.extra.iter().enumerate() {
            match extra.func {
                AggFunc::Avg => extra_specs_src.push((
                    vec![
                        (AggFunc::Sum, Expr::Col(extra_partial_pos[e][0])),
                        (AggFunc::Sum, Expr::Col(extra_partial_pos[e][1])),
                    ],
                    Combine::AvgPair,
                )),
                func => extra_specs_src.push((
                    vec![(reagg_func(func), Expr::Col(extra_partial_pos[e][0]))],
                    Combine::Single,
                )),
            }
        }
        let j_cols_fv: Vec<usize> = (0..q.group_by.len()).collect();
        (Source::Fv(fv), j_cols_fv)
    } else {
        for term in &q.terms {
            let measure = term.measure.to_expr(&f_schema)?;
            let total = term.percentage.then(|| measure.clone());
            term_lanes.push((vec![(term.func, measure)], Combine::Single, total));
        }
        for extra in &q.extra {
            let spec = extra_direct_spec(extra, &f_schema, "__tmp")?;
            extra_specs_src.push((vec![(spec.func, spec.input)], Combine::Single));
        }
        (Source::Fact(f_guard), j_cols_f)
    };
    let src = source.table();
    let src_schema = src.schema().clone();

    // ---------- Distinct subgroup combinations → result columns. ----------
    // The distinct BY-combination set depends only on the fact table's
    // data (FV preserves it: FV groups by `group_by ∪ by`, so the distinct
    // BY tuples are identical over F and FV), so it is memoized in the
    // catalog's combination cache keyed by `(table, BY columns)`. The
    // cache is invalidated by every logged mutation of the table, so a hit
    // is always current; it is charged to the guard like the scan it
    // replaces would charge its output.
    let multi_term = q.terms.len() > 1;
    let mut plans: Vec<TermPlan> = Vec::new();
    for (t, term) in q.terms.iter().enumerate() {
        let by_src_cols: Vec<usize> = term
            .by
            .iter()
            .map(|n| src_schema.index_of(n).map_err(CoreError::from))
            .collect::<Result<Vec<_>>>()?;
        let combos: Vec<Vec<Value>> = {
            let mut span = guard.span("combos");
            let combos = match catalog.combo_cache().get(&q.table, &term.by) {
                Some(cached) => {
                    stats.combo_cache_hits += 1;
                    (*cached).clone()
                }
                None => {
                    stats.combo_cache_misses += 1;
                    let mut combos = distinct_keys(src, &by_src_cols, &mut stats)?;
                    combos.sort_by(|a, b| {
                        a.iter()
                            .zip(b)
                            .map(|(x, y)| x.total_cmp(y))
                            .find(|o| *o != std::cmp::Ordering::Equal)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    catalog
                        .combo_cache()
                        .store(&q.table, &term.by, combos.clone());
                    combos
                }
            };
            // The combination set is materialized output either way; charge
            // it identically on hit and miss so budgets and traces don't
            // depend on cache temperature.
            guard.charge(combos.len() as u64)?;
            span.add_rows(combos.len() as u64);
            span.add_morsels(1);
            combos
        };
        let prefix_name = if multi_term { term.name.as_str() } else { "" };
        let mut names: Vec<String> = combos
            .iter()
            .map(|c| cell_column_name(prefix_name, &term.by, c))
            .collect();
        dedup_names(&mut names);
        let (lanes, combine, total) = {
            let (l, c, tot) = &term_lanes[t];
            (l.clone(), *c, tot.clone())
        };
        plans.push(TermPlan {
            by_src_cols,
            lanes,
            combine,
            total,
            combos,
            names,
        });
    }

    // Column budget (DMKD §3.6).
    let n_cells: usize = plans.iter().map(|p| p.combos.len()).sum();
    let total_cols = q.group_by.len() + n_cells + q.extra.len();
    let partitioned = total_cols > opts.max_columns;
    if partitioned && !opts.allow_partitioning {
        return Err(CoreError::TooManyColumns {
            needed: total_cols,
            limit: opts.max_columns,
        });
    }

    let statements = crate::codegen::horizontal_statements(
        q,
        opts.strategy,
        plans.first().map(|p| p.combos.as_slice()),
    );

    // ---------- Raw table: [j][term0 lanes×cells][term0 total?].. [extras] --
    let raw = match opts.strategy {
        HorizontalStrategy::CaseDirect | HorizontalStrategy::CaseFromFv => {
            // Jump-table CASE: when every term's BY columns dense-encode,
            // the pivot operator evaluates the CASE strategy with one
            // `composite code → output column` array index per row instead
            // of the O(N) predicate chain. `hash_dispatch` is the ablation
            // that forces every lookup (groups and cells) through the hash
            // path (dense budget 0); ineligible inputs fall back to the
            // legacy CASE chain.
            let dense_eligible = opts.jump_table
                && plans.iter().all(|p| {
                    pa_engine::DenseKeySpace::try_build(src, &p.by_src_cols, par.dense_budget)
                        .is_some()
                });
            if opts.hash_dispatch || dense_eligible {
                let pivot_par = if opts.hash_dispatch {
                    ParallelConfig {
                        dense_budget: 0,
                        ..par
                    }
                } else {
                    par
                };
                let flat_extras: Vec<(AggFunc, Expr)> = extra_specs_src
                    .iter()
                    .flat_map(|(lanes, _)| lanes.iter().cloned())
                    .collect();
                crate::dispatch::pivot_aggregate_with_config(
                    src,
                    &j_cols,
                    &plans_as_tasks(&plans),
                    &flat_extras,
                    guard,
                    &mut stats,
                    &pivot_par,
                )?
            } else {
                case_raw(
                    src,
                    &j_cols,
                    &plans,
                    &extra_specs_src,
                    guard,
                    &mut stats,
                    &par,
                )?
            }
        }
        HorizontalStrategy::SpjDirect | HorizontalStrategy::SpjFromFv => spj_raw(
            catalog,
            src,
            &j_cols,
            &plans,
            &extra_specs_src,
            prefix,
            guard,
            &mut stats,
            &par,
        )?,
    };
    drop(source);

    // ---------- Post-projection. ----------
    let j_len = q.group_by.len();
    let mut proj: Vec<ProjSpec> = Vec::new();
    for (i, name) in q.group_by.iter().enumerate() {
        proj.push(ProjSpec::typed(
            Expr::Col(i),
            name.clone(),
            raw.schema().field_at(i).dtype,
        ));
    }
    let mut pos = j_len;
    let mut cell_columns: Vec<Vec<String>> = Vec::new();
    for (term, plan) in q.terms.iter().zip(&plans) {
        let lanes = plan.lanes_per_cell();
        let cell_base = pos;
        let total_pos = cell_base + plan.combos.len() * lanes;
        for (i, name) in plan.names.iter().enumerate() {
            let raw_cell: Expr = match plan.combine {
                Combine::Single => Expr::Col(cell_base + i * lanes),
                Combine::AvgPair => {
                    Expr::Col(cell_base + i * lanes).safe_div(Expr::Col(cell_base + i * lanes + 1))
                }
            };
            let mut cell = raw_cell;
            if term.percentage {
                // Missing cells count as 0 in the numerator (SIGMOD's
                // `ELSE 0`), while a zero/NULL group total yields NULL.
                let zero_if_missing = Expr::Case {
                    branches: vec![(Expr::IsNull(Box::new(cell.clone())), Expr::lit(0.0))],
                    else_value: Some(Box::new(cell)),
                };
                cell = zero_if_missing.safe_div(Expr::Col(total_pos));
            }
            // Count of no qualifying rows is 0, not NULL — uniformly across
            // strategies (the outer-join variants produce NULL there).
            let count_term = matches!(
                term.func,
                AggFunc::Count
                    | AggFunc::CountDistinct
                    | AggFunc::CountStar
                    | AggFunc::ApproxCountDistinct
            );
            if term.default_zero || (count_term && !term.percentage) {
                cell = Expr::Case {
                    branches: vec![(Expr::IsNull(Box::new(cell.clone())), Expr::lit(0))],
                    else_value: Some(Box::new(cell)),
                };
            }
            let dtype = match (term.percentage, plan.combine, term.func) {
                (true, _, _) | (_, Combine::AvgPair, _) => DataType::Float,
                (
                    _,
                    _,
                    AggFunc::Count
                    | AggFunc::CountDistinct
                    | AggFunc::CountStar
                    | AggFunc::ApproxCountDistinct,
                ) => DataType::Int,
                _ => raw.schema().field_at(cell_base + i * lanes).dtype,
            };
            // Re-aggregated counts come back as float sums; keep the
            // user-facing column Int regardless of strategy.
            if dtype == DataType::Int {
                cell = Expr::Cast(DataType::Int, Box::new(cell));
            }
            proj.push(ProjSpec::typed(cell, name.clone(), dtype));
        }
        cell_columns.push(plan.names.clone());
        pos = total_pos + usize::from(plan.total.is_some());
    }
    for (extra, (lanes, combine)) in q.extra.iter().zip(&extra_specs_src) {
        let mut expr = match combine {
            Combine::Single => Expr::Col(pos),
            Combine::AvgPair => Expr::Col(pos).safe_div(Expr::Col(pos + 1)),
        };
        let dtype = match (combine, extra.func) {
            (Combine::AvgPair, _) | (_, AggFunc::Avg | AggFunc::Sum) => DataType::Float,
            (
                _,
                AggFunc::Count
                | AggFunc::CountDistinct
                | AggFunc::CountStar
                | AggFunc::ApproxCountDistinct,
            ) => DataType::Int,
            _ => raw.schema().field_at(pos).dtype,
        };
        if dtype == DataType::Int {
            expr = Expr::Cast(DataType::Int, Box::new(expr));
        }
        proj.push(ProjSpec::typed(expr, extra.name.clone(), dtype));
        pos += lanes.len();
    }
    let fh = project(&raw, &proj, &mut stats)?;

    // ---------- Partitioning & registration. ----------
    let partitions: Vec<SharedTable> = if !partitioned {
        vec![create_table_as(
            catalog,
            &format!("{prefix}FH"),
            fh,
            &mut stats,
        )?]
    } else {
        let n_key = j_len;
        let cells_total = fh.num_columns() - n_key;
        let ranges = partition_ranges(cells_total, n_key, opts.max_columns);
        let mut out = Vec::with_capacity(ranges.len());
        for (p, range) in ranges.into_iter().enumerate() {
            let mut fields: Vec<pa_storage::Field> = fh.schema().fields()[..n_key].to_vec();
            let mut cols: Vec<pa_storage::Column> = fh.columns()[..n_key].to_vec();
            for c in range {
                fields.push(fh.schema().field_at(n_key + c).clone());
                cols.push(fh.column(n_key + c).clone());
            }
            let part = Table::from_columns(Schema::new(fields)?.into_shared(), cols)?;
            out.push(create_table_as(
                catalog,
                &format!("{prefix}FH_p{p}"),
                part,
                &mut stats,
            )?);
        }
        out
    };

    Ok(HorizontalResult {
        partitions,
        stats,
        statements,
        cell_columns,
    })
}

/// CASE strategy: one aggregation pass with `N` CASE-guarded terms.
#[allow(clippy::too_many_arguments)]
fn case_raw(
    src: &Table,
    j_cols: &[usize],
    plans: &[TermPlan],
    extras: &[(Vec<(AggFunc, Expr)>, Combine)],
    guard: &ResourceGuard,
    stats: &mut ExecStats,
    par: &ParallelConfig,
) -> Result<Table> {
    let mut specs: Vec<AggSpec> = Vec::new();
    for (t, plan) in plans.iter().enumerate() {
        for (i, combo) in plan.combos.iter().enumerate() {
            let pred = Expr::key_match(
                &plan
                    .by_src_cols
                    .iter()
                    .zip(combo)
                    .map(|(&c, v)| (c, v.clone()))
                    .collect::<Vec<_>>(),
            );
            for (l, (func, input)) in plan.lanes.iter().enumerate() {
                // count(*) must only count the rows matching this cell:
                // under CASE it becomes count(CASE WHEN pred THEN 1 END).
                let (func, input) = if *func == AggFunc::CountStar {
                    (AggFunc::Count, Expr::lit(1))
                } else {
                    (*func, input.clone())
                };
                let case = Expr::Case {
                    branches: vec![(pred.clone(), input)],
                    else_value: None,
                };
                specs.push(AggSpec::new(func, case, format!("__c{t}_{i}_{l}")));
            }
        }
        if let Some(total) = &plan.total {
            specs.push(AggSpec::new(
                AggFunc::Sum,
                total.clone(),
                format!("__tot{t}"),
            ));
        }
    }
    for (e, (lanes, _)) in extras.iter().enumerate() {
        for (l, (func, input)) in lanes.iter().enumerate() {
            specs.push(AggSpec::new(*func, input.clone(), format!("__x{e}_{l}")));
        }
    }
    Ok(hash_aggregate_with_config(
        src, j_cols, &specs, guard, stats, par,
    )?)
}

/// SPJ strategy: `F0` = distinct groups; one filtered aggregation per
/// combination; assemble with left outer joins; project into the raw layout.
#[allow(clippy::too_many_arguments)]
fn spj_raw(
    catalog: &Catalog,
    src: &Table,
    j_cols: &[usize],
    plans: &[TermPlan],
    extras: &[(Vec<(AggFunc, Expr)>, Combine)],
    prefix: &str,
    guard: &ResourceGuard,
    stats: &mut ExecStats,
    par: &ParallelConfig,
) -> Result<Table> {
    let j_len = j_cols.len();
    if j_len == 0 {
        // Global group: every per-combination aggregate is a one-row table;
        // splice them into a single raw row.
        let mut row: Vec<Value> = Vec::new();
        let mut fields: Vec<pa_storage::Field> = Vec::new();
        let mut idx = 0usize;
        for plan in plans {
            for combo in &plan.combos {
                let pred = Expr::key_match(
                    &plan
                        .by_src_cols
                        .iter()
                        .zip(combo)
                        .map(|(&c, v)| (c, v.clone()))
                        .collect::<Vec<_>>(),
                );
                let filtered = filter(src, &pred, stats)?;
                for (func, input) in &plan.lanes {
                    let agg = hash_aggregate_with_config(
                        &filtered,
                        &[],
                        &[AggSpec::new(*func, input.clone(), "v")],
                        guard,
                        stats,
                        par,
                    )?;
                    row.push(agg.get(0, 0));
                    fields.push(pa_storage::Field::new(
                        format!("__r{idx}"),
                        agg.schema().field_at(0).dtype,
                    ));
                    idx += 1;
                }
            }
            if let Some(total) = &plan.total {
                let agg = hash_aggregate_with_config(
                    src,
                    &[],
                    &[AggSpec::new(AggFunc::Sum, total.clone(), "t")],
                    guard,
                    stats,
                    par,
                )?;
                row.push(agg.get(0, 0));
                fields.push(pa_storage::Field::new(format!("__r{idx}"), DataType::Float));
                idx += 1;
            }
        }
        for (lanes, _) in extras {
            for (func, input) in lanes {
                let agg = hash_aggregate_with_config(
                    src,
                    &[],
                    &[AggSpec::new(*func, input.clone(), "e")],
                    guard,
                    stats,
                    par,
                )?;
                row.push(agg.get(0, 0));
                fields.push(pa_storage::Field::new(
                    format!("__r{idx}"),
                    agg.schema().field_at(0).dtype,
                ));
                idx += 1;
            }
        }
        let mut raw = Table::empty(Schema::new(fields)?.into_shared());
        raw.push_row(&row)?;
        return Ok(raw);
    }

    // F0: every existing group combination (defines the result rows).
    let f0 = pa_engine::distinct(src, j_cols, stats)?;
    create_table_as(catalog, &format!("{prefix}F0"), f0.clone(), stats)?;

    // Per-combination filtered aggregations F1..FN, left-outer-joined onto F0.
    let mut joined = f0;
    let f0_keys: Vec<usize> = (0..j_len).collect();
    let mut value_cols: Vec<usize> = Vec::new();
    let mut spj_index = 1usize;
    for plan in plans {
        for combo in &plan.combos {
            let pred = Expr::key_match(
                &plan
                    .by_src_cols
                    .iter()
                    .zip(combo)
                    .map(|(&c, v)| (c, v.clone()))
                    .collect::<Vec<_>>(),
            );
            let filtered = filter(src, &pred, stats)?;
            let specs: Vec<AggSpec> = plan
                .lanes
                .iter()
                .enumerate()
                .map(|(l, (func, input))| AggSpec::new(*func, input.clone(), format!("v{l}")))
                .collect();
            let fi = hash_aggregate_with_config(&filtered, j_cols, &specs, guard, stats, par)?;
            create_table_as(catalog, &format!("{prefix}F{spj_index}"), fi.clone(), stats)?;
            spj_index += 1;
            let base = joined.num_columns();
            let fi_keys: Vec<usize> = (0..j_len).collect();
            joined = hash_join_guarded(
                &joined,
                &fi,
                &f0_keys,
                &fi_keys,
                JoinType::LeftOuter,
                None,
                guard,
                stats,
            )?;
            for l in 0..plan.lanes.len() {
                value_cols.push(base + j_len + l);
            }
        }
        if let Some(total) = &plan.total {
            let fi = hash_aggregate_with_config(
                src,
                j_cols,
                &[AggSpec::new(AggFunc::Sum, total.clone(), "t")],
                guard,
                stats,
                par,
            )?;
            let base = joined.num_columns();
            joined = hash_join_guarded(
                &joined,
                &fi,
                &f0_keys,
                &(0..j_len).collect::<Vec<_>>(),
                JoinType::LeftOuter,
                None,
                guard,
                stats,
            )?;
            value_cols.push(base + j_len);
        }
    }
    for (lanes, _) in extras {
        let specs: Vec<AggSpec> = lanes
            .iter()
            .enumerate()
            .map(|(l, (func, input))| AggSpec::new(*func, input.clone(), format!("e{l}")))
            .collect();
        let fi = hash_aggregate_with_config(src, j_cols, &specs, guard, stats, par)?;
        let base = joined.num_columns();
        joined = hash_join_guarded(
            &joined,
            &fi,
            &f0_keys,
            &(0..j_len).collect::<Vec<_>>(),
            JoinType::LeftOuter,
            None,
            guard,
            stats,
        )?;
        for l in 0..lanes.len() {
            value_cols.push(base + j_len + l);
        }
    }

    // Project into the standard raw layout (this is the final
    // `INSERT INTO FH SELECT F0.D1.., F1.A, F2.A, ..` statement).
    let mut proj: Vec<ProjSpec> = Vec::new();
    for (i, &c) in f0_keys.iter().enumerate() {
        let _ = i;
        proj.push(ProjSpec::typed(
            Expr::Col(c),
            joined.schema().field_at(c).name.clone(),
            joined.schema().field_at(c).dtype,
        ));
    }
    for (i, &c) in value_cols.iter().enumerate() {
        proj.push(ProjSpec::typed(
            Expr::Col(c),
            format!("__r{i}"),
            joined.schema().field_at(c).dtype,
        ));
    }
    Ok(project(&joined, &proj, stats)?)
}

/// Bridge the per-term plans into the dispatch operator's task form.
fn plans_as_tasks(plans: &[TermPlan]) -> Vec<crate::dispatch::PivotTask> {
    plans
        .iter()
        .map(|p| crate::dispatch::PivotTask {
            by_cols: p.by_src_cols.clone(),
            lanes: p.lanes.clone(),
            combos: p.combos.clone(),
            total: p.total.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{HorizontalTerm, Measure};
    use pa_engine::AggFunc;

    /// A small version of the store/day-of-week table behind SIGMOD Table 3.
    fn store_sales_catalog() -> Catalog {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("store", DataType::Int),
            ("dweek", DataType::Str),
            ("salesAmt", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        // Store 2 sells Mon+Tue, store 4 only Tue (0% Monday — the paper
        // points at exactly this cell), store 7 only Mon.
        for (s, d, a) in [
            (2, "Mon", 100.0),
            (2, "Tue", 300.0),
            (2, "Mon", 100.0),
            (4, "Tue", 500.0),
            (4, "Tue", 300.0),
            (7, "Mon", 250.0),
        ] {
            t.push_row(&[Value::Int(s), Value::str(d), Value::Float(a)])
                .unwrap();
        }
        catalog.create_table("sales", t).unwrap();
        catalog
    }

    fn hpct_query() -> HorizontalQuery {
        let mut q = HorizontalQuery::hpct("sales", &["store"], "salesAmt", &["dweek"]);
        q.extra.push(ExtraAgg::sum("salesAmt", "total_sales"));
        q
    }

    fn all_option_sets() -> Vec<HorizontalOptions> {
        let mut out = Vec::new();
        for strategy in HorizontalStrategy::all() {
            out.push(HorizontalOptions::with_strategy(strategy));
        }
        for strategy in [
            HorizontalStrategy::CaseDirect,
            HorizontalStrategy::CaseFromFv,
        ] {
            out.push(HorizontalOptions {
                strategy,
                hash_dispatch: true,
                ..HorizontalOptions::default()
            });
        }
        out
    }

    fn check_table3_shape(result: &HorizontalResult) {
        let t = result.snapshot().sorted_by(&[0]);
        assert_eq!(t.num_rows(), 3);
        // Columns: store, dweek=Mon, dweek=Tue, total_sales.
        assert_eq!(t.num_columns(), 4);
        assert_eq!(t.schema().field_at(1).name, "dweek=Mon");
        assert_eq!(t.schema().field_at(2).name, "dweek=Tue");
        // Store 2: 40% Mon, 60% Tue, 500 total.
        assert_eq!(t.get(0, 1), Value::Float(0.4));
        assert_eq!(t.get(0, 2), Value::Float(0.6));
        assert_eq!(t.get(0, 3), Value::Float(500.0));
        // Store 4: 0% Monday — "observe the 0% for store 4 on Monday".
        assert_eq!(t.get(1, 1), Value::Float(0.0));
        assert_eq!(t.get(1, 2), Value::Float(1.0));
        // Store 7: 100% Monday, 0% Tuesday.
        assert_eq!(t.get(2, 1), Value::Float(1.0));
        assert_eq!(t.get(2, 2), Value::Float(0.0));
    }

    #[test]
    fn paper_table3_every_strategy() {
        for (i, opts) in all_option_sets().into_iter().enumerate() {
            let catalog = store_sales_catalog();
            let result = eval_horizontal(&catalog, &hpct_query(), &opts, "t_")
                .unwrap_or_else(|e| panic!("options {i}: {e}"));
            check_table3_shape(&result);
        }
    }

    #[test]
    fn percentage_rows_sum_to_one() {
        let catalog = store_sales_catalog();
        let result =
            eval_horizontal(&catalog, &hpct_query(), &HorizontalOptions::default(), "s_").unwrap();
        let t = result.snapshot();
        for r in 0..t.num_rows() {
            let sum = match (t.get(r, 1), t.get(r, 2)) {
                (Value::Float(a), Value::Float(b)) => a + b,
                other => panic!("{other:?}"),
            };
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hagg_missing_cells_are_null_unless_default_zero() {
        let catalog = store_sales_catalog();
        let q = HorizontalQuery::hagg("sales", &["store"], AggFunc::Sum, "salesAmt", &["dweek"]);
        let result = eval_horizontal(&catalog, &q, &HorizontalOptions::default(), "n_").unwrap();
        let t = result.snapshot().sorted_by(&[0]);
        assert_eq!(t.get(1, 1), Value::Null, "store 4 Monday: NULL per DMKD");
        assert_eq!(t.get(1, 2), Value::Float(800.0));

        let mut qz = q.clone();
        qz.terms[0] = qz.terms[0].clone().with_default_zero();
        let result = eval_horizontal(&catalog, &qz, &HorizontalOptions::default(), "z_").unwrap();
        let t = result.snapshot().sorted_by(&[0]);
        assert_eq!(t.get(1, 1), Value::Float(0.0), "DEFAULT 0");
    }

    #[test]
    fn hagg_all_strategies_agree() {
        for func in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            let mut reference: Option<Vec<Vec<Value>>> = None;
            for opts in all_option_sets() {
                let catalog = store_sales_catalog();
                let q = HorizontalQuery::hagg("sales", &["store"], func, "salesAmt", &["dweek"]);
                let result = eval_horizontal(&catalog, &q, &opts, "a_")
                    .unwrap_or_else(|e| panic!("{func:?} {}: {e}", opts.strategy.label()));
                let rows: Vec<Vec<Value>> = result.snapshot().sorted_by(&[0]).rows().collect();
                match &reference {
                    None => reference = Some(rows),
                    Some(r) => assert_eq!(
                        r,
                        &rows,
                        "{func:?} under {} (dispatch={})",
                        opts.strategy.label(),
                        opts.hash_dispatch
                    ),
                }
            }
        }
    }

    #[test]
    fn binary_coding_idiom() {
        // DMKD: SELECT tid, max(1 BY dweek DEFAULT 0) FROM sales GROUP BY store.
        let catalog = store_sales_catalog();
        let q = HorizontalQuery {
            table: "sales".into(),
            group_by: vec!["store".into()],
            terms: vec![
                HorizontalTerm::hagg(AggFunc::Max, Measure::LitInt(1), &["dweek"])
                    .with_default_zero(),
            ],
            extra: vec![],
        };
        let result = eval_horizontal(&catalog, &q, &HorizontalOptions::default(), "b_").unwrap();
        let t = result.snapshot().sorted_by(&[0]);
        // Store 2: bought both days → 1,1. Store 4: 0,1. Store 7: 1,0.
        assert_eq!(t.get(0, 1), Value::Int(1));
        assert_eq!(t.get(0, 2), Value::Int(1));
        assert_eq!(t.get(1, 1), Value::Int(0));
        assert_eq!(t.get(1, 2), Value::Int(1));
        assert_eq!(t.get(2, 1), Value::Int(1));
        assert_eq!(t.get(2, 2), Value::Int(0));
    }

    #[test]
    fn no_group_by_yields_one_global_row() {
        for opts in all_option_sets() {
            let catalog = store_sales_catalog();
            let q = HorizontalQuery::hpct("sales", &[], "salesAmt", &["dweek"]);
            let result = eval_horizontal(&catalog, &q, &opts, "g_")
                .unwrap_or_else(|e| panic!("{}: {e}", opts.strategy.label()));
            let t = result.snapshot();
            assert_eq!(t.num_rows(), 1, "{}", opts.strategy.label());
            // Mon = 450/1550, Tue = 1100/1550.
            assert!((t.get(0, 0).as_f64().unwrap() - 450.0 / 1550.0).abs() < 1e-12);
            assert!((t.get(0, 1).as_f64().unwrap() - 1100.0 / 1550.0).abs() < 1e-12);
        }
    }

    #[test]
    fn multiple_terms_prefix_column_names() {
        let catalog = store_sales_catalog();
        let q = HorizontalQuery {
            table: "sales".into(),
            group_by: vec!["store".into()],
            terms: vec![
                HorizontalTerm::hpct("salesAmt", &["dweek"]),
                HorizontalTerm::hagg(AggFunc::CountStar, Measure::LitInt(1), &["dweek"]),
            ],
            extra: vec![],
        };
        let result = eval_horizontal(&catalog, &q, &HorizontalOptions::default(), "m_").unwrap();
        let t = result.snapshot().sorted_by(&[0]);
        assert_eq!(t.num_columns(), 5);
        assert!(t.schema().field_at(1).name.starts_with("hpct_salesAmt:"));
        assert!(t.schema().field_at(3).name.contains("dweek=Mon"));
        // Store 2 made 2 Monday transactions.
        assert_eq!(t.get(0, 3), Value::Int(2));
    }

    #[test]
    fn column_limit_enforced_and_partitioning_works() {
        let catalog = store_sales_catalog();
        let q = hpct_query();
        let strict = HorizontalOptions {
            max_columns: 3, // store + 2 cells + total_sales = 4 > 3
            ..HorizontalOptions::default()
        };
        assert!(matches!(
            eval_horizontal(&catalog, &q, &strict, "l_"),
            Err(CoreError::TooManyColumns {
                needed: 4,
                limit: 3
            })
        ));

        let partitioned = HorizontalOptions {
            max_columns: 3,
            allow_partitioning: true,
            ..HorizontalOptions::default()
        };
        let result = eval_horizontal(&catalog, &q, &partitioned, "p_").unwrap();
        assert_eq!(result.partitions.len(), 2);
        for part in &result.partitions {
            let t = part.read();
            assert!(t.num_columns() <= 3);
            assert_eq!(t.schema().field_at(0).name, "store", "key repeated");
            assert_eq!(t.num_rows(), 3);
        }
        assert!(catalog.contains("p_FH_p0"));
        assert!(catalog.contains("p_FH_p1"));
    }

    #[test]
    fn case_direct_cost_is_n_conditions_per_row_jump_table_is_constant() {
        // Blow the example up so the per-row CASE chain dominates the small
        // fixed cost of the post-projection guards.
        let catalog = store_sales_catalog();
        {
            let f = catalog.table("sales").unwrap();
            let mut t = f.write();
            let copy = t.clone();
            for _ in 0..9 {
                t.extend_from(&copy).unwrap();
            }
            assert_eq!(t.num_rows(), 60);
        }
        let q = HorizontalQuery::hpct("sales", &["store"], "salesAmt", &["dweek"]);
        // Legacy chain (jump table off): 60 rows × 2 combos = 120
        // conditions in the raw phase, plus the small post-projection
        // constant (3 groups × 2 cells × 2 guards).
        let legacy = eval_horizontal(
            &catalog,
            &q,
            &HorizontalOptions {
                jump_table: false,
                ..HorizontalOptions::default()
            },
            "c1_",
        )
        .unwrap();
        assert!(
            legacy.stats.case_condition_evals >= 120,
            "{}",
            legacy.stats.case_condition_evals
        );
        // (The legacy run still counts dense ops for its GROUP BY hash
        // aggregation — only the CASE evaluation itself avoids the pivot.)
        // Default: the jump table pays only the post-projection guards —
        // independent of n — and every lookup pass runs dense.
        let jump = eval_horizontal(&catalog, &q, &HorizontalOptions::default(), "c2_").unwrap();
        assert_eq!(jump.stats.case_condition_evals, 12);
        assert!(jump.stats.dense_group_ops > 0, "{}", jump.stats);
        assert_eq!(jump.stats.hash_group_ops, 0, "{}", jump.stats);
        // Hash-dispatch ablation: same constant CASE cost, hash lookups.
        let dispatch = eval_horizontal(
            &catalog,
            &q,
            &HorizontalOptions {
                hash_dispatch: true,
                ..HorizontalOptions::default()
            },
            "c3_",
        )
        .unwrap();
        assert_eq!(dispatch.stats.case_condition_evals, 12);
        assert_eq!(dispatch.stats.dense_group_ops, 0, "{}", dispatch.stats);
        assert!(dispatch.stats.hash_group_ops > 0, "{}", dispatch.stats);
        assert!(dispatch.stats.case_condition_evals * 5 < legacy.stats.case_condition_evals);
    }

    #[test]
    fn combo_cache_serves_repeat_queries_and_mutations_invalidate() {
        let catalog = store_sales_catalog();
        let q = hpct_query();
        let first = eval_horizontal(&catalog, &q, &HorizontalOptions::default(), "k1_").unwrap();
        assert_eq!(first.stats.combo_cache_misses, 1, "{}", first.stats);
        assert_eq!(first.stats.combo_cache_hits, 0);
        // Same table + BY dims, different strategy: served from cache.
        let second = eval_horizontal(
            &catalog,
            &q,
            &HorizontalOptions::with_strategy(HorizontalStrategy::CaseFromFv),
            "k2_",
        )
        .unwrap();
        assert_eq!(second.stats.combo_cache_hits, 1, "{}", second.stats);
        assert_eq!(second.stats.combo_cache_misses, 0);
        assert_eq!(
            first.snapshot().sorted_by(&[0]).rows().collect::<Vec<_>>(),
            second.snapshot().sorted_by(&[0]).rows().collect::<Vec<_>>(),
        );
        // A logged append invalidates: the next query re-discovers and sees
        // the new combination as a new result column.
        let extra_schema = catalog.table("sales").unwrap().read().schema().clone();
        let mut wed = Table::empty(extra_schema);
        wed.push_row(&[Value::Int(2), Value::str("Wed"), Value::Float(50.0)])
            .unwrap();
        pa_engine::insert_into(&catalog, "sales", &wed, &mut ExecStats::default()).unwrap();
        let third = eval_horizontal(&catalog, &q, &HorizontalOptions::default(), "k3_").unwrap();
        assert_eq!(third.stats.combo_cache_misses, 1, "{}", third.stats);
        let t = third.snapshot();
        assert_eq!(t.num_columns(), 5, "Wed became a column");
        assert_eq!(t.schema().field_at(3).name, "dweek=Wed");
    }

    #[test]
    fn spj_is_more_expensive_than_case() {
        let catalog = store_sales_catalog();
        let q = hpct_query();
        let case = eval_horizontal(
            &catalog,
            &q,
            &HorizontalOptions::with_strategy(HorizontalStrategy::CaseDirect),
            "x1_",
        )
        .unwrap();
        let spj = eval_horizontal(
            &catalog,
            &q,
            &HorizontalOptions::with_strategy(HorizontalStrategy::SpjDirect),
            "x2_",
        )
        .unwrap();
        assert!(
            spj.stats.rows_scanned > case.stats.rows_scanned,
            "spj {} vs case {}",
            spj.stats.rows_scanned,
            case.stats.rows_scanned
        );
        assert!(spj.stats.statements > case.stats.statements);
        // SPJ registered its temporaries.
        assert!(catalog.contains("x2_F0"));
        assert!(catalog.contains("x2_F1"));
    }

    #[test]
    fn statements_transcript_present() {
        let catalog = store_sales_catalog();
        let result = eval_horizontal(
            &catalog,
            &hpct_query(),
            &HorizontalOptions::with_strategy(HorizontalStrategy::CaseFromFv),
            "st_",
        )
        .unwrap();
        assert!(result.statements[0].contains("INSERT INTO FV"));
        assert!(result.statements.last().unwrap().contains("INSERT INTO FH"));
        assert!(catalog.contains("st_FV"));
    }

    #[test]
    fn unknown_columns_rejected() {
        let catalog = store_sales_catalog();
        let q = HorizontalQuery::hpct("sales", &["store"], "nope", &["dweek"]);
        assert!(eval_horizontal(&catalog, &q, &HorizontalOptions::default(), "e_").is_err());
        let q = HorizontalQuery::hpct("sales", &["store"], "salesAmt", &["nope"]);
        assert!(eval_horizontal(&catalog, &q, &HorizontalOptions::default(), "e_").is_err());
    }

    #[test]
    fn null_dimension_value_is_a_column() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("d", DataType::Str),
            ("a", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::Int(1), Value::str("x"), Value::Float(3.0)])
            .unwrap();
        t.push_row(&[Value::Int(1), Value::Null, Value::Float(1.0)])
            .unwrap();
        catalog.create_table("f", t).unwrap();
        let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
        for opts in all_option_sets() {
            let result = eval_horizontal(&catalog, &q, &opts, "nu_")
                .unwrap_or_else(|e| panic!("{}: {e}", opts.strategy.label()));
            let t = result.snapshot();
            assert_eq!(t.num_columns(), 3, "{}", opts.strategy.label());
            assert_eq!(t.schema().field_at(1).name, "d=NULL");
            assert_eq!(t.get(0, 1), Value::Float(0.25), "{}", opts.strategy.label());
            assert_eq!(t.get(0, 2), Value::Float(0.75));
        }
    }

    #[test]
    fn zero_total_group_percentages_are_null() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("d", DataType::Str),
            ("a", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::Int(1), Value::str("x"), Value::Float(5.0)])
            .unwrap();
        t.push_row(&[Value::Int(1), Value::str("y"), Value::Float(-5.0)])
            .unwrap();
        catalog.create_table("f", t).unwrap();
        let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
        for opts in all_option_sets() {
            let result = eval_horizontal(&catalog, &q, &opts, "zz_").unwrap();
            let t = result.snapshot();
            assert_eq!(t.get(0, 1), Value::Null, "{}", opts.strategy.label());
            assert_eq!(t.get(0, 2), Value::Null);
        }
    }
}
