//! Vertical percentage evaluation (SIGMOD §3.1).
//!
//! For `SELECT D1..Dk, Vpct(A BY Dj+1..Dk), .. FROM F GROUP BY D1..Dk` the
//! plan is the paper's multi-statement scheme:
//!
//! 1. `Fk` — `INSERT INTO Fk SELECT D1..Dk, sum(A) FROM F GROUP BY D1..Dk`
//!    (the finest level, only computable from `F`).
//! 2. `Fj` — per term, `SELECT D1..Dj, sum(A) FROM {Fk|F} GROUP BY D1..Dj`
//!    (`sum` is distributive, so `Fk` is a valid source — the paper's key
//!    optimization).
//! 3. `FV` — divide: either `INSERT INTO FV SELECT .., CASE WHEN Fj.A <> 0
//!    THEN Fk.A/Fj.A ELSE NULL END FROM Fj, Fk WHERE ..` or
//!    `UPDATE Fk SET A = ..` in place.
//!
//! Work is accounted per operator, and the generated-SQL transcript is
//! attached to the result for inspection.

use crate::error::{CoreError, Result};
use crate::query::{ExtraAgg, VpctQuery};
use crate::strategy::{FjSource, Materialization, VpctStrategy};
use pa_engine::{
    create_table_as, hash_join_guarded, multi_hash_aggregate_guarded, update_from, AggFunc,
    AggSpec, ExecStats, Expr, JoinType, ProjSpec, ResourceGuard, SetClause,
};
use pa_storage::{Catalog, HashIndex, SharedTable, Table, Value};

/// Result of evaluating a percentage query.
#[derive(Debug)]
pub struct QueryResult {
    /// The result table (`FV` or `FH`), registered in the catalog and shared.
    pub table: SharedTable,
    /// Work counters accumulated across all statements of the plan.
    pub stats: ExecStats,
    /// The SQL statements the code generator would emit for this plan.
    pub statements: Vec<String>,
}

impl QueryResult {
    /// Owned copy of the result table (tests / display).
    pub fn snapshot(&self) -> Table {
        self.table.read().clone()
    }
}

fn extra_spec(extra: &ExtraAgg, schema: &pa_storage::Schema) -> Result<AggSpec> {
    let input = match (&extra.func, &extra.measure) {
        (AggFunc::CountStar, _) => Expr::lit(1),
        (_, Some(m)) => m.to_expr(schema)?,
        (f, None) => {
            return Err(CoreError::InvalidQuery(format!(
                "{} requires a measure",
                f.sql_name()
            )));
        }
    };
    Ok(AggSpec::new(extra.func, input, extra.name.clone()))
}

/// Evaluate a vertical percentage query with an explicit strategy.
///
/// Temporary tables are registered as `{prefix}Fk`, `{prefix}Fj{t}` and
/// `{prefix}FV` (replacing previous contents).
pub fn eval_vpct(
    catalog: &Catalog,
    q: &VpctQuery,
    strat: &VpctStrategy,
    prefix: &str,
) -> Result<QueryResult> {
    eval_vpct_guarded(catalog, q, strat, prefix, &ResourceGuard::unlimited())
}

/// [`eval_vpct`] under a [`ResourceGuard`]: the plan's aggregation scans,
/// join probes and materialized rows are charged against the guard, so an
/// over-budget plan fails with [`CoreError::BudgetExceeded`] instead of
/// exhausting memory.
pub fn eval_vpct_guarded(
    catalog: &Catalog,
    q: &VpctQuery,
    strat: &VpctStrategy,
    prefix: &str,
    guard: &ResourceGuard,
) -> Result<QueryResult> {
    q.validate()?;
    let mut stats = ExecStats::default();
    let statements = crate::codegen::vpct_statements(q, strat);

    let f_shared = catalog.table(&q.table)?;
    let f = f_shared.read();
    let f_schema = f.schema().clone();

    // Resolve GROUP BY columns.
    let k_cols: Vec<usize> = q
        .group_by
        .iter()
        .map(|n| {
            f_schema
                .index_of(n)
                .map_err(|_| CoreError::InvalidQuery(format!("unknown GROUP BY column {n}")))
        })
        .collect::<Result<Vec<_>>>()?;
    let k_len = k_cols.len();

    // Fk aggregate list: one sum per term (named for the final output), then
    // the extra aggregates.
    let mut fk_specs: Vec<AggSpec> = Vec::with_capacity(q.terms.len() + q.extra.len());
    for term in &q.terms {
        fk_specs.push(AggSpec::new(
            AggFunc::Sum,
            term.measure.to_expr(&f_schema)?,
            term.name.clone(),
        ));
    }
    for extra in &q.extra {
        fk_specs.push(extra_spec(extra, &f_schema)?);
    }

    // Totals keys per term, as F column indices and as Fk positions.
    let totals_keys: Vec<Vec<String>> = q.terms.iter().map(|t| q.totals_key(t)).collect();
    let totals_f_cols: Vec<Vec<usize>> = totals_keys
        .iter()
        .map(|names| {
            names
                .iter()
                .map(|n| f_schema.index_of(n).map_err(CoreError::from))
                .collect::<Result<Vec<_>>>()
        })
        .collect::<Result<Vec<_>>>()?;
    // Position of each group-by column inside Fk = its rank in q.group_by.
    let fk_pos_of = |name: &str| -> usize {
        q.group_by
            .iter()
            .position(|g| g.eq_ignore_ascii_case(name))
            .expect("totals key comes from group_by")
    };
    let totals_fk_cols: Vec<Vec<usize>> = totals_keys
        .iter()
        .map(|names| names.iter().map(|n| fk_pos_of(n)).collect())
        .collect();

    // ---- Step 1 (+ optionally step 2): aggregate.
    let (fk_table, mut fj_tables): (Table, Vec<Table>) = if strat.synchronized_scan
        && strat.fj_source == FjSource::FromF
    {
        // One synchronized scan computing Fk and every Fj.
        let mut levels: Vec<(Vec<usize>, Vec<AggSpec>)> = vec![(k_cols.clone(), fk_specs.clone())];
        for (t, term) in q.terms.iter().enumerate() {
            levels.push((
                totals_f_cols[t].clone(),
                vec![AggSpec::new(
                    AggFunc::Sum,
                    term.measure.to_expr(&f_schema)?,
                    "total",
                )],
            ));
        }
        let mut out = multi_hash_aggregate_guarded(&f, &levels, guard, &mut stats)?;
        let fk = out.remove(0);
        (fk, out)
    } else {
        let fk = multi_hash_aggregate_guarded(
            &f,
            &[(k_cols.clone(), fk_specs.clone())],
            guard,
            &mut stats,
        )?
        .pop()
        .expect("one level");
        (fk, Vec::new())
    };

    // ---- Step 2: totals per term (unless the synchronized scan made them).
    if fj_tables.is_empty() {
        for (t, term) in q.terms.iter().enumerate() {
            let fj = match strat.fj_source {
                FjSource::FromF => {
                    let spec =
                        AggSpec::new(AggFunc::Sum, term.measure.to_expr(&f_schema)?, "total");
                    multi_hash_aggregate_guarded(
                        &f,
                        &[(totals_f_cols[t].clone(), vec![spec])],
                        guard,
                        &mut stats,
                    )?
                    .pop()
                    .expect("one level")
                }
                FjSource::FromFk => {
                    // Re-aggregate the partial sums (distributive).
                    let sum_pos = k_len + t;
                    let spec = AggSpec::new(AggFunc::Sum, Expr::Col(sum_pos), "total");
                    multi_hash_aggregate_guarded(
                        &fk_table,
                        &[(totals_fk_cols[t].clone(), vec![spec])],
                        guard,
                        &mut stats,
                    )?
                    .pop()
                    .expect("one level")
                }
            };
            fj_tables.push(fj);
        }
    }
    drop(f);

    // Register temporaries (bulk INSERT..SELECT — one WAL record each).
    let fk_name = format!("{prefix}Fk");
    create_table_as(catalog, &fk_name, fk_table, &mut stats)?;
    let mut fj_names = Vec::with_capacity(fj_tables.len());
    for (t, fj) in fj_tables.iter().enumerate() {
        let name = format!("{prefix}Fj{t}");
        create_table_as(catalog, &name, fj.clone(), &mut stats)?;
        fj_names.push(name);
    }

    // ---- Step 3: divide.
    let fv_name = format!("{prefix}FV");
    match strat.materialization {
        Materialization::Insert => {
            // Progressively join Fk with each Fj, then project percentages.
            let fk_shared = catalog.table(&fk_name)?;
            let mut cur: Table = fk_shared.read().clone();
            let mut pct_exprs: Vec<Expr> = Vec::with_capacity(q.terms.len());
            for (t, _term) in q.terms.iter().enumerate() {
                let sum_pos = k_len + t;
                let fj = &fj_tables[t];
                let j_len = totals_fk_cols[t].len();
                if j_len == 0 {
                    // Global totals: one-row Fj, broadcast scalar division.
                    let total = fj.get(0, 0);
                    pct_exprs.push(Expr::Col(sum_pos).safe_div(Expr::Lit(total)));
                } else {
                    let fj_keys: Vec<usize> = (0..j_len).collect();
                    let index = if strat.subkey_index {
                        stats.statements += 1; // CREATE INDEX
                        Some(
                            catalog.create_index(
                                &fj_names[t],
                                &fj.schema().fields()[..j_len]
                                    .iter()
                                    .map(|fld| fld.name.as_str())
                                    .collect::<Vec<_>>(),
                            )?,
                        )
                    } else {
                        None
                    };
                    let total_pos = cur.num_columns() + j_len;
                    cur = hash_join_guarded(
                        &cur,
                        fj,
                        &totals_fk_cols[t],
                        &fj_keys,
                        JoinType::Inner,
                        index.as_deref(),
                        guard,
                        &mut stats,
                    )?;
                    pct_exprs.push(Expr::Col(sum_pos).safe_div(Expr::Col(total_pos)));
                }
            }
            // Final projection: D1..Dk, percentages, extras.
            let mut projections: Vec<ProjSpec> = Vec::new();
            for (i, name) in q.group_by.iter().enumerate() {
                projections.push(ProjSpec::typed(
                    Expr::Col(i),
                    name.clone(),
                    cur.schema().field_at(i).dtype,
                ));
            }
            for (t, term) in q.terms.iter().enumerate() {
                projections.push(ProjSpec::typed(
                    pct_exprs[t].clone(),
                    term.name.clone(),
                    pa_storage::DataType::Float,
                ));
            }
            for (e, extra) in q.extra.iter().enumerate() {
                let pos = k_len + q.terms.len() + e;
                projections.push(ProjSpec::typed(
                    Expr::Col(pos),
                    extra.name.clone(),
                    cur.schema().field_at(pos).dtype,
                ));
            }
            let fv = pa_engine::project(&cur, &projections, &mut stats)?;
            let shared = create_table_as(catalog, &fv_name, fv, &mut stats)?;
            Ok(QueryResult {
                table: shared,
                stats,
                statements,
            })
        }
        Materialization::Update => {
            // UPDATE Fk in place, term by term; FV = Fk.
            for (t, _term) in q.terms.iter().enumerate() {
                let sum_pos = k_len + t;
                let fj = &fj_tables[t];
                let j_len = totals_fk_cols[t].len();
                if j_len == 0 {
                    scalar_update_divide(
                        catalog,
                        &fk_name,
                        sum_pos,
                        fj.get(0, 0),
                        guard,
                        &mut stats,
                    )?;
                } else {
                    let fj_keys: Vec<usize> = (0..j_len).collect();
                    let index: Option<std::sync::Arc<HashIndex>> = if strat.subkey_index {
                        stats.statements += 1;
                        Some(
                            catalog.create_index(
                                &fj_names[t],
                                &fj.schema().fields()[..j_len]
                                    .iter()
                                    .map(|fld| fld.name.as_str())
                                    .collect::<Vec<_>>(),
                            )?,
                        )
                    } else {
                        None
                    };
                    let fk_width = catalog.table(&fk_name)?.read().num_columns();
                    let total_pos = fk_width + j_len;
                    update_from(
                        catalog,
                        &fk_name,
                        &totals_fk_cols[t],
                        fj,
                        &fj_keys,
                        index.as_deref(),
                        &[SetClause {
                            target_col: sum_pos,
                            expr: Expr::Col(sum_pos).safe_div(Expr::Col(total_pos)),
                        }],
                        &mut stats,
                    )?;
                }
            }
            // FV = Fk: register the same shared table under the FV name.
            let fk_shared = catalog.table(&fk_name)?;
            let fv = fk_shared.read().clone();
            let shared = create_table_as(catalog, &fv_name, fv, &mut stats)?;
            // The extra registration is bookkeeping, not plan work: the
            // paper's point is that Update avoids a third table. Remove the
            // copy's accounting so measurements reflect the real plan.
            stats.statements -= 1;
            Ok(QueryResult {
                table: shared,
                stats,
                statements,
            })
        }
    }
}

/// Per-row logged division by a scalar total (the `D1..Dj = ∅` corner of the
/// UPDATE strategy, where there is no join key).
fn scalar_update_divide(
    catalog: &Catalog,
    table: &str,
    col: usize,
    total: Value,
    guard: &ResourceGuard,
    stats: &mut ExecStats,
) -> Result<()> {
    stats.statements += 1;
    let wal_before = catalog.wal_stats();
    let shared = catalog.table(table)?;
    let mut t = shared.write();
    let n = t.num_rows();
    stats.rows_scanned += n as u64;
    guard.charge(n as u64)?;
    let mut span = guard.span("update");
    span.add_rows(n as u64);
    span.add_morsels(1);
    let denom = total.as_f64();
    for row in 0..n {
        let before = t.column(col).get(row);
        let after = match (before.as_f64(), denom) {
            (Some(x), Some(d)) if d != 0.0 => Value::Float(x / d),
            _ => Value::Null,
        };
        stats.case_condition_evals += 1;
        catalog.with_wal_mutating(table, |wal| {
            wal.log_update(
                table,
                row,
                std::slice::from_ref(&col),
                std::slice::from_ref(&before),
                std::slice::from_ref(&after),
            )
        })?;
        t.column_mut(col).set(row, after)?;
    }
    stats.rows_updated += n as u64;
    let wal_after = catalog.wal_stats();
    stats.wal_records += wal_after.records - wal_before.records;
    stats.wal_bytes += wal_after.bytes_written - wal_before.bytes_written;
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::query::Measure;
    use pa_storage::{DataType, Schema};

    /// The paper's Table 1.
    pub(crate) fn sales_catalog() -> Catalog {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("RID", DataType::Int),
            ("state", DataType::Str),
            ("city", DataType::Str),
            ("salesAmt", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for (rid, s, c, a) in [
            (1, "CA", "San Francisco", 13.0),
            (2, "CA", "San Francisco", 3.0),
            (3, "CA", "San Francisco", 67.0),
            (4, "CA", "Los Angeles", 23.0),
            (5, "TX", "Houston", 5.0),
            (6, "TX", "Houston", 35.0),
            (7, "TX", "Houston", 10.0),
            (8, "TX", "Houston", 14.0),
            (9, "TX", "Dallas", 53.0),
            (10, "TX", "Dallas", 32.0),
        ] {
            t.push_row(&[
                Value::Int(rid),
                Value::str(s),
                Value::str(c),
                Value::Float(a),
            ])
            .unwrap();
        }
        catalog.create_table("sales", t).unwrap();
        catalog
    }

    fn paper_query() -> VpctQuery {
        VpctQuery::single("sales", &["state", "city"], "salesAmt", &["city"])
    }

    fn expected_table2() -> Vec<(String, String, f64)> {
        vec![
            ("CA".into(), "Los Angeles".into(), 23.0 / 106.0),
            ("CA".into(), "San Francisco".into(), 83.0 / 106.0),
            ("TX".into(), "Dallas".into(), 85.0 / 149.0),
            ("TX".into(), "Houston".into(), 64.0 / 149.0),
        ]
    }

    fn check_result(result: &QueryResult) {
        let t = result.snapshot().sorted_by(&[0, 1]);
        assert_eq!(t.num_rows(), 4);
        for (row, (state, city, pct)) in expected_table2().iter().enumerate() {
            assert_eq!(t.get(row, 0), Value::str(state));
            assert_eq!(t.get(row, 1), Value::str(city));
            match t.get(row, 2) {
                Value::Float(p) => assert!((p - pct).abs() < 1e-12, "row {row}: {p} vs {pct}"),
                other => panic!("expected float, got {other}"),
            }
        }
    }

    #[test]
    fn paper_table2_best_strategy() {
        let catalog = sales_catalog();
        let result = eval_vpct(&catalog, &paper_query(), &VpctStrategy::best(), "t_").unwrap();
        check_result(&result);
        assert!(catalog.contains("t_Fk"));
        assert!(catalog.contains("t_Fj0"));
        assert!(catalog.contains("t_FV"));
        assert!(!result.statements.is_empty());
    }

    #[test]
    fn all_strategies_agree() {
        let strategies = [
            VpctStrategy::best(),
            VpctStrategy::without_index(),
            VpctStrategy::with_update(),
            VpctStrategy::fj_from_f(),
            VpctStrategy::synchronized(),
            VpctStrategy {
                fj_source: FjSource::FromF,
                materialization: Materialization::Update,
                subkey_index: false,
                synchronized_scan: false,
            },
        ];
        for (i, strat) in strategies.iter().enumerate() {
            let catalog = sales_catalog();
            let result = eval_vpct(&catalog, &paper_query(), strat, "t_")
                .unwrap_or_else(|e| panic!("strategy {i}: {e}"));
            check_result(&result);
        }
    }

    #[test]
    fn update_strategy_pays_per_row_wal_records() {
        let catalog = sales_catalog();
        let ins = eval_vpct(&catalog, &paper_query(), &VpctStrategy::best(), "a_").unwrap();
        let upd = eval_vpct(&catalog, &paper_query(), &VpctStrategy::with_update(), "b_").unwrap();
        assert!(upd.stats.rows_updated > 0);
        assert!(
            upd.stats.wal_records > ins.stats.wal_records,
            "per-row update logging exceeds bulk insert logging: {} vs {}",
            upd.stats.wal_records,
            ins.stats.wal_records
        );
    }

    #[test]
    fn fj_from_fk_scans_f_once() {
        let catalog = sales_catalog();
        let from_fk = eval_vpct(&catalog, &paper_query(), &VpctStrategy::best(), "a_").unwrap();
        let from_f = eval_vpct(&catalog, &paper_query(), &VpctStrategy::fj_from_f(), "b_").unwrap();
        // From-Fk reads F once (10 rows) + Fk (4); from-F reads F twice.
        assert!(
            from_fk.stats.rows_scanned < from_f.stats.rows_scanned,
            "{} vs {}",
            from_fk.stats.rows_scanned,
            from_f.stats.rows_scanned
        );
    }

    #[test]
    fn empty_by_means_global_totals() {
        // Vpct(salesAmt) with GROUP BY state: share of the 255 grand total.
        let catalog = sales_catalog();
        let q = VpctQuery::single("sales", &["state"], "salesAmt", &[]);
        for strat in [VpctStrategy::best(), VpctStrategy::with_update()] {
            let result = eval_vpct(&catalog, &q, &strat, "g_").unwrap();
            let t = result.snapshot().sorted_by(&[0]);
            assert_eq!(t.get(0, 1), Value::Float(106.0 / 255.0));
            assert_eq!(t.get(1, 1), Value::Float(149.0 / 255.0));
        }
    }

    #[test]
    fn extra_aggregates_ride_along() {
        let catalog = sales_catalog();
        let mut q = paper_query();
        q.extra.push(ExtraAgg::sum("salesAmt", "total_sales"));
        q.extra.push(ExtraAgg::count_star("n"));
        let result = eval_vpct(&catalog, &q, &VpctStrategy::best(), "x_").unwrap();
        let t = result.snapshot().sorted_by(&[0, 1]);
        assert_eq!(t.num_columns(), 5);
        assert_eq!(t.schema().index_of("total_sales").unwrap(), 3);
        assert_eq!(t.get(0, 3), Value::Float(23.0)); // CA/LA sum
        assert_eq!(t.get(1, 4), Value::Int(3)); // CA/SF count
    }

    #[test]
    fn multiple_terms_with_different_by_lists() {
        // Rule 4: Vpct(A BY city) and Vpct(A BY state, city) in one query.
        let catalog = sales_catalog();
        let q = VpctQuery {
            table: "sales".into(),
            group_by: vec!["state".into(), "city".into()],
            terms: vec![
                crate::query::VpctTerm::new("salesAmt", &["city"]),
                crate::query::VpctTerm::new("salesAmt", &["state", "city"]),
            ],
            extra: vec![],
        };
        for strat in [VpctStrategy::best(), VpctStrategy::with_update()] {
            let result = eval_vpct(&catalog, &q, &strat, "m_").unwrap();
            let t = result.snapshot().sorted_by(&[0, 1]);
            // Term 1: city within state (Table 2 values).
            assert_eq!(t.get(0, 2), Value::Float(23.0 / 106.0));
            // Term 2: BY = GROUP BY → global totals.
            assert_eq!(t.get(0, 3), Value::Float(23.0 / 255.0));
        }
    }

    #[test]
    fn vpct_of_literal_counts_rows() {
        // Vpct(1 BY city): share of row counts.
        let catalog = sales_catalog();
        let q = VpctQuery::single("sales", &["state", "city"], Measure::LitInt(1), &["city"]);
        let result = eval_vpct(&catalog, &q, &VpctStrategy::best(), "c_").unwrap();
        let t = result.snapshot().sorted_by(&[0, 1]);
        assert_eq!(t.get(0, 2), Value::Float(1.0 / 4.0)); // LA: 1 of 4 CA rows
        assert_eq!(t.get(3, 2), Value::Float(4.0 / 6.0)); // Houston: 4 of 6 TX rows
    }

    #[test]
    fn null_measures_and_zero_totals() {
        let catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("g", DataType::Str),
            ("d", DataType::Str),
            ("a", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        // Group "z" sums to zero → NULL percentages.
        t.push_row(&[Value::str("z"), Value::str("p"), Value::Float(5.0)])
            .unwrap();
        t.push_row(&[Value::str("z"), Value::str("q"), Value::Float(-5.0)])
            .unwrap();
        // Group "n" has only NULL measures → NULL total → NULL percentages.
        t.push_row(&[Value::str("n"), Value::str("p"), Value::Null])
            .unwrap();
        catalog.create_table("f", t).unwrap();
        let q = VpctQuery::single("f", &["g", "d"], "a", &["d"]);
        for strat in [VpctStrategy::best(), VpctStrategy::with_update()] {
            let result = eval_vpct(&catalog, &q, &strat, "z_").unwrap();
            let t = result.snapshot().sorted_by(&[0, 1]);
            assert_eq!(t.get(0, 2), Value::Null, "NULL total");
            assert_eq!(t.get(1, 2), Value::Null, "zero total");
            assert_eq!(t.get(2, 2), Value::Null, "zero total");
        }
    }

    #[test]
    fn by_equals_group_by_gives_global_share() {
        let catalog = sales_catalog();
        let q = VpctQuery::single("sales", &["state"], "salesAmt", &["state"]);
        let result = eval_vpct(&catalog, &q, &VpctStrategy::best(), "e_").unwrap();
        let t = result.snapshot().sorted_by(&[0]);
        assert_eq!(t.get(0, 1), Value::Float(106.0 / 255.0));
    }

    #[test]
    fn unknown_columns_rejected() {
        let catalog = sales_catalog();
        let q = VpctQuery::single("sales", &["nope"], "salesAmt", &[]);
        assert!(eval_vpct(&catalog, &q, &VpctStrategy::best(), "u_").is_err());
        let q = VpctQuery::single("sales", &["state"], "missing", &[]);
        assert!(eval_vpct(&catalog, &q, &VpctStrategy::best(), "u_").is_err());
    }

    #[test]
    fn group_percentages_sum_to_one() {
        let catalog = sales_catalog();
        let result = eval_vpct(&catalog, &paper_query(), &VpctStrategy::best(), "s_").unwrap();
        let t = result.snapshot();
        let mut sums: std::collections::BTreeMap<String, f64> = Default::default();
        for i in 0..t.num_rows() {
            let state = t.get(i, 0).to_string();
            if let Value::Float(p) = t.get(i, 2) {
                *sums.entry(state).or_default() += p;
            }
        }
        for (state, s) in sums {
            assert!((s - 1.0).abs() < 1e-12, "{state}: {s}");
        }
    }
}
