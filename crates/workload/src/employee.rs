//! The `employee` table (SIGMOD §4).
//!
//! "Table employee had n = 1M; its columns were gender(2), marstatus(4),
//! educat(5), age(100)." Each dimension uniformly distributed; `salary` is
//! the measure the percentage queries aggregate.

use crate::gen::{seq_col, uniform_float_col, uniform_int_col, uniform_str_col};
use crate::scale::Scale;
use pa_storage::{Catalog, DataType, Result, Schema, SharedTable, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct EmployeeConfig {
    /// Number of rows (paper: 1,000,000).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl EmployeeConfig {
    /// Paper-shape configuration at the given scale.
    pub fn at_scale(scale: Scale) -> EmployeeConfig {
        EmployeeConfig {
            rows: scale.rows(1_000_000),
            seed: 0x45_4d_50,
        }
    }
}

impl Default for EmployeeConfig {
    fn default() -> Self {
        EmployeeConfig::at_scale(Scale::default())
    }
}

/// Generate the table.
pub fn employee_table(config: &EmployeeConfig) -> Table {
    let n = config.rows;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::from_pairs(&[
        ("RID", DataType::Int),
        ("gender", DataType::Str),
        ("marstatus", DataType::Str),
        ("educat", DataType::Str),
        ("age", DataType::Int),
        ("salary", DataType::Float),
    ])
    .expect("static schema")
    .into_shared();
    let columns = vec![
        seq_col(n),
        uniform_str_col(&mut rng, n, &["M", "F"]),
        uniform_str_col(&mut rng, n, &["single", "married", "divorced", "widowed"]),
        uniform_str_col(
            &mut rng,
            n,
            &["none", "highschool", "bachelor", "master", "phd"],
        ),
        uniform_int_col(&mut rng, n, 100, 0),
        uniform_float_col(&mut rng, n, 20_000.0, 150_000.0),
    ];
    Table::from_columns(schema, columns).expect("columns match schema")
}

/// Generate and register as `employee`.
pub fn install_employee(catalog: &Catalog, config: &EmployeeConfig) -> Result<SharedTable> {
    catalog.create_table("employee", employee_table(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cardinalities() {
        let t = employee_table(&EmployeeConfig {
            rows: 5_000,
            seed: 1,
        });
        assert_eq!(t.num_rows(), 5_000);
        let distinct = |name: &str| {
            let col = t.schema().index_of(name).unwrap();
            let mut seen = std::collections::HashSet::new();
            for i in 0..t.num_rows() {
                seen.insert(t.get(i, col).to_string());
            }
            seen.len()
        };
        assert_eq!(distinct("gender"), 2);
        assert_eq!(distinct("marstatus"), 4);
        assert_eq!(distinct("educat"), 5);
        assert_eq!(distinct("age"), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = employee_table(&EmployeeConfig {
            rows: 100,
            seed: 42,
        });
        let b = employee_table(&EmployeeConfig {
            rows: 100,
            seed: 42,
        });
        let c = employee_table(&EmployeeConfig {
            rows: 100,
            seed: 43,
        });
        assert_eq!(a.get(7, 5), b.get(7, 5));
        assert!((0..100).any(|i| a.get(i, 5) != c.get(i, 5)));
    }

    #[test]
    fn installs_into_catalog() {
        let catalog = Catalog::new();
        install_employee(&catalog, &EmployeeConfig { rows: 10, seed: 1 }).unwrap();
        assert_eq!(catalog.table("employee").unwrap().read().num_rows(), 10);
    }
}
