//! The census-like data set (DMKD §4.1).
//!
//! The real data set was "a collection of records from the US Census ...
//! 68 columns ... n = 200,000 rows ... dimensions of different cardinalities
//! and skewed value distributions" from the UCI repository. The repository
//! snapshot is not shipped here, so this generator produces a synthetic
//! stand-in preserving what the DMKD experiments exercise: the columns its
//! queries group on (`iSchool`, `iClass`, `iMarital`, `dAge`, `iSex`), their
//! census-like cardinalities, and heavy skew (Zipf-distributed categories).
//! `dIncome` is the numeric measure. See DESIGN.md for the substitution
//! note.

use crate::gen::{seq_col, uniform_float_col, zipf_int_col, zipf_str_col};
use crate::scale::Scale;
use pa_storage::{Catalog, DataType, Result, Schema, SharedTable, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Number of rows (paper: 200,000).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CensusConfig {
    /// Paper-shape configuration at the given scale.
    pub fn at_scale(scale: Scale) -> CensusConfig {
        CensusConfig {
            rows: scale.rows(200_000),
            seed: 0x43_45_4e,
        }
    }
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig::at_scale(Scale::default())
    }
}

const SCHOOL: [&str; 10] = [
    "none", "grade1-4", "grade5-8", "grade9", "grade10", "grade11", "grade12", "college",
    "bachelor", "graduate",
];
const CLASS: [&str; 9] = [
    "private",
    "self-emp",
    "federal",
    "state",
    "local",
    "unpaid",
    "never-worked",
    "military",
    "other",
];
const MARITAL: [&str; 5] = ["never", "married", "separated", "divorced", "widowed"];

/// Generate the table.
pub fn uscensus_table(config: &CensusConfig) -> Table {
    let n = config.rows;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::from_pairs(&[
        ("RID", DataType::Int),
        ("iSchool", DataType::Str),
        ("iClass", DataType::Str),
        ("iMarital", DataType::Str),
        ("iSex", DataType::Str),
        ("dAge", DataType::Int),
        ("dIncome", DataType::Float),
    ])
    .expect("static schema")
    .into_shared();
    let columns = vec![
        seq_col(n),
        zipf_str_col(&mut rng, n, &SCHOOL, 0.9),
        zipf_str_col(&mut rng, n, &CLASS, 1.2),
        zipf_str_col(&mut rng, n, &MARITAL, 0.8),
        zipf_str_col(&mut rng, n, &["M", "F"], 0.2),
        // Ages 0..=90, skewed toward younger cohorts like the census.
        zipf_int_col(&mut rng, n, 91, 0.35),
        uniform_float_col(&mut rng, n, 0.0, 120_000.0),
    ];
    Table::from_columns(schema, columns).expect("columns match schema")
}

/// Generate and register as `uscensus`.
pub fn install_uscensus(catalog: &Catalog, config: &CensusConfig) -> Result<SharedTable> {
    catalog.create_table("uscensus", uscensus_table(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(t: &Table, name: &str) -> std::collections::HashMap<String, usize> {
        let col = t.schema().index_of(name).unwrap();
        let mut m = std::collections::HashMap::new();
        for i in 0..t.num_rows() {
            *m.entry(t.get(i, col).to_string()).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn cardinalities_and_skew() {
        let t = uscensus_table(&CensusConfig {
            rows: 50_000,
            seed: 3,
        });
        let school = counts(&t, "iSchool");
        assert_eq!(school.len(), 10);
        let class = counts(&t, "iClass");
        assert_eq!(class.len(), 9);
        // Skew: most common class strongly outnumbers the least common.
        let max = class.values().max().unwrap();
        let min = class.values().min().unwrap();
        assert!(max > &(min * 4), "max={max} min={min}");
        let ages = counts(&t, "dAge");
        assert!(ages.len() > 80, "ages cover most of 0..=90: {}", ages.len());
    }

    #[test]
    fn deterministic() {
        let a = uscensus_table(&CensusConfig {
            rows: 100,
            seed: 11,
        });
        let b = uscensus_table(&CensusConfig {
            rows: 100,
            seed: 11,
        });
        for i in 0..100 {
            assert_eq!(a.get(i, 5), b.get(i, 5));
        }
    }

    #[test]
    fn installs() {
        let catalog = Catalog::new();
        install_uscensus(&catalog, &CensusConfig { rows: 10, seed: 1 }).unwrap();
        assert!(catalog.contains("uscensus"));
    }
}
