//! Column-construction helpers shared by the generators.
//!
//! Generators build typed columns directly (no per-row `Value` boxing), so
//! paper-scale tables materialize in seconds.

use pa_storage::{Bitmap, Column, Dictionary};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Sequential row ids `1..=n`.
pub fn seq_col(n: usize) -> Column {
    Column::Int {
        data: (1..=n as i64).collect(),
        validity: Bitmap::filled(n, true),
    }
}

/// Uniform integers in `offset .. offset + cardinality`.
pub fn uniform_int_col(rng: &mut impl Rng, n: usize, cardinality: usize, offset: i64) -> Column {
    let dist = Uniform::new(0, cardinality as i64);
    Column::Int {
        data: (0..n).map(|_| offset + dist.sample(rng)).collect(),
        validity: Bitmap::filled(n, true),
    }
}

/// Uniformly distributed labels, dictionary-encoded.
pub fn uniform_str_col(rng: &mut impl Rng, n: usize, labels: &[&str]) -> Column {
    let mut dict = Dictionary::new();
    for l in labels {
        dict.intern(l);
    }
    let dist = Uniform::new(0, labels.len() as u32);
    Column::Str {
        dict,
        codes: (0..n).map(|_| dist.sample(rng)).collect(),
        validity: Bitmap::filled(n, true),
        packed: Default::default(),
    }
}

/// Uniform floats in `lo..hi`, rounded to cents.
pub fn uniform_float_col(rng: &mut impl Rng, n: usize, lo: f64, hi: f64) -> Column {
    let dist = Uniform::new(lo, hi);
    Column::Float {
        data: (0..n)
            .map(|_| (dist.sample(rng) * 100.0).round() / 100.0)
            .collect(),
        validity: Bitmap::filled(n, true),
    }
}

/// Skewed (approximately Zipf, exponent `s`) category indices in
/// `0..cardinality` — used by the census-like data set, whose value
/// distributions the DMKD paper describes as skewed.
pub fn zipf_indices(rng: &mut impl Rng, n: usize, cardinality: usize, s: f64) -> Vec<usize> {
    // Precompute the CDF once; cardinalities are small.
    let weights: Vec<f64> = (1..=cardinality)
        .map(|k| 1.0 / (k as f64).powf(s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(cardinality);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u).min(cardinality - 1)
        })
        .collect()
}

/// Skewed integer column from [`zipf_indices`].
pub fn zipf_int_col(rng: &mut impl Rng, n: usize, cardinality: usize, s: f64) -> Column {
    Column::Int {
        data: zipf_indices(rng, n, cardinality, s)
            .into_iter()
            .map(|i| i as i64)
            .collect(),
        validity: Bitmap::filled(n, true),
    }
}

/// Skewed label column from [`zipf_indices`].
pub fn zipf_str_col(rng: &mut impl Rng, n: usize, labels: &[&str], s: f64) -> Column {
    let mut dict = Dictionary::new();
    for l in labels {
        dict.intern(l);
    }
    Column::Str {
        dict,
        codes: zipf_indices(rng, n, labels.len(), s)
            .into_iter()
            .map(|i| i as u32)
            .collect(),
        validity: Bitmap::filled(n, true),
        packed: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_columns_have_right_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = uniform_int_col(&mut rng, 1000, 7, 1);
        assert_eq!(c.len(), 1000);
        for i in 0..1000 {
            let v = c.get(i).as_i64().unwrap();
            assert!((1..=7).contains(&v));
        }
        let s = uniform_str_col(&mut rng, 100, &["a", "b"]);
        assert_eq!(s.null_count(), 0);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_int_col(&mut StdRng::seed_from_u64(1), 50, 10, 0);
        let b = uniform_int_col(&mut StdRng::seed_from_u64(1), 50, 10, 0);
        for i in 0..50 {
            assert_eq!(a.get(i), b.get(i));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = zipf_indices(&mut rng, 10_000, 10, 1.2);
        let zero = idx.iter().filter(|&&i| i == 0).count();
        let nine = idx.iter().filter(|&&i| i == 9).count();
        assert!(zero > 4 * nine.max(1), "zero={zero} nine={nine}");
        assert!(idx.iter().all(|&i| i < 10));
    }

    #[test]
    fn seq_col_counts_from_one() {
        let c = seq_col(3);
        assert_eq!(c.get(0).as_i64(), Some(1));
        assert_eq!(c.get(2).as_i64(), Some(3));
    }

    #[test]
    fn floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = uniform_float_col(&mut rng, 200, 1.0, 100.0);
        for i in 0..200 {
            let v = c.get(i).as_f64().unwrap();
            assert!((1.0..=100.0).contains(&v));
        }
    }
}
