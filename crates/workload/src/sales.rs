//! The `sales` table (SIGMOD §4).
//!
//! "Table sales had n = 10M with columns transactionId(10M), itemId(1000),
//! dweek(7), monthNo(12), store(100), city(20), state(5), dept(100)."
//! Dimensions are uniform; `city` is generated consistently with `state`
//! (each city belongs to one state), mirroring a location hierarchy.
//! `salesAmt` is the measure.

use crate::gen::{seq_col, uniform_float_col, uniform_int_col, uniform_str_col};
use crate::scale::Scale;
use pa_storage::{
    Bitmap, Catalog, Column, DataType, Dictionary, Result, Schema, SharedTable, Table,
};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SalesConfig {
    /// Number of rows (paper: 10,000,000).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SalesConfig {
    /// Paper-shape configuration at the given scale.
    pub fn at_scale(scale: Scale) -> SalesConfig {
        SalesConfig {
            rows: scale.rows(10_000_000),
            seed: 0x53_41_4c,
        }
    }
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig::at_scale(Scale::default())
    }
}

const DWEEK: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
const STATES: [&str; 5] = ["CA", "TX", "NY", "WA", "FL"];

/// Generate the table.
pub fn sales_table(config: &SalesConfig) -> Table {
    let n = config.rows;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::from_pairs(&[
        ("transactionId", DataType::Int),
        ("itemId", DataType::Int),
        ("dweek", DataType::Str),
        ("monthNo", DataType::Int),
        ("store", DataType::Int),
        ("city", DataType::Str),
        ("state", DataType::Str),
        ("dept", DataType::Int),
        ("salesAmt", DataType::Float),
    ])
    .expect("static schema")
    .into_shared();

    // City/state hierarchy: 20 cities, city c belongs to state c mod 5.
    let mut city_dict = Dictionary::new();
    for c in 0..20 {
        city_dict.intern(&format!("city{c:02}"));
    }
    let mut state_dict = Dictionary::new();
    for s in STATES {
        state_dict.intern(s);
    }
    let city_dist = Uniform::new(0u32, 20);
    let mut city_codes = Vec::with_capacity(n);
    let mut state_codes = Vec::with_capacity(n);
    for _ in 0..n {
        let c = city_dist.sample(&mut rng);
        city_codes.push(c);
        state_codes.push(c % 5);
    }

    let columns = vec![
        seq_col(n),
        uniform_int_col(&mut rng, n, 1000, 1),
        uniform_str_col(&mut rng, n, &DWEEK),
        uniform_int_col(&mut rng, n, 12, 1),
        uniform_int_col(&mut rng, n, 100, 1),
        Column::Str {
            dict: city_dict,
            codes: city_codes,
            validity: Bitmap::filled(n, true),
            packed: Default::default(),
        },
        Column::Str {
            dict: state_dict,
            codes: state_codes,
            validity: Bitmap::filled(n, true),
            packed: Default::default(),
        },
        uniform_int_col(&mut rng, n, 100, 1),
        uniform_float_col(&mut rng, n, 1.0, 500.0),
    ];
    Table::from_columns(schema, columns).expect("columns match schema")
}

/// Generate and register as `sales`.
pub fn install_sales(catalog: &Catalog, config: &SalesConfig) -> Result<SharedTable> {
    catalog.create_table("sales", sales_table(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cardinalities() {
        let t = sales_table(&SalesConfig {
            rows: 20_000,
            seed: 2,
        });
        let distinct = |name: &str| {
            let col = t.schema().index_of(name).unwrap();
            let mut seen = std::collections::HashSet::new();
            for i in 0..t.num_rows() {
                seen.insert(t.get(i, col).to_string());
            }
            seen.len()
        };
        assert_eq!(distinct("dweek"), 7);
        assert_eq!(distinct("monthNo"), 12);
        assert_eq!(distinct("store"), 100);
        assert_eq!(distinct("city"), 20);
        assert_eq!(distinct("state"), 5);
        assert_eq!(distinct("dept"), 100);
        assert_eq!(
            distinct("transactionId"),
            20_000,
            "transaction id is unique"
        );
    }

    #[test]
    fn city_determines_state() {
        let t = sales_table(&SalesConfig {
            rows: 5_000,
            seed: 2,
        });
        let city = t.schema().index_of("city").unwrap();
        let state = t.schema().index_of("state").unwrap();
        let mut map = std::collections::HashMap::new();
        for i in 0..t.num_rows() {
            let c = t.get(i, city).to_string();
            let s = t.get(i, state).to_string();
            let prev = map.insert(c.clone(), s.clone());
            if let Some(prev) = prev {
                assert_eq!(prev, s, "city {c} maps to two states");
            }
        }
    }

    #[test]
    fn install_registers_table() {
        let catalog = Catalog::new();
        install_sales(&catalog, &SalesConfig { rows: 10, seed: 1 }).unwrap();
        assert!(catalog.contains("sales"));
    }
}
