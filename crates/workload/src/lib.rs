//! # pa-workload — the papers' evaluation data sets, synthesized
//!
//! Deterministic generators for every table the two papers evaluate on:
//! SIGMOD's `employee` (1M) and `sales` (10M), DMKD's `transactionLine`
//! (1M/2M) and a census-like skewed data set standing in for the UCI US
//! Census extract (see DESIGN.md for the substitution). Cardinalities match
//! the papers exactly; row counts scale via [`Scale`].

#![warn(missing_docs)]

pub mod census;
pub mod employee;
pub mod gen;
pub mod sales;
pub mod scale;
pub mod transaction;

pub use census::{install_uscensus, uscensus_table, CensusConfig};
pub use employee::{employee_table, install_employee, EmployeeConfig};
pub use sales::{install_sales, sales_table, SalesConfig};
pub use scale::Scale;
pub use transaction::{install_transaction_line, transaction_line_table, TransactionConfig};
