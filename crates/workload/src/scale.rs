//! Scaling knobs for the evaluation workloads.
//!
//! The paper ran on 1M-row (`employee`) and 10M-row (`sales`) tables on an
//! 800 MHz machine. Absolute row counts only change absolute times; every
//! comparison in the evaluation is about *relative* cost, so workloads here
//! default to a laptop-friendly scale and expose the paper-scale factor.

/// A scale factor applied to the papers' row counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// The papers' full row counts (employee 1M, sales 10M, ...).
    pub const PAPER: Scale = Scale(1.0);
    /// 1/10 of paper scale — the default for the repro harness.
    pub const BENCH: Scale = Scale(0.1);
    /// 1/100 of paper scale — CI-friendly.
    pub const SMOKE: Scale = Scale(0.01);

    /// Apply to a base row count (at least 1 row).
    pub fn rows(&self, base: usize) -> usize {
        ((base as f64) * self.0).round().max(1.0) as usize
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::BENCH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_row_counts() {
        assert_eq!(Scale::PAPER.rows(1_000_000), 1_000_000);
        assert_eq!(Scale::BENCH.rows(1_000_000), 100_000);
        assert_eq!(Scale::SMOKE.rows(1_000_000), 10_000);
        assert_eq!(Scale(0.0).rows(10), 1, "never empty");
    }
}
