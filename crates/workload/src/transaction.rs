//! The `transactionLine` table (DMKD §4.1).
//!
//! "Table transactionLine had columns deptId(10), subdeptId(100),
//! itemId(1000), yearNo(4), monthNo(12), dayOfWeekNo(7), regionId(4),
//! stateId(10), cityId(20) and storeId(30) ... generated with n = 1,000,000
//! rows and n = 2,000,000 rows." Dimensions are uniform so "every group and
//! result column involved a similar number of rows". Hierarchies are kept
//! consistent: subdept → dept, item → subdept, city → state → region,
//! store → city. Measures: `itemQty`, `costAmt`, `salesAmt`.

use crate::gen::{seq_col, uniform_float_col, uniform_int_col};
use crate::scale::Scale;
use pa_storage::{Bitmap, Catalog, Column, DataType, Result, Schema, SharedTable, Table};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TransactionConfig {
    /// Number of rows (paper: 1M and 2M).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TransactionConfig {
    /// Paper-shape configuration at the given scale (base 1M rows).
    pub fn at_scale(scale: Scale) -> TransactionConfig {
        TransactionConfig {
            rows: scale.rows(1_000_000),
            seed: 0x54_58_4e,
        }
    }
}

impl Default for TransactionConfig {
    fn default() -> Self {
        TransactionConfig::at_scale(Scale::default())
    }
}

/// Generate the table.
pub fn transaction_line_table(config: &TransactionConfig) -> Table {
    let n = config.rows;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::from_pairs(&[
        ("transactionId", DataType::Int),
        ("deptId", DataType::Int),
        ("subdeptId", DataType::Int),
        ("itemId", DataType::Int),
        ("yearNo", DataType::Int),
        ("monthNo", DataType::Int),
        ("dayOfWeekNo", DataType::Int),
        ("regionId", DataType::Int),
        ("stateId", DataType::Int),
        ("cityId", DataType::Int),
        ("storeId", DataType::Int),
        ("itemQty", DataType::Int),
        ("costAmt", DataType::Float),
        ("salesAmt", DataType::Float),
    ])
    .expect("static schema")
    .into_shared();

    // Product hierarchy: item(1000) → subdept(100) → dept(10).
    let item_dist = Uniform::new(0i64, 1000);
    let mut item = Vec::with_capacity(n);
    let mut subdept = Vec::with_capacity(n);
    let mut dept = Vec::with_capacity(n);
    // Location hierarchy: store(30) → city(20) → state(10) → region(4).
    let store_dist = Uniform::new(0i64, 30);
    let mut store = Vec::with_capacity(n);
    let mut city = Vec::with_capacity(n);
    let mut state = Vec::with_capacity(n);
    let mut region = Vec::with_capacity(n);
    for _ in 0..n {
        let i = item_dist.sample(&mut rng);
        item.push(i + 1);
        subdept.push(i % 100 + 1);
        dept.push(i % 10 + 1);
        let s = store_dist.sample(&mut rng);
        store.push(s + 1);
        city.push(s % 20 + 1);
        state.push(s % 10 + 1);
        region.push(s % 4 + 1);
    }
    let full = Bitmap::filled(n, true);
    let columns = vec![
        seq_col(n),
        Column::Int {
            data: dept,
            validity: full.clone(),
        },
        Column::Int {
            data: subdept,
            validity: full.clone(),
        },
        Column::Int {
            data: item,
            validity: full.clone(),
        },
        uniform_int_col(&mut rng, n, 4, 2001),
        uniform_int_col(&mut rng, n, 12, 1),
        uniform_int_col(&mut rng, n, 7, 1),
        Column::Int {
            data: region,
            validity: full.clone(),
        },
        Column::Int {
            data: state,
            validity: full.clone(),
        },
        Column::Int {
            data: city,
            validity: full.clone(),
        },
        Column::Int {
            data: store,
            validity: full,
        },
        uniform_int_col(&mut rng, n, 9, 1),
        uniform_float_col(&mut rng, n, 0.5, 250.0),
        uniform_float_col(&mut rng, n, 1.0, 500.0),
    ];
    Table::from_columns(schema, columns).expect("columns match schema")
}

/// Generate and register as `transactionLine`.
pub fn install_transaction_line(
    catalog: &Catalog,
    config: &TransactionConfig,
) -> Result<SharedTable> {
    catalog.create_table("transactionLine", transaction_line_table(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distinct(t: &Table, name: &str) -> usize {
        let col = t.schema().index_of(name).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..t.num_rows() {
            seen.insert(t.get(i, col).to_string());
        }
        seen.len()
    }

    #[test]
    fn paper_cardinalities() {
        let t = transaction_line_table(&TransactionConfig {
            rows: 30_000,
            seed: 5,
        });
        assert_eq!(distinct(&t, "deptId"), 10);
        assert_eq!(distinct(&t, "subdeptId"), 100);
        assert_eq!(distinct(&t, "itemId"), 1000);
        assert_eq!(distinct(&t, "yearNo"), 4);
        assert_eq!(distinct(&t, "monthNo"), 12);
        assert_eq!(distinct(&t, "dayOfWeekNo"), 7);
        assert_eq!(distinct(&t, "regionId"), 4);
        assert_eq!(distinct(&t, "stateId"), 10);
        assert_eq!(distinct(&t, "cityId"), 20);
        assert_eq!(distinct(&t, "storeId"), 30);
    }

    #[test]
    fn hierarchies_are_functional() {
        let t = transaction_line_table(&TransactionConfig {
            rows: 5_000,
            seed: 5,
        });
        let col = |n: &str| t.schema().index_of(n).unwrap();
        let mut item_to_subdept = std::collections::HashMap::new();
        let mut store_to_region = std::collections::HashMap::new();
        for i in 0..t.num_rows() {
            let item = t.get(i, col("itemId")).to_string();
            let sd = t.get(i, col("subdeptId")).to_string();
            assert!(item_to_subdept.entry(item).or_insert_with(|| sd.clone()) == &sd);
            let store = t.get(i, col("storeId")).to_string();
            let r = t.get(i, col("regionId")).to_string();
            assert!(store_to_region.entry(store).or_insert_with(|| r.clone()) == &r);
        }
    }
}
