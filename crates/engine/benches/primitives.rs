//! Microbenchmarks for the physical operators underneath every percentage
//! plan: hash aggregation (single and synchronized multi-level), hash join
//! with and without a prebuilt index, DISTINCT, the window operator, and
//! CASE-expression evaluation — the per-row costs whose ratios drive the
//! strategy comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pa_engine::{
    distinct, hash_aggregate, hash_join, multi_hash_aggregate, window_aggregate, AggFunc, AggSpec,
    ExecStats, Expr, JoinType,
};
use pa_storage::{DataType, HashIndex, Schema, Table, Value};

fn fact_table(n: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Int),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::with_capacity(schema, n);
    // Deterministic pseudo-random contents without pulling in rand here.
    let mut x: u64 = 0x9e3779b97f4a7c15;
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t.push_row(&[
            Value::Int((x % 100) as i64),
            Value::Int(((x >> 8) % 7) as i64),
            Value::Float(((x >> 16) % 1000) as f64 / 10.0),
        ])
        .unwrap();
    }
    t
}

fn bench_primitives(c: &mut Criterion) {
    const N: usize = 100_000;
    let f = fact_table(N);
    let sum_a = AggSpec::new(AggFunc::Sum, Expr::col(f.schema(), "a").unwrap(), "s");

    c.bench_with_input(BenchmarkId::new("aggregate/group-by-2", N), &N, |b, _| {
        b.iter(|| {
            hash_aggregate(
                &f,
                &[0, 1],
                std::slice::from_ref(&sum_a),
                &mut ExecStats::default(),
            )
            .unwrap()
        });
    });

    c.bench_with_input(
        BenchmarkId::new("aggregate/synchronized-2-levels", N),
        &N,
        |b, _| {
            b.iter(|| {
                multi_hash_aggregate(
                    &f,
                    &[
                        (vec![0, 1], vec![sum_a.clone()]),
                        (vec![0], vec![sum_a.clone()]),
                    ],
                    &mut ExecStats::default(),
                )
                .unwrap()
            });
        },
    );

    // Join a 700-group Fk against a 100-group Fj.
    let fk = hash_aggregate(
        &f,
        &[0, 1],
        std::slice::from_ref(&sum_a),
        &mut ExecStats::default(),
    )
    .unwrap();
    let fj = hash_aggregate(
        &f,
        &[0],
        std::slice::from_ref(&sum_a),
        &mut ExecStats::default(),
    )
    .unwrap();
    let idx = HashIndex::build(&fj, &[0]).unwrap();
    c.bench_function("join/unindexed", |b| {
        b.iter(|| {
            hash_join(
                &fk,
                &fj,
                &[0],
                &[0],
                JoinType::Inner,
                None,
                &mut ExecStats::default(),
            )
            .unwrap()
        });
    });
    c.bench_function("join/prebuilt-index", |b| {
        b.iter(|| {
            hash_join(
                &fk,
                &fj,
                &[0],
                &[0],
                JoinType::Inner,
                Some(&idx),
                &mut ExecStats::default(),
            )
            .unwrap()
        });
    });

    c.bench_function("distinct/2-columns", |b| {
        b.iter(|| distinct(&f, &[0, 1], &mut ExecStats::default()).unwrap());
    });

    c.bench_function("window/sum-over-partition", |b| {
        b.iter(|| {
            window_aggregate(&f, &[0], AggFunc::Sum, 2, "w", &mut ExecStats::default()).unwrap()
        });
    });

    // The N-condition CASE chain at the heart of the horizontal strategies.
    let case_specs: Vec<AggSpec> = (0..7)
        .map(|i| {
            AggSpec::new(
                AggFunc::Sum,
                Expr::Case {
                    branches: vec![(
                        Expr::key_match(&[(1, Value::Int(i))]),
                        Expr::col(f.schema(), "a").unwrap(),
                    )],
                    else_value: None,
                },
                format!("c{i}"),
            )
        })
        .collect();
    c.bench_function("aggregate/7-case-cells", |b| {
        b.iter(|| hash_aggregate(&f, &[0], &case_specs, &mut ExecStats::default()).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_primitives
}
criterion_main!(benches);
