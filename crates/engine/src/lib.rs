//! # pa-engine — physical relational operators
//!
//! The execution layer the percentage-aggregation strategies compile to:
//! expressions (with SQL three-valued logic and divide-by-zero → NULL), hash
//! group-by aggregation with multi-level synchronized scans, inner/left-outer
//! hash joins with optional prebuilt indexes, DISTINCT, sort, bulk
//! INSERT..SELECT, per-row UPDATE..FROM, and sort-based window functions
//! (the OLAP-extension baseline).
//!
//! Every operator accounts its work in [`ExecStats`] so tests and benchmarks
//! can verify cost *shape* (scans, CASE evaluations, WAL records) rather
//! than trusting wall-clock alone.

#![warn(missing_docs)]

pub mod chaos;
pub mod clock;
pub mod error;
pub mod expr;
pub mod guard;
pub mod keymap;
pub mod ops;
pub mod parallel;
pub mod sketch;
pub mod stats;
pub mod vector;

pub use clock::{Clock, SystemClock, TestClock};
pub use error::{EngineError, Result};
pub use expr::{ArithOp, CmpOp, Expr};
pub use guard::{Deadline, ResourceGuard, CANCEL_CHECK_INTERVAL};
pub use keymap::{DenseGroupMap, DenseKeySpace, GroupMap, RowKeyMap, DEFAULT_DENSE_BUDGET};
pub use ops::acc::{Acc, PartialState, PctState, DEFAULT_PERCENTILE_BUDGET};
pub use ops::aggregate::{
    hash_aggregate, hash_aggregate_guarded, hash_aggregate_with_config, multi_hash_aggregate,
    multi_hash_aggregate_guarded, multi_hash_aggregate_with_config, resolve_cols, AggFunc, AggSpec,
    PBits,
};
pub use ops::distinct::{distinct, distinct_keys};
pub use ops::filter::filter;
pub use ops::insert::{create_table_as, insert_into};
pub use ops::join::{hash_join, hash_join_guarded, JoinType};
pub use ops::partial::{partial_aggregate, ShardPartial};
pub use ops::project::{project, ProjSpec};
pub use ops::sort::{sort, sort_permutation};
pub use ops::update::{update_from, SetClause};
pub use ops::window::window_aggregate;
pub use pa_obs::{MetricsRegistry, SpanHandle, SpanRecord, TraceReport, Tracer};
pub use parallel::ParallelConfig;
pub use sketch::{Hll, TDigest, HLL_REGISTERS, HLL_STD_ERROR, TDIGEST_RANK_EPSILON};
pub use stats::{AbortCause, Degradation, ExecStats};
pub use vector::{raw_acc, BlockCoder, LaneSrc, NumSlice, RawLane, BLOCK_ROWS};
