//! Injectable time source for wall-clock deadlines.
//!
//! The implementation lives in [`pa_obs::clock`] so the tracer and the
//! deadline guard share one notion of time; this module re-exports it under
//! the engine paths the rest of the workspace already uses
//! (`pa_engine::clock::TestClock`, `pa_engine::Clock`, ...).

pub use pa_obs::clock::{Clock, SystemClock, TestClock};
