//! Morsel-driven parallel execution configuration.
//!
//! The aggregation operators split their input scan into fixed-size row
//! *morsels* and fan contiguous runs of morsels out over scoped worker
//! threads. Each worker accumulates into thread-local partial hash tables;
//! the partials are merged in worker order, which reproduces the serial
//! first-appearance group order exactly (see DESIGN.md §7 for the
//! determinism argument).
//!
//! [`ParallelConfig`] carries the three knobs: worker count (env
//! `PA_THREADS`, default [`std::thread::available_parallelism`]), morsel
//! size (env `PA_MORSEL_ROWS`), and the input size below which the exact
//! serial code path runs (env `PA_MIN_PARALLEL_ROWS`). `PA_THREADS=1`
//! always selects the serial path. Two further knobs gate the code-path
//! layers: `PA_DENSE_BUDGET` for the dense group path (DESIGN.md §10) and
//! `PA_VECTOR` for the fused vectorized kernels (DESIGN.md §12).

use std::ops::Range;

/// Rows per morsel: the unit of guard charging and cancellation latency.
/// Large enough to amortize the shared atomic `fetch_add`, small enough
/// that cancellation lands promptly.
pub const DEFAULT_MORSEL_ROWS: usize = 64 * 1024;

/// Inputs smaller than this stay on the serial path: thread spawn and merge
/// overhead would dominate, and the serial path keeps exact work-counter
/// semantics for the small tables unit tests assert on.
pub const DEFAULT_MIN_PARALLEL_ROWS: usize = 32 * 1024;

/// Knobs for morsel-driven parallel aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Maximum worker threads. `1` means the exact serial code path.
    pub threads: usize,
    /// Rows per morsel (guard charge / cancellation granularity).
    pub morsel_rows: usize,
    /// Inputs with fewer rows than this always run serial.
    pub min_parallel_rows: usize,
    /// Ceiling on the composite-code space for the dense group path
    /// (env `PA_DENSE_BUDGET`; `0` disables dense grouping entirely).
    /// See [`crate::keymap::DenseKeySpace`].
    pub dense_budget: usize,
    /// Allow the fused vectorized kernels (DESIGN.md §12). Env
    /// `PA_VECTOR=0` forces the scalar per-row loops everywhere —
    /// the ablation knob the differential oracle and benches flip.
    pub vector: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::serial()
    }
}

impl ParallelConfig {
    /// Single-threaded configuration (the exact serial code path).
    pub const fn serial() -> ParallelConfig {
        ParallelConfig {
            threads: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            min_parallel_rows: DEFAULT_MIN_PARALLEL_ROWS,
            dense_budget: crate::keymap::DEFAULT_DENSE_BUDGET,
            vector: true,
        }
    }

    /// Configuration with an explicit worker count and default morsel
    /// sizing.
    pub fn with_threads(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads: threads.max(1),
            ..ParallelConfig::serial()
        }
    }

    /// Read the configuration from the environment: `PA_THREADS` (default
    /// [`std::thread::available_parallelism`]), `PA_MORSEL_ROWS`,
    /// `PA_MIN_PARALLEL_ROWS`, `PA_DENSE_BUDGET` (0 disables the dense
    /// group path). Invalid or zero values fall back to the defaults
    /// (except the dense budget, where 0 is meaningful). Read per call so
    /// benches can vary `PA_THREADS` between runs within one process.
    pub fn from_env() -> ParallelConfig {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&v| v > 0)
        };
        let threads = parse("PA_THREADS")
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        ParallelConfig {
            threads,
            morsel_rows: parse("PA_MORSEL_ROWS").unwrap_or(DEFAULT_MORSEL_ROWS),
            min_parallel_rows: parse("PA_MIN_PARALLEL_ROWS").unwrap_or(DEFAULT_MIN_PARALLEL_ROWS),
            dense_budget: std::env::var("PA_DENSE_BUDGET")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(crate::keymap::DEFAULT_DENSE_BUDGET),
            vector: std::env::var("PA_VECTOR").map_or(true, |v| v.trim() != "0"),
        }
    }

    /// Worker count actually used for an `n`-row scan: `1` when the input
    /// is below the serial threshold, otherwise at most one worker per
    /// morsel.
    pub fn effective_threads(&self, n_rows: usize) -> usize {
        if self.threads <= 1 || n_rows < self.min_parallel_rows {
            return 1;
        }
        let morsels = n_rows.div_ceil(self.morsel_rows);
        self.threads.min(morsels).max(1)
    }

    /// Statically partition `0..n_rows` into one contiguous, morsel-aligned
    /// range per worker. Contiguity in row order is what makes the ordered
    /// merge reproduce serial group order; morsel alignment keeps every
    /// charge a full morsel except each worker's last.
    ///
    /// Returns one non-empty range per effective worker (a single `0..n`
    /// range when the scan runs serial).
    pub fn chunks(&self, n_rows: usize) -> Vec<Range<usize>> {
        let workers = self.effective_threads(n_rows);
        if workers <= 1 {
            // One chunk spanning the whole table (not a range-to-vec collect).
            #[allow(clippy::single_range_in_vec_init)]
            return vec![0..n_rows];
        }
        let morsels = n_rows.div_ceil(self.morsel_rows);
        let per_worker = morsels / workers;
        let extra = morsels % workers;
        let mut out = Vec::with_capacity(workers);
        let mut next = 0usize;
        for w in 0..workers {
            let take = per_worker + usize::from(w < extra);
            let start = next;
            next = (next + take * self.morsel_rows).min(n_rows);
            out.push(start..next);
        }
        debug_assert_eq!(next, n_rows);
        out
    }

    /// Morsel subranges of one worker chunk, in row order.
    pub fn morsels(&self, chunk: Range<usize>) -> impl Iterator<Item = Range<usize>> + '_ {
        let morsel = self.morsel_rows;
        let end = chunk.end;
        chunk.step_by(morsel).map(move |start| {
            let stop = (start + morsel).min(end);
            start..stop
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_config_is_one_chunk() {
        let c = ParallelConfig::serial();
        assert_eq!(c.effective_threads(1_000_000), 1);
        assert_eq!(c.chunks(10), vec![0..10]);
    }

    #[test]
    fn small_inputs_stay_serial() {
        let c = ParallelConfig::with_threads(8);
        assert_eq!(c.effective_threads(100), 1);
        assert_eq!(c.chunks(100), vec![0..100]);
    }

    #[test]
    fn chunks_are_contiguous_morsel_aligned_and_cover_input() {
        let c = ParallelConfig {
            threads: 4,
            morsel_rows: 10,
            min_parallel_rows: 0,
            ..ParallelConfig::serial()
        };
        let n = 137;
        let chunks = c.chunks(n);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, n);
        for pair in chunks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "contiguous");
            assert_eq!(pair[0].end % 10, 0, "morsel aligned");
        }
        let total: usize = chunks.iter().map(|r| r.len()).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn never_more_workers_than_morsels() {
        let c = ParallelConfig {
            threads: 16,
            morsel_rows: 100,
            min_parallel_rows: 0,
            ..ParallelConfig::serial()
        };
        assert_eq!(c.effective_threads(250), 3);
        let chunks = c.chunks(250);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn morsel_iteration_covers_chunk() {
        let c = ParallelConfig {
            threads: 2,
            morsel_rows: 8,
            min_parallel_rows: 0,
            ..ParallelConfig::serial()
        };
        let morsels: Vec<_> = c.morsels(16..37).collect();
        assert_eq!(morsels, vec![16..24, 24..32, 32..37]);
    }

    #[test]
    fn with_threads_clamps_zero() {
        assert_eq!(ParallelConfig::with_threads(0).threads, 1);
    }
}
