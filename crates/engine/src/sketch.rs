//! Mergeable sketches for holistic aggregates.
//!
//! Gray et al. classify `percentile` and `count(DISTINCT)` as *holistic*:
//! their finalized values cannot be re-aggregated from sub-group results.
//! Sketches restore mergeability by keeping a bounded summary whose merge
//! is part of the data structure ([`TDigest`] for quantiles, [`Hll`] for
//! distinct counts) — the timescaledb-toolkit idiom the partial/merge/
//! finalize protocol (DESIGN.md §14) builds on.
//!
//! Determinism contract (pinned by the merge-oracle suite):
//! - [`Hll`] merge is an elementwise register max — fully commutative and
//!   associative, so shard merges are byte-identical in *any* order.
//! - [`TDigest`] merge is deterministic for a *fixed* merge order (same
//!   inputs, same order → byte-identical state). Under a shuffled merge
//!   order the digest may differ structurally, but every quantile it
//!   reports stays within the documented rank-error bound.

use pa_storage::partial::{put_f64, put_u32, Cursor};
use pa_storage::{StorageError, Value};

/// t-digest compression factor δ: the centroid budget scale. More
/// centroids → tighter quantiles; 200 keeps the state under ~4 KiB.
pub const TDIGEST_COMPRESSION: f64 = 200.0;

/// Unmerged values buffered before a compaction pass. Fixed so that the
/// flush points — and therefore the centroid layout — are a deterministic
/// function of the update sequence.
const TDIGEST_BUFFER: usize = 512;

/// Documented worst-case *rank* error of [`TDigest::quantile`]: the value
/// returned for quantile `p` has true rank within `p ± epsilon`. The
/// interior bound for δ=200 is well under 1%; 0.05 leaves margin for
/// adversarial distributions and is what the accuracy suite asserts.
pub const TDIGEST_RANK_EPSILON: f64 = 0.05;

/// One weighted centroid.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// Merging t-digest over `f64` samples (Dunning & Ertl's design with the
/// `k₁(q) = δ/(2π)·asin(2q−1)` scale function: a neighbour pair merges only
/// if its combined k-span stays ≤ 1, which caps the centroid count at ~δ
/// regardless of input size while keeping tail centroids small).
#[derive(Debug, Clone, PartialEq)]
pub struct TDigest {
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    /// Weight held in `centroids` (the buffer's weight is its length).
    total: f64,
    min: f64,
    max: f64,
}

impl Default for TDigest {
    fn default() -> Self {
        TDigest::new()
    }
}

impl TDigest {
    /// Empty digest.
    pub fn new() -> TDigest {
        TDigest {
            centroids: Vec::new(),
            buffer: Vec::new(),
            total: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of samples absorbed.
    pub fn count(&self) -> u64 {
        self.total as u64 + self.buffer.len() as u64
    }

    /// Absorb one sample.
    pub fn update(&mut self, x: f64) {
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.buffer.push(x);
        if self.buffer.len() >= TDIGEST_BUFFER {
            self.compress();
        }
    }

    /// Fold `other` into `self`. Deterministic for a fixed merge order.
    pub fn merge(&mut self, other: &TDigest) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.buffer.extend_from_slice(&other.buffer);
        self.centroids.extend_from_slice(&other.centroids);
        self.total += other.total;
        self.compress();
    }

    /// The `k₁` scale function: monotone in `q`, spanning `[−δ/4, δ/4]`,
    /// steep at the tails so tail centroids stay light. A merged centroid
    /// may cover at most one unit of `k`.
    fn k_scale(q: f64) -> f64 {
        (TDIGEST_COMPRESSION / (2.0 * std::f64::consts::PI))
            * (2.0 * q - 1.0).clamp(-1.0, 1.0).asin()
    }

    /// Compaction: drain the buffer into weight-1 centroids, sort the lot
    /// into the canonical `(mean, weight)` order, then greedily merge
    /// neighbours while the merged centroid's `k₁`-span stays ≤ 1. Pure
    /// function of the pre-sort multiset order, and bounds the centroid
    /// count at ~δ for any input size.
    fn compress(&mut self) {
        if self.buffer.is_empty() && self.centroids.is_empty() {
            return;
        }
        for &x in &self.buffer {
            self.centroids.push(Centroid {
                mean: x,
                weight: 1.0,
            });
            self.total += 1.0;
        }
        self.buffer.clear();
        self.centroids.sort_by(|a, b| {
            a.mean
                .total_cmp(&b.mean)
                .then(a.weight.total_cmp(&b.weight))
        });
        let total = self.total;
        if total <= 0.0 {
            return;
        }
        let mut merged: Vec<Centroid> = Vec::with_capacity(self.centroids.len());
        let mut cum = 0.0; // weight settled strictly before merged.last()
        for c in self.centroids.drain(..) {
            match merged.last_mut() {
                Some(last) => {
                    let proposed = last.weight + c.weight;
                    let q_left = cum / total;
                    let q_right = (cum + proposed) / total;
                    if TDigest::k_scale(q_right) - TDigest::k_scale(q_left) <= 1.0 {
                        last.mean = (last.mean * last.weight + c.mean * c.weight) / proposed;
                        last.weight = proposed;
                    } else {
                        cum += last.weight;
                        merged.push(c);
                    }
                }
                None => merged.push(c),
            }
        }
        self.centroids = merged;
    }

    /// Estimate the `p`-quantile (`0 ≤ p ≤ 1`); `None` over no samples.
    /// Linear interpolation between centroid means, clamped to the exact
    /// observed min/max at the tails.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        let mut flushed;
        let d = if self.buffer.is_empty() {
            self
        } else {
            flushed = self.clone();
            flushed.compress();
            &flushed
        };
        if d.total <= 0.0 {
            return None;
        }
        if p <= 0.0 {
            return Some(d.min);
        }
        if p >= 1.0 {
            return Some(d.max);
        }
        let t = p * d.total;
        let mut cum = 0.0;
        for (i, c) in d.centroids.iter().enumerate() {
            let mid = cum + c.weight / 2.0;
            if t < mid {
                let (lo_rank, lo_val) = if i == 0 {
                    (0.0, d.min)
                } else {
                    let prev = &d.centroids[i - 1];
                    (cum - prev.weight / 2.0, prev.mean)
                };
                if mid <= lo_rank {
                    return Some(c.mean);
                }
                let frac = (t - lo_rank) / (mid - lo_rank);
                return Some(lo_val + frac * (c.mean - lo_val));
            }
            cum += c.weight;
        }
        Some(d.max)
    }

    /// Serialize the flushed digest into `buf` (centroids, min, max).
    pub fn write_payload(&self, buf: &mut Vec<u8>) {
        let mut flushed;
        let d = if self.buffer.is_empty() {
            self
        } else {
            flushed = self.clone();
            flushed.compress();
            &flushed
        };
        put_u32(buf, d.centroids.len() as u32);
        for c in &d.centroids {
            put_f64(buf, c.mean);
            put_f64(buf, c.weight);
        }
        put_f64(buf, d.min);
        put_f64(buf, d.max);
    }

    /// Decode a digest payload written by [`TDigest::write_payload`].
    pub fn read_payload(cur: &mut Cursor<'_>) -> Result<TDigest, StorageError> {
        let n = cur.u32()? as usize;
        let mut centroids = Vec::with_capacity(n.min(4096));
        let mut total = 0.0;
        for _ in 0..n {
            let mean = cur.f64()?;
            let weight = cur.f64()?;
            if !weight.is_finite() || weight < 0.0 {
                return Err(StorageError::PartialCodec(format!(
                    "t-digest centroid weight {weight} is not a finite non-negative number"
                )));
            }
            total += weight;
            centroids.push(Centroid { mean, weight });
        }
        Ok(TDigest {
            centroids,
            buffer: Vec::new(),
            total,
            min: cur.f64()?,
            max: cur.f64()?,
        })
    }
}

/// Number of HyperLogLog registers (`m = 2^10`).
pub const HLL_REGISTERS: usize = 1 << HLL_BITS;
const HLL_BITS: u32 = 10;

/// Standard error of the HLL estimate: `1.04 / √m ≈ 3.25%` for `m = 1024`.
pub const HLL_STD_ERROR: f64 = 1.04 / 32.0;

/// FNV-1a over the bytes [`Value::key_hash`] feeds, finished with a
/// splitmix64-style avalanche so the high bits (the register index) mix
/// well. Self-contained so serialized sketches never depend on the std
/// hasher's (unspecified) algorithm.
struct ValueHasher(u64);

impl std::hash::Hasher for ValueHasher {
    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The deterministic 64-bit hash [`Hll`] buckets values by. Respects
/// key equality (`Int(3)` hashes like `Float(3.0)`).
pub fn value_hash64(v: &Value) -> u64 {
    let mut h = ValueHasher(0xcbf2_9ce4_8422_2325);
    v.key_hash(&mut h);
    std::hash::Hasher::finish(&h)
}

/// HyperLogLog distinct-count sketch with `m = 1024` registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hll {
    registers: Vec<u8>,
}

impl Default for Hll {
    fn default() -> Self {
        Hll::new()
    }
}

impl Hll {
    /// Empty sketch.
    pub fn new() -> Hll {
        Hll {
            registers: vec![0; HLL_REGISTERS],
        }
    }

    /// Absorb one value.
    pub fn insert(&mut self, v: &Value) {
        let h = value_hash64(v);
        let idx = (h >> (64 - HLL_BITS)) as usize;
        let rest = h << HLL_BITS;
        let rho = (rest.leading_zeros() + 1).min(64 - HLL_BITS + 1) as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Elementwise register max — commutative, associative, idempotent.
    pub fn merge(&mut self, other: &Hll) {
        for (r, o) in self.registers.iter_mut().zip(&other.registers) {
            *r = (*r).max(*o);
        }
    }

    /// Cardinality estimate with the small-range linear-counting
    /// correction from the original HLL paper.
    pub fn estimate(&self) -> f64 {
        let m = HLL_REGISTERS as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 1.0 / (1u64 << r) as f64)
            .sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// The register array (for serialization).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Rebuild from a serialized register array.
    pub fn from_registers(registers: Vec<u8>) -> Result<Hll, StorageError> {
        if registers.len() != HLL_REGISTERS {
            return Err(StorageError::PartialCodec(format!(
                "HLL register array has {} entries, expected {HLL_REGISTERS}",
                registers.len()
            )));
        }
        if let Some(&bad) = registers.iter().find(|&&r| r as u32 > 64 - HLL_BITS + 1) {
            return Err(StorageError::PartialCodec(format!(
                "HLL register value {bad} exceeds the {} bit budget",
                64 - HLL_BITS + 1
            )));
        }
        Ok(Hll { registers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdigest_quantiles_of_small_sets_are_near_exact() {
        let mut d = TDigest::new();
        for x in [10.0, 20.0, 30.0, 40.0] {
            d.update(x);
        }
        assert_eq!(d.quantile(0.0), Some(10.0));
        assert_eq!(d.quantile(1.0), Some(40.0));
        let med = d.quantile(0.5).unwrap();
        assert!((med - 25.0).abs() < 5.0, "median ~25, got {med}");
        assert!(TDigest::new().quantile(0.5).is_none());
    }

    #[test]
    fn tdigest_bounds_state_size_on_large_inputs() {
        let mut d = TDigest::new();
        let mut s = 1u64;
        for _ in 0..100_000 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            d.update((s >> 11) as f64 / (1u64 << 53) as f64);
        }
        let mut flushed = d.clone();
        flushed.compress();
        assert!(
            flushed.centroids.len() < 2 * TDIGEST_COMPRESSION as usize,
            "{} centroids",
            flushed.centroids.len()
        );
        assert_eq!(d.count(), 100_000);
    }

    #[test]
    fn tdigest_fixed_merge_order_is_byte_identical() {
        let build = |lo: usize, hi: usize| {
            let mut d = TDigest::new();
            for i in lo..hi {
                d.update((i * 37 % 1000) as f64);
            }
            d
        };
        let mut a = build(0, 500);
        a.merge(&build(500, 1000));
        let mut b = build(0, 500);
        b.merge(&build(500, 1000));
        let (mut ab, mut bb) = (Vec::new(), Vec::new());
        a.write_payload(&mut ab);
        b.write_payload(&mut bb);
        assert_eq!(ab, bb, "same inputs, same merge order → same bytes");
    }

    #[test]
    fn tdigest_payload_round_trips() {
        let mut d = TDigest::new();
        for i in 0..5000 {
            d.update((i % 113) as f64);
        }
        let mut buf = Vec::new();
        d.write_payload(&mut buf);
        let mut cur = Cursor::new(&buf);
        let back = TDigest::read_payload(&mut cur).unwrap();
        cur.finish().unwrap();
        for p in [0.1, 0.5, 0.9] {
            assert_eq!(back.quantile(p), d.quantile(p), "p={p}");
        }
    }

    #[test]
    fn hll_estimates_within_documented_error() {
        let mut h = Hll::new();
        for i in 0..10_000i64 {
            h.insert(&Value::Int(i));
        }
        let est = h.estimate();
        let rel = (est - 10_000.0).abs() / 10_000.0;
        assert!(rel < 3.0 * HLL_STD_ERROR, "relative error {rel}");
    }

    #[test]
    fn hll_merge_is_commutative_and_idempotent() {
        let mut a = Hll::new();
        let mut b = Hll::new();
        for i in 0..500i64 {
            a.insert(&Value::Int(i));
            b.insert(&Value::Int(i + 250));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let before = ab.clone();
        ab.merge(&b);
        assert_eq!(ab, before, "idempotent");
    }

    #[test]
    fn hll_hash_respects_key_equality() {
        assert_eq!(
            value_hash64(&Value::Int(3)),
            value_hash64(&Value::Float(3.0))
        );
        assert_ne!(value_hash64(&Value::Int(3)), value_hash64(&Value::Int(4)));
    }

    #[test]
    fn hll_register_validation() {
        assert!(Hll::from_registers(vec![0; 8]).is_err(), "wrong length");
        assert!(Hll::from_registers(vec![60; HLL_REGISTERS]).is_err());
        let h = Hll::from_registers(vec![0; HLL_REGISTERS]).unwrap();
        assert_eq!(h.estimate(), 0.0);
    }
}
