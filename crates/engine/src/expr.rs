//! Row expressions: arithmetic, comparisons, boolean logic, CASE WHEN.
//!
//! Expressions are evaluated per row against a table (or a pair of tables
//! for join/update expressions). NULL follows SQL three-valued logic, and the
//! division used by percentage queries maps divide-by-zero to NULL via
//! [`Expr::safe_div`], exactly as the paper prescribes.

use crate::error::{EngineError, Result};
use crate::stats::ExecStats;
use pa_storage::{DataType, Schema, Table, Value};

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (NULL when either side NULL; error on literal 0 divisor is
    /// avoided by returning NULL — SQL engines raise, percentage plans guard
    /// with CASE; [`Expr::safe_div`] encodes the guarded form).
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

/// A row expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by position.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Binary arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// `CASE WHEN den <> 0 THEN num / den ELSE NULL END` — the paper's
    /// division-by-zero guard, fused for clarity and accounted as one CASE
    /// condition evaluation.
    SafeDiv(Box<Expr>, Box<Expr>),
    /// Three-valued comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Null-safe equality with grouping semantics (`IS NOT DISTINCT FROM`):
    /// NULL matches NULL, result is never NULL. This is how generated plans
    /// match subgroup combinations, which are *group keys* — a NULL
    /// dimension value is a legitimate group.
    KeyEq(Box<Expr>, Box<Expr>),
    /// Cast to a target type (floats truncate to ints; NULL stays NULL).
    Cast(DataType, Box<Expr>),
    /// Three-valued conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Three-valued disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Three-valued negation.
    Not(Box<Expr>),
    /// `IS NULL` (never NULL itself).
    IsNull(Box<Expr>),
    /// `CASE WHEN c1 THEN v1 WHEN c2 THEN v2 ... [ELSE e] END`.
    /// Without an ELSE the result is NULL — the form horizontal
    /// aggregations generate.
    Case {
        /// `(condition, result)` branches, evaluated in order.
        branches: Vec<(Expr, Expr)>,
        /// Optional ELSE result.
        else_value: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Column reference by name, resolved against `schema`.
    pub fn col(schema: &Schema, name: &str) -> Result<Expr> {
        Ok(Expr::Col(schema.index_of(name)?))
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self / other` with divide-by-zero → NULL.
    pub fn safe_div(self, other: Expr) -> Expr {
        Expr::SafeDiv(Box::new(self), Box::new(other))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }

    /// Conjunction of `col_i = value_i` over the given pairs — the boolean
    /// form horizontal strategies generate for each result column. Uses
    /// null-safe equality so NULL group keys match their own column.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice: a key match over zero columns has no
    /// boolean meaning. Callers materialize it from a validated `BY` list,
    /// which the SQL layer guarantees is non-empty.
    pub fn key_match(pairs: &[(usize, Value)]) -> Expr {
        let mut it = pairs.iter();
        let (c0, v0) = it.next().expect("key_match needs at least one pair");
        let mut expr = Expr::KeyEq(Box::new(Expr::Col(*c0)), Box::new(Expr::Lit(v0.clone())));
        for (c, v) in it {
            expr = expr.and(Expr::KeyEq(
                Box::new(Expr::Col(*c)),
                Box::new(Expr::Lit(v.clone())),
            ));
        }
        expr
    }

    /// Static output type, when derivable. Comparisons/logic are Int (0/1),
    /// arithmetic is Float unless both sides are Int and the op is not Div.
    pub fn output_type(&self, schema: &Schema) -> Option<DataType> {
        match self {
            Expr::Col(i) => Some(schema.field_at(*i).dtype),
            Expr::Lit(v) => v.data_type(),
            Expr::SafeDiv(..) => Some(DataType::Float),
            Expr::Arith(op, l, r) => {
                let lt = l.output_type(schema)?;
                let rt = r.output_type(schema)?;
                if *op != ArithOp::Div && lt == DataType::Int && rt == DataType::Int {
                    Some(DataType::Int)
                } else {
                    Some(DataType::Float)
                }
            }
            Expr::Cmp(..)
            | Expr::KeyEq(..)
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::IsNull(..) => Some(DataType::Int),
            Expr::Cast(t, _) => Some(*t),
            Expr::Case {
                branches,
                else_value,
            } => branches
                .iter()
                .filter_map(|(_, v)| v.output_type(schema))
                .next()
                .or_else(|| else_value.as_ref().and_then(|e| e.output_type(schema))),
        }
    }

    /// Evaluate against row `row` of `table`, accumulating work into `stats`.
    pub fn eval(&self, table: &Table, row: usize, stats: &mut ExecStats) -> Result<Value> {
        self.eval_cols(table.columns(), row, stats)
    }

    /// Evaluate over a virtual row spliced from two tables: column indexes
    /// `0..left.num_columns()` read `left[lrow]`, the rest read `right[rrow]`.
    /// This is how `UPDATE Fk SET A = Fk.A / Fj.A` expressions see both
    /// sides.
    pub fn eval2(
        &self,
        left: &Table,
        lrow: usize,
        right: &Table,
        rrow: usize,
        stats: &mut ExecStats,
    ) -> Result<Value> {
        let split = left.num_columns();
        match self {
            Expr::Col(i) => {
                if *i < split {
                    Ok(left.column(*i).get(lrow))
                } else {
                    let j = *i - split;
                    if j >= right.num_columns() {
                        return Err(EngineError::InvalidOperator(format!(
                            "column {i} out of range for spliced row of {} columns",
                            split + right.num_columns()
                        )));
                    }
                    Ok(right.column(j).get(rrow))
                }
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Arith(op, l, r) => arith(
                *op,
                &l.eval2(left, lrow, right, rrow, stats)?,
                &r.eval2(left, lrow, right, rrow, stats)?,
            ),
            Expr::SafeDiv(num, den) => {
                let dv = den.eval2(left, lrow, right, rrow, stats)?;
                stats.case_condition_evals += 1;
                match dv.as_f64() {
                    None | Some(0.0) => Ok(Value::Null),
                    Some(d) => Ok(match num.eval2(left, lrow, right, rrow, stats)?.as_f64() {
                        None => Value::Null,
                        Some(n) => Value::Float(n / d),
                    }),
                }
            }
            Expr::Cmp(op, l, r) => Ok(compare(
                *op,
                &l.eval2(left, lrow, right, rrow, stats)?,
                &r.eval2(left, lrow, right, rrow, stats)?,
            )),
            Expr::KeyEq(l, r) => Ok(Value::Int(
                l.eval2(left, lrow, right, rrow, stats)?
                    .key_eq(&r.eval2(left, lrow, right, rrow, stats)?) as i64,
            )),
            Expr::Cast(t, e) => Ok(cast(*t, e.eval2(left, lrow, right, rrow, stats)?)?),
            Expr::And(l, r) => {
                let lv = truth(&l.eval2(left, lrow, right, rrow, stats)?);
                if lv == Some(false) {
                    return Ok(Value::Int(0));
                }
                let rv = truth(&r.eval2(left, lrow, right, rrow, stats)?);
                Ok(match (lv, rv) {
                    (_, Some(false)) => Value::Int(0),
                    (Some(true), Some(true)) => Value::Int(1),
                    _ => Value::Null,
                })
            }
            Expr::Or(l, r) => {
                let lv = truth(&l.eval2(left, lrow, right, rrow, stats)?);
                if lv == Some(true) {
                    return Ok(Value::Int(1));
                }
                let rv = truth(&r.eval2(left, lrow, right, rrow, stats)?);
                Ok(match (lv, rv) {
                    (_, Some(true)) => Value::Int(1),
                    (Some(false), Some(false)) => Value::Int(0),
                    _ => Value::Null,
                })
            }
            Expr::Not(e) => Ok(match truth(&e.eval2(left, lrow, right, rrow, stats)?) {
                Some(b) => Value::Int(!b as i64),
                None => Value::Null,
            }),
            Expr::IsNull(e) => Ok(Value::Int(
                e.eval2(left, lrow, right, rrow, stats)?.is_null() as i64,
            )),
            Expr::Case {
                branches,
                else_value,
            } => {
                for (cond, result) in branches {
                    stats.case_condition_evals += 1;
                    if truth(&cond.eval2(left, lrow, right, rrow, stats)?) == Some(true) {
                        return result.eval2(left, lrow, right, rrow, stats);
                    }
                }
                match else_value {
                    Some(e) => e.eval2(left, lrow, right, rrow, stats),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluate against a column slice — lets UPDATE/join expressions run
    /// over a virtual row spliced from two tables.
    pub fn eval_cols(
        &self,
        cols: &[pa_storage::Column],
        row: usize,
        stats: &mut ExecStats,
    ) -> Result<Value> {
        match self {
            Expr::Col(i) => {
                let col = cols.get(*i).ok_or_else(|| {
                    EngineError::InvalidOperator(format!(
                        "column {i} out of range ({} columns)",
                        cols.len()
                    ))
                })?;
                Ok(col.get(row))
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Arith(op, l, r) => {
                let lv = l.eval_cols(cols, row, stats)?;
                let rv = r.eval_cols(cols, row, stats)?;
                arith(*op, &lv, &rv)
            }
            Expr::SafeDiv(num, den) => {
                let dv = den.eval_cols(cols, row, stats)?;
                // The guard is the CASE WHEN den <> 0 from the generated SQL.
                stats.case_condition_evals += 1;
                match dv.as_f64() {
                    None | Some(0.0) => Ok(Value::Null),
                    Some(d) => {
                        let nv = num.eval_cols(cols, row, stats)?;
                        match nv.as_f64() {
                            None => Ok(Value::Null),
                            Some(n) => Ok(Value::Float(n / d)),
                        }
                    }
                }
            }
            Expr::Cmp(op, l, r) => {
                let lv = l.eval_cols(cols, row, stats)?;
                let rv = r.eval_cols(cols, row, stats)?;
                Ok(compare(*op, &lv, &rv))
            }
            Expr::KeyEq(l, r) => {
                let lv = l.eval_cols(cols, row, stats)?;
                let rv = r.eval_cols(cols, row, stats)?;
                Ok(Value::Int(lv.key_eq(&rv) as i64))
            }
            Expr::Cast(t, e) => Ok(cast(*t, e.eval_cols(cols, row, stats)?)?),
            Expr::And(l, r) => {
                let lv = truth(&l.eval_cols(cols, row, stats)?);
                // SQL AND short-circuits on FALSE only.
                if lv == Some(false) {
                    return Ok(Value::Int(0));
                }
                let rv = truth(&r.eval_cols(cols, row, stats)?);
                Ok(match (lv, rv) {
                    (_, Some(false)) => Value::Int(0),
                    (Some(true), Some(true)) => Value::Int(1),
                    _ => Value::Null,
                })
            }
            Expr::Or(l, r) => {
                let lv = truth(&l.eval_cols(cols, row, stats)?);
                if lv == Some(true) {
                    return Ok(Value::Int(1));
                }
                let rv = truth(&r.eval_cols(cols, row, stats)?);
                Ok(match (lv, rv) {
                    (_, Some(true)) => Value::Int(1),
                    (Some(false), Some(false)) => Value::Int(0),
                    _ => Value::Null,
                })
            }
            Expr::Not(e) => Ok(match truth(&e.eval_cols(cols, row, stats)?) {
                Some(b) => Value::Int(!b as i64),
                None => Value::Null,
            }),
            Expr::IsNull(e) => Ok(Value::Int(e.eval_cols(cols, row, stats)?.is_null() as i64)),
            Expr::Case {
                branches,
                else_value,
            } => {
                for (cond, result) in branches {
                    stats.case_condition_evals += 1;
                    if truth(&cond.eval_cols(cols, row, stats)?) == Some(true) {
                        return result.eval_cols(cols, row, stats);
                    }
                }
                match else_value {
                    Some(e) => e.eval_cols(cols, row, stats),
                    None => Ok(Value::Null),
                }
            }
        }
    }
}

fn cast(t: DataType, v: Value) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    Ok(match (t, &v) {
        (DataType::Int, Value::Int(_))
        | (DataType::Float, Value::Float(_))
        | (DataType::Str, Value::Str(_)) => v,
        (DataType::Int, Value::Float(f)) => Value::Int(*f as i64),
        (DataType::Float, Value::Int(i)) => Value::Float(*i as f64),
        (DataType::Str, other) => Value::str(other.to_string()),
        (t, other) => {
            return Err(EngineError::ExprType(format!("cannot cast {other} to {t}")));
        }
    })
}

fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        Value::Float(f) => Some(*f != 0.0),
        Value::Str(_) => None,
    }
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Int-preserving fast path for +,-,* on two ints.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        match op {
            ArithOp::Add => return Ok(Value::Int(a.wrapping_add(*b))),
            ArithOp::Sub => return Ok(Value::Int(a.wrapping_sub(*b))),
            ArithOp::Mul => return Ok(Value::Int(a.wrapping_mul(*b))),
            ArithOp::Div => {}
        }
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(EngineError::ExprType(format!(
                "arithmetic on non-numeric values {l} and {r}"
            )));
        }
    };
    Ok(match op {
        ArithOp::Add => Value::Float(a + b),
        ArithOp::Sub => Value::Float(a - b),
        ArithOp::Mul => Value::Float(a * b),
        ArithOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
    })
}

fn compare(op: CmpOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    let ord = l.total_cmp(r);
    let b = match op {
        CmpOp::Eq => l.key_eq(r),
        CmpOp::Ne => !l.key_eq(r),
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    };
    Value::Int(b as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::Schema;
    use std::sync::Arc;

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("d", DataType::Str),
            ("a", DataType::Float),
            ("b", DataType::Int),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::str("x"), Value::Float(10.0), Value::Int(2)])
            .unwrap();
        t.push_row(&[Value::str("y"), Value::Float(4.0), Value::Int(0)])
            .unwrap();
        t.push_row(&[Value::Null, Value::Null, Value::Int(5)])
            .unwrap();
        t
    }

    fn eval(e: &Expr, t: &Table, row: usize) -> Value {
        e.eval(t, row, &mut ExecStats::default()).unwrap()
    }

    #[test]
    fn col_and_lit() {
        let t = table();
        let s = t.schema();
        assert_eq!(eval(&Expr::col(s, "a").unwrap(), &t, 0), Value::Float(10.0));
        assert_eq!(eval(&Expr::lit(3), &t, 0), Value::Int(3));
        assert_eq!(eval(&Expr::col(s, "d").unwrap(), &t, 2), Value::Null);
    }

    #[test]
    fn arithmetic_and_null_propagation() {
        let t = table();
        let s = t.schema();
        let a = Expr::col(s, "a").unwrap();
        let b = Expr::col(s, "b").unwrap();
        assert_eq!(eval(&a.clone().add(b.clone()), &t, 0), Value::Float(12.0));
        assert_eq!(eval(&a.clone().mul(b.clone()), &t, 0), Value::Float(20.0));
        assert_eq!(eval(&a.add(b), &t, 2), Value::Null, "NULL + x = NULL");
        // Int-preserving ops.
        assert_eq!(eval(&Expr::lit(3).add(Expr::lit(4)), &t, 0), Value::Int(7));
    }

    #[test]
    fn safe_div_guards_zero_and_null() {
        let t = table();
        let s = t.schema();
        let a = Expr::col(s, "a").unwrap();
        let b = Expr::col(s, "b").unwrap();
        assert_eq!(
            eval(&a.clone().safe_div(b.clone()), &t, 0),
            Value::Float(5.0)
        );
        assert_eq!(eval(&a.clone().safe_div(b.clone()), &t, 1), Value::Null);
        assert_eq!(eval(&a.safe_div(b), &t, 2), Value::Null);
    }

    #[test]
    fn safe_div_counts_one_case_condition() {
        let t = table();
        let s = t.schema();
        let e = Expr::col(s, "a")
            .unwrap()
            .safe_div(Expr::col(s, "b").unwrap());
        let mut st = ExecStats::default();
        e.eval(&t, 0, &mut st).unwrap();
        assert_eq!(st.case_condition_evals, 1);
    }

    #[test]
    fn arithmetic_on_strings_is_an_error() {
        let t = table();
        let s = t.schema();
        let e = Expr::col(s, "d").unwrap().add(Expr::lit(1));
        assert!(matches!(
            e.eval(&t, 0, &mut ExecStats::default()),
            Err(EngineError::ExprType(_))
        ));
    }

    #[test]
    fn three_valued_logic() {
        let t = table();
        let s = t.schema();
        let d_null = Expr::IsNull(Box::new(Expr::col(s, "d").unwrap()));
        assert_eq!(eval(&d_null, &t, 0), Value::Int(0));
        assert_eq!(eval(&d_null, &t, 2), Value::Int(1));

        // NULL = 'x' is NULL, but FALSE AND NULL is FALSE.
        let cmp = Expr::col(s, "d").unwrap().eq(Expr::lit("x"));
        assert_eq!(eval(&cmp, &t, 2), Value::Null);
        let f_and_null = Expr::lit(0).and(cmp.clone());
        assert_eq!(eval(&f_and_null, &t, 2), Value::Int(0));
        let t_and_null = Expr::lit(1).and(cmp.clone());
        assert_eq!(eval(&t_and_null, &t, 2), Value::Null);
        // TRUE OR NULL is TRUE.
        let t_or_null = Expr::Or(Box::new(Expr::lit(1)), Box::new(cmp));
        assert_eq!(eval(&t_or_null, &t, 2), Value::Int(1));
    }

    #[test]
    fn case_when_first_match_wins_and_counts_conditions() {
        let t = table();
        let s = t.schema();
        let e = Expr::Case {
            branches: vec![
                (
                    Expr::col(s, "d").unwrap().eq(Expr::lit("nope")),
                    Expr::lit(1),
                ),
                (Expr::col(s, "d").unwrap().eq(Expr::lit("x")), Expr::lit(2)),
                (Expr::col(s, "d").unwrap().eq(Expr::lit("x")), Expr::lit(3)),
            ],
            else_value: None,
        };
        let mut st = ExecStats::default();
        assert_eq!(e.eval(&t, 0, &mut st).unwrap(), Value::Int(2));
        assert_eq!(st.case_condition_evals, 2, "stops at the first match");

        let mut st = ExecStats::default();
        assert_eq!(
            e.eval(&t, 1, &mut st).unwrap(),
            Value::Null,
            "no ELSE → NULL"
        );
        assert_eq!(st.case_condition_evals, 3, "all conditions tried");
    }

    #[test]
    fn key_match_builds_conjunction() {
        let t = table();
        let e = Expr::key_match(&[(0, Value::str("x")), (2, Value::Int(2))]);
        assert_eq!(eval(&e, &t, 0), Value::Int(1));
        assert_eq!(eval(&e, &t, 1), Value::Int(0));
    }

    #[test]
    fn output_types() {
        let t = table();
        let s = t.schema();
        let a = Expr::col(s, "a").unwrap();
        let b = Expr::col(s, "b").unwrap();
        assert_eq!(a.output_type(s), Some(DataType::Float));
        assert_eq!(b.output_type(s), Some(DataType::Int));
        assert_eq!(
            b.clone().add(Expr::lit(1)).output_type(s),
            Some(DataType::Int)
        );
        assert_eq!(
            a.clone().safe_div(b.clone()).output_type(s),
            Some(DataType::Float)
        );
        assert_eq!(a.eq(b).output_type(s), Some(DataType::Int));
        let schema2 = Arc::clone(s);
        drop(schema2);
    }

    #[test]
    fn key_eq_is_null_safe() {
        let t = table();
        let s = t.schema();
        let e = Expr::KeyEq(
            Box::new(Expr::col(s, "d").unwrap()),
            Box::new(Expr::Lit(Value::Null)),
        );
        assert_eq!(
            eval(&e, &t, 0),
            Value::Int(0),
            "'x' IS NOT DISTINCT FROM NULL"
        );
        assert_eq!(eval(&e, &t, 2), Value::Int(1), "NULL matches NULL");
        // Int/Float cross-type key equality.
        let e = Expr::KeyEq(Box::new(Expr::lit(2)), Box::new(Expr::lit(2.0)));
        assert_eq!(eval(&e, &t, 0), Value::Int(1));
    }

    #[test]
    fn cast_conversions() {
        let t = table();
        let cast = |dt, e: Expr| eval(&Expr::Cast(dt, Box::new(e)), &t, 0);
        assert_eq!(
            cast(DataType::Int, Expr::lit(2.9)),
            Value::Int(2),
            "truncates"
        );
        assert_eq!(cast(DataType::Float, Expr::lit(3)), Value::Float(3.0));
        assert_eq!(cast(DataType::Str, Expr::lit(7)), Value::str("7"));
        assert_eq!(
            cast(DataType::Int, Expr::Lit(Value::Null)),
            Value::Null,
            "NULL survives casts"
        );
        assert!(Expr::Cast(DataType::Int, Box::new(Expr::lit("x")))
            .eval(&t, 0, &mut ExecStats::default())
            .is_err());
        let s = t.schema();
        assert_eq!(
            Expr::Cast(DataType::Int, Box::new(Expr::col(s, "a").unwrap())).output_type(s),
            Some(DataType::Int)
        );
    }

    #[test]
    fn eval2_splices_two_tables() {
        let fk = table(); // 3 columns: d, a, b
        let schema = Schema::from_pairs(&[("total", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut fj = Table::empty(schema);
        fj.push_row(&[Value::Float(20.0)]).unwrap();
        fj.push_row(&[Value::Float(0.0)]).unwrap();

        // Fk.a / Fj.total: column 1 is left.a, column 3 is right.total.
        let e = Expr::Col(1).safe_div(Expr::Col(3));
        let mut st = ExecStats::default();
        assert_eq!(e.eval2(&fk, 0, &fj, 0, &mut st).unwrap(), Value::Float(0.5));
        assert_eq!(e.eval2(&fk, 0, &fj, 1, &mut st).unwrap(), Value::Null);
        assert!(Expr::Col(9).eval2(&fk, 0, &fj, 0, &mut st).is_err());
    }

    #[test]
    fn comparisons() {
        let t = table();
        let s = t.schema();
        let b = Expr::col(s, "b").unwrap();
        for (op, expect) in [
            (CmpOp::Lt, 0),
            (CmpOp::Le, 1),
            (CmpOp::Eq, 1),
            (CmpOp::Ge, 1),
            (CmpOp::Gt, 0),
            (CmpOp::Ne, 0),
        ] {
            let e = Expr::Cmp(op, Box::new(b.clone()), Box::new(Expr::lit(2)));
            assert_eq!(eval(&e, &t, 0), Value::Int(expect), "{op:?}");
        }
    }
}
