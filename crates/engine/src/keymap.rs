//! Group-id assignment shared by aggregation, join, and DISTINCT.
//!
//! Two code paths map a tuple of key values to a dense group id:
//!
//! * [`RowKeyMap`] — the general hash path. Input rows are hashed straight
//!   from their columns (no per-row key allocation); a key tuple is
//!   materialized only once per *distinct* group. Collisions are resolved
//!   by value comparison.
//! * [`DenseKeySpace`] / [`DenseGroupMap`] — the code path. When every key
//!   column has a small enumerable domain (dictionary codes for strings, a
//!   narrow observed range for integers), keys compress to a mixed-radix
//!   *composite code* and group lookup becomes one array index — no
//!   hashing, no `Value` construction, no key comparison.
//!
//! [`GroupMap`] unifies the two behind one interface so operators pick per
//! input: dense when the cardinality product fits the configured budget,
//! hash otherwise. Both paths assign group ids in first-appearance scan
//! order, which is what keeps parallel merges byte-identical to the serial
//! plan (DESIGN.md §7, §10).

use crate::stats::ExecStats;
use pa_storage::hash::FxHashMap;
use pa_storage::{Column, FxHasher, Table, Value};
use std::hash::Hasher;

/// Default ceiling on the composite-code space (product of per-dimension
/// radices) for the dense group path. 2^20 codes × 4-byte slot ≈ 4 MiB of
/// direct-addressed table per worker — beyond that the hash path wins.
pub const DEFAULT_DENSE_BUDGET: usize = 1 << 20;

/// Hash table from key tuples to dense group ids.
#[derive(Debug, Default)]
pub struct RowKeyMap {
    buckets: FxHashMap<u64, Vec<u32>>,
    keys: Vec<Vec<Value>>,
}

fn hash_row(table: &Table, cols: &[usize], row: usize) -> u64 {
    let mut h = FxHasher::default();
    for &c in cols {
        table.column(c).get(row).key_hash(&mut h);
    }
    h.finish()
}

fn hash_key(key: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in key {
        v.key_hash(&mut h);
    }
    h.finish()
}

fn row_matches(table: &Table, cols: &[usize], row: usize, key: &[Value]) -> bool {
    cols.iter()
        .zip(key)
        .all(|(&c, v)| table.column(c).get(row).key_eq(v))
}

impl RowKeyMap {
    /// Empty map.
    pub fn new() -> RowKeyMap {
        RowKeyMap::default()
    }

    /// Empty map pre-sized for roughly `capacity` distinct groups.
    pub fn with_capacity(capacity: usize) -> RowKeyMap {
        RowKeyMap {
            buckets: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            keys: Vec::with_capacity(capacity),
        }
    }

    /// Number of distinct groups seen.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no groups have been inserted.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Key tuples, indexed by group id.
    pub fn keys(&self) -> &[Vec<Value>] {
        &self.keys
    }

    /// Consume the map, yielding the key tuples in group-id order. Used by
    /// the parallel merge to fold a worker's partial groups into the global
    /// map without cloning every key.
    pub fn into_keys(self) -> Vec<Vec<Value>> {
        self.keys
    }

    /// Group id for the key formed by `cols` of `table[row]`, inserting a
    /// new group when unseen.
    pub fn get_or_insert_row(
        &mut self,
        table: &Table,
        cols: &[usize],
        row: usize,
        stats: &mut ExecStats,
    ) -> usize {
        stats.hash_probes += 1;
        let h = hash_row(table, cols, row);
        let bucket = self.buckets.entry(h).or_default();
        for &gid in bucket.iter() {
            if row_matches(table, cols, row, &self.keys[gid as usize]) {
                return gid as usize;
            }
        }
        let gid = self.keys.len() as u32;
        let key: Vec<Value> = cols.iter().map(|&c| table.column(c).get(row)).collect();
        self.keys.push(key);
        bucket.push(gid);
        stats.hash_build_rows += 1;
        gid as usize
    }

    /// Group id for an existing key formed from a row, without inserting.
    pub fn lookup_row(
        &self,
        table: &Table,
        cols: &[usize],
        row: usize,
        stats: &mut ExecStats,
    ) -> Option<usize> {
        stats.hash_probes += 1;
        let h = hash_row(table, cols, row);
        self.buckets.get(&h).and_then(|bucket| {
            bucket
                .iter()
                .find(|&&gid| row_matches(table, cols, row, &self.keys[gid as usize]))
                .map(|&gid| gid as usize)
        })
    }

    /// Group id for an explicit key tuple, without inserting.
    pub fn lookup_key(&self, key: &[Value], stats: &mut ExecStats) -> Option<usize> {
        stats.hash_probes += 1;
        let h = hash_key(key);
        self.buckets.get(&h).and_then(|bucket| {
            bucket
                .iter()
                .find(|&&gid| {
                    self.keys[gid as usize]
                        .iter()
                        .zip(key)
                        .all(|(a, b)| a.key_eq(b))
                })
                .map(|&gid| gid as usize)
        })
    }

    /// Group id for an explicit key tuple, inserting when unseen.
    pub fn get_or_insert_key(&mut self, key: &[Value], stats: &mut ExecStats) -> usize {
        stats.hash_probes += 1;
        let h = hash_key(key);
        let bucket = self.buckets.entry(h).or_default();
        for &gid in bucket.iter() {
            if self.keys[gid as usize]
                .iter()
                .zip(key)
                .all(|(a, b)| a.key_eq(b))
            {
                return gid as usize;
            }
        }
        let gid = self.keys.len() as u32;
        self.keys.push(key.to_vec());
        bucket.push(gid);
        stats.hash_build_rows += 1;
        gid as usize
    }
}

// ---- dense (code-path) grouping ------------------------------------------

/// How one key dimension maps to a slot in `0..radix`. Slot 0 is always the
/// NULL slot, so NULL groups exactly like the hash path's `key_eq`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DimCoder {
    /// Dictionary-encoded string column: slot = code + 1.
    Str,
    /// Integer column with observed range `[min, min + radix - 2]`:
    /// slot = value - min + 1.
    Int {
        /// Smallest non-NULL value observed at build time.
        min: i64,
    },
}

/// Mixed-radix composite-code space over a tuple of key columns.
///
/// Each dimension contributes a slot in `0..radix_d` (0 = NULL); the
/// composite code is `Σ slot_d × stride_d`, a bijection between key tuples
/// and `0..size()`. Built against one immutable table snapshot: the
/// per-dimension domains (dictionary size, integer range) are fixed at
/// build time, so every row of that snapshot encodes in range.
#[derive(Debug, Clone)]
pub struct DenseKeySpace {
    cols: Vec<usize>,
    pub(crate) dims: Vec<DimCoder>,
    radices: Vec<usize>,
    pub(crate) strides: Vec<usize>,
    size: usize,
}

impl DenseKeySpace {
    /// Try to build a code space for `cols` of `table` whose size stays
    /// within `budget` codes. Returns `None` — callers fall back to the
    /// hash path — when the key is empty, the budget is 0 (dense path
    /// disabled), any column is `Float` (unbounded domain), or the
    /// cardinality product overflows the budget.
    pub fn try_build(table: &Table, cols: &[usize], budget: usize) -> Option<DenseKeySpace> {
        if cols.is_empty() || budget == 0 {
            return None;
        }
        let mut dims = Vec::with_capacity(cols.len());
        let mut radices = Vec::with_capacity(cols.len());
        for &c in cols {
            let (coder, radix) = match table.column(c) {
                Column::Str { dict, .. } => (DimCoder::Str, dict.len().checked_add(1)?),
                Column::Int { data, validity } => {
                    let mut min = i64::MAX;
                    let mut max = i64::MIN;
                    for (i, &v) in data.iter().enumerate() {
                        if validity.get(i) {
                            min = min.min(v);
                            max = max.max(v);
                        }
                    }
                    if min > max {
                        // All-NULL dimension: only the NULL slot.
                        (DimCoder::Int { min: 0 }, 1)
                    } else {
                        let span = usize::try_from(max.checked_sub(min)?).ok()?;
                        (DimCoder::Int { min }, span.checked_add(2)?)
                    }
                }
                Column::Float { .. } => return None,
            };
            dims.push(coder);
            radices.push(radix);
        }
        let mut strides = Vec::with_capacity(cols.len());
        let mut size = 1usize;
        for &radix in &radices {
            strides.push(size);
            size = size.checked_mul(radix)?;
            if size > budget {
                return None;
            }
        }
        Some(DenseKeySpace {
            cols: cols.to_vec(),
            dims,
            radices,
            strides,
            size,
        })
    }

    /// Number of addressable composite codes (product of radices).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Key columns the space encodes, in key order.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    #[inline]
    fn slot_of_row(&self, table: &Table, d: usize, row: usize) -> usize {
        match (table.column(self.cols[d]), self.dims[d]) {
            (
                Column::Str {
                    codes, validity, ..
                },
                DimCoder::Str,
            ) => {
                if validity.get(row) {
                    codes[row] as usize + 1
                } else {
                    0
                }
            }
            (Column::Int { data, validity }, DimCoder::Int { min }) => {
                if validity.get(row) {
                    (data[row] - min) as usize + 1
                } else {
                    0
                }
            }
            _ => unreachable!("column type changed under a built key space"),
        }
    }

    /// Composite code of one row of the table the space was built on.
    #[inline]
    pub fn code_of_row(&self, table: &Table, row: usize) -> usize {
        let mut code = 0;
        for d in 0..self.dims.len() {
            code += self.slot_of_row(table, d, row) * self.strides[d];
        }
        code
    }

    /// Composite code of an explicit key tuple, or `None` when some value
    /// lies outside the encoded domain (it then matches no row of the
    /// table, because the domains cover every value the table holds).
    pub fn code_of_key(&self, table: &Table, key: &[Value]) -> Option<usize> {
        debug_assert_eq!(key.len(), self.cols.len());
        let mut code = 0;
        for (d, v) in key.iter().enumerate() {
            let slot = match (v, self.dims[d]) {
                (Value::Null, _) => 0,
                (Value::Str(s), DimCoder::Str) => {
                    let Column::Str { dict, .. } = table.column(self.cols[d]) else {
                        return None;
                    };
                    dict.code_of(s)? as usize + 1
                }
                (Value::Int(i), DimCoder::Int { min }) => {
                    let slot = usize::try_from(i.checked_sub(min)?).ok()? + 1;
                    if slot >= self.radices[d] {
                        return None;
                    }
                    slot
                }
                _ => return None,
            };
            code += slot * self.strides[d];
        }
        Some(code)
    }

    /// Decode dimension `d` of a composite code back into its key value.
    pub fn key_value(&self, table: &Table, code: usize, d: usize) -> Value {
        let slot = (code / self.strides[d]) % self.radices[d];
        if slot == 0 {
            return Value::Null;
        }
        match self.dims[d] {
            DimCoder::Str => {
                let Column::Str { dict, .. } = table.column(self.cols[d]) else {
                    unreachable!("column type changed under a built key space")
                };
                Value::Str(dict.resolve((slot - 1) as u32).clone())
            }
            DimCoder::Int { min } => Value::Int(min + slot as i64 - 1),
        }
    }
}

/// Direct-addressed group-id map over a [`DenseKeySpace`]: `code → gid` is
/// one array index. Group ids are assigned in first-appearance order, same
/// as [`RowKeyMap`], so the two paths produce byte-identical output.
#[derive(Debug)]
pub struct DenseGroupMap {
    space: DenseKeySpace,
    /// `u32::MAX` marks an unseen code (the space fits 2^20 ≪ u32::MAX).
    code_to_gid: Vec<u32>,
    /// Composite code per group id, in first-appearance order.
    gid_to_code: Vec<u32>,
}

impl DenseGroupMap {
    /// Empty map over `space`.
    pub fn new(space: DenseKeySpace) -> DenseGroupMap {
        DenseGroupMap {
            code_to_gid: vec![u32::MAX; space.size()],
            gid_to_code: Vec::new(),
            space,
        }
    }

    /// Number of distinct groups seen.
    pub fn len(&self) -> usize {
        self.gid_to_code.len()
    }

    /// True when no groups have been inserted.
    pub fn is_empty(&self) -> bool {
        self.gid_to_code.is_empty()
    }

    /// The code space this map addresses.
    pub fn space(&self) -> &DenseKeySpace {
        &self.space
    }

    /// Group id for a composite code, inserting a new group when unseen.
    #[inline]
    pub fn get_or_insert_code(&mut self, code: usize) -> usize {
        let gid = self.code_to_gid[code];
        if gid != u32::MAX {
            return gid as usize;
        }
        let gid = self.gid_to_code.len() as u32;
        self.code_to_gid[code] = gid;
        self.gid_to_code.push(code as u32);
        gid as usize
    }

    /// Group id for the key formed by the space's columns of `table[row]`,
    /// inserting a new group when unseen.
    #[inline]
    pub fn get_or_insert_row(&mut self, table: &Table, row: usize) -> usize {
        let code = self.space.code_of_row(table, row);
        self.get_or_insert_code(code)
    }
}

/// Group-id assignment behind either code path. Operators pick the variant
/// per input via [`GroupMap::choose`]; everything downstream (scan, merge,
/// materialization) is path-agnostic and byte-identical across paths.
#[derive(Debug)]
pub enum GroupMap {
    /// General hash path ([`RowKeyMap`]).
    Hash(RowKeyMap),
    /// Direct-addressed code path ([`DenseGroupMap`]).
    Dense(DenseGroupMap),
}

impl GroupMap {
    /// Dense map over `space` when one was built, hash map otherwise.
    pub fn for_space(space: Option<DenseKeySpace>) -> GroupMap {
        match space {
            Some(space) => GroupMap::Dense(DenseGroupMap::new(space)),
            None => GroupMap::Hash(RowKeyMap::new()),
        }
    }

    /// Choose the group path for `cols` of `table` under `budget`.
    pub fn choose(table: &Table, cols: &[usize], budget: usize) -> GroupMap {
        GroupMap::for_space(DenseKeySpace::try_build(table, cols, budget))
    }

    /// `"dense"` or `"hash"` — for stats and bench artifacts.
    pub fn path(&self) -> &'static str {
        match self {
            GroupMap::Hash(_) => "hash",
            GroupMap::Dense(_) => "dense",
        }
    }

    /// Mutable access to the dense map, when this is the dense path — the
    /// vectorized kernels feed precomputed composite codes straight into
    /// [`DenseGroupMap::get_or_insert_code`].
    pub fn as_dense_mut(&mut self) -> Option<&mut DenseGroupMap> {
        match self {
            GroupMap::Hash(_) => None,
            GroupMap::Dense(m) => Some(m),
        }
    }

    /// Number of distinct groups seen.
    pub fn len(&self) -> usize {
        match self {
            GroupMap::Hash(m) => m.len(),
            GroupMap::Dense(m) => m.len(),
        }
    }

    /// True when no groups have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Group id for the key formed by `cols` of `table[row]`, inserting a
    /// new group when unseen. `cols` must be the columns the map was chosen
    /// for (the dense path encodes its own column list).
    #[inline]
    pub fn get_or_insert_row(
        &mut self,
        table: &Table,
        cols: &[usize],
        row: usize,
        stats: &mut ExecStats,
    ) -> usize {
        match self {
            GroupMap::Hash(m) => m.get_or_insert_row(table, cols, row, stats),
            GroupMap::Dense(m) => m.get_or_insert_row(table, row),
        }
    }

    /// Group id for an explicit key tuple, inserting when unseen. Only the
    /// hash path supports explicit keys; levels with an empty key (global
    /// aggregates) always choose it.
    pub fn get_or_insert_key(&mut self, key: &[Value], stats: &mut ExecStats) -> usize {
        match self {
            GroupMap::Hash(m) => m.get_or_insert_key(key, stats),
            GroupMap::Dense(_) => unreachable!("explicit keys require the hash group path"),
        }
    }

    /// Fold another map's groups into this one, returning this map's group
    /// id for each of `other`'s group ids (in `other`'s id order). Unseen
    /// groups are appended in `other`'s first-appearance order — the
    /// deterministic worker-order merge both aggregation operators rely on.
    pub fn merge_ids(&mut self, other: GroupMap, stats: &mut ExecStats) -> Vec<u32> {
        match (self, other) {
            (GroupMap::Hash(dst), GroupMap::Hash(src)) => src
                .into_keys()
                .iter()
                .map(|key| dst.get_or_insert_key(key, stats) as u32)
                .collect(),
            (GroupMap::Dense(dst), GroupMap::Dense(src)) => src
                .gid_to_code
                .iter()
                .map(|&code| dst.get_or_insert_code(code as usize) as u32)
                .collect(),
            _ => unreachable!("worker partials always share one group path"),
        }
    }

    /// Materialize the key columns, one [`Column`] per key dimension with
    /// one entry per group id — the output layout, built directly from the
    /// stored keys without cloning a `Vec<Value>` per row. `table`/`cols`
    /// must be the input the map was built over.
    pub fn build_key_columns(
        &self,
        table: &Table,
        cols: &[usize],
    ) -> crate::error::Result<Vec<Column>> {
        let mut out = Vec::with_capacity(cols.len());
        match self {
            GroupMap::Hash(m) => {
                for (d, &c) in cols.iter().enumerate() {
                    let mut col = Column::new(table.column(c).data_type());
                    for key in m.keys() {
                        col.push(key[d].clone())?;
                    }
                    out.push(col);
                }
            }
            GroupMap::Dense(m) => {
                for (d, &c) in cols.iter().enumerate() {
                    let mut col = Column::new(table.column(c).data_type());
                    for &code in &m.gid_to_code {
                        col.push(m.space.key_value(table, code as usize, d))?;
                    }
                    out.push(col);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("state", DataType::Str), ("x", DataType::Int)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        for (s, x) in [("CA", 1), ("TX", 2), ("CA", 3), ("TX", 4), ("CA", 5)] {
            t.push_row(&[Value::str(s), Value::Int(x)]).unwrap();
        }
        t
    }

    #[test]
    fn assigns_dense_group_ids() {
        let t = table();
        let mut m = RowKeyMap::new();
        let mut st = ExecStats::default();
        let gids: Vec<usize> = (0..5)
            .map(|r| m.get_or_insert_row(&t, &[0], r, &mut st))
            .collect();
        assert_eq!(gids, vec![0, 1, 0, 1, 0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.keys()[0], vec![Value::str("CA")]);
        assert_eq!(st.hash_probes, 5);
        assert_eq!(st.hash_build_rows, 2);
    }

    #[test]
    fn lookup_row_and_key_agree() {
        let t = table();
        let mut m = RowKeyMap::new();
        let mut st = ExecStats::default();
        for r in 0..5 {
            m.get_or_insert_row(&t, &[0], r, &mut st);
        }
        assert_eq!(m.lookup_row(&t, &[0], 1, &mut st), Some(1));
        assert_eq!(m.lookup_key(&[Value::str("TX")], &mut st), Some(1));
        assert_eq!(m.lookup_key(&[Value::str("NY")], &mut st), None);
    }

    #[test]
    fn composite_keys_with_nulls() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::Null, Value::Int(1)]).unwrap();
        t.push_row(&[Value::Null, Value::Int(1)]).unwrap();
        t.push_row(&[Value::Int(1), Value::Null]).unwrap();
        let mut m = RowKeyMap::new();
        let mut st = ExecStats::default();
        let g0 = m.get_or_insert_row(&t, &[0, 1], 0, &mut st);
        let g1 = m.get_or_insert_row(&t, &[0, 1], 1, &mut st);
        let g2 = m.get_or_insert_row(&t, &[0, 1], 2, &mut st);
        assert_eq!(g0, g1, "NULL groups together");
        assert_ne!(g0, g2);
    }

    #[test]
    fn get_or_insert_key_round_trip() {
        let mut m = RowKeyMap::new();
        let mut st = ExecStats::default();
        let a = m.get_or_insert_key(&[Value::Int(1), Value::str("x")], &mut st);
        let b = m.get_or_insert_key(&[Value::Int(1), Value::str("x")], &mut st);
        let c = m.get_or_insert_key(&[Value::Int(2), Value::str("x")], &mut st);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.len(), 2);
    }

    /// Str × Int table with NULLs in both key dimensions.
    fn mixed_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("s", DataType::Str),
            ("d", DataType::Int),
            ("f", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for (s, d) in [
            (Some("CA"), Some(10)),
            (Some("TX"), Some(12)),
            (None, Some(10)),
            (Some("CA"), None),
            (Some("CA"), Some(10)),
            (None, Some(10)),
        ] {
            t.push_row(&[
                s.map_or(Value::Null, Value::str),
                d.map_or(Value::Null, Value::Int),
                Value::Float(1.0),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn dense_space_respects_budget_and_column_types() {
        let t = mixed_table();
        // s: 2 dict values + NULL = 3; d: range 10..=12 + NULL = 4.
        let space = DenseKeySpace::try_build(&t, &[0, 1], 1 << 20).unwrap();
        assert_eq!(space.size(), 12);
        // A budget below the product forces the hash fallback.
        assert!(DenseKeySpace::try_build(&t, &[0, 1], 11).is_none());
        assert!(DenseKeySpace::try_build(&t, &[0, 1], 0).is_none());
        // Float columns never dense-encode.
        assert!(DenseKeySpace::try_build(&t, &[2], 1 << 20).is_none());
        assert!(DenseKeySpace::try_build(&t, &[], 1 << 20).is_none());
    }

    #[test]
    fn dense_gids_match_hash_gids_in_scan_order() {
        let t = mixed_table();
        let mut hash = RowKeyMap::new();
        let mut dense = DenseGroupMap::new(DenseKeySpace::try_build(&t, &[0, 1], 1 << 20).unwrap());
        let mut st = ExecStats::default();
        for row in 0..t.num_rows() {
            let h = hash.get_or_insert_row(&t, &[0, 1], row, &mut st);
            let d = dense.get_or_insert_row(&t, row);
            assert_eq!(h, d, "row {row}");
        }
        assert_eq!(hash.len(), dense.len());
    }

    #[test]
    fn dense_codes_round_trip_through_key_values() {
        let t = mixed_table();
        let space = DenseKeySpace::try_build(&t, &[0, 1], 1 << 20).unwrap();
        for row in 0..t.num_rows() {
            let code = space.code_of_row(&t, row);
            assert!(code < space.size());
            let key: Vec<Value> = (0..2).map(|d| space.key_value(&t, code, d)).collect();
            assert!(key[0].key_eq(&t.get(row, 0)), "row {row}");
            assert!(key[1].key_eq(&t.get(row, 1)), "row {row}");
            assert_eq!(space.code_of_key(&t, &key), Some(code));
        }
        // Out-of-domain keys are rejected, not mis-encoded.
        assert_eq!(
            space.code_of_key(&t, &[Value::str("NV"), Value::Int(10)]),
            None
        );
        assert_eq!(
            space.code_of_key(&t, &[Value::str("CA"), Value::Int(99)]),
            None
        );
    }

    #[test]
    fn group_map_merge_ids_agrees_across_paths() {
        let t = mixed_table();
        let mut st = ExecStats::default();
        let space = DenseKeySpace::try_build(&t, &[0, 1], 1 << 20).unwrap();
        // Worker 0 sees rows 0..3, worker 1 rows 3..6; merge in worker order.
        let run = |mut maps: Vec<GroupMap>, st: &mut ExecStats| -> (Vec<u32>, usize) {
            for row in 0..3 {
                maps[0].get_or_insert_row(&t, &[0, 1], row, st);
            }
            for row in 3..6 {
                maps[1].get_or_insert_row(&t, &[0, 1], row, st);
            }
            let w1 = maps.pop().unwrap();
            let mut global = maps.pop().unwrap();
            let ids = global.merge_ids(w1, st);
            (ids, global.len())
        };
        let (hash_ids, hash_len) = run(
            vec![
                GroupMap::Hash(RowKeyMap::new()),
                GroupMap::Hash(RowKeyMap::new()),
            ],
            &mut st,
        );
        let (dense_ids, dense_len) = run(
            vec![
                GroupMap::Dense(DenseGroupMap::new(space.clone())),
                GroupMap::Dense(DenseGroupMap::new(space)),
            ],
            &mut st,
        );
        assert_eq!(hash_ids, dense_ids);
        assert_eq!(hash_len, dense_len);
    }

    #[test]
    fn build_key_columns_matches_stored_keys_on_both_paths() {
        let t = mixed_table();
        let mut st = ExecStats::default();
        let mut hash = GroupMap::Hash(RowKeyMap::new());
        let mut dense = GroupMap::choose(&t, &[0, 1], 1 << 20);
        assert_eq!(dense.path(), "dense");
        assert_eq!(hash.path(), "hash");
        for row in 0..t.num_rows() {
            hash.get_or_insert_row(&t, &[0, 1], row, &mut st);
            dense.get_or_insert_row(&t, &[0, 1], row, &mut st);
        }
        let h = hash.build_key_columns(&t, &[0, 1]).unwrap();
        let d = dense.build_key_columns(&t, &[0, 1]).unwrap();
        assert_eq!(h.len(), 2);
        for (hc, dc) in h.iter().zip(&d) {
            assert_eq!(hc.len(), hash.len());
            for i in 0..hc.len() {
                assert_eq!(hc.get(i), dc.get(i));
            }
        }
    }
}
