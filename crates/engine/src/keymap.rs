//! Grouping hash table shared by aggregation, join, and DISTINCT.
//!
//! Maps a tuple of key values to a dense group id. Input rows are hashed
//! straight from their columns (no per-row key allocation); a key tuple is
//! materialized only once per *distinct* group. Collisions are resolved by
//! value comparison.

use crate::stats::ExecStats;
use pa_storage::hash::FxHashMap;
use pa_storage::{FxHasher, Table, Value};
use std::hash::Hasher;

/// Hash table from key tuples to dense group ids.
#[derive(Debug, Default)]
pub struct RowKeyMap {
    buckets: FxHashMap<u64, Vec<u32>>,
    keys: Vec<Vec<Value>>,
}

fn hash_row(table: &Table, cols: &[usize], row: usize) -> u64 {
    let mut h = FxHasher::default();
    for &c in cols {
        table.column(c).get(row).key_hash(&mut h);
    }
    h.finish()
}

fn hash_key(key: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in key {
        v.key_hash(&mut h);
    }
    h.finish()
}

fn row_matches(table: &Table, cols: &[usize], row: usize, key: &[Value]) -> bool {
    cols.iter()
        .zip(key)
        .all(|(&c, v)| table.column(c).get(row).key_eq(v))
}

impl RowKeyMap {
    /// Empty map.
    pub fn new() -> RowKeyMap {
        RowKeyMap::default()
    }

    /// Empty map pre-sized for roughly `capacity` distinct groups.
    pub fn with_capacity(capacity: usize) -> RowKeyMap {
        RowKeyMap {
            buckets: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            keys: Vec::with_capacity(capacity),
        }
    }

    /// Number of distinct groups seen.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no groups have been inserted.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Key tuples, indexed by group id.
    pub fn keys(&self) -> &[Vec<Value>] {
        &self.keys
    }

    /// Consume the map, yielding the key tuples in group-id order. Used by
    /// the parallel merge to fold a worker's partial groups into the global
    /// map without cloning every key.
    pub fn into_keys(self) -> Vec<Vec<Value>> {
        self.keys
    }

    /// Group id for the key formed by `cols` of `table[row]`, inserting a
    /// new group when unseen.
    pub fn get_or_insert_row(
        &mut self,
        table: &Table,
        cols: &[usize],
        row: usize,
        stats: &mut ExecStats,
    ) -> usize {
        stats.hash_probes += 1;
        let h = hash_row(table, cols, row);
        let bucket = self.buckets.entry(h).or_default();
        for &gid in bucket.iter() {
            if row_matches(table, cols, row, &self.keys[gid as usize]) {
                return gid as usize;
            }
        }
        let gid = self.keys.len() as u32;
        let key: Vec<Value> = cols.iter().map(|&c| table.column(c).get(row)).collect();
        self.keys.push(key);
        bucket.push(gid);
        stats.hash_build_rows += 1;
        gid as usize
    }

    /// Group id for an existing key formed from a row, without inserting.
    pub fn lookup_row(
        &self,
        table: &Table,
        cols: &[usize],
        row: usize,
        stats: &mut ExecStats,
    ) -> Option<usize> {
        stats.hash_probes += 1;
        let h = hash_row(table, cols, row);
        self.buckets.get(&h).and_then(|bucket| {
            bucket
                .iter()
                .find(|&&gid| row_matches(table, cols, row, &self.keys[gid as usize]))
                .map(|&gid| gid as usize)
        })
    }

    /// Group id for an explicit key tuple, without inserting.
    pub fn lookup_key(&self, key: &[Value], stats: &mut ExecStats) -> Option<usize> {
        stats.hash_probes += 1;
        let h = hash_key(key);
        self.buckets.get(&h).and_then(|bucket| {
            bucket
                .iter()
                .find(|&&gid| {
                    self.keys[gid as usize]
                        .iter()
                        .zip(key)
                        .all(|(a, b)| a.key_eq(b))
                })
                .map(|&gid| gid as usize)
        })
    }

    /// Group id for an explicit key tuple, inserting when unseen.
    pub fn get_or_insert_key(&mut self, key: &[Value], stats: &mut ExecStats) -> usize {
        stats.hash_probes += 1;
        let h = hash_key(key);
        let bucket = self.buckets.entry(h).or_default();
        for &gid in bucket.iter() {
            if self.keys[gid as usize]
                .iter()
                .zip(key)
                .all(|(a, b)| a.key_eq(b))
            {
                return gid as usize;
            }
        }
        let gid = self.keys.len() as u32;
        self.keys.push(key.to_vec());
        bucket.push(gid);
        stats.hash_build_rows += 1;
        gid as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("state", DataType::Str), ("x", DataType::Int)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        for (s, x) in [("CA", 1), ("TX", 2), ("CA", 3), ("TX", 4), ("CA", 5)] {
            t.push_row(&[Value::str(s), Value::Int(x)]).unwrap();
        }
        t
    }

    #[test]
    fn assigns_dense_group_ids() {
        let t = table();
        let mut m = RowKeyMap::new();
        let mut st = ExecStats::default();
        let gids: Vec<usize> = (0..5)
            .map(|r| m.get_or_insert_row(&t, &[0], r, &mut st))
            .collect();
        assert_eq!(gids, vec![0, 1, 0, 1, 0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.keys()[0], vec![Value::str("CA")]);
        assert_eq!(st.hash_probes, 5);
        assert_eq!(st.hash_build_rows, 2);
    }

    #[test]
    fn lookup_row_and_key_agree() {
        let t = table();
        let mut m = RowKeyMap::new();
        let mut st = ExecStats::default();
        for r in 0..5 {
            m.get_or_insert_row(&t, &[0], r, &mut st);
        }
        assert_eq!(m.lookup_row(&t, &[0], 1, &mut st), Some(1));
        assert_eq!(m.lookup_key(&[Value::str("TX")], &mut st), Some(1));
        assert_eq!(m.lookup_key(&[Value::str("NY")], &mut st), None);
    }

    #[test]
    fn composite_keys_with_nulls() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::Null, Value::Int(1)]).unwrap();
        t.push_row(&[Value::Null, Value::Int(1)]).unwrap();
        t.push_row(&[Value::Int(1), Value::Null]).unwrap();
        let mut m = RowKeyMap::new();
        let mut st = ExecStats::default();
        let g0 = m.get_or_insert_row(&t, &[0, 1], 0, &mut st);
        let g1 = m.get_or_insert_row(&t, &[0, 1], 1, &mut st);
        let g2 = m.get_or_insert_row(&t, &[0, 1], 2, &mut st);
        assert_eq!(g0, g1, "NULL groups together");
        assert_ne!(g0, g2);
    }

    #[test]
    fn get_or_insert_key_round_trip() {
        let mut m = RowKeyMap::new();
        let mut st = ExecStats::default();
        let a = m.get_or_insert_key(&[Value::Int(1), Value::str("x")], &mut st);
        let b = m.get_or_insert_key(&[Value::Int(1), Value::str("x")], &mut st);
        let c = m.get_or_insert_key(&[Value::Int(2), Value::str("x")], &mut st);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.len(), 2);
    }
}
