//! Vectorized compressed-column kernels (DESIGN.md §12).
//!
//! The scalar operators interpret one row at a time: a virtual
//! `Column::get`/`get_f64` per lane per row, an enum match per dimension per
//! row inside `DenseKeySpace::code_of_row`. This module replaces the inner
//! loops with MonetDB/X100-style *block-at-a-time* kernels over compressed
//! vectors:
//!
//! * [`BlockCoder`] resolves each key dimension to a typed reader **once**
//!   — bit-packed NULL-folded slots for dictionary columns
//!   ([`pa_storage::PackedCodes`]), raw `&[i64]` plus validity words for
//!   integer columns — and fills a stack block of mixed-radix composite
//!   codes with tight, autovectorizable loops. The packed slot (`0` NULL,
//!   `code + 1` otherwise) is exactly the dense key space's digit, so
//!   unpack output feeds the code computation with no translation.
//! * [`LaneSrc`] / [`RawLanes`] accumulate `sum`/`count` pairs straight
//!   into dense `&mut [f64]` / `&mut [i64]` slices indexed by group id — no
//!   `Option`, no `Value`, no `Acc` enum dispatch inside the loop. The raw
//!   pairs convert to real [`Acc`]s only once per worker chunk
//!   ([`raw_acc`]), so the merge/finish machinery — and therefore the
//!   output bytes — are identical to the scalar path.
//! * Run detection ([`FusedAgg`]) switches to an RLE fast path when a code
//!   block is dominated by runs (sorted/clustered dimensions): one group
//!   lookup per run and register-resident accumulation, with counts added
//!   run-length at a time. Floating-point sums still add row by row in row
//!   order — never reassociated — which is what keeps the fused path
//!   byte-identical to the scalar one.
//! * [`NumSlice`] is the same hoisting for the *scalar fallback* loops:
//!   lanes that cannot fuse still resolve their typed slices once per scan
//!   instead of re-matching the column enum per row.
//!
//! Eligibility: a grouping pass fuses when its group map took the dense
//! code path, every lane is a typed numeric `sum`/`avg`/`count`/`count(*)`
//! kernel, and every key dimension reads through a packed or integer
//! vector. Everything else — float keys, over-budget dictionaries, min/max
//! or expression lanes — falls back to the (hoisted) scalar loop, and the
//! chosen path is recorded in [`crate::ExecStats`] and on trace spans.

use crate::keymap::{DenseGroupMap, DenseKeySpace, DimCoder};
use crate::ops::acc::Acc;
use crate::ops::aggregate::AggFunc;
use crate::stats::ExecStats;
use pa_storage::{Column, PackedCodes, Table};
use std::ops::Range;
use std::sync::Arc;

/// Rows per kernel block: the unit the fused pipelines unpack, encode, and
/// scatter at a time. Fits the code/gid scratch in L1 alongside the lane
/// data.
pub const BLOCK_ROWS: usize = 1024;

/// When a block splits into at most `len / RLE_RUN_DIVISOR` runs, the
/// run-level path beats the per-row scatter.
const RLE_RUN_DIVISOR: usize = 2;

// ---- hoisted typed column views ------------------------------------------

/// A numeric column resolved to its raw parts once per scan, replacing the
/// per-row `table.column(c).get_f64(row)` in non-vectorized fallback loops.
#[derive(Clone, Copy)]
pub enum NumSlice<'a> {
    /// Integer column: data (0 placeholders) + validity words.
    Int(&'a [i64], &'a [u64]),
    /// Float column: data (NaN placeholders) + validity words.
    Float(&'a [f64], &'a [u64]),
}

impl<'a> NumSlice<'a> {
    /// Resolve a column, `None` when it is not numeric.
    pub fn for_column(col: &'a Column) -> Option<NumSlice<'a>> {
        match col {
            Column::Int { data, validity } => Some(NumSlice::Int(data, validity.words())),
            Column::Float { data, validity } => Some(NumSlice::Float(data, validity.words())),
            Column::Str { .. } => None,
        }
    }

    /// The value at `row` widened to `f64`, `None` when NULL — same
    /// contract as [`Column::get_f64`], minus the per-row column resolve.
    #[inline]
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match *self {
            NumSlice::Int(data, vwords) => {
                (vwords[row >> 6] >> (row & 63) & 1 == 1).then(|| data[row] as f64)
            }
            NumSlice::Float(data, vwords) => {
                (vwords[row >> 6] >> (row & 63) & 1 == 1).then(|| data[row])
            }
        }
    }
}

// ---- block composite-code computation ------------------------------------

enum DimReader<'a> {
    /// Dictionary dimension via the bit-packed NULL-folded slot vector.
    Packed {
        packed: Arc<PackedCodes>,
        stride: u32,
    },
    /// Integer dimension: slot = `value - min + 1` masked by validity.
    Int {
        data: &'a [i64],
        vwords: &'a [u64],
        min: i64,
        stride: u32,
    },
}

/// Fills blocks of mixed-radix composite codes for a [`DenseKeySpace`],
/// reading every dimension through a compressed or typed vector.
pub struct BlockCoder<'a> {
    dims: Vec<DimReader<'a>>,
    /// Widest bit-packed dimension, for stats (`0` when no packed dim).
    pack_width: u32,
}

impl<'a> BlockCoder<'a> {
    /// Build a coder for `space` over `table`. `None` when some dimension
    /// cannot be read vectorized (unpackable dictionary) or the code space
    /// does not fit the `u32` block buffers — callers then keep the scalar
    /// `code_of_row` loop.
    pub fn try_new(table: &'a Table, space: &DenseKeySpace) -> Option<BlockCoder<'a>> {
        if space.size() > u32::MAX as usize {
            return None;
        }
        let mut dims = Vec::with_capacity(space.cols().len());
        let mut pack_width = 0u32;
        for (d, &c) in space.cols().iter().enumerate() {
            let stride = space.strides[d] as u32;
            let reader = match (table.column(c), space.dims[d]) {
                (col @ Column::Str { .. }, DimCoder::Str) => {
                    let packed = Arc::clone(col.packed_slots()?);
                    pack_width = pack_width.max(packed.width());
                    DimReader::Packed { packed, stride }
                }
                (Column::Int { data, validity }, DimCoder::Int { min }) => DimReader::Int {
                    data,
                    vwords: validity.words(),
                    min,
                    stride,
                },
                _ => return None,
            };
            dims.push(reader);
        }
        Some(BlockCoder { dims, pack_width })
    }

    /// Widest bit-packed dimension this coder reads (0 when none).
    pub fn pack_width(&self) -> u32 {
        self.pack_width
    }

    /// Compute the composite codes of rows `start..start + out.len()` into
    /// `out`. Every loop body is branch-free over raw slices.
    pub fn fill(&self, start: usize, out: &mut [u32]) {
        let mut first = true;
        let mut slots = [0u32; BLOCK_ROWS];
        for dim in &self.dims {
            match dim {
                DimReader::Packed { packed, stride } => {
                    let slots = &mut slots[..out.len()];
                    packed.unpack_into(start, slots);
                    if first {
                        for (o, &s) in out.iter_mut().zip(slots.iter()) {
                            *o = s * stride;
                        }
                    } else {
                        for (o, &s) in out.iter_mut().zip(slots.iter()) {
                            *o += s * stride;
                        }
                    }
                }
                DimReader::Int {
                    data,
                    vwords,
                    min,
                    stride,
                } => {
                    // Wrapping math masked by validity: NULL placeholders may
                    // sit arbitrarily far from `min`, the multiply by the
                    // validity bit discards whatever they wrap to.
                    for (i, o) in out.iter_mut().enumerate() {
                        let row = start + i;
                        let valid = (vwords[row >> 6] >> (row & 63) & 1) as u32;
                        let slot = (data[row].wrapping_sub(*min) as u32).wrapping_add(1) * valid;
                        if first {
                            *o = slot * stride;
                        } else {
                            *o += slot * stride;
                        }
                    }
                }
            }
            first = false;
        }
        if first {
            out.fill(0);
        }
    }
}

// ---- raw accumulator lanes -----------------------------------------------

/// Where one fused aggregate lane reads its input.
#[derive(Clone, Copy)]
pub enum LaneSrc<'a> {
    /// Typed numeric column.
    Col(NumSlice<'a>),
    /// `count(*)`: no input read.
    CountStar,
}

impl<'a> LaneSrc<'a> {
    /// Resolve a numeric column lane; `None` when the column is not numeric.
    pub fn for_column(col: &'a Column) -> Option<LaneSrc<'a>> {
        NumSlice::for_column(col).map(LaneSrc::Col)
    }
}

/// One lane's dense `sum`/`count` pair, indexed by group id (or any other
/// dense accumulator index). `sum` accumulates in strict row order so float
/// results match the scalar `Acc` updates bit for bit.
#[derive(Default)]
pub struct RawLane {
    /// Per-index running sums.
    pub sums: Vec<f64>,
    /// Per-index non-NULL input counts (row counts for `count(*)` lanes).
    pub counts: Vec<i64>,
}

impl RawLane {
    /// Grow both arrays to at least `n` entries.
    #[inline]
    pub fn ensure(&mut self, n: usize) {
        if self.sums.len() < n {
            self.sums.resize(n, 0.0);
            self.counts.resize(n, 0);
        }
    }

    /// Scatter rows `rows.start + k` into accumulator indices `idx[k]`,
    /// one update per row in row order.
    #[inline]
    pub fn scatter(&mut self, src: &LaneSrc<'_>, rows: Range<usize>, idx: &[u32]) {
        debug_assert_eq!(rows.len(), idx.len());
        match src {
            LaneSrc::CountStar => {
                for &g in idx {
                    self.counts[g as usize] += 1;
                }
            }
            LaneSrc::Col(NumSlice::Float(data, vwords)) => {
                let data = &data[rows.start..rows.end];
                for (k, (&g, &x)) in idx.iter().zip(data).enumerate() {
                    let row = rows.start + k;
                    // Branch, don't mask: adding 0.0 for NULLs would turn a
                    // -0.0 running sum into +0.0, and the NaN placeholder
                    // would poison a masked multiply.
                    if vwords[row >> 6] >> (row & 63) & 1 == 1 {
                        self.sums[g as usize] += x;
                        self.counts[g as usize] += 1;
                    }
                }
            }
            LaneSrc::Col(NumSlice::Int(data, vwords)) => {
                let data = &data[rows.start..rows.end];
                for (k, (&g, &x)) in idx.iter().zip(data).enumerate() {
                    let row = rows.start + k;
                    if vwords[row >> 6] >> (row & 63) & 1 == 1 {
                        self.sums[g as usize] += x as f64;
                        self.counts[g as usize] += 1;
                    }
                }
            }
        }
    }

    /// Accumulate one run of rows that all map to accumulator index `g`:
    /// the accumulator lives in registers for the run, counts add
    /// run-length-weighted, and float sums still add row by row in row
    /// order (reassociating would change the bits).
    #[inline]
    pub fn accumulate_run(&mut self, src: &LaneSrc<'_>, rows: Range<usize>, g: usize) {
        match src {
            LaneSrc::CountStar => {
                self.counts[g] += rows.len() as i64;
            }
            LaneSrc::Col(NumSlice::Float(data, vwords)) => {
                let mut sum = self.sums[g];
                let mut cnt = 0i64;
                for row in rows {
                    if vwords[row >> 6] >> (row & 63) & 1 == 1 {
                        sum += data[row];
                        cnt += 1;
                    }
                }
                self.sums[g] = sum;
                self.counts[g] += cnt;
            }
            LaneSrc::Col(NumSlice::Int(data, vwords)) => {
                let mut sum = self.sums[g];
                let mut cnt = 0i64;
                for row in rows {
                    if vwords[row >> 6] >> (row & 63) & 1 == 1 {
                        sum += data[row] as f64;
                        cnt += 1;
                    }
                }
                self.sums[g] = sum;
                self.counts[g] += cnt;
            }
        }
    }
}

/// Convert one raw `sum`/`count` pair into the [`Acc`] the scalar path
/// would have produced for the same rows in the same order.
///
/// # Panics
/// On functions the fused path never admits (min/max/distinct).
#[inline]
pub fn raw_acc(func: AggFunc, sum: f64, count: i64) -> Acc {
    match func {
        AggFunc::Sum => Acc::Sum {
            sum,
            any: count > 0,
        },
        AggFunc::Avg => Acc::Avg { sum, n: count },
        AggFunc::Count => Acc::Count(count),
        AggFunc::CountStar => Acc::CountStar(count),
        _ => unreachable!("fused lanes are sum/avg/count/count(*) only"),
    }
}

// ---- fused aggregate state -----------------------------------------------

/// Per-worker state for one fused grouping level of the aggregate
/// operator: scan → unpack/encode → gid → scatter, with the RLE run path
/// when blocks are run-dominated.
pub(crate) struct FusedAgg<'a> {
    coder: BlockCoder<'a>,
    pub(crate) map: DenseGroupMap,
    srcs: Vec<LaneSrc<'a>>,
    lanes: Vec<RawLane>,
    codes: Box<[u32; BLOCK_ROWS]>,
    gids: Box<[u32; BLOCK_ROWS]>,
}

impl<'a> FusedAgg<'a> {
    pub(crate) fn new(
        coder: BlockCoder<'a>,
        map: DenseGroupMap,
        srcs: Vec<LaneSrc<'a>>,
    ) -> FusedAgg<'a> {
        let lanes = srcs.iter().map(|_| RawLane::default()).collect();
        FusedAgg {
            coder,
            map,
            srcs,
            lanes,
            codes: Box::new([0; BLOCK_ROWS]),
            gids: Box::new([0; BLOCK_ROWS]),
        }
    }

    /// Absorb one morsel, block by block.
    pub(crate) fn absorb_morsel(&mut self, morsel: Range<usize>, stats: &mut ExecStats) {
        let mut start = morsel.start;
        while start < morsel.end {
            let len = BLOCK_ROWS.min(morsel.end - start);
            self.absorb_block(start, len, stats);
            start += len;
        }
    }

    fn absorb_block(&mut self, start: usize, len: usize, stats: &mut ExecStats) {
        let codes = &mut self.codes[..len];
        self.coder.fill(start, codes);
        stats.vectorized_kernel_rows += len as u64;

        // Run-dominated blocks (sorted/clustered keys) take the RLE path:
        // one gid lookup and register-resident accumulators per run.
        let mut runs = 1usize;
        for k in 1..len {
            runs += usize::from(codes[k] != codes[k - 1]);
        }
        if runs * RLE_RUN_DIVISOR <= len {
            stats.rle_runs += runs as u64;
            let mut i = 0usize;
            while i < len {
                let code = codes[i];
                let mut j = i + 1;
                while j < len && codes[j] == code {
                    j += 1;
                }
                let g = self.map.get_or_insert_code(code as usize);
                for (lane, src) in self.lanes.iter_mut().zip(&self.srcs) {
                    lane.ensure(g + 1);
                    lane.accumulate_run(src, start + i..start + j, g);
                }
                i = j;
            }
            return;
        }

        let gids = &mut self.gids[..len];
        for (g, &code) in gids.iter_mut().zip(codes.iter()) {
            *g = self.map.get_or_insert_code(code as usize) as u32;
        }
        let n_groups = self.map.len();
        for (lane, src) in self.lanes.iter_mut().zip(&self.srcs) {
            lane.ensure(n_groups);
            lane.scatter(src, start..start + len, gids);
        }
    }

    /// Collapse into the dense map plus the flat `groups × lanes` [`Acc`]
    /// matrix the scalar path builds, so merge and finish are shared.
    pub(crate) fn into_accs(mut self, funcs: &[AggFunc]) -> (DenseGroupMap, Vec<Acc>) {
        let n = self.map.len();
        for lane in &mut self.lanes {
            lane.ensure(n);
        }
        let mut accs = Vec::with_capacity(n * funcs.len());
        for gid in 0..n {
            for (lane, &func) in self.lanes.iter().zip(funcs) {
                accs.push(raw_acc(func, lane.sums[gid], lane.counts[gid]));
            }
        }
        (self.map, accs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{DataType, Schema, Value};

    fn table(rows: &[(Option<&str>, Option<i64>, Option<f64>)]) -> Table {
        let schema = Schema::from_pairs(&[
            ("s", DataType::Str),
            ("d", DataType::Int),
            ("a", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for &(s, d, a) in rows {
            t.push_row(&[
                s.map_or(Value::Null, Value::str),
                d.map_or(Value::Null, Value::Int),
                a.map_or(Value::Null, Value::Float),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn block_coder_matches_code_of_row() {
        let t = table(&[
            (Some("x"), Some(3), Some(1.0)),
            (None, Some(5), None),
            (Some("y"), None, Some(2.0)),
            (Some("x"), Some(4), Some(3.0)),
            (None, None, None),
        ]);
        let space = DenseKeySpace::try_build(&t, &[0, 1], 1 << 20).unwrap();
        let coder = BlockCoder::try_new(&t, &space).unwrap();
        assert!(coder.pack_width() >= 1);
        let mut codes = vec![0u32; t.num_rows()];
        coder.fill(0, &mut codes);
        for (row, &code) in codes.iter().enumerate() {
            assert_eq!(code as usize, space.code_of_row(&t, row), "row {row}");
        }
    }

    #[test]
    fn block_coder_rejects_float_dims_via_space() {
        let t = table(&[(Some("x"), Some(1), Some(1.0))]);
        assert!(DenseKeySpace::try_build(&t, &[2], 1 << 20).is_none());
    }

    #[test]
    fn num_slice_agrees_with_get_f64() {
        let t = table(&[
            (Some("x"), Some(3), Some(1.5)),
            (None, None, None),
            (Some("y"), Some(-2), Some(-0.0)),
        ]);
        for c in 1..=2 {
            let col = t.column(c);
            let slice = NumSlice::for_column(col).unwrap();
            for row in 0..t.num_rows() {
                let a = slice.get_f64(row);
                let b = col.get_f64(row);
                assert_eq!(
                    a.map(f64::to_bits),
                    b.map(f64::to_bits),
                    "col {c} row {row}"
                );
            }
        }
        assert!(NumSlice::for_column(t.column(0)).is_none());
    }

    #[test]
    fn raw_acc_matches_scalar_updates() {
        // The raw lane and the Acc must agree on every func, including the
        // all-NULL (count 0) edge.
        assert_eq!(raw_acc(AggFunc::Sum, 0.0, 0).finish(), Value::Null);
        assert_eq!(raw_acc(AggFunc::Sum, 5.0, 2).finish(), Value::Float(5.0));
        assert_eq!(raw_acc(AggFunc::Avg, 6.0, 0).finish(), Value::Null);
        assert_eq!(raw_acc(AggFunc::Avg, 6.0, 3).finish(), Value::Float(2.0));
        assert_eq!(raw_acc(AggFunc::Count, 0.0, 4).finish(), Value::Int(4));
        assert_eq!(raw_acc(AggFunc::CountStar, 0.0, 7).finish(), Value::Int(7));
    }

    #[test]
    fn fused_float_sums_are_bit_identical_to_scalar_acc() {
        // The fused path must reproduce the scalar Acc updates bit for bit —
        // including signed zeros, NaN NULL placeholders being skipped (never
        // mask-multiplied), and strict row-order addition within a run.
        let t = table(&[
            (Some("g"), Some(1), Some(-0.0)),
            (Some("g"), Some(1), None),
            (Some("g"), Some(1), Some(-0.0)),
            (Some("g"), Some(1), Some(0.1)),
            (Some("g"), Some(1), Some(0.2)),
            (Some("g"), Some(1), Some(-0.3)),
        ]);
        let n = t.num_rows();
        let mut scalar = Acc::Sum {
            sum: 0.0,
            any: false,
        };
        for row in 0..n {
            scalar.update_f64(t.column(2).get_f64(row));
        }
        let space = DenseKeySpace::try_build(&t, &[0, 1], 1 << 20).unwrap();
        let coder = BlockCoder::try_new(&t, &space).unwrap();
        let map = DenseGroupMap::new(space);
        let srcs = vec![LaneSrc::for_column(t.column(2)).unwrap()];
        let mut fused = FusedAgg::new(coder, map, srcs);
        let mut stats = ExecStats::default();
        fused.absorb_morsel(0..n, &mut stats);
        let (_map, accs) = fused.into_accs(&[AggFunc::Sum]);
        match (&accs[0], &scalar) {
            (Acc::Sum { sum: f, any: fa }, Acc::Sum { sum: s, any: sa }) => {
                assert_eq!(fa, sa);
                assert_eq!(f.to_bits(), s.to_bits(), "bit-identical sums");
            }
            _ => unreachable!(),
        }
        // All rows share one code: the block collapsed to one RLE run.
        assert_eq!(stats.rle_runs, 1);
        assert_eq!(stats.vectorized_kernel_rows, n as u64);
    }

    #[test]
    fn scatter_path_matches_run_path() {
        // Alternating keys defeat run detection; both paths must agree with
        // the scalar oracle.
        let rows: Vec<(Option<&str>, Option<i64>, Option<f64>)> = (0..200)
            .map(|i| {
                (
                    Some(if i % 2 == 0 { "a" } else { "b" }),
                    Some((i % 3) as i64),
                    (i % 5 != 0).then_some(i as f64 * 0.25),
                )
            })
            .collect();
        let t = table(&rows);
        let n = t.num_rows();
        let space = DenseKeySpace::try_build(&t, &[0, 1], 1 << 20).unwrap();
        // Scalar oracle: first-appearance gid order, row-order updates.
        let mut oracle_map = DenseGroupMap::new(space.clone());
        let mut oracle: Vec<Acc> = Vec::new();
        for row in 0..n {
            let g = oracle_map.get_or_insert_row(&t, row);
            if g == oracle.len() {
                oracle.push(Acc::Sum {
                    sum: 0.0,
                    any: false,
                });
            }
            oracle[g].update_f64(t.column(2).get_f64(row));
        }
        let coder = BlockCoder::try_new(&t, &space).unwrap();
        let map = DenseGroupMap::new(space);
        let srcs = vec![LaneSrc::for_column(t.column(2)).unwrap()];
        let mut fused = FusedAgg::new(coder, map, srcs);
        let mut stats = ExecStats::default();
        fused.absorb_morsel(0..n, &mut stats);
        assert_eq!(stats.rle_runs, 0, "alternating keys take the scatter path");
        let (map, accs) = fused.into_accs(&[AggFunc::Sum]);
        assert_eq!(map.len(), oracle_map.len(), "same groups in same order");
        for g in 0..map.len() {
            match (&accs[g], &oracle[g]) {
                (Acc::Sum { sum: f, any: fa }, Acc::Sum { sum: s, any: sa }) => {
                    assert_eq!(fa, sa, "gid {g}");
                    assert_eq!(f.to_bits(), s.to_bits(), "gid {g}");
                }
                _ => unreachable!(),
            }
        }
    }
}
