//! Deterministic panic injection for fault-tolerance tests.
//!
//! Panic isolation (workers caught at the thread boundary, queries caught
//! at the engine boundary) is only trustworthy if tests can make real code
//! panic at realistic points. This module plants a process-global trigger
//! ticked from [`crate::ResourceGuard::charge`] — i.e. at every morsel
//! boundary of every scan — so an armed panic fires inside a genuine worker
//! hot loop, not in a synthetic closure.
//!
//! The trigger is process-global state: tests that arm it must serialize
//! against each other (run in their own integration-test binary, or hold a
//! common mutex) and disarm on every exit path. Disarmed, the cost on the
//! hot path is one relaxed atomic load per morsel.

use std::sync::atomic::{AtomicI64, Ordering};

/// Ticks remaining until the next injected panic; negative = disarmed.
static PANIC_AFTER: AtomicI64 = AtomicI64::new(-1);

/// Message carried by injected panics, so tests can assert the payload
/// round-trips into `WorkerPanicked { payload }`.
pub const CHAOS_PANIC_MSG: &str = "injected chaos panic";

/// Arm the trigger: the `ticks`-th subsequent [`tick`] call panics
/// (0 = the very next one). Overwrites any previous arming.
pub fn arm(ticks: u64) {
    PANIC_AFTER.store(ticks.min(i64::MAX as u64) as i64, Ordering::SeqCst);
}

/// Disarm the trigger. Idempotent; call from every test exit path.
pub fn disarm() {
    PANIC_AFTER.store(-1, Ordering::SeqCst);
}

/// Whether a panic is currently armed.
pub fn is_armed() -> bool {
    PANIC_AFTER.load(Ordering::SeqCst) >= 0
}

/// Count one trigger point; panics when the armed countdown reaches zero.
/// Called from `ResourceGuard::charge`, i.e. once per morsel.
#[inline]
pub fn tick() {
    if PANIC_AFTER.load(Ordering::Relaxed) < 0 {
        return;
    }
    // Slow path only while armed. fetch_sub hands exactly one thread the
    // zero; concurrent tickers drive the counter further negative, which
    // reads as disarmed.
    if PANIC_AFTER.fetch_sub(1, Ordering::SeqCst) == 0 {
        panic!("{CHAOS_PANIC_MSG}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Single test so arming never races another #[test] in this binary.
    #[test]
    fn arms_counts_down_and_disarms() {
        assert!(!is_armed());
        tick(); // disarmed: no-op
        arm(2);
        assert!(is_armed());
        tick();
        tick();
        let caught = std::panic::catch_unwind(tick);
        let payload = caught.unwrap_err();
        assert_eq!(
            payload.downcast_ref::<String>().map(String::as_str),
            Some(CHAOS_PANIC_MSG)
        );
        assert!(!is_armed(), "firing consumes the arming");
        tick(); // and stays disarmed
        disarm();
        assert!(!is_armed());
    }
}
