//! Resource guarding: row budgets and cooperative cancellation.
//!
//! A percentage query can explode quietly — a skewed join key turns the
//! `Fk ⋈ Fj` probe into a cross product, a high-cardinality BY list turns
//! the `Hpct` pivot into millions of groups — and the first symptom is the
//! allocator failing. [`ResourceGuard`] puts a ceiling in front of that: hot
//! loops charge the rows they scan and materialize against a shared budget
//! and bail out with a typed [`EngineError::BudgetExceeded`] (or
//! [`EngineError::Cancelled`]) long before memory does.
//!
//! The guard is a cheap clonable handle; all clones share one counter, so a
//! plan that fans out over several operators still observes a single global
//! budget. The default guard is unlimited and compiles down to a null check
//! in the hot path.

use crate::error::{EngineError, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How many loop iterations pass between cooperative cancellation checks in
/// operator hot loops. A power of two so the modulo folds to a mask.
pub const CANCEL_CHECK_INTERVAL: usize = 1024;

#[derive(Debug)]
struct GuardInner {
    /// Maximum rows (scanned + materialized) this guard admits.
    row_budget: u64,
    /// Rows charged so far, shared across clones.
    rows: AtomicU64,
    /// Cooperative cancellation flag.
    cancelled: AtomicBool,
    /// The guard this one was derived from via [`ResourceGuard::per_query`].
    /// Charges roll up the chain for metering (without budget enforcement
    /// there), and cancellation anywhere up the chain stops this guard too.
    parent: Option<Arc<GuardInner>>,
}

impl GuardInner {
    fn chain_cancelled(&self) -> bool {
        let mut cur = Some(self);
        while let Some(inner) = cur {
            if inner.cancelled.load(Ordering::Relaxed) {
                return true;
            }
            cur = inner.parent.as_deref();
        }
        false
    }
}

/// A shared handle enforcing a row budget and a cancellation flag over the
/// operators of one plan.
///
/// ```
/// use pa_engine::{EngineError, ResourceGuard};
///
/// let guard = ResourceGuard::with_row_budget(10);
/// assert!(guard.charge(8).is_ok());
/// let err = guard.clone().charge(5).unwrap_err(); // clones share the meter
/// assert!(matches!(err, EngineError::BudgetExceeded { budget: 10, .. }));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceGuard {
    inner: Option<Arc<GuardInner>>,
}

impl ResourceGuard {
    /// A guard that admits everything. `charge` and `check` are near-free.
    pub const fn unlimited() -> ResourceGuard {
        ResourceGuard { inner: None }
    }

    /// A guard admitting at most `rows` rows of work (scanned plus
    /// materialized) before operators return
    /// [`EngineError::BudgetExceeded`].
    pub fn with_row_budget(rows: u64) -> ResourceGuard {
        ResourceGuard {
            inner: Some(Arc::new(GuardInner {
                row_budget: rows,
                rows: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
                parent: None,
            })),
        }
    }

    /// Derive a child guard with the same budget but a fresh meter — the
    /// engine calls this once per top-level query, so the budget bounds each
    /// query rather than accumulating over the engine's lifetime. The child
    /// still rolls its charges up to this guard (so [`rows_charged`] on the
    /// attached handle meters total work) and observes [`cancel`] requested
    /// on it; cancelling the child affects only the child.
    ///
    /// [`rows_charged`]: ResourceGuard::rows_charged
    /// [`cancel`]: ResourceGuard::cancel
    pub fn per_query(&self) -> ResourceGuard {
        let Some(inner) = &self.inner else {
            return ResourceGuard::unlimited();
        };
        ResourceGuard {
            inner: Some(Arc::new(GuardInner {
                row_budget: inner.row_budget,
                rows: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
                parent: Some(Arc::clone(inner)),
            })),
        }
    }

    /// Whether this guard enforces anything at all.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// The configured row budget, if any.
    pub fn row_budget(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.row_budget)
    }

    /// Rows charged so far across all clones of this guard.
    pub fn rows_charged(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.rows.load(Ordering::Relaxed))
    }

    /// Request cooperative cancellation: every subsequent `charge`/`check`
    /// (on any clone) fails with [`EngineError::Cancelled`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether cancellation has been requested, on this guard or any guard
    /// it was derived from.
    pub fn is_cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.chain_cancelled())
    }

    /// Fail if cancellation was requested. Called periodically from loops
    /// whose row charges were prepaid in bulk.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(EngineError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Charge `rows` rows of work against the budget.
    ///
    /// Fails with [`EngineError::BudgetExceeded`] when the running total
    /// would pass the budget (the charge still registers, so every clone
    /// fails consistently afterwards) and with [`EngineError::Cancelled`]
    /// when cancellation was requested. The charge also rolls up to every
    /// ancestor guard for metering; only this guard's budget is enforced.
    pub fn charge(&self, rows: u64) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.chain_cancelled() {
            return Err(EngineError::Cancelled);
        }
        let mut ancestor = inner.parent.as_deref();
        while let Some(a) = ancestor {
            a.rows.fetch_add(rows, Ordering::Relaxed);
            ancestor = a.parent.as_deref();
        }
        let total = inner.rows.fetch_add(rows, Ordering::Relaxed) + rows;
        if total > inner.row_budget {
            return Err(EngineError::BudgetExceeded {
                budget: inner.row_budget,
                attempted: total,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let g = ResourceGuard::unlimited();
        assert!(g.is_unlimited());
        assert!(g.charge(u64::MAX).is_ok());
        assert!(g.check().is_ok());
        assert_eq!(g.rows_charged(), 0, "nothing metered");
        assert_eq!(g.row_budget(), None);
        g.cancel(); // no-op on the unlimited guard
        assert!(!g.is_cancelled());
        assert!(ResourceGuard::default().is_unlimited());
    }

    #[test]
    fn budget_exceeded_reports_numbers() {
        let g = ResourceGuard::with_row_budget(100);
        assert!(g.charge(100).is_ok(), "budget is inclusive");
        let err = g.charge(1).unwrap_err();
        match err {
            EngineError::BudgetExceeded { budget, attempted } => {
                assert_eq!(budget, 100);
                assert_eq!(attempted, 101);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn clones_share_the_meter() {
        let g = ResourceGuard::with_row_budget(10);
        let h = g.clone();
        g.charge(6).unwrap();
        assert_eq!(h.rows_charged(), 6);
        assert!(h.charge(6).is_err(), "clone sees the same running total");
    }

    #[test]
    fn per_query_guard_resets_the_meter_and_rolls_up() {
        let engine_guard = ResourceGuard::with_row_budget(10);
        // Two derived "queries", each within budget individually but over
        // it cumulatively: both must pass.
        for _ in 0..2 {
            let q = engine_guard.per_query();
            assert!(q.charge(8).is_ok());
        }
        // The attached handle still meters the total work.
        assert_eq!(engine_guard.rows_charged(), 16);
        // The parent's own budget is not enforced by child roll-ups: a
        // third small query still runs.
        assert!(engine_guard.per_query().charge(8).is_ok());
        // But each child enforces the budget for itself.
        let q = engine_guard.per_query();
        assert!(q.charge(8).is_ok());
        assert!(matches!(
            q.charge(8),
            Err(EngineError::BudgetExceeded { budget: 10, .. })
        ));
        // Deriving from the unlimited guard stays unlimited.
        assert!(ResourceGuard::unlimited().per_query().is_unlimited());
    }

    #[test]
    fn cancelling_the_parent_stops_derived_guards() {
        let engine_guard = ResourceGuard::with_row_budget(1000);
        let q = engine_guard.per_query();
        engine_guard.cancel();
        assert!(q.is_cancelled());
        assert!(matches!(q.charge(1), Err(EngineError::Cancelled)));
        assert!(matches!(q.check(), Err(EngineError::Cancelled)));
        // The reverse does not hold: a cancelled child leaves the parent
        // (and sibling queries) running.
        let parent = ResourceGuard::with_row_budget(1000);
        let child = parent.per_query();
        child.cancel();
        assert!(!parent.is_cancelled());
        assert!(parent.per_query().charge(1).is_ok());
    }

    #[test]
    fn cancellation_wins_over_budget() {
        let g = ResourceGuard::with_row_budget(1_000_000);
        let h = g.clone();
        h.cancel();
        assert!(g.is_cancelled());
        assert!(matches!(g.check(), Err(EngineError::Cancelled)));
        assert!(matches!(g.charge(1), Err(EngineError::Cancelled)));
    }
}
