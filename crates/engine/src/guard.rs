//! Resource guarding: row budgets, wall-clock deadlines, and cooperative
//! cancellation.
//!
//! A percentage query can explode quietly — a skewed join key turns the
//! `Fk ⋈ Fj` probe into a cross product, a high-cardinality BY list turns
//! the `Hpct` pivot into millions of groups — and the first symptom is the
//! allocator failing. [`ResourceGuard`] puts a ceiling in front of that: hot
//! loops charge the rows they scan and materialize against a shared budget
//! and bail out with a typed [`EngineError::BudgetExceeded`],
//! [`EngineError::DeadlineExceeded`], or [`EngineError::Cancelled`] long
//! before memory does.
//!
//! All three limits are observed at the same points — every
//! [`ResourceGuard::charge`] call, i.e. once per scan morsel — so a
//! deadline or cancellation lands within one morsel of being due, on every
//! worker thread, without any operator knowing deadlines exist. Time is
//! read through the injectable [`Clock`] so deadline tests are
//! deterministic.
//!
//! The guard is a cheap clonable handle; all clones share one counter, so a
//! plan that fans out over several operators still observes a single global
//! budget. The default guard is unlimited and compiles down to a null check
//! in the hot path.

use crate::clock::{Clock, SystemClock};
use crate::error::{EngineError, Result};
use pa_obs::{SpanHandle, Tracer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many loop iterations pass between cooperative cancellation checks in
/// operator hot loops. A power of two so the modulo folds to a mask.
pub const CANCEL_CHECK_INTERVAL: usize = 1024;

/// A wall-clock allowance paired with the clock that measures it. The
/// countdown starts when the deadline is attached to a guard (or when a
/// per-query guard is derived), not when the value is constructed.
#[derive(Debug, Clone)]
pub struct Deadline {
    allow: Duration,
    clock: Arc<dyn Clock>,
}

impl Deadline {
    /// An allowance measured on the real monotonic clock.
    pub fn new(allow: Duration) -> Deadline {
        Deadline {
            allow,
            clock: SystemClock::shared(),
        }
    }

    /// An allowance measured on an injected clock (deterministic tests).
    pub fn with_clock(allow: Duration, clock: Arc<dyn Clock>) -> Deadline {
        Deadline { allow, clock }
    }

    /// The configured allowance.
    pub fn allowance(&self) -> Duration {
        self.allow
    }
}

/// A deadline armed on a specific guard: allowance plus start time.
#[derive(Debug)]
struct DeadlineState {
    allow: Duration,
    start: Duration,
    clock: Arc<dyn Clock>,
}

impl DeadlineState {
    fn arm(d: &Deadline) -> DeadlineState {
        DeadlineState {
            allow: d.allow,
            start: d.clock.now(),
            clock: Arc::clone(&d.clock),
        }
    }

    /// `Some((elapsed_ms, limit_ms))` once the allowance is spent.
    fn exceeded(&self) -> Option<(u64, u64)> {
        let elapsed = self.clock.now().saturating_sub(self.start);
        (elapsed > self.allow)
            .then_some((elapsed.as_millis() as u64, self.allow.as_millis() as u64))
    }
}

#[derive(Debug)]
struct GuardInner {
    /// Maximum rows (scanned + materialized) this guard admits, if bounded.
    row_budget: Option<u64>,
    /// Rows charged so far, shared across clones.
    rows: AtomicU64,
    /// Cooperative cancellation flag.
    cancelled: AtomicBool,
    /// Wall-clock allowance, checked at every charge boundary. Enforced on
    /// this guard only; derived guards re-arm with a fresh start.
    deadline: Option<DeadlineState>,
    /// The guard this one was derived from via [`ResourceGuard::per_query`].
    /// Charges roll up the chain for metering (without budget enforcement
    /// there), and cancellation anywhere up the chain stops this guard too.
    parent: Option<Arc<GuardInner>>,
}

impl GuardInner {
    fn chain_cancelled(&self) -> bool {
        let mut cur = Some(self);
        while let Some(inner) = cur {
            if inner.cancelled.load(Ordering::Relaxed) {
                return true;
            }
            cur = inner.parent.as_deref();
        }
        false
    }

    fn deadline_check(&self) -> Result<()> {
        if let Some(dl) = &self.deadline {
            if let Some((elapsed_ms, limit_ms)) = dl.exceeded() {
                return Err(EngineError::DeadlineExceeded {
                    elapsed_ms,
                    limit_ms,
                });
            }
        }
        Ok(())
    }
}

/// A shared handle enforcing a row budget, a wall-clock deadline, and a
/// cancellation flag over the operators of one plan.
///
/// ```
/// use pa_engine::{EngineError, ResourceGuard};
///
/// let guard = ResourceGuard::with_row_budget(10);
/// assert!(guard.charge(8).is_ok());
/// let err = guard.clone().charge(5).unwrap_err(); // clones share the meter
/// assert!(matches!(err, EngineError::BudgetExceeded { budget: 10, .. }));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceGuard {
    inner: Option<Arc<GuardInner>>,
    /// Span tracer riding on the guard — the one handle every operator
    /// already receives. Disabled by default, so untraced queries pay one
    /// `Option` branch per span-open and nothing per row.
    tracer: Tracer,
}

impl ResourceGuard {
    /// A guard that admits everything. `charge` and `check` are near-free.
    pub const fn unlimited() -> ResourceGuard {
        ResourceGuard {
            inner: None,
            tracer: Tracer::disabled(),
        }
    }

    /// A guard admitting at most `rows` rows of work (scanned plus
    /// materialized) before operators return
    /// [`EngineError::BudgetExceeded`].
    pub fn with_row_budget(rows: u64) -> ResourceGuard {
        ResourceGuard::with_limits(Some(rows), None)
    }

    /// A guard enforcing only a wall-clock deadline, counted from now.
    ///
    /// ```
    /// use pa_engine::clock::TestClock;
    /// use pa_engine::{Deadline, EngineError, ResourceGuard};
    /// use std::sync::Arc;
    /// use std::time::Duration;
    ///
    /// let clock = Arc::new(TestClock::new());
    /// let guard = ResourceGuard::with_deadline(Deadline::with_clock(
    ///     Duration::from_millis(10),
    ///     clock.clone(),
    /// ));
    /// assert!(guard.charge(1).is_ok());
    /// clock.advance(Duration::from_millis(11));
    /// assert!(matches!(
    ///     guard.charge(1),
    ///     Err(EngineError::DeadlineExceeded { limit_ms: 10, .. })
    /// ));
    /// ```
    pub fn with_deadline(deadline: Deadline) -> ResourceGuard {
        ResourceGuard::with_limits(None, Some(deadline))
    }

    /// A guard with any combination of limits. Both `None` yields the
    /// unlimited guard.
    pub fn with_limits(row_budget: Option<u64>, deadline: Option<Deadline>) -> ResourceGuard {
        if row_budget.is_none() && deadline.is_none() {
            return ResourceGuard::unlimited();
        }
        ResourceGuard {
            inner: Some(Arc::new(GuardInner {
                row_budget,
                rows: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
                deadline: deadline.as_ref().map(DeadlineState::arm),
                parent: None,
            })),
            tracer: Tracer::disabled(),
        }
    }

    /// A guard with no limits that still meters [`rows_charged`] and
    /// honours [`cancel`] — the executor's per-query accounting guard when
    /// the engine itself runs unlimited.
    ///
    /// [`rows_charged`]: ResourceGuard::rows_charged
    /// [`cancel`]: ResourceGuard::cancel
    pub fn counting() -> ResourceGuard {
        ResourceGuard {
            inner: Some(Arc::new(GuardInner {
                row_budget: None,
                rows: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            })),
            tracer: Tracer::disabled(),
        }
    }

    /// Derive a child guard with the same limits but a fresh meter and a
    /// freshly started deadline — the engine calls this once per top-level
    /// query, so the budget and allowance bound each query rather than
    /// accumulating over the engine's lifetime. The child still rolls its
    /// charges up to this guard (so [`rows_charged`] on the attached handle
    /// meters total work) and observes [`cancel`] requested on it;
    /// cancelling the child affects only the child.
    ///
    /// [`rows_charged`]: ResourceGuard::rows_charged
    /// [`cancel`]: ResourceGuard::cancel
    pub fn per_query(&self) -> ResourceGuard {
        self.per_query_with(None)
    }

    /// [`ResourceGuard::per_query`] with a deadline override: `Some`
    /// replaces (or adds) the allowance for this query only; `None`
    /// inherits the parent's allowance, restarted now. Works from the
    /// unlimited guard too, yielding a deadline-only child.
    pub fn per_query_with(&self, deadline: Option<Deadline>) -> ResourceGuard {
        self.per_query_limited(None, deadline)
    }

    /// The most general per-query derivation: either limit can be
    /// overridden for this query (`Some`) or inherited from this guard
    /// (`None`). The child keeps the roll-up/cancellation link to this
    /// guard when this guard is bounded; from the unlimited guard the
    /// overrides become the child's only limits.
    pub fn per_query_limited(
        &self,
        row_budget: Option<u64>,
        deadline: Option<Deadline>,
    ) -> ResourceGuard {
        let Some(inner) = &self.inner else {
            return ResourceGuard::with_limits(row_budget, deadline)
                .with_tracer(self.tracer.clone());
        };
        let armed = match &deadline {
            Some(d) => Some(DeadlineState::arm(d)),
            None => inner.deadline.as_ref().map(|dl| {
                DeadlineState::arm(&Deadline {
                    allow: dl.allow,
                    clock: Arc::clone(&dl.clock),
                })
            }),
        };
        ResourceGuard {
            inner: Some(Arc::new(GuardInner {
                row_budget: row_budget.or(inner.row_budget),
                rows: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
                deadline: armed,
                parent: Some(Arc::clone(inner)),
            })),
            tracer: self.tracer.clone(),
        }
    }

    /// Attach a [`Tracer`]: spans opened via [`ResourceGuard::span`] on
    /// this guard (and every guard derived from it) record to `tracer`.
    /// Limits, meters, and roll-up links are untouched.
    pub fn with_tracer(mut self, tracer: Tracer) -> ResourceGuard {
        self.tracer = tracer;
        self
    }

    /// The tracer riding on this guard (disabled unless one was attached).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Open an operator span on this guard's tracer. A no-op handle when
    /// no tracer is attached — operators call this unconditionally.
    pub fn span(&self, label: &'static str) -> SpanHandle {
        self.tracer.span(label)
    }

    /// Whether this guard enforces anything at all.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// The configured row budget, if any.
    pub fn row_budget(&self) -> Option<u64> {
        self.inner.as_ref().and_then(|i| i.row_budget)
    }

    /// The configured wall-clock allowance, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.inner
            .as_ref()
            .and_then(|i| i.deadline.as_ref().map(|d| d.allow))
    }

    /// Rows charged so far across all clones of this guard.
    pub fn rows_charged(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.rows.load(Ordering::Relaxed))
    }

    /// Request cooperative cancellation: every subsequent `charge`/`check`
    /// (on any clone) fails with [`EngineError::Cancelled`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether cancellation has been requested, on this guard or any guard
    /// it was derived from.
    pub fn is_cancelled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.chain_cancelled())
    }

    /// Fail if cancellation was requested or the deadline has passed.
    /// Called periodically from loops whose row charges were prepaid in
    /// bulk.
    pub fn check(&self) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.chain_cancelled() {
            return Err(EngineError::Cancelled);
        }
        inner.deadline_check()
    }

    /// Charge `rows` rows of work against the budget.
    ///
    /// Fails with [`EngineError::BudgetExceeded`] when the running total
    /// would pass the budget (the charge still registers, so every clone
    /// fails consistently afterwards), with [`EngineError::DeadlineExceeded`]
    /// once the wall-clock allowance is spent, and with
    /// [`EngineError::Cancelled`] when cancellation was requested. The
    /// charge also rolls up to every ancestor guard for metering; only this
    /// guard's limits are enforced.
    pub fn charge(&self, rows: u64) -> Result<()> {
        // Chaos trigger point: one relaxed load per morsel when disarmed.
        crate::chaos::tick();
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.chain_cancelled() {
            return Err(EngineError::Cancelled);
        }
        inner.deadline_check()?;
        let mut ancestor = inner.parent.as_deref();
        while let Some(a) = ancestor {
            a.rows.fetch_add(rows, Ordering::Relaxed);
            ancestor = a.parent.as_deref();
        }
        let total = inner.rows.fetch_add(rows, Ordering::Relaxed) + rows;
        if let Some(budget) = inner.row_budget {
            if total > budget {
                return Err(EngineError::BudgetExceeded {
                    budget,
                    attempted: total,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    #[test]
    fn unlimited_admits_everything() {
        let g = ResourceGuard::unlimited();
        assert!(g.is_unlimited());
        assert!(g.charge(u64::MAX).is_ok());
        assert!(g.check().is_ok());
        assert_eq!(g.rows_charged(), 0, "nothing metered");
        assert_eq!(g.row_budget(), None);
        assert_eq!(g.deadline(), None);
        g.cancel(); // no-op on the unlimited guard
        assert!(!g.is_cancelled());
        assert!(ResourceGuard::default().is_unlimited());
        assert!(ResourceGuard::with_limits(None, None).is_unlimited());
    }

    #[test]
    fn budget_exceeded_reports_numbers() {
        let g = ResourceGuard::with_row_budget(100);
        assert!(g.charge(100).is_ok(), "budget is inclusive");
        let err = g.charge(1).unwrap_err();
        match err {
            EngineError::BudgetExceeded { budget, attempted } => {
                assert_eq!(budget, 100);
                assert_eq!(attempted, 101);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn clones_share_the_meter() {
        let g = ResourceGuard::with_row_budget(10);
        let h = g.clone();
        g.charge(6).unwrap();
        assert_eq!(h.rows_charged(), 6);
        assert!(h.charge(6).is_err(), "clone sees the same running total");
    }

    #[test]
    fn per_query_guard_resets_the_meter_and_rolls_up() {
        let engine_guard = ResourceGuard::with_row_budget(10);
        // Two derived "queries", each within budget individually but over
        // it cumulatively: both must pass.
        for _ in 0..2 {
            let q = engine_guard.per_query();
            assert!(q.charge(8).is_ok());
        }
        // The attached handle still meters the total work.
        assert_eq!(engine_guard.rows_charged(), 16);
        // The parent's own budget is not enforced by child roll-ups: a
        // third small query still runs.
        assert!(engine_guard.per_query().charge(8).is_ok());
        // But each child enforces the budget for itself.
        let q = engine_guard.per_query();
        assert!(q.charge(8).is_ok());
        assert!(matches!(
            q.charge(8),
            Err(EngineError::BudgetExceeded { budget: 10, .. })
        ));
        // Deriving from the unlimited guard stays unlimited.
        assert!(ResourceGuard::unlimited().per_query().is_unlimited());
    }

    #[test]
    fn cancelling_the_parent_stops_derived_guards() {
        let engine_guard = ResourceGuard::with_row_budget(1000);
        let q = engine_guard.per_query();
        engine_guard.cancel();
        assert!(q.is_cancelled());
        assert!(matches!(q.charge(1), Err(EngineError::Cancelled)));
        assert!(matches!(q.check(), Err(EngineError::Cancelled)));
        // The reverse does not hold: a cancelled child leaves the parent
        // (and sibling queries) running.
        let parent = ResourceGuard::with_row_budget(1000);
        let child = parent.per_query();
        child.cancel();
        assert!(!parent.is_cancelled());
        assert!(parent.per_query().charge(1).is_ok());
    }

    #[test]
    fn cancellation_wins_over_budget() {
        let g = ResourceGuard::with_row_budget(1_000_000);
        let h = g.clone();
        h.cancel();
        assert!(g.is_cancelled());
        assert!(matches!(g.check(), Err(EngineError::Cancelled)));
        assert!(matches!(g.charge(1), Err(EngineError::Cancelled)));
    }

    #[test]
    fn deadline_trips_exactly_when_the_clock_passes_it() {
        let clock = Arc::new(TestClock::new());
        let g = ResourceGuard::with_deadline(Deadline::with_clock(
            Duration::from_millis(10),
            clock.clone(),
        ));
        assert_eq!(g.deadline(), Some(Duration::from_millis(10)));
        assert_eq!(g.row_budget(), None);
        clock.advance(Duration::from_millis(10));
        assert!(g.charge(1).is_ok(), "the allowance is inclusive");
        assert!(g.check().is_ok());
        clock.advance(Duration::from_millis(1));
        let err = g.charge(1).unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::DeadlineExceeded {
                    elapsed_ms: 11,
                    limit_ms: 10,
                }
            ),
            "{err:?}"
        );
        assert!(matches!(
            g.check(),
            Err(EngineError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn per_query_restarts_the_deadline() {
        let clock = Arc::new(TestClock::new());
        let engine_guard = ResourceGuard::with_limits(
            Some(1_000),
            Some(Deadline::with_clock(
                Duration::from_millis(5),
                clock.clone(),
            )),
        );
        clock.advance(Duration::from_millis(100)); // engine idles past its own allowance
        let q = engine_guard.per_query();
        assert!(
            q.charge(1).is_ok(),
            "fresh start: the query has 5ms from now"
        );
        clock.advance(Duration::from_millis(6));
        assert!(matches!(
            q.charge(1),
            Err(EngineError::DeadlineExceeded { .. })
        ));
        // The next query starts fresh again.
        assert!(engine_guard.per_query().charge(1).is_ok());
    }

    #[test]
    fn per_query_with_overrides_and_adds_deadlines() {
        let clock = Arc::new(TestClock::new());
        // Override on a budget-only guard: the child gains a deadline.
        let g = ResourceGuard::with_row_budget(100);
        let q = g.per_query_with(Some(Deadline::with_clock(
            Duration::from_millis(2),
            clock.clone(),
        )));
        assert_eq!(q.deadline(), Some(Duration::from_millis(2)));
        assert_eq!(q.row_budget(), Some(100), "budget still inherited");
        clock.advance(Duration::from_millis(3));
        assert!(matches!(
            q.charge(1),
            Err(EngineError::DeadlineExceeded { .. })
        ));
        // Override from the unlimited guard: deadline-only child, armed
        // from the moment of derivation.
        let q = ResourceGuard::unlimited().per_query_with(Some(Deadline::with_clock(
            Duration::from_millis(2),
            clock.clone(),
        )));
        assert!(!q.is_unlimited());
        assert!(q.check().is_ok(), "fresh start at derivation time");
        clock.advance(Duration::from_millis(3));
        assert!(matches!(
            q.check(),
            Err(EngineError::DeadlineExceeded { .. })
        ));
        // None override inherits the parent allowance.
        let g = ResourceGuard::with_deadline(Deadline::with_clock(
            Duration::from_millis(7),
            clock.clone(),
        ));
        assert_eq!(g.per_query().deadline(), Some(Duration::from_millis(7)));
    }

    #[test]
    fn per_query_limited_overrides_the_row_budget() {
        let engine_guard = ResourceGuard::with_row_budget(1_000);
        // Tighter per-call budget wins for this query only.
        let q = engine_guard.per_query_limited(Some(5), None);
        assert_eq!(q.row_budget(), Some(5));
        assert!(q.charge(5).is_ok());
        assert!(matches!(
            q.charge(1),
            Err(EngineError::BudgetExceeded { budget: 5, .. })
        ));
        // The roll-up link to the engine guard is preserved.
        assert_eq!(engine_guard.rows_charged(), 6);
        // And the engine guard's own limits are untouched for later queries.
        assert!(engine_guard.per_query().charge(900).is_ok());
        // From the unlimited guard, the overrides are the only limits.
        let q = ResourceGuard::unlimited().per_query_limited(Some(2), None);
        assert_eq!(q.row_budget(), Some(2));
        assert!(ResourceGuard::unlimited()
            .per_query_limited(None, None)
            .is_unlimited());
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let clock = Arc::new(TestClock::new());
        let g = ResourceGuard::with_deadline(Deadline::with_clock(Duration::ZERO, clock.clone()));
        clock.advance(Duration::from_millis(1));
        g.cancel();
        assert!(matches!(g.charge(1), Err(EngineError::Cancelled)));
    }

    #[test]
    fn tracer_rides_along_per_query_derivation() {
        let clock = Arc::new(TestClock::with_auto_step(Duration::from_nanos(1)));
        let tracer = Tracer::enabled(clock);
        let root = tracer.span("query");
        let g = ResourceGuard::with_row_budget(100).with_tracer(tracer.clone());
        assert!(g.tracer().is_enabled());
        // Both the bounded and the unlimited derivation paths propagate it.
        let q = g.per_query();
        assert!(q.tracer().is_enabled());
        let u = ResourceGuard::unlimited()
            .with_tracer(tracer.clone())
            .per_query_limited(Some(5), None);
        assert!(u.tracer().is_enabled());
        q.span("aggregate").finish();
        root.finish();
        let report = tracer.take_report();
        assert_eq!(report.spans().len(), 2);
        assert_eq!(report.spans()[1].label, "aggregate");
        // Untraced guards open no-op spans.
        assert!(!ResourceGuard::unlimited().span("x").is_enabled());
    }

    #[test]
    fn real_clock_deadline_expires() {
        let g = ResourceGuard::with_deadline(Deadline::new(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            g.charge(1),
            Err(EngineError::DeadlineExceeded { .. })
        ));
    }
}
