//! DISTINCT over a column subset.
//!
//! Horizontal strategies start with `SELECT DISTINCT Dj+1..Dk FROM {F|FV}` to
//! discover the `N` result columns; the SPJ strategy's `F0` is
//! `SELECT DISTINCT D1..Dj`. First occurrence order is preserved, which keeps
//! generated column order deterministic for a given input.

use crate::error::{EngineError, Result};
use crate::keymap::RowKeyMap;
use crate::stats::ExecStats;
use pa_storage::{Table, Value};

/// Distinct value combinations of `cols`, as a table with those columns.
pub fn distinct(input: &Table, cols: &[usize], stats: &mut ExecStats) -> Result<Table> {
    if cols.is_empty() {
        return Err(EngineError::InvalidOperator(
            "distinct needs at least one column".into(),
        ));
    }
    stats.statements += 1;
    let n = input.num_rows();
    stats.rows_scanned += n as u64;
    let mut map = RowKeyMap::new();
    let mut first_rows: Vec<usize> = Vec::new();
    for row in 0..n {
        let before = map.len();
        map.get_or_insert_row(input, cols, row, stats);
        if map.len() > before {
            first_rows.push(row);
        }
    }
    stats.rows_materialized += first_rows.len() as u64;
    let sub = input.take(&first_rows);
    // Keep only the requested columns, in the requested order.
    let fields: Vec<pa_storage::Field> = cols
        .iter()
        .map(|&c| input.schema().field_at(c).clone())
        .collect();
    let schema = pa_storage::Schema::new(fields)?.into_shared();
    let columns = cols
        .iter()
        .map(|&c| sub.column(c).clone())
        .collect::<Vec<_>>();
    Ok(Table::from_columns(schema, columns)?)
}

/// Distinct combinations as owned key tuples (the form code generation uses
/// to mint one result column per combination).
pub fn distinct_keys(
    input: &Table,
    cols: &[usize],
    stats: &mut ExecStats,
) -> Result<Vec<Vec<Value>>> {
    if cols.is_empty() {
        return Err(EngineError::InvalidOperator(
            "distinct needs at least one column".into(),
        ));
    }
    stats.statements += 1;
    let n = input.num_rows();
    stats.rows_scanned += n as u64;
    // The key map already holds exactly the distinct tuples in
    // first-occurrence order — no sub-table / per-row Vec<Value> detour.
    let mut map = RowKeyMap::new();
    for row in 0..n {
        map.get_or_insert_row(input, cols, row, stats);
    }
    stats.rows_materialized += map.len() as u64;
    Ok(map.into_keys())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("state", DataType::Str),
            ("city", DataType::Str),
            ("a", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for (s, c) in [
            ("TX", "Houston"),
            ("CA", "SF"),
            ("TX", "Houston"),
            ("TX", "Dallas"),
            ("CA", "SF"),
        ] {
            t.push_row(&[Value::str(s), Value::str(c), Value::Float(1.0)])
                .unwrap();
        }
        t
    }

    #[test]
    fn distinct_preserves_first_occurrence_order() {
        let t = table();
        let out = distinct(&t, &[0, 1], &mut ExecStats::default()).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.num_columns(), 2);
        let rows: Vec<Vec<Value>> = out.rows().collect();
        assert_eq!(rows[0], vec![Value::str("TX"), Value::str("Houston")]);
        assert_eq!(rows[1], vec![Value::str("CA"), Value::str("SF")]);
        assert_eq!(rows[2], vec![Value::str("TX"), Value::str("Dallas")]);
    }

    #[test]
    fn distinct_single_column() {
        let t = table();
        let out = distinct(&t, &[0], &mut ExecStats::default()).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn distinct_keys_returns_tuples() {
        let t = table();
        let keys = distinct_keys(&t, &[0], &mut ExecStats::default()).unwrap();
        assert_eq!(keys, vec![vec![Value::str("TX")], vec![Value::str("CA")]]);
    }

    #[test]
    fn null_is_one_distinct_value() {
        let schema = Schema::from_pairs(&[("k", DataType::Int)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::Null]).unwrap();
        t.push_row(&[Value::Int(1)]).unwrap();
        t.push_row(&[Value::Null]).unwrap();
        let out = distinct(&t, &[0], &mut ExecStats::default()).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn empty_cols_rejected() {
        assert!(distinct(&table(), &[], &mut ExecStats::default()).is_err());
    }
}
