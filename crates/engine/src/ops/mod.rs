//! Physical operators.

pub mod acc;
pub mod aggregate;
pub mod distinct;
pub mod filter;
pub mod insert;
pub mod join;
pub mod partial;
pub mod project;
pub mod sort;
pub mod update;
pub mod window;
