//! UPDATE .. FROM — in-place materialization via a join.
//!
//! Implements the paper's second `FV` strategy:
//!
//! ```sql
//! UPDATE Fk SET A = CASE WHEN Fj.A <> 0 THEN Fk.A/Fj.A ELSE NULL END
//! WHERE Fk.D1 = Fj.D1 .. Fk.Dj = Fj.Dj;  /* FV = Fk */
//! ```
//!
//! Every target row is processed individually: probe the source, evaluate
//! the SET expressions over the spliced row, write a before/after image to
//! the WAL, then mutate in place. The per-row log records and random writes
//! are the mechanism behind Table 4's "UPDATE takes 80% of the time when FV
//! is comparable to F".

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::stats::ExecStats;
use pa_storage::{Catalog, HashIndex, Table, Value};

/// One `SET target_col = expr` clause. The expression addresses the spliced
/// row: target columns first, then source columns (see [`Expr::eval2`]).
#[derive(Debug, Clone)]
pub struct SetClause {
    /// Column of the target table to overwrite.
    pub target_col: usize,
    /// Replacement expression over the spliced (target ++ source) row.
    pub expr: Expr,
}

/// Update table `target_name` in place, joining each row against `source`
/// on the given key columns. Rows with no source match are left untouched
/// (SQL UPDATE..FROM semantics). Returns the number of rows updated.
#[allow(clippy::too_many_arguments)]
pub fn update_from(
    catalog: &Catalog,
    target_name: &str,
    target_keys: &[usize],
    source: &Table,
    source_keys: &[usize],
    source_index: Option<&HashIndex>,
    sets: &[SetClause],
    stats: &mut ExecStats,
) -> Result<u64> {
    if target_keys.len() != source_keys.len() || target_keys.is_empty() {
        return Err(EngineError::InvalidOperator(
            "update join key arity mismatch".into(),
        ));
    }
    if sets.is_empty() {
        return Err(EngineError::InvalidOperator("update without SET".into()));
    }
    if let Some(idx) = source_index {
        if idx.key_cols() != source_keys {
            return Err(EngineError::InvalidOperator(
                "provided index does not cover the update join keys".into(),
            ));
        }
    }
    stats.statements += 1;
    let wal_before = catalog.wal_stats();

    let shared = catalog.table(target_name)?;
    let mut target = shared.write();
    for &k in target_keys {
        if k >= target.num_columns() {
            return Err(EngineError::InvalidOperator(format!(
                "target key column {k} out of range"
            )));
        }
    }
    for s in sets {
        if s.target_col >= target.num_columns() {
            return Err(EngineError::InvalidOperator(format!(
                "set column {} out of range",
                s.target_col
            )));
        }
    }

    let built;
    let index: &HashIndex = match source_index {
        Some(idx) => idx,
        None => {
            built = HashIndex::build(source, source_keys)?;
            stats.hash_build_rows += source.num_rows() as u64;
            &built
        }
    };

    let n = target.num_rows();
    stats.rows_scanned += n as u64 + source.num_rows() as u64;
    let mut updated: u64 = 0;
    let mut key_buf: Vec<Value> = Vec::with_capacity(target_keys.len());
    let mut new_vals: Vec<Value> = Vec::with_capacity(sets.len());
    let set_cols: Vec<usize> = sets.iter().map(|s| s.target_col).collect();
    for row in 0..n {
        key_buf.clear();
        for &k in target_keys {
            key_buf.push(target.column(k).get(row));
        }
        stats.hash_probes += 1;
        let Some(src_row) = index.probe(source, &key_buf).next() else {
            continue;
        };
        // Evaluate all SET expressions against the pre-update row image.
        new_vals.clear();
        for s in sets {
            new_vals.push(s.expr.eval2(&target, row, source, src_row, stats)?);
        }
        // Per-row WAL record with before/after images of the touched columns.
        let before_img: Vec<Value> = sets
            .iter()
            .map(|s| target.column(s.target_col).get(row))
            .collect();
        catalog.with_wal_mutating(target_name, |wal| {
            wal.log_update(target_name, row, &set_cols, &before_img, &new_vals)
        })?;
        for (s, v) in sets.iter().zip(new_vals.drain(..)) {
            target.column_mut(s.target_col).set(row, v)?;
        }
        updated += 1;
    }
    stats.rows_updated += updated;
    let wal_after = catalog.wal_stats();
    stats.wal_records += wal_after.records - wal_before.records;
    stats.wal_bytes += wal_after.bytes_written - wal_before.bytes_written;
    // Release the target guard before the policy check: a due checkpoint
    // read-locks every table while fencing the WAL.
    drop(target);
    catalog.maybe_checkpoint();
    Ok(updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{DataType, Schema};

    fn setup() -> (Catalog, Table) {
        let cat = Catalog::new();
        let fk_schema = Schema::from_pairs(&[
            ("state", DataType::Str),
            ("city", DataType::Str),
            ("A", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut fk = Table::empty(fk_schema);
        for (s, c, a) in [
            ("CA", "LA", 23.0),
            ("CA", "SF", 83.0),
            ("TX", "Dallas", 85.0),
            ("TX", "Houston", 64.0),
            ("NV", "Reno", 9.0), // no match in Fj
        ] {
            fk.push_row(&[Value::str(s), Value::str(c), Value::Float(a)])
                .unwrap();
        }
        cat.create_table("Fk", fk).unwrap();

        let fj_schema = Schema::from_pairs(&[("state", DataType::Str), ("A", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut fj = Table::empty(fj_schema);
        fj.push_row(&[Value::str("CA"), Value::Float(106.0)])
            .unwrap();
        fj.push_row(&[Value::str("TX"), Value::Float(149.0)])
            .unwrap();
        (cat, fj)
    }

    /// SET A = Fk.A / Fj.A (safe division): col 2 is Fk.A, col 3+1=4 is Fj.A.
    fn division_set() -> Vec<SetClause> {
        vec![SetClause {
            target_col: 2,
            expr: Expr::Col(2).safe_div(Expr::Col(4)),
        }]
    }

    #[test]
    fn paper_update_division() {
        let (cat, fj) = setup();
        let mut st = ExecStats::default();
        let n = update_from(&cat, "Fk", &[0], &fj, &[0], None, &division_set(), &mut st).unwrap();
        assert_eq!(n, 4, "NV row untouched");
        let fk = cat.table("Fk").unwrap();
        let t = fk.read().sorted_by(&[0, 1]);
        assert_eq!(t.get(0, 2), Value::Float(23.0 / 106.0)); // CA LA
        assert_eq!(t.get(1, 2), Value::Float(83.0 / 106.0)); // CA SF
        assert_eq!(t.get(2, 2), Value::Float(9.0), "unmatched row keeps value");
        assert_eq!(st.rows_updated, 4);
    }

    #[test]
    fn logs_one_wal_record_per_updated_row() {
        let (cat, fj) = setup();
        let mut st = ExecStats::default();
        update_from(&cat, "Fk", &[0], &fj, &[0], None, &division_set(), &mut st).unwrap();
        assert_eq!(st.wal_records, 4);
        assert!(st.wal_bytes > 0);
    }

    #[test]
    fn zero_total_divides_to_null() {
        let (cat, _) = setup();
        let fj_schema = Schema::from_pairs(&[("state", DataType::Str), ("A", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut fj = Table::empty(fj_schema);
        fj.push_row(&[Value::str("CA"), Value::Float(0.0)]).unwrap();
        let mut st = ExecStats::default();
        update_from(&cat, "Fk", &[0], &fj, &[0], None, &division_set(), &mut st).unwrap();
        let fk = cat.table("Fk").unwrap();
        let t = fk.read().sorted_by(&[0, 1]);
        assert_eq!(t.get(0, 2), Value::Null, "division by zero is NULL");
    }

    #[test]
    fn prebuilt_index_accepted_wrong_index_rejected() {
        let (cat, fj) = setup();
        let idx = HashIndex::build(&fj, &[0]).unwrap();
        let mut st = ExecStats::default();
        assert!(update_from(
            &cat,
            "Fk",
            &[0],
            &fj,
            &[0],
            Some(&idx),
            &division_set(),
            &mut st
        )
        .is_ok());
        let wrong = HashIndex::build(&fj, &[1]).unwrap();
        assert!(update_from(
            &cat,
            "Fk",
            &[0],
            &fj,
            &[0],
            Some(&wrong),
            &division_set(),
            &mut st
        )
        .is_err());
    }

    #[test]
    fn engine_logged_updates_replay_at_recovery() {
        // update_from logs only the SET-clause columns of the 3-column Fk;
        // recovery must land those images in the right column — not skip
        // them for not being full-row images.
        let (cat, fj) = setup();
        let mut st = ExecStats::default();
        update_from(&cat, "Fk", &[0], &fj, &[0], None, &division_set(), &mut st).unwrap();
        let live: Vec<Vec<Value>> = cat.table("Fk").unwrap().read().rows().collect();

        let image = cat.with_wal(|w| w.snapshot()).unwrap();
        let (recovered, report) =
            Catalog::recover(Box::new(pa_storage::log::MemLogStore::from_bytes(image))).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.records_replayed, 2 + 4, "create + rows + 4 updates");
        let rec: Vec<Vec<Value>> = recovered.table("Fk").unwrap().read().rows().collect();
        assert_eq!(rec, live, "recovered Fk matches the updated live table");
        recovered.check_integrity().unwrap();
    }

    #[test]
    fn validates_arguments() {
        let (cat, fj) = setup();
        let mut st = ExecStats::default();
        assert!(update_from(&cat, "Fk", &[], &fj, &[], None, &division_set(), &mut st).is_err());
        assert!(update_from(&cat, "Fk", &[0], &fj, &[0], None, &[], &mut st).is_err());
        assert!(update_from(
            &cat,
            "nope",
            &[0],
            &fj,
            &[0],
            None,
            &division_set(),
            &mut st
        )
        .is_err());
        let bad_set = vec![SetClause {
            target_col: 99,
            expr: Expr::lit(1),
        }];
        assert!(update_from(&cat, "Fk", &[0], &fj, &[0], None, &bad_set, &mut st).is_err());
    }
}
