//! Cross-shard partial aggregation.
//!
//! The morsel-parallel scan merges thread-local [`Acc`] partials inside
//! one process; this module extends the same [`PartialState`] protocol
//! across process (or machine) boundaries: each disjoint shard runs
//! [`partial_aggregate`] and ships the resulting [`ShardPartial`] as
//! versioned bytes; a coordinator deserializes, [merges](ShardPartial::merge)
//! in any order, and [finalizes](ShardPartial::finalize) into the same
//! table a single-pass aggregation of the union would produce — the
//! contract the shard-merge differential oracle proves for every
//! aggregate function (DESIGN.md §14).
//!
//! Group keys are carried as materialized [`Value`] rows (never as
//! shard-local dense codes, which are not comparable across shards), and
//! the finalized table is sorted by key in [`Value::total_cmp`] order so
//! the output does not depend on the merge order.

use crate::error::{EngineError, Result};
use crate::ops::acc::Acc;
use crate::ops::aggregate::{AggFunc, AggSpec, PBits};
use crate::stats::ExecStats;
use pa_storage::partial::{frame, put_f64, put_string, put_u32, put_value, unframe, Cursor};
use pa_storage::{Column, DataType, Field, FxHashMap, Schema, StorageError, Table, Value};

/// Frame tag distinguishing a whole shard partial from a single
/// accumulator frame (whose tags are small function discriminants).
const SHARD_FRAME_TAG: u8 = 200;

/// The partial result of aggregating one shard: group keys plus the
/// in-flight accumulator matrix, with enough schema to finalize anywhere.
#[derive(Debug, Clone)]
pub struct ShardPartial {
    key_fields: Vec<Field>,
    funcs: Vec<AggFunc>,
    agg_names: Vec<String>,
    agg_types: Vec<DataType>,
    /// Insertion-ordered groups; the index maps key → position.
    groups: Vec<(Vec<Value>, Vec<Acc>)>,
    index: FxHashMap<Vec<Value>, usize>,
}

/// Aggregate `input` grouped by `group_cols`, stopping *before* finalize:
/// the returned [`ShardPartial`] can merge with partials of disjoint
/// shards computed by other workers, processes, or replicas.
pub fn partial_aggregate(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    stats: &mut ExecStats,
) -> Result<ShardPartial> {
    for &c in group_cols {
        if c >= input.num_columns() {
            return Err(EngineError::InvalidOperator(format!(
                "group column {c} out of range"
            )));
        }
    }
    if aggs.is_empty() {
        return Err(EngineError::InvalidOperator(
            "aggregation requires at least one aggregate term".into(),
        ));
    }
    stats.statements += 1;
    stats.holistic_lanes += aggs.iter().filter(|s| s.func.is_holistic()).count() as u64;
    let schema = input.schema();
    let mut partial = ShardPartial {
        key_fields: group_cols
            .iter()
            .map(|&c| schema.field_at(c).clone())
            .collect(),
        funcs: aggs.iter().map(|s| s.func).collect(),
        agg_names: aggs.iter().map(|s| s.name.clone()).collect(),
        agg_types: aggs.iter().map(|s| s.output_type(schema)).collect(),
        groups: Vec::new(),
        index: FxHashMap::default(),
    };
    let n = input.num_rows();
    stats.rows_scanned += n as u64;
    for row in 0..n {
        let key: Vec<Value> = group_cols
            .iter()
            .map(|&c| input.column(c).get(row))
            .collect();
        let gid = match partial.index.get(&key) {
            Some(&g) => {
                stats.hash_probes += 1;
                g
            }
            None => {
                stats.hash_probes += 1;
                stats.hash_build_rows += 1;
                let g = partial.groups.len();
                let accs = aggs.iter().map(|s| Acc::new(s.func)).collect();
                partial.groups.push((key.clone(), accs));
                partial.index.insert(key, g);
                g
            }
        };
        for (i, spec) in aggs.iter().enumerate() {
            let v = spec.input.eval(input, row, stats)?;
            partial.groups[gid].1[i].update(&v)?;
        }
    }
    // Global aggregates produce one row even over an empty shard, so the
    // merged total keeps SQL's one-row-global-aggregate shape.
    if group_cols.is_empty() && partial.groups.is_empty() {
        let accs = aggs.iter().map(|s| Acc::new(s.func)).collect();
        partial.groups.push((Vec::new(), accs));
        partial.index.insert(Vec::new(), 0);
    }
    Ok(partial)
}

fn put_func(buf: &mut Vec<u8>, func: AggFunc) {
    let (tag, p) = match func {
        AggFunc::Sum => (1u8, 0.0),
        AggFunc::Count => (2, 0.0),
        AggFunc::CountDistinct => (3, 0.0),
        AggFunc::CountStar => (4, 0.0),
        AggFunc::Avg => (5, 0.0),
        AggFunc::Min => (6, 0.0),
        AggFunc::Max => (7, 0.0),
        AggFunc::Percentile(p) => (8, p.value()),
        AggFunc::ApproxPercentile(p) => (9, p.value()),
        AggFunc::ApproxCountDistinct => (10, 0.0),
    };
    buf.push(tag);
    put_f64(buf, p);
}

fn read_func(cur: &mut Cursor<'_>) -> Result<AggFunc> {
    let tag = cur.u8()?;
    let p = cur.f64()?;
    Ok(match tag {
        1 => AggFunc::Sum,
        2 => AggFunc::Count,
        3 => AggFunc::CountDistinct,
        4 => AggFunc::CountStar,
        5 => AggFunc::Avg,
        6 => AggFunc::Min,
        7 => AggFunc::Max,
        8 => AggFunc::Percentile(PBits::new(p)),
        9 => AggFunc::ApproxPercentile(PBits::new(p)),
        10 => AggFunc::ApproxCountDistinct,
        t => {
            return Err(EngineError::Storage(StorageError::PartialCodec(format!(
                "unknown aggregate function tag {t}"
            ))));
        }
    })
}

fn put_dtype(buf: &mut Vec<u8>, dt: DataType) {
    buf.push(match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
    });
}

fn read_dtype(cur: &mut Cursor<'_>) -> Result<DataType> {
    Ok(match cur.u8()? {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        t => {
            return Err(EngineError::Storage(StorageError::PartialCodec(format!(
                "unknown data type tag {t}"
            ))));
        }
    })
}

impl ShardPartial {
    /// Number of groups discovered on this shard so far.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The aggregate functions this partial carries, in lane order.
    pub fn funcs(&self) -> &[AggFunc] {
        &self.funcs
    }

    fn check_compatible(&self, other: &ShardPartial) -> Result<()> {
        if self.funcs != other.funcs
            || self.key_fields != other.key_fields
            || self.agg_names != other.agg_names
        {
            return Err(EngineError::InvalidOperator(format!(
                "cannot merge shard partials with different shapes: \
                 {:?}/{:?} vs {:?}/{:?}",
                self.key_fields, self.funcs, other.key_fields, other.funcs
            )));
        }
        Ok(())
    }

    /// Fold another shard's partial into this one. Order-insensitive for
    /// every exact aggregate and HLL; t-digest lanes are deterministic
    /// for a fixed merge order (DESIGN.md §14).
    pub fn merge(&mut self, other: ShardPartial) -> Result<()> {
        self.check_compatible(&other)?;
        for (key, accs) in other.groups {
            match self.index.get(&key) {
                Some(&gid) => {
                    for (mine, theirs) in self.groups[gid].1.iter_mut().zip(accs) {
                        mine.merge(theirs)?;
                    }
                }
                None => {
                    let gid = self.groups.len();
                    self.groups.push((key.clone(), accs));
                    self.index.insert(key, gid);
                }
            }
        }
        Ok(())
    }

    /// Canonical byte form: groups sorted by key, every accumulator in
    /// its own CRC-framed partial, the whole wrapped in one outer frame.
    pub fn serialize(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u32(&mut payload, self.key_fields.len() as u32);
        for f in &self.key_fields {
            put_string(&mut payload, &f.name);
            put_dtype(&mut payload, f.dtype);
        }
        put_u32(&mut payload, self.funcs.len() as u32);
        for ((func, name), dt) in self.funcs.iter().zip(&self.agg_names).zip(&self.agg_types) {
            put_func(&mut payload, *func);
            put_string(&mut payload, name);
            put_dtype(&mut payload, *dt);
        }
        let mut order: Vec<usize> = (0..self.groups.len()).collect();
        order.sort_by(|&a, &b| {
            let (ka, kb) = (&self.groups[a].0, &self.groups[b].0);
            ka.iter()
                .zip(kb)
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        put_u32(&mut payload, self.groups.len() as u32);
        for gid in order {
            let (key, accs) = &self.groups[gid];
            for v in key {
                put_value(&mut payload, v);
            }
            for acc in accs {
                let bytes = acc.serialize();
                put_u32(&mut payload, bytes.len() as u32);
                payload.extend_from_slice(&bytes);
            }
        }
        frame(SHARD_FRAME_TAG, &payload)
    }

    /// Decode a frame produced by [`ShardPartial::serialize`]. Any
    /// corruption — outer frame or any inner accumulator frame — is a
    /// typed error, never a panic.
    pub fn deserialize(bytes: &[u8]) -> Result<ShardPartial> {
        let (tag, payload) = unframe(bytes)?;
        if tag != SHARD_FRAME_TAG {
            return Err(EngineError::Storage(StorageError::PartialCodec(format!(
                "expected a shard-partial frame (tag {SHARD_FRAME_TAG}), got tag {tag}"
            ))));
        }
        let mut cur = Cursor::new(payload);
        let n_keys = cur.u32()? as usize;
        let mut key_fields = Vec::with_capacity(n_keys.min(64));
        for _ in 0..n_keys {
            let name = cur.string()?;
            let dtype = read_dtype(&mut cur)?;
            key_fields.push(Field::new(name, dtype));
        }
        let n_aggs = cur.u32()? as usize;
        let mut funcs = Vec::with_capacity(n_aggs.min(64));
        let mut agg_names = Vec::with_capacity(n_aggs.min(64));
        let mut agg_types = Vec::with_capacity(n_aggs.min(64));
        for _ in 0..n_aggs {
            funcs.push(read_func(&mut cur)?);
            agg_names.push(cur.string()?);
            agg_types.push(read_dtype(&mut cur)?);
        }
        if n_aggs == 0 {
            return Err(EngineError::Storage(StorageError::PartialCodec(
                "shard partial declares zero aggregate lanes".into(),
            )));
        }
        let n_groups = cur.u32()? as usize;
        let mut groups = Vec::with_capacity(n_groups.min(1 << 16));
        let mut index = FxHashMap::default();
        for _ in 0..n_groups {
            let mut key = Vec::with_capacity(n_keys);
            for _ in 0..n_keys {
                key.push(cur.value()?);
            }
            let mut accs = Vec::with_capacity(n_aggs);
            for (i, func) in funcs.iter().enumerate() {
                let len = cur.u32()? as usize;
                let acc = Acc::deserialize(cur.take(len)?)?;
                if acc.func() != *func {
                    return Err(EngineError::Storage(StorageError::PartialCodec(format!(
                        "lane {i} carries {:?}, header declares {func:?}",
                        acc.func()
                    ))));
                }
                accs.push(acc);
            }
            index.insert(key.clone(), groups.len());
            groups.push((key, accs));
        }
        cur.finish()?;
        Ok(ShardPartial {
            key_fields,
            funcs,
            agg_names,
            agg_types,
            groups,
            index,
        })
    }

    /// Finalize into a result table sorted by group key — the same rows a
    /// single-pass aggregation over the shards' union produces (sorted on
    /// the keys), independent of merge order.
    pub fn finalize(mut self, stats: &mut ExecStats) -> Result<Table> {
        self.groups.sort_by(|(ka, _), (kb, _)| {
            ka.iter()
                .zip(kb)
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut fields = self.key_fields.clone();
        for (name, dt) in self.agg_names.iter().zip(&self.agg_types) {
            fields.push(Field::new(name.clone(), *dt));
        }
        let schema = Schema::new(fields)?.into_shared();
        let mut columns: Vec<Column> = Vec::with_capacity(self.key_fields.len() + self.funcs.len());
        for (k, f) in self.key_fields.iter().enumerate() {
            let mut col = Column::new(f.dtype);
            for (key, _) in &self.groups {
                col.push(key[k].clone())?;
            }
            columns.push(col);
        }
        for (i, dt) in self.agg_types.iter().enumerate() {
            let mut col = Column::new(*dt);
            for (_, accs) in &self.groups {
                if accs[i].spilled() {
                    stats.sketch_spills += 1;
                }
                col.push(accs[i].finish())?;
            }
            columns.push(col);
        }
        stats.rows_materialized += self.groups.len() as u64;
        Ok(Table::from_columns(schema, columns)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops::aggregate::hash_aggregate;

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[("state", DataType::Str), ("a", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        for (s, a) in [
            ("CA", 13.0),
            ("CA", 3.0),
            ("TX", 5.0),
            ("TX", 35.0),
            ("CA", 67.0),
            ("TX", 10.0),
        ] {
            t.push_row(&[Value::str(s), Value::Float(a)]).unwrap();
        }
        t
    }

    fn slice(t: &Table, rows: std::ops::Range<usize>) -> Table {
        t.take(&rows.collect::<Vec<_>>())
    }

    fn specs(t: &Table) -> Vec<AggSpec> {
        let a = Expr::col(t.schema(), "a").unwrap();
        vec![
            AggSpec::new(AggFunc::Sum, a.clone(), "s"),
            AggSpec::new(AggFunc::Percentile(PBits::new(0.5)), a.clone(), "med"),
            AggSpec::new(AggFunc::ApproxCountDistinct, a, "adx"),
        ]
    }

    #[test]
    fn two_shard_merge_equals_single_pass() {
        let t = sales();
        let sp = specs(&t);
        let mut st = ExecStats::default();
        let mut left = partial_aggregate(&slice(&t, 0..3), &[0], &sp, &mut st).unwrap();
        let right = partial_aggregate(&slice(&t, 3..6), &[0], &sp, &mut st).unwrap();
        left.merge(right).unwrap();
        let merged = left.finalize(&mut st).unwrap();
        let single = hash_aggregate(&t, &[0], &sp, &mut st)
            .unwrap()
            .sorted_by(&[0]);
        let a: Vec<Vec<Value>> = merged.rows().collect();
        let b: Vec<Vec<Value>> = single.rows().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shard_partial_round_trips_over_the_wire() {
        let t = sales();
        let sp = specs(&t);
        let mut st = ExecStats::default();
        let p = partial_aggregate(&t, &[0], &sp, &mut st).unwrap();
        let bytes = p.serialize();
        let back = ShardPartial::deserialize(&bytes).unwrap();
        assert_eq!(back.serialize(), bytes, "canonical bytes");
        let a: Vec<Vec<Value>> = p.clone().finalize(&mut st).unwrap().rows().collect();
        let b: Vec<Vec<Value>> = back.finalize(&mut st).unwrap().rows().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_shard_partial_is_a_typed_error() {
        let t = sales();
        let sp = specs(&t);
        let p = partial_aggregate(&t, &[0], &sp, &mut ExecStats::default()).unwrap();
        let bytes = p.serialize();
        for bit in (0..bytes.len() * 8).step_by(61) {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let err = ShardPartial::deserialize(&corrupt).unwrap_err();
            assert!(
                matches!(err, EngineError::Storage(StorageError::PartialCodec(_))),
                "bit {bit}: {err}"
            );
        }
        for cut in 0..bytes.len() {
            assert!(ShardPartial::deserialize(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn mismatched_partials_refuse_to_merge() {
        let t = sales();
        let a = Expr::col(t.schema(), "a").unwrap();
        let mut st = ExecStats::default();
        let mut p1 = partial_aggregate(
            &t,
            &[0],
            &[AggSpec::new(AggFunc::Sum, a.clone(), "s")],
            &mut st,
        )
        .unwrap();
        let p2 =
            partial_aggregate(&t, &[0], &[AggSpec::new(AggFunc::Avg, a, "s")], &mut st).unwrap();
        assert!(p1.merge(p2).is_err());
    }

    #[test]
    fn global_aggregate_over_empty_shards_still_yields_one_row() {
        let t = sales();
        let sp = specs(&t);
        let mut st = ExecStats::default();
        let empty = Table::empty(t.schema().clone());
        let mut p = partial_aggregate(&empty, &[], &sp, &mut st).unwrap();
        let q = partial_aggregate(&empty, &[], &sp, &mut st).unwrap();
        p.merge(q).unwrap();
        let out = p.finalize(&mut st).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.get(0, 0), Value::Null, "sum of nothing");
    }
}
