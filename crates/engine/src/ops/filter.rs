//! Selection: keep rows whose predicate is TRUE.
//!
//! SQL WHERE semantics: NULL predicates drop the row (only TRUE keeps it).
//! This is the `WHERE Dh = vhI and .. and Dk = vkI` of the SPJ strategy.

use crate::error::Result;
use crate::expr::Expr;
use crate::stats::ExecStats;
use pa_storage::{Table, Value};

/// Filter `input` by `predicate`.
pub fn filter(input: &Table, predicate: &Expr, stats: &mut ExecStats) -> Result<Table> {
    stats.statements += 1;
    let n = input.num_rows();
    stats.rows_scanned += n as u64;
    let mut keep = Vec::new();
    for row in 0..n {
        let truthy = match predicate.eval(input, row, stats)? {
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
            _ => false,
        };
        if truthy {
            keep.push(row);
        }
    }
    stats.rows_materialized += keep.len() as u64;
    Ok(input.take(&keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("d", DataType::Str), ("a", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::str("x"), Value::Float(10.0)]).unwrap();
        t.push_row(&[Value::str("y"), Value::Float(4.0)]).unwrap();
        t.push_row(&[Value::Null, Value::Float(7.0)]).unwrap();
        t
    }

    #[test]
    fn keeps_only_true_rows() {
        let t = table();
        let p = Expr::col(t.schema(), "d").unwrap().eq(Expr::lit("x"));
        let out = filter(&t, &p, &mut ExecStats::default()).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.get(0, 1), Value::Float(10.0));
    }

    #[test]
    fn null_predicate_drops_row() {
        let t = table();
        // d = 'x' is NULL for the NULL row: dropped, not kept.
        let p = Expr::col(t.schema(), "d").unwrap().ne(Expr::lit("x"));
        let out = filter(&t, &p, &mut ExecStats::default()).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.get(0, 0), Value::str("y"));
    }
}
