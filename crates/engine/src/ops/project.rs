//! Projection: evaluate expressions row-by-row into a new table.

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::stats::ExecStats;
use pa_storage::{DataType, Field, Schema, Table};

/// One projected output column.
#[derive(Debug, Clone)]
pub struct ProjSpec {
    /// Expression to evaluate.
    pub expr: Expr,
    /// Output column name.
    pub name: String,
    /// Output type. `None` infers from the expression (falling back to Float
    /// for NULL-only expressions).
    pub dtype: Option<DataType>,
}

impl ProjSpec {
    /// Projection with inferred type.
    pub fn new(expr: Expr, name: impl Into<String>) -> ProjSpec {
        ProjSpec {
            expr,
            name: name.into(),
            dtype: None,
        }
    }

    /// Projection with an explicit type.
    pub fn typed(expr: Expr, name: impl Into<String>, dtype: DataType) -> ProjSpec {
        ProjSpec {
            expr,
            name: name.into(),
            dtype: Some(dtype),
        }
    }

    /// Pass a column through unchanged.
    pub fn passthrough(input: &Schema, name: &str) -> Result<ProjSpec> {
        let idx = input.index_of(name)?;
        Ok(ProjSpec {
            expr: Expr::Col(idx),
            name: name.to_string(),
            dtype: Some(input.field_at(idx).dtype),
        })
    }
}

/// Evaluate `specs` over every row of `input`.
pub fn project(input: &Table, specs: &[ProjSpec], stats: &mut ExecStats) -> Result<Table> {
    if specs.is_empty() {
        return Err(EngineError::InvalidOperator(
            "projection needs at least one column".into(),
        ));
    }
    stats.statements += 1;
    let fields: Vec<Field> = specs
        .iter()
        .map(|s| {
            Field::new(
                s.name.clone(),
                s.dtype
                    .or_else(|| s.expr.output_type(input.schema()))
                    .unwrap_or(DataType::Float),
            )
        })
        .collect();
    let schema = Schema::new(fields)?.into_shared();
    let n = input.num_rows();
    stats.rows_scanned += n as u64;
    let mut out = Table::with_capacity(schema, n);
    let mut row_buf = Vec::with_capacity(specs.len());
    for row in 0..n {
        row_buf.clear();
        for spec in specs {
            row_buf.push(spec.expr.eval(input, row, stats)?);
        }
        out.push_row(&row_buf)?;
    }
    stats.rows_materialized += n as u64;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{Schema, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("d", DataType::Str), ("a", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::str("x"), Value::Float(10.0)]).unwrap();
        t.push_row(&[Value::str("y"), Value::Float(4.0)]).unwrap();
        t
    }

    #[test]
    fn projects_expressions_with_inferred_types() {
        let t = table();
        let s = t.schema();
        let specs = vec![
            ProjSpec::passthrough(s, "d").unwrap(),
            ProjSpec::new(Expr::col(s, "a").unwrap().mul(Expr::lit(2.0)), "double_a"),
        ];
        let mut st = ExecStats::default();
        let out = project(&t, &specs, &mut st).unwrap();
        assert_eq!(out.schema().field_at(1).dtype, DataType::Float);
        assert_eq!(out.get(0, 1), Value::Float(20.0));
        assert_eq!(out.get(1, 0), Value::str("y"));
        assert_eq!(st.rows_materialized, 2);
    }

    #[test]
    fn explicit_type_wins() {
        let t = table();
        let specs = vec![ProjSpec::typed(Expr::lit(1), "one", DataType::Float)];
        let out = project(&t, &specs, &mut ExecStats::default()).unwrap();
        assert_eq!(out.schema().field_at(0).dtype, DataType::Float);
        assert_eq!(out.get(0, 0), Value::Float(1.0));
    }

    #[test]
    fn empty_spec_list_rejected() {
        let t = table();
        assert!(project(&t, &[], &mut ExecStats::default()).is_err());
    }
}
