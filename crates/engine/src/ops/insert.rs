//! INSERT..SELECT and CREATE TABLE AS — the bulk materialization path.
//!
//! Appends whole column batches and writes **one** WAL record per batch.
//! Contrast with [`crate::ops::update`], which logs per row; the difference
//! is the INSERT-vs-UPDATE asymmetry of SIGMOD Table 4.

use crate::error::Result;
use crate::stats::ExecStats;
use pa_storage::{Catalog, SharedTable, Table};

fn absorb_wal_delta(catalog: &Catalog, before: pa_storage::WalStats, stats: &mut ExecStats) {
    let after = catalog.wal_stats();
    stats.wal_records += after.records - before.records;
    stats.wal_bytes += after.bytes_written - before.bytes_written;
}

/// Register `rows` as (possibly replacing) table `name`, logging the batch.
pub fn create_table_as(
    catalog: &Catalog,
    name: &str,
    rows: Table,
    stats: &mut ExecStats,
) -> Result<SharedTable> {
    stats.statements += 1;
    let before = catalog.wal_stats();
    let n = rows.num_rows() as u64;
    // The catalog logs the create (schema + contents batch) itself, so
    // replay sees records in apply order.
    let shared = catalog.create_or_replace_table(name, rows);
    absorb_wal_delta(catalog, before, stats);
    stats.rows_materialized += n;
    // Policy check runs outside any table guard (a due checkpoint takes
    // the WAL lock and snapshots every table).
    catalog.maybe_checkpoint();
    Ok(shared)
}

/// Append every row of `rows` to existing table `name` (INSERT..SELECT).
pub fn insert_into(
    catalog: &Catalog,
    name: &str,
    rows: &Table,
    stats: &mut ExecStats,
) -> Result<()> {
    stats.statements += 1;
    let before = catalog.wal_stats();
    let shared = catalog.table(name)?;
    {
        let mut target = shared.write();
        let start = target.num_rows();
        target.extend_from(rows)?;
        catalog.with_wal_mutating(name, |wal| wal.log_bulk_insert(name, &target, start))?;
    }
    absorb_wal_delta(catalog, before, stats);
    stats.rows_materialized += rows.num_rows() as u64;
    // The target guard is released; a due checkpoint can fence and cut now.
    catalog.maybe_checkpoint();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{DataType, Schema, Value};

    fn rows(n: usize) -> Table {
        let schema = Schema::from_pairs(&[("d", DataType::Int), ("a", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        for i in 0..n {
            t.push_row(&[Value::Int(i as i64), Value::Float(i as f64)])
                .unwrap();
        }
        t
    }

    #[test]
    fn create_table_as_logs_one_record() {
        let cat = Catalog::new();
        let mut st = ExecStats::default();
        create_table_as(&cat, "Fk", rows(100), &mut st).unwrap();
        assert_eq!(cat.table("Fk").unwrap().read().num_rows(), 100);
        // One DDL record + one bulk-insert record.
        assert_eq!(st.wal_records, 2);
        assert_eq!(st.rows_materialized, 100);
    }

    #[test]
    fn insert_into_appends_and_logs_batch() {
        let cat = Catalog::new();
        let mut st = ExecStats::default();
        create_table_as(&cat, "Fk", rows(10), &mut st).unwrap();
        let wal_before = st.wal_records;
        insert_into(&cat, "Fk", &rows(5), &mut st).unwrap();
        assert_eq!(cat.table("Fk").unwrap().read().num_rows(), 15);
        assert_eq!(st.wal_records - wal_before, 1, "one record per batch");
    }

    #[test]
    fn insert_into_missing_table_errors() {
        let cat = Catalog::new();
        assert!(insert_into(&cat, "nope", &rows(1), &mut ExecStats::default()).is_err());
    }

    #[test]
    fn replace_resets_contents() {
        let cat = Catalog::new();
        let mut st = ExecStats::default();
        create_table_as(&cat, "T", rows(10), &mut st).unwrap();
        create_table_as(&cat, "T", rows(3), &mut st).unwrap();
        assert_eq!(cat.table("T").unwrap().read().num_rows(), 3);
    }
}
