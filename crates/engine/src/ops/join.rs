//! Hash joins: inner and left outer.
//!
//! Percentage queries join `Fk` (probe side) with `Fj` (build side) on the
//! common subkey `D1..Dj` to perform the division; the DMKD SPJ strategy
//! assembles `FH` with a chain of **left outer** joins on `D1..Dj`. The
//! paper's "identical indexes on the common subkey" optimization maps to
//! passing a prebuilt [`HashIndex`] for the build side.

use crate::error::{EngineError, Result};
use crate::guard::ResourceGuard;
use crate::stats::ExecStats;
use pa_storage::{Field, HashIndex, Schema, Table, Value};

/// Output rows accumulated between guard charges in the probe loop — large
/// enough to amortize the atomic, small enough to catch a cross-product
/// blowup well before it is materialized.
const JOIN_CHARGE_BATCH: usize = 4096;

/// Join variants used by the strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Matched pairs only.
    Inner,
    /// Every left row; unmatched rows pad right columns with NULL.
    LeftOuter,
}

/// Hash-join `left` with `right` on equal key tuples.
///
/// Output columns are all of `left` followed by all of `right`; colliding
/// names from the right side get a `.r` suffix (further collisions `.r1`,
/// `.r2`, ...). When `right_index` is provided it must have been built on
/// `right` over exactly `right_keys` — this is the paper's subkey-index
/// optimization; otherwise a transient hash table is built (and accounted).
///
/// Join keys compare with grouping semantics (`NULL` matches `NULL`), which
/// is what the generated plans need: group keys came out of GROUP BY, so a
/// NULL dimension value is a legitimate group.
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    join_type: JoinType,
    right_index: Option<&HashIndex>,
    stats: &mut ExecStats,
) -> Result<Table> {
    hash_join_guarded(
        left,
        right,
        left_keys,
        right_keys,
        join_type,
        right_index,
        &ResourceGuard::unlimited(),
        stats,
    )
}

/// [`hash_join`] under a [`ResourceGuard`]: both input scans are charged up
/// front and output rows are charged in batches *during* the probe loop, so
/// a skewed key that degenerates into a cross product trips the budget
/// before the row-pair vectors grow unbounded.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_guarded(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    join_type: JoinType,
    right_index: Option<&HashIndex>,
    guard: &ResourceGuard,
    stats: &mut ExecStats,
) -> Result<Table> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(EngineError::InvalidOperator(format!(
            "join key arity mismatch: {} vs {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    for &k in left_keys {
        if k >= left.num_columns() {
            return Err(EngineError::InvalidOperator(format!(
                "left key column {k} out of range"
            )));
        }
    }
    for &k in right_keys {
        if k >= right.num_columns() {
            return Err(EngineError::InvalidOperator(format!(
                "right key column {k} out of range"
            )));
        }
    }
    if let Some(idx) = right_index {
        if idx.key_cols() != right_keys {
            return Err(EngineError::InvalidOperator(
                "provided index does not cover the join keys".into(),
            ));
        }
    }
    stats.statements += 1;
    let mut span = guard.span("join");

    // Build side.
    let built;
    let index: &HashIndex = match right_index {
        Some(idx) => idx,
        None => {
            built = HashIndex::build(right, right_keys)?;
            stats.hash_build_rows += right.num_rows() as u64;
            &built
        }
    };
    stats.rows_scanned += right.num_rows() as u64;

    // Probe side.
    let n = left.num_rows();
    stats.rows_scanned += n as u64;
    guard.charge((n + right.num_rows()) as u64)?;
    span.add_rows((n + right.num_rows()) as u64);
    span.add_morsels(1);
    let mut left_rows: Vec<usize> = Vec::with_capacity(n);
    let mut right_rows: Vec<Option<usize>> = Vec::with_capacity(n);
    let mut key_buf: Vec<Value> = Vec::with_capacity(left_keys.len());
    let mut charged = 0usize;
    for row in 0..n {
        key_buf.clear();
        for &k in left_keys {
            key_buf.push(left.column(k).get(row));
        }
        stats.hash_probes += 1;
        let mut matched = false;
        for r in index.probe(right, &key_buf) {
            matched = true;
            left_rows.push(row);
            right_rows.push(Some(r));
        }
        if !matched && join_type == JoinType::LeftOuter {
            left_rows.push(row);
            right_rows.push(None);
        }
        // Charge output growth mid-loop: this is where a skewed join blows up.
        let produced = left_rows.len() - charged;
        if produced >= JOIN_CHARGE_BATCH {
            guard.charge(produced as u64)?;
            span.add_rows(produced as u64);
            charged = left_rows.len();
        }
    }
    guard.charge((left_rows.len() - charged) as u64)?;
    span.add_rows((left_rows.len() - charged) as u64);

    // Assemble output schema with deduplicated names.
    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    for f in right.schema().fields() {
        let mut name = f.name.clone();
        if fields.iter().any(|g| g.name == name) {
            name = format!("{}.r", f.name);
            let mut k = 1;
            while fields.iter().any(|g| g.name == name) {
                name = format!("{}.r{k}", f.name);
                k += 1;
            }
        }
        fields.push(Field::new(name, f.dtype));
    }
    let schema = Schema::new(fields)?.into_shared();

    let mut columns = Vec::with_capacity(left.num_columns() + right.num_columns());
    for c in left.columns() {
        columns.push(c.take(&left_rows));
    }
    for c in right.columns() {
        columns.push(c.take_opt(&right_rows));
    }
    stats.rows_materialized += left_rows.len() as u64;
    Ok(Table::from_columns(schema, columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{DataType, Schema};

    fn fk() -> Table {
        let schema = Schema::from_pairs(&[
            ("state", DataType::Str),
            ("city", DataType::Str),
            ("A", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for (s, c, a) in [
            ("CA", "LA", 23.0),
            ("CA", "SF", 83.0),
            ("TX", "Dallas", 85.0),
            ("TX", "Houston", 64.0),
        ] {
            t.push_row(&[Value::str(s), Value::str(c), Value::Float(a)])
                .unwrap();
        }
        t
    }

    fn fj() -> Table {
        let schema = Schema::from_pairs(&[("state", DataType::Str), ("A", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::str("CA"), Value::Float(106.0)])
            .unwrap();
        t.push_row(&[Value::str("TX"), Value::Float(149.0)])
            .unwrap();
        t
    }

    #[test]
    fn inner_join_fk_with_fj() {
        let (fk, fj) = (fk(), fj());
        let mut st = ExecStats::default();
        let out = hash_join(&fk, &fj, &[0], &[0], JoinType::Inner, None, &mut st).unwrap();
        assert_eq!(out.num_rows(), 4);
        // Renamed right columns.
        assert_eq!(out.schema().index_of("state.r").unwrap(), 3);
        assert_eq!(out.schema().index_of("A.r").unwrap(), 4);
        let s = out.sorted_by(&[0, 1]);
        assert_eq!(s.get(0, 2), Value::Float(23.0));
        assert_eq!(s.get(0, 4), Value::Float(106.0));
        assert_eq!(st.hash_probes, 4);
    }

    #[test]
    fn left_outer_pads_unmatched_with_null() {
        let fk = fk();
        let schema = Schema::from_pairs(&[("state", DataType::Str), ("A", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut fj = Table::empty(schema);
        fj.push_row(&[Value::str("CA"), Value::Float(106.0)])
            .unwrap();
        let mut st = ExecStats::default();
        let inner = hash_join(&fk, &fj, &[0], &[0], JoinType::Inner, None, &mut st).unwrap();
        assert_eq!(inner.num_rows(), 2);
        let outer = hash_join(&fk, &fj, &[0], &[0], JoinType::LeftOuter, None, &mut st).unwrap();
        assert_eq!(outer.num_rows(), 4);
        let s = outer.sorted_by(&[0, 1]);
        assert_eq!(s.get(2, 0), Value::str("TX"));
        assert_eq!(s.get(2, 4), Value::Null, "unmatched right side is NULL");
    }

    #[test]
    fn prebuilt_index_is_used_and_validated() {
        let (fk, fj) = (fk(), fj());
        let idx = HashIndex::build(&fj, &[0]).unwrap();
        let mut st = ExecStats::default();
        let out = hash_join(&fk, &fj, &[0], &[0], JoinType::Inner, Some(&idx), &mut st).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(st.hash_build_rows, 0, "no transient build with an index");

        let wrong = HashIndex::build(&fj, &[1]).unwrap();
        assert!(hash_join(&fk, &fj, &[0], &[0], JoinType::Inner, Some(&wrong), &mut st).is_err());
    }

    #[test]
    fn one_to_many_duplicates_probe_rows() {
        let (fj, fk) = (fj(), fk());
        // Join small->large: each fj row matches two fk rows.
        let mut st = ExecStats::default();
        let out = hash_join(&fj, &fk, &[0], &[0], JoinType::Inner, None, &mut st).unwrap();
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn null_keys_join_with_grouping_semantics() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
            .unwrap()
            .into_shared();
        let mut a = Table::empty(schema.clone());
        a.push_row(&[Value::Null, Value::Int(1)]).unwrap();
        let mut b = Table::empty(schema);
        b.push_row(&[Value::Null, Value::Int(2)]).unwrap();
        let mut st = ExecStats::default();
        let out = hash_join(&a, &b, &[0], &[0], JoinType::Inner, None, &mut st).unwrap();
        assert_eq!(out.num_rows(), 1, "NULL group key matches NULL group key");
    }

    #[test]
    fn guard_catches_join_blowup_mid_probe() {
        // 300 × 300 rows all sharing one key: a 90 000-row cross product.
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        for i in 0..300 {
            t.push_row(&[Value::Int(1), Value::Int(i)]).unwrap();
        }
        let mut st = ExecStats::default();
        // Budget admits both scans (600) plus a few batches, not the full
        // product — the guard must trip inside the probe loop.
        let guard = crate::guard::ResourceGuard::with_row_budget(10_000);
        let err = hash_join_guarded(&t, &t, &[0], &[0], JoinType::Inner, None, &guard, &mut st)
            .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExceeded { .. }), "{err}");
        assert!(
            guard.rows_charged() < 30_000,
            "tripped early, not after materializing all 90k pairs: {}",
            guard.rows_charged()
        );

        // The same join under a sufficient budget completes.
        let guard = crate::guard::ResourceGuard::with_row_budget(100_000);
        let out =
            hash_join_guarded(&t, &t, &[0], &[0], JoinType::Inner, None, &guard, &mut st).unwrap();
        assert_eq!(out.num_rows(), 90_000);
    }

    #[test]
    fn key_arity_validated() {
        let (fk, fj) = (fk(), fj());
        let mut st = ExecStats::default();
        assert!(hash_join(&fk, &fj, &[0, 1], &[0], JoinType::Inner, None, &mut st).is_err());
        assert!(hash_join(&fk, &fj, &[], &[], JoinType::Inner, None, &mut st).is_err());
        assert!(hash_join(&fk, &fj, &[9], &[0], JoinType::Inner, None, &mut st).is_err());
    }
}
