//! Aggregate accumulators, shared by hash aggregation and the pivot
//! operator.
//!
//! One [`Acc`] holds the running state of a single aggregate over one
//! group. All functions here have *distributive or algebraic* partial
//! state (Gray et al.'s Data Cube classification): `sum`/`min`/`max`/
//! `count(*)` re-aggregate from partials directly, `avg` carries a
//! `(sum, n)` pair, and `count(DISTINCT)` carries its value set — so
//! thread-local partials can always be [merged](Acc::merge) into the
//! global result, which is what the morsel-parallel scan relies on.

use crate::error::{EngineError, Result};
use crate::ops::aggregate::AggFunc;
use pa_storage::Value;

/// Running state of one aggregate over one group.
#[derive(Debug, Clone)]
pub enum Acc {
    /// `sum(expr)`: running sum plus a flag that any non-NULL was seen.
    Sum {
        /// Running sum.
        sum: f64,
        /// Whether any non-NULL input arrived (sum of nothing is NULL).
        any: bool,
    },
    /// `count(expr)`: non-NULL count.
    Count(i64),
    /// `count(DISTINCT expr)`: set of distinct non-NULL values.
    CountDistinct(pa_storage::FxHashSet<Value>),
    /// `count(*)`: row count.
    CountStar(i64),
    /// `avg(expr)`: sum and non-NULL count.
    Avg {
        /// Running sum.
        sum: f64,
        /// Non-NULL count.
        n: i64,
    },
    /// `min(expr)` (NULL until a value arrives).
    Min(Value),
    /// `max(expr)` (NULL until a value arrives).
    Max(Value),
}

impl Acc {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Sum => Acc::Sum {
                sum: 0.0,
                any: false,
            },
            AggFunc::Count => Acc::Count(0),
            AggFunc::CountDistinct => Acc::CountDistinct(Default::default()),
            AggFunc::CountStar => Acc::CountStar(0),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(Value::Null),
            AggFunc::Max => Acc::Max(Value::Null),
        }
    }

    /// Absorb one input value. NULLs are skipped by everything except
    /// `count(*)`; non-numeric input to `sum`/`avg` is a type error.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            Acc::CountStar(n) => *n += 1,
            _ if v.is_null() => {}
            Acc::Sum { sum, any } => match v.as_f64() {
                Some(x) => {
                    *sum += x;
                    *any = true;
                }
                None => {
                    return Err(EngineError::ExprType(format!("sum of non-numeric {v}")));
                }
            },
            Acc::Count(n) => *n += 1,
            Acc::CountDistinct(seen) => {
                seen.insert(v.clone());
            }
            Acc::Avg { sum, n } => match v.as_f64() {
                Some(x) => {
                    *sum += x;
                    *n += 1;
                }
                None => {
                    return Err(EngineError::ExprType(format!("avg of non-numeric {v}")));
                }
            },
            Acc::Min(m) => {
                if m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Less {
                    *m = v.clone();
                }
            }
            Acc::Max(m) => {
                if m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Greater {
                    *m = v.clone();
                }
            }
        }
        Ok(())
    }

    /// Typed fast path for numeric lanes: absorb a raw `f64` (`None` =
    /// NULL) without constructing a [`Value`]. Only `sum`/`avg`/`count`/
    /// `count(*)` take this path — callers route `min`/`max`/
    /// `count(DISTINCT)` and non-column expressions through [`update`].
    ///
    /// [`update`]: Acc::update
    #[inline]
    pub fn update_f64(&mut self, v: Option<f64>) {
        match (self, v) {
            (Acc::CountStar(n), _) => *n += 1,
            (_, None) => {}
            (Acc::Sum { sum, any }, Some(x)) => {
                *sum += x;
                *any = true;
            }
            (Acc::Count(n), Some(_)) => *n += 1,
            (Acc::Avg { sum, n }, Some(x)) => {
                *sum += x;
                *n += 1;
            }
            (acc, Some(x)) => {
                // Unreachable via the kernel classification; keep the
                // generic semantics anyway so the method is total.
                let _ = acc.update(&Value::Float(x));
            }
        }
    }

    /// Fold another partial accumulator of the same function into this
    /// one. Partials merge associatively; merging worker partials in
    /// worker order after a contiguous-chunk scan reproduces the serial
    /// accumulation order.
    pub fn merge(&mut self, other: Acc) -> Result<()> {
        match (self, other) {
            (Acc::Sum { sum, any }, Acc::Sum { sum: s2, any: a2 }) => {
                *sum += s2;
                *any |= a2;
            }
            (Acc::Count(n), Acc::Count(m)) => *n += m,
            (Acc::CountStar(n), Acc::CountStar(m)) => *n += m,
            (Acc::CountDistinct(seen), Acc::CountDistinct(other_seen)) => {
                seen.extend(other_seen);
            }
            (Acc::Avg { sum, n }, Acc::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (Acc::Min(m), Acc::Min(v)) => {
                if !v.is_null() && (m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Less) {
                    *m = v;
                }
            }
            (Acc::Max(m), Acc::Max(v)) => {
                if !v.is_null() && (m.is_null() || v.total_cmp(m) == std::cmp::Ordering::Greater) {
                    *m = v;
                }
            }
            (a, b) => {
                return Err(EngineError::InvalidOperator(format!(
                    "cannot merge mismatched accumulators {a:?} and {b:?}"
                )));
            }
        }
        Ok(())
    }

    /// Final aggregate value.
    pub fn finish(&self) -> Value {
        match self {
            Acc::Sum { sum, any } => {
                if *any {
                    Value::Float(*sum)
                } else {
                    Value::Null
                }
            }
            Acc::Count(n) | Acc::CountStar(n) => Value::Int(*n),
            Acc::CountDistinct(seen) => Value::Int(seen.len() as i64),
            Acc::Avg { sum, n } => {
                if *n > 0 {
                    Value::Float(sum / *n as f64)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(func: AggFunc, values: &[Value]) -> Acc {
        let mut acc = Acc::new(func);
        for v in values {
            acc.update(v).unwrap();
        }
        acc
    }

    #[test]
    fn merge_equals_sequential_update_for_every_func() {
        let values: Vec<Value> = vec![
            Value::Int(3),
            Value::Null,
            Value::Int(-1),
            Value::Int(3),
            Value::Int(7),
        ];
        for func in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::CountDistinct,
            AggFunc::CountStar,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let whole = filled(func, &values);
            for split in 0..=values.len() {
                let mut left = filled(func, &values[..split]);
                let right = filled(func, &values[split..]);
                left.merge(right).unwrap();
                assert_eq!(left.finish(), whole.finish(), "{func:?} split at {split}");
            }
        }
    }

    #[test]
    fn merge_empty_partial_is_identity() {
        let mut acc = filled(AggFunc::Sum, &[Value::Float(2.5)]);
        acc.merge(Acc::new(AggFunc::Sum)).unwrap();
        assert_eq!(acc.finish(), Value::Float(2.5));
        let mut empty = Acc::new(AggFunc::Min);
        empty.merge(filled(AggFunc::Min, &[Value::Int(4)])).unwrap();
        assert_eq!(empty.finish(), Value::Int(4));
    }

    #[test]
    fn merge_rejects_mismatched_functions() {
        let mut a = Acc::new(AggFunc::Sum);
        assert!(a.merge(Acc::new(AggFunc::Count)).is_err());
    }

    #[test]
    fn update_f64_matches_update() {
        for func in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::CountStar,
            AggFunc::Avg,
        ] {
            let mut fast = Acc::new(func);
            let mut slow = Acc::new(func);
            for v in [Some(2.0), None, Some(-3.5)] {
                fast.update_f64(v);
                slow.update(&v.map_or(Value::Null, Value::Float)).unwrap();
            }
            assert_eq!(fast.finish(), slow.finish(), "{func:?}");
        }
    }

    #[test]
    fn sum_of_string_is_a_type_error() {
        let mut acc = Acc::new(AggFunc::Sum);
        assert!(acc.update(&Value::str("x")).is_err());
        assert!(acc.update(&Value::Null).is_ok(), "NULL still skips");
    }
}
