//! Aggregate accumulators and the partial/merge/finalize protocol.
//!
//! One [`Acc`] holds the running state of a single aggregate over one
//! group. The state is a *partial* in Gray et al.'s Data Cube sense:
//! distributive (`sum`/`min`/`max`/`count(*)`) and algebraic (`avg`)
//! functions carry their obvious partials, while the holistic ones carry
//! either their full value set (`count(DISTINCT)`, exact `percentile`) or
//! a mergeable sketch ([t-digest](crate::sketch::TDigest),
//! [HLL](crate::sketch::Hll)) once the exact state outgrows its budget.
//!
//! The [`PartialState`] trait names the contract every variant honors
//! (DESIGN.md §14): `update` absorbs one input, `merge` folds a disjoint
//! partial in, `finalize` produces the SQL value, and `serialize`/
//! `deserialize` move the partial across process boundaries in a
//! versioned, CRC-guarded frame ([`pa_storage::partial`]). Thread-local
//! morsel partials, shard partials, and replica partials all merge
//! through the same code path, which is what the shard-merge differential
//! oracle proves end to end.
//!
//! Determinism classes (pinned by the oracle and the property suite):
//! - **Order-insensitive** (byte-identical under any merge order): every
//!   exact variant plus HLL. Exact set-carrying states serialize in
//!   [`Value::total_cmp`] order so their bytes are canonical regardless
//!   of insertion order.
//! - **Ordered-deterministic**: t-digest states are byte-identical for a
//!   fixed merge order and rank-error-bounded under any other order.

use crate::error::{EngineError, Result};
use crate::ops::aggregate::{AggFunc, PBits};
use crate::sketch::{Hll, TDigest};
use pa_storage::partial::{frame, put_f64, put_i64, put_u32, put_u64, put_value, unframe, Cursor};
use pa_storage::{StorageError, Value};

/// Default per-group sample budget for exact `percentile` before the
/// state spills to a t-digest (override with `PA_PERCENTILE_BUDGET`).
pub const DEFAULT_PERCENTILE_BUDGET: usize = 65_536;

fn percentile_budget() -> usize {
    std::env::var("PA_PERCENTILE_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_PERCENTILE_BUDGET)
}

/// The two-step aggregation contract: accumulate partials shard-locally,
/// then merge and finalize anywhere — with a versioned byte form in
/// between so "anywhere" includes other processes (DESIGN.md §14).
pub trait PartialState: Sized {
    /// Absorb one input value.
    fn update(&mut self, v: &Value) -> Result<()>;
    /// Fold a partial computed over a disjoint input slice into this one.
    fn merge(&mut self, other: Self) -> Result<()>;
    /// Produce the final SQL value.
    fn finalize(&self) -> Value;
    /// Encode the partial as a versioned, CRC-guarded byte frame.
    fn serialize(&self) -> Vec<u8>;
    /// Decode a frame produced by [`PartialState::serialize`]. Corrupted
    /// or truncated input yields a typed error, never a panic.
    fn deserialize(bytes: &[u8]) -> Result<Self>;
}

/// Exact-vs-spilled state of an exact `percentile` accumulator.
#[derive(Debug, Clone)]
pub enum PctState {
    /// All samples retained; finalize sorts and interpolates exactly.
    Exact(Vec<f64>),
    /// Over budget: samples folded into a t-digest.
    Spilled(TDigest),
}

/// Running state of one aggregate over one group.
#[derive(Debug, Clone)]
pub enum Acc {
    /// `sum(expr)`: running sum plus a flag that any non-NULL was seen.
    Sum {
        /// Running sum.
        sum: f64,
        /// Whether any non-NULL input arrived (sum of nothing is NULL).
        any: bool,
    },
    /// `count(expr)`: non-NULL count.
    Count(i64),
    /// `count(DISTINCT expr)`: set of distinct non-NULL values.
    CountDistinct(pa_storage::FxHashSet<Value>),
    /// `count(*)`: row count.
    CountStar(i64),
    /// `avg(expr)`: sum and non-NULL count.
    Avg {
        /// Running sum.
        sum: f64,
        /// Non-NULL count.
        n: i64,
    },
    /// `min(expr)` (NULL until a value arrives).
    Min(Value),
    /// `max(expr)` (NULL until a value arrives).
    Max(Value),
    /// Exact `percentile(expr, p)` / `median(expr)`: retains samples up
    /// to `budget`, then spills to a t-digest.
    Percentile {
        /// Interpolation fraction in `[0, 1]`.
        p: f64,
        /// Sample budget before spilling.
        budget: usize,
        /// Exact samples or the spilled digest.
        state: PctState,
    },
    /// `approx_percentile(expr, p)`: always a t-digest.
    ApproxPercentile {
        /// Interpolation fraction in `[0, 1]`.
        p: f64,
        /// The digest.
        digest: TDigest,
    },
    /// `approx_count_distinct(expr)`: HyperLogLog registers.
    ApproxCountDistinct(Hll),
}

/// PERCENTILE_CONT over a sorted sample: linear interpolation between the
/// two nearest ranks (p=0 → min, p=1 → max, p=0.5 of `[10,20,30,40]` →
/// `25.0`).
fn percentile_cont(sorted: &[f64], p: f64) -> Value {
    if sorted.is_empty() {
        return Value::Null;
    }
    let rank = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Value::Float(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Representation tie-break for min/max: [`Value::total_cmp`] calls
/// `Int(x)` and `Float(x)` equal, so without a rule the surviving
/// representation would depend on arrival (and merge) order and leak into
/// the serialized partial. On a numeric tie the `Int` form wins,
/// deterministically, whichever side it arrives on.
fn prefer_repr(candidate: &Value, incumbent: &Value) -> bool {
    matches!((candidate, incumbent), (Value::Int(_), Value::Float(_)))
}

fn digest_of(values: &[f64]) -> TDigest {
    let mut d = TDigest::new();
    for &x in values {
        d.update(x);
    }
    d
}

impl Acc {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Sum => Acc::Sum {
                sum: 0.0,
                any: false,
            },
            AggFunc::Count => Acc::Count(0),
            AggFunc::CountDistinct => Acc::CountDistinct(Default::default()),
            AggFunc::CountStar => Acc::CountStar(0),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(Value::Null),
            AggFunc::Max => Acc::Max(Value::Null),
            AggFunc::Percentile(p) => Acc::Percentile {
                p: p.value(),
                budget: percentile_budget(),
                state: PctState::Exact(Vec::new()),
            },
            AggFunc::ApproxPercentile(p) => Acc::ApproxPercentile {
                p: p.value(),
                digest: TDigest::new(),
            },
            AggFunc::ApproxCountDistinct => Acc::ApproxCountDistinct(Hll::new()),
        }
    }

    /// The aggregate function this accumulator computes.
    pub fn func(&self) -> AggFunc {
        match self {
            Acc::Sum { .. } => AggFunc::Sum,
            Acc::Count(_) => AggFunc::Count,
            Acc::CountDistinct(_) => AggFunc::CountDistinct,
            Acc::CountStar(_) => AggFunc::CountStar,
            Acc::Avg { .. } => AggFunc::Avg,
            Acc::Min(_) => AggFunc::Min,
            Acc::Max(_) => AggFunc::Max,
            Acc::Percentile { p, .. } => AggFunc::Percentile(PBits::new(*p)),
            Acc::ApproxPercentile { p, .. } => AggFunc::ApproxPercentile(PBits::new(*p)),
            Acc::ApproxCountDistinct(_) => AggFunc::ApproxCountDistinct,
        }
    }

    /// Whether an exact `percentile` state has spilled to its digest
    /// (surfaced as [`crate::ExecStats::sketch_spills`]).
    pub fn spilled(&self) -> bool {
        matches!(
            self,
            Acc::Percentile {
                state: PctState::Spilled(_),
                ..
            }
        )
    }

    /// Absorb one input value. NULLs are skipped by everything except
    /// `count(*)`; non-numeric input to `sum`/`avg`/percentiles is a
    /// type error.
    pub fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            Acc::CountStar(n) => *n += 1,
            _ if v.is_null() => {}
            Acc::Sum { sum, any } => match v.as_f64() {
                Some(x) => {
                    *sum += x;
                    *any = true;
                }
                None => {
                    return Err(EngineError::ExprType(format!("sum of non-numeric {v}")));
                }
            },
            Acc::Count(n) => *n += 1,
            Acc::CountDistinct(seen) => {
                seen.insert(v.clone());
            }
            Acc::Avg { sum, n } => match v.as_f64() {
                Some(x) => {
                    *sum += x;
                    *n += 1;
                }
                None => {
                    return Err(EngineError::ExprType(format!("avg of non-numeric {v}")));
                }
            },
            Acc::Min(m) => {
                if m.is_null()
                    || v.total_cmp(m) == std::cmp::Ordering::Less
                    || (v.total_cmp(m) == std::cmp::Ordering::Equal && prefer_repr(v, m))
                {
                    *m = v.clone();
                }
            }
            Acc::Max(m) => {
                if m.is_null()
                    || v.total_cmp(m) == std::cmp::Ordering::Greater
                    || (v.total_cmp(m) == std::cmp::Ordering::Equal && prefer_repr(v, m))
                {
                    *m = v.clone();
                }
            }
            Acc::Percentile { budget, state, .. } => match v.as_f64() {
                Some(x) => match state {
                    PctState::Exact(vals) => {
                        vals.push(x);
                        if vals.len() > *budget {
                            *state = PctState::Spilled(digest_of(vals));
                        }
                    }
                    PctState::Spilled(d) => d.update(x),
                },
                None => {
                    return Err(EngineError::ExprType(format!(
                        "percentile of non-numeric {v}"
                    )));
                }
            },
            Acc::ApproxPercentile { digest, .. } => match v.as_f64() {
                Some(x) => digest.update(x),
                None => {
                    return Err(EngineError::ExprType(format!(
                        "approx_percentile of non-numeric {v}"
                    )));
                }
            },
            Acc::ApproxCountDistinct(hll) => hll.insert(v),
        }
        Ok(())
    }

    /// Typed fast path for numeric lanes: absorb a raw `f64` (`None` =
    /// NULL) without constructing a [`Value`]. Only `sum`/`avg`/`count`/
    /// `count(*)` take this path — callers route everything else and
    /// non-column expressions through [`update`].
    ///
    /// [`update`]: Acc::update
    #[inline]
    pub fn update_f64(&mut self, v: Option<f64>) {
        match (self, v) {
            (Acc::CountStar(n), _) => *n += 1,
            (_, None) => {}
            (Acc::Sum { sum, any }, Some(x)) => {
                *sum += x;
                *any = true;
            }
            (Acc::Count(n), Some(_)) => *n += 1,
            (Acc::Avg { sum, n }, Some(x)) => {
                *sum += x;
                *n += 1;
            }
            (acc, Some(x)) => {
                // Unreachable via the kernel classification; keep the
                // generic semantics anyway so the method is total.
                let _ = acc.update(&Value::Float(x));
            }
        }
    }

    /// Fold another partial accumulator of the same function into this
    /// one. Partials merge associatively; merging worker partials in
    /// worker order after a contiguous-chunk scan reproduces the serial
    /// accumulation order.
    pub fn merge(&mut self, other: Acc) -> Result<()> {
        match (self, other) {
            (Acc::Sum { sum, any }, Acc::Sum { sum: s2, any: a2 }) => {
                *sum += s2;
                *any |= a2;
            }
            (Acc::Count(n), Acc::Count(m)) => *n += m,
            (Acc::CountStar(n), Acc::CountStar(m)) => *n += m,
            (Acc::CountDistinct(seen), Acc::CountDistinct(other_seen)) => {
                seen.extend(other_seen);
            }
            (Acc::Avg { sum, n }, Acc::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (Acc::Min(m), Acc::Min(v)) => {
                if !v.is_null()
                    && (m.is_null()
                        || v.total_cmp(m) == std::cmp::Ordering::Less
                        || (v.total_cmp(m) == std::cmp::Ordering::Equal && prefer_repr(&v, m)))
                {
                    *m = v;
                }
            }
            (Acc::Max(m), Acc::Max(v)) => {
                if !v.is_null()
                    && (m.is_null()
                        || v.total_cmp(m) == std::cmp::Ordering::Greater
                        || (v.total_cmp(m) == std::cmp::Ordering::Equal && prefer_repr(&v, m)))
                {
                    *m = v;
                }
            }
            (
                Acc::Percentile { p, budget, state },
                Acc::Percentile {
                    p: p2,
                    state: state2,
                    ..
                },
            ) if p.to_bits() == p2.to_bits() => match (&mut *state, state2) {
                (PctState::Exact(vals), PctState::Exact(vals2)) => {
                    vals.extend_from_slice(&vals2);
                    if vals.len() > *budget {
                        *state = PctState::Spilled(digest_of(vals));
                    }
                }
                (PctState::Exact(vals), PctState::Spilled(d2)) => {
                    let mut d = digest_of(vals);
                    d.merge(&d2);
                    *state = PctState::Spilled(d);
                }
                (PctState::Spilled(d), PctState::Exact(vals2)) => {
                    d.merge(&digest_of(&vals2));
                }
                (PctState::Spilled(d), PctState::Spilled(d2)) => d.merge(&d2),
            },
            (Acc::ApproxPercentile { p, digest }, Acc::ApproxPercentile { p: p2, digest: d2 })
                if p.to_bits() == p2.to_bits() =>
            {
                digest.merge(&d2)
            }
            (Acc::ApproxCountDistinct(hll), Acc::ApproxCountDistinct(h2)) => hll.merge(&h2),
            (a, b) => {
                return Err(EngineError::InvalidOperator(format!(
                    "cannot merge mismatched accumulators {a:?} and {b:?}"
                )));
            }
        }
        Ok(())
    }

    /// Final aggregate value.
    pub fn finish(&self) -> Value {
        match self {
            Acc::Sum { sum, any } => {
                if *any {
                    Value::Float(*sum)
                } else {
                    Value::Null
                }
            }
            Acc::Count(n) | Acc::CountStar(n) => Value::Int(*n),
            Acc::CountDistinct(seen) => Value::Int(seen.len() as i64),
            Acc::Avg { sum, n } => {
                if *n > 0 {
                    Value::Float(sum / *n as f64)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone(),
            Acc::Percentile { p, state, .. } => match state {
                PctState::Exact(vals) => {
                    let mut sorted = vals.clone();
                    sorted.sort_by(f64::total_cmp);
                    percentile_cont(&sorted, *p)
                }
                PctState::Spilled(d) => d.quantile(*p).map_or(Value::Null, Value::Float),
            },
            Acc::ApproxPercentile { p, digest } => {
                digest.quantile(*p).map_or(Value::Null, Value::Float)
            }
            Acc::ApproxCountDistinct(hll) => {
                if hll.registers().iter().all(|&r| r == 0) {
                    Value::Int(0)
                } else {
                    Value::Int(hll.estimate().round() as i64)
                }
            }
        }
    }

    /// Versioned byte form of this partial (see [`PartialState`]).
    pub fn serialize(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let tag = match self {
            Acc::Sum { sum, any } => {
                put_f64(&mut payload, *sum);
                payload.push(*any as u8);
                1
            }
            Acc::Count(n) => {
                put_i64(&mut payload, *n);
                2
            }
            Acc::CountDistinct(seen) => {
                // Canonical order: a hash set's iteration order must never
                // leak into the wire bytes (the satellite-4 regression).
                let mut vals: Vec<&Value> = seen.iter().collect();
                vals.sort_by(|a, b| a.total_cmp(b));
                put_u32(&mut payload, vals.len() as u32);
                for v in vals {
                    put_value(&mut payload, v);
                }
                3
            }
            Acc::CountStar(n) => {
                put_i64(&mut payload, *n);
                4
            }
            Acc::Avg { sum, n } => {
                put_f64(&mut payload, *sum);
                put_i64(&mut payload, *n);
                5
            }
            Acc::Min(v) => {
                put_value(&mut payload, v);
                6
            }
            Acc::Max(v) => {
                put_value(&mut payload, v);
                7
            }
            Acc::Percentile { p, budget, state } => {
                put_f64(&mut payload, *p);
                put_u64(&mut payload, *budget as u64);
                match state {
                    PctState::Exact(vals) => {
                        payload.push(0);
                        // Canonical (sorted) order: exact partial bytes are
                        // insertion-order-independent, like the finalize.
                        let mut sorted = vals.clone();
                        sorted.sort_by(f64::total_cmp);
                        put_u32(&mut payload, sorted.len() as u32);
                        for x in sorted {
                            put_f64(&mut payload, x);
                        }
                    }
                    PctState::Spilled(d) => {
                        payload.push(1);
                        d.write_payload(&mut payload);
                    }
                }
                8
            }
            Acc::ApproxPercentile { p, digest } => {
                put_f64(&mut payload, *p);
                digest.write_payload(&mut payload);
                9
            }
            Acc::ApproxCountDistinct(hll) => {
                let regs = hll.registers();
                put_u32(&mut payload, regs.len() as u32);
                payload.extend_from_slice(regs);
                10
            }
        };
        frame(tag, &payload)
    }

    /// Decode a frame produced by [`Acc::serialize`]; corrupted input is
    /// a typed [`StorageError::PartialCodec`], never a panic.
    pub fn deserialize(bytes: &[u8]) -> Result<Acc> {
        let (tag, payload) = unframe(bytes)?;
        let mut cur = Cursor::new(payload);
        let acc = match tag {
            1 => {
                let sum = cur.f64()?;
                let any = cur.u8()? != 0;
                Acc::Sum { sum, any }
            }
            2 => Acc::Count(cur.i64()?),
            3 => {
                let n = cur.u32()? as usize;
                let mut seen = pa_storage::FxHashSet::default();
                for _ in 0..n {
                    seen.insert(cur.value()?);
                }
                Acc::CountDistinct(seen)
            }
            4 => Acc::CountStar(cur.i64()?),
            5 => {
                let sum = cur.f64()?;
                let n = cur.i64()?;
                Acc::Avg { sum, n }
            }
            6 => Acc::Min(cur.value()?),
            7 => Acc::Max(cur.value()?),
            8 => {
                let p = cur.f64()?;
                let budget = cur.u64()? as usize;
                let state = match cur.u8()? {
                    0 => {
                        let n = cur.u32()? as usize;
                        let mut vals = Vec::with_capacity(n.min(1 << 20));
                        for _ in 0..n {
                            vals.push(cur.f64()?);
                        }
                        PctState::Exact(vals)
                    }
                    1 => PctState::Spilled(TDigest::read_payload(&mut cur)?),
                    t => {
                        return Err(EngineError::Storage(StorageError::PartialCodec(format!(
                            "unknown percentile state tag {t}"
                        ))));
                    }
                };
                Acc::Percentile { p, budget, state }
            }
            9 => {
                let p = cur.f64()?;
                let digest = TDigest::read_payload(&mut cur)?;
                Acc::ApproxPercentile { p, digest }
            }
            10 => {
                let n = cur.u32()? as usize;
                if n != crate::sketch::HLL_REGISTERS {
                    return Err(EngineError::Storage(StorageError::PartialCodec(format!(
                        "HLL register count {n} does not match this build"
                    ))));
                }
                let regs = cur.take(n)?.to_vec();
                Acc::ApproxCountDistinct(Hll::from_registers(regs)?)
            }
            t => {
                return Err(EngineError::Storage(StorageError::PartialCodec(format!(
                    "unknown accumulator tag {t}"
                ))));
            }
        };
        cur.finish()?;
        Ok(acc)
    }
}

impl PartialState for Acc {
    fn update(&mut self, v: &Value) -> Result<()> {
        Acc::update(self, v)
    }

    fn merge(&mut self, other: Acc) -> Result<()> {
        Acc::merge(self, other)
    }

    fn finalize(&self) -> Value {
        Acc::finish(self)
    }

    fn serialize(&self) -> Vec<u8> {
        Acc::serialize(self)
    }

    fn deserialize(bytes: &[u8]) -> Result<Acc> {
        Acc::deserialize(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(func: AggFunc, values: &[Value]) -> Acc {
        let mut acc = Acc::new(func);
        for v in values {
            acc.update(v).unwrap();
        }
        acc
    }

    fn all_exact_funcs() -> Vec<AggFunc> {
        vec![
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::CountDistinct,
            AggFunc::CountStar,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Percentile(PBits::new(0.5)),
            AggFunc::Percentile(PBits::new(0.95)),
            AggFunc::ApproxCountDistinct,
        ]
    }

    #[test]
    fn merge_equals_sequential_update_for_every_func() {
        let values: Vec<Value> = vec![
            Value::Int(3),
            Value::Null,
            Value::Int(-1),
            Value::Int(3),
            Value::Int(7),
        ];
        for func in all_exact_funcs() {
            let whole = filled(func, &values);
            for split in 0..=values.len() {
                let mut left = filled(func, &values[..split]);
                let right = filled(func, &values[split..]);
                left.merge(right).unwrap();
                assert_eq!(left.finish(), whole.finish(), "{func:?} split at {split}");
            }
        }
    }

    #[test]
    fn merge_empty_partial_is_identity() {
        let mut acc = filled(AggFunc::Sum, &[Value::Float(2.5)]);
        acc.merge(Acc::new(AggFunc::Sum)).unwrap();
        assert_eq!(acc.finish(), Value::Float(2.5));
        let mut empty = Acc::new(AggFunc::Min);
        empty.merge(filled(AggFunc::Min, &[Value::Int(4)])).unwrap();
        assert_eq!(empty.finish(), Value::Int(4));
    }

    #[test]
    fn merge_rejects_mismatched_functions() {
        let mut a = Acc::new(AggFunc::Sum);
        assert!(a.merge(Acc::new(AggFunc::Count)).is_err());
        let mut p50 = Acc::new(AggFunc::Percentile(PBits::new(0.5)));
        assert!(
            p50.merge(Acc::new(AggFunc::Percentile(PBits::new(0.9))))
                .is_err(),
            "different p is a different aggregate"
        );
    }

    #[test]
    fn update_f64_matches_update() {
        for func in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::CountStar,
            AggFunc::Avg,
        ] {
            let mut fast = Acc::new(func);
            let mut slow = Acc::new(func);
            for v in [Some(2.0), None, Some(-3.5)] {
                fast.update_f64(v);
                slow.update(&v.map_or(Value::Null, Value::Float)).unwrap();
            }
            assert_eq!(fast.finish(), slow.finish(), "{func:?}");
        }
    }

    #[test]
    fn sum_of_string_is_a_type_error() {
        let mut acc = Acc::new(AggFunc::Sum);
        assert!(acc.update(&Value::str("x")).is_err());
        assert!(acc.update(&Value::Null).is_ok(), "NULL still skips");
        let mut acc = Acc::new(AggFunc::Percentile(PBits::new(0.5)));
        assert!(acc.update(&Value::str("x")).is_err());
    }

    #[test]
    fn percentile_matches_snippet_plan() {
        // The PERCENTILE_CONT reference points: p50 of [10,20,30,40] = 25,
        // p0 = min, p100 = max.
        let vals: Vec<Value> = [10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|&x| Value::Float(x))
            .collect();
        let cases = [(0.5, 25.0), (0.0, 10.0), (1.0, 40.0), (0.25, 17.5)];
        for (p, want) in cases {
            let acc = filled(AggFunc::Percentile(PBits::new(p)), &vals);
            assert_eq!(acc.finish(), Value::Float(want), "p={p}");
        }
        let empty = Acc::new(AggFunc::Percentile(PBits::new(0.5)));
        assert_eq!(empty.finish(), Value::Null);
    }

    #[test]
    fn percentile_finalize_is_insertion_order_independent() {
        let fwd: Vec<Value> = (0..100).map(Value::Int).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let f = AggFunc::Percentile(PBits::new(0.9));
        assert_eq!(filled(f, &fwd).finish(), filled(f, &rev).finish());
        assert_eq!(filled(f, &fwd).serialize(), filled(f, &rev).serialize());
    }

    #[test]
    fn percentile_spills_to_digest_past_budget() {
        std::env::set_var("PA_PERCENTILE_BUDGET", "64");
        let mut acc = Acc::new(AggFunc::Percentile(PBits::new(0.5)));
        std::env::remove_var("PA_PERCENTILE_BUDGET");
        for i in 0..1000 {
            acc.update(&Value::Int(i)).unwrap();
        }
        assert!(acc.spilled());
        let med = match acc.finish() {
            Value::Float(x) => x,
            v => panic!("expected float, got {v}"),
        };
        assert!((med - 499.5).abs() < 50.0, "spilled median ~499.5: {med}");
    }

    #[test]
    fn count_distinct_serialization_is_iteration_order_independent() {
        // Satellite 4: the FxHashSet union's iteration order must not
        // leak into the canonical partial bytes.
        let vals: Vec<Value> = (0..200)
            .map(|i| {
                if i % 3 == 0 {
                    Value::str(format!("s{i}"))
                } else {
                    Value::Int(i)
                }
            })
            .collect();
        let mut shuffled = vals.clone();
        shuffled.reverse();
        shuffled.rotate_left(17);
        let a = filled(AggFunc::CountDistinct, &vals);
        let b = filled(AggFunc::CountDistinct, &shuffled);
        assert_eq!(a.serialize(), b.serialize());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn every_variant_round_trips_through_serialize() {
        let vals: Vec<Value> = vec![
            Value::Int(5),
            Value::Float(-2.5),
            Value::Null,
            Value::Int(5),
            Value::str("tx"),
        ];
        let numeric: Vec<Value> = vec![Value::Int(5), Value::Float(-2.5), Value::Null];
        for func in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::CountDistinct,
            AggFunc::CountStar,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Percentile(PBits::new(0.75)),
            AggFunc::ApproxPercentile(PBits::new(0.75)),
            AggFunc::ApproxCountDistinct,
        ] {
            let input = match func {
                AggFunc::Sum
                | AggFunc::Avg
                | AggFunc::Percentile(_)
                | AggFunc::ApproxPercentile(_) => &numeric,
                _ => &vals,
            };
            let acc = filled(func, input);
            let bytes = acc.serialize();
            let back = Acc::deserialize(&bytes).unwrap();
            assert_eq!(back.finish(), acc.finish(), "{func:?}");
            assert_eq!(back.serialize(), bytes, "{func:?} canonical bytes");
            assert_eq!(back.func(), acc.func(), "{func:?}");
        }
    }

    #[test]
    fn deserialize_rejects_garbage_without_panicking() {
        assert!(Acc::deserialize(&[]).is_err());
        assert!(Acc::deserialize(b"not a frame at all").is_err());
        let bytes = filled(AggFunc::Avg, &[Value::Int(2)]).serialize();
        for cut in 0..bytes.len() {
            assert!(Acc::deserialize(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn partial_state_trait_is_object_usable_via_generics() {
        fn roundtrip<P: PartialState>(p: &P) -> P {
            P::deserialize(&p.serialize()).unwrap()
        }
        let acc = filled(
            AggFunc::ApproxCountDistinct,
            &[Value::Int(1), Value::Int(2)],
        );
        assert_eq!(roundtrip(&acc).finalize(), acc.finalize());
    }
}
