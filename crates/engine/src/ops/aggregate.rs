//! Hash group-by aggregation.
//!
//! Implements the two-level aggregation at the heart of every percentage
//! query: `Fk` = fine aggregation of `F`, `Fj` = coarse aggregation of `F`
//! *or of `Fk`* (sum is distributive — [Gray et al. 1996]'s classification,
//! which the paper leans on for its "compute `Fj` from `Fk`" optimization).
//!
//! A single-pass synchronized scan computing several grouping levels at once
//! ([`multi_hash_aggregate`]) implements the paper's "these scans can be
//! synchronized to have effectively one scan".
//!
//! The scan is morsel-driven: the input is walked in fixed-size row morsels
//! (the unit of guard charging and cancellation latency), and when the
//! [`ParallelConfig`] allows it, contiguous runs of morsels fan out over
//! scoped worker threads that accumulate into thread-local partial tables.
//! Worker partials merge in worker order, which reproduces the serial
//! group-id assignment exactly (DESIGN.md §7). Numeric `sum`/`avg`/`count`
//! lanes over plain columns read through [`pa_storage::Column::get_f64`]
//! instead of boxing a [`Value`] per cell.

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::guard::ResourceGuard;
use crate::keymap::{DenseKeySpace, GroupMap};
use crate::ops::acc::Acc;
use crate::parallel::ParallelConfig;
use crate::stats::ExecStats;
use crate::vector::{BlockCoder, FusedAgg, LaneSrc, NumSlice};
use pa_obs::SpanHandle;
use pa_storage::{Column, DataType, Field, Schema, Table};

/// A percentile fraction carried as its IEEE-754 bit pattern, so
/// [`AggFunc`] stays `Copy + Eq` (f64 itself is not `Eq`). Two percentile
/// aggregates are the same function exactly when their bits agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PBits(u64);

impl PBits {
    /// Wrap a fraction (callers validate the `[0, 1]` range).
    pub fn new(p: f64) -> PBits {
        PBits(p.to_bits())
    }

    /// The fraction back as an `f64`.
    pub fn value(self) -> f64 {
        f64::from_bits(self.0)
    }
}

/// Aggregate functions. All skip NULL inputs except `CountStar`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `sum(expr)` — NULL over an empty/all-NULL group (SQL semantics the
    /// paper's `Vpct` inherits).
    Sum,
    /// `count(expr)` — non-NULL count.
    Count,
    /// `count(DISTINCT expr)` — distinct non-NULL count. Holistic per
    /// Gray et al.: it cannot be re-aggregated from partials, which is why
    /// the FV-based horizontal strategies reject it. (Thread partials still
    /// merge exactly, by value-set union.)
    CountDistinct,
    /// `count(*)` — row count.
    CountStar,
    /// `avg(expr)`.
    Avg,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
    /// `percentile(expr, p)` — exact PERCENTILE_CONT (linear
    /// interpolation). `median(expr)` is sugar for `p = 0.5`. Holistic:
    /// the partial retains its samples, spilling to a t-digest past the
    /// per-group budget (`PA_PERCENTILE_BUDGET`).
    Percentile(PBits),
    /// `approx_percentile(expr, p)` — t-digest estimate, bounded state.
    ApproxPercentile(PBits),
    /// `approx_count_distinct(expr)` — HyperLogLog estimate,
    /// fixed-size mergeable state.
    ApproxCountDistinct,
}

impl AggFunc {
    /// SQL name.
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count(distinct)",
            AggFunc::CountStar => "count(*)",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Percentile(_) => "percentile",
            AggFunc::ApproxPercentile(_) => "approx_percentile",
            AggFunc::ApproxCountDistinct => "approx_count_distinct",
        }
    }

    /// Display name carrying the parameter, for plans and EXPLAIN output
    /// (`percentile(0.95)` rather than just `percentile`).
    pub fn display_name(&self) -> String {
        match self {
            AggFunc::Percentile(p) => format!("percentile({})", p.value()),
            AggFunc::ApproxPercentile(p) => format!("approx_percentile({})", p.value()),
            other => other.sql_name().to_string(),
        }
    }

    /// Whether re-aggregating partial results with the same function yields
    /// the total result (distributive per Gray et al.).
    pub fn is_distributive(&self) -> bool {
        matches!(
            self,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::CountStar
        )
    }

    /// Holistic per Gray et al.: the *finalized* value of a sub-group
    /// cannot be re-aggregated into a coarser group, so the FV-based
    /// strategies (which re-aggregate finalized `Fk` rows) reject these.
    /// Their *partials* still merge exactly through the
    /// [`PartialState`](crate::ops::acc::PartialState) protocol — the
    /// sketch-backed ones with a fixed-size state.
    pub fn is_holistic(&self) -> bool {
        matches!(
            self,
            AggFunc::CountDistinct
                | AggFunc::Percentile(_)
                | AggFunc::ApproxPercentile(_)
                | AggFunc::ApproxCountDistinct
        )
    }
}

/// One aggregate term: function, input expression, output column name.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored by `CountStar`).
    pub input: Expr,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// Build a spec.
    pub fn new(func: AggFunc, input: Expr, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func,
            input,
            name: name.into(),
        }
    }

    /// `sum(column)` by name.
    pub fn sum_col(schema: &Schema, col: &str, out: impl Into<String>) -> Result<AggSpec> {
        Ok(AggSpec::new(AggFunc::Sum, Expr::col(schema, col)?, out))
    }

    pub(crate) fn output_type(&self, schema: &Schema) -> DataType {
        match self.func {
            AggFunc::Sum | AggFunc::Avg | AggFunc::Percentile(_) | AggFunc::ApproxPercentile(_) => {
                DataType::Float
            }
            AggFunc::Count
            | AggFunc::CountDistinct
            | AggFunc::CountStar
            | AggFunc::ApproxCountDistinct => DataType::Int,
            AggFunc::Min | AggFunc::Max => {
                self.input.output_type(schema).unwrap_or(DataType::Float)
            }
        }
    }
}

/// How one aggregate lane reads its input per row.
#[derive(Debug, Clone, Copy)]
enum Kernel {
    /// `sum`/`avg`/`count` over a plain numeric column: read through
    /// `Column::get_f64`, no `Value` construction.
    NumericCol(usize),
    /// `count(*)`: no input read at all.
    CountStar,
    /// Everything else: evaluate the expression into a `Value`.
    Generic,
}

/// Classify each spec against the input table's column types.
fn classify_kernels(aggs: &[AggSpec], input: &Table) -> Vec<Kernel> {
    aggs.iter()
        .map(|spec| match spec.func {
            AggFunc::CountStar => Kernel::CountStar,
            AggFunc::Sum | AggFunc::Avg | AggFunc::Count => match spec.input {
                Expr::Col(c)
                    if c < input.num_columns()
                        && matches!(
                            input.column(c).data_type(),
                            DataType::Int | DataType::Float
                        ) =>
                {
                    Kernel::NumericCol(c)
                }
                _ => Kernel::Generic,
            },
            _ => Kernel::Generic,
        })
        .collect()
}

/// Typed column views for the scalar loop, resolved once per chunk instead
/// of re-matching the column enum per row (`None` for non-column lanes).
fn lane_slices<'a>(kernels: &[Kernel], input: &'a Table) -> Vec<Option<NumSlice<'a>>> {
    kernels
        .iter()
        .map(|k| match k {
            Kernel::NumericCol(c) => NumSlice::for_column(input.column(*c)),
            _ => None,
        })
        .collect()
}

/// How one level executes over one worker chunk, decided once per chunk
/// (DESIGN.md §12): the fused block pipeline when eligible, otherwise the
/// scalar per-row loop over typed slices hoisted out of the row loop.
enum LevelExec<'a> {
    Fused(Box<FusedAgg<'a>>),
    Scalar(Vec<Option<NumSlice<'a>>>),
}

/// One grouping level inside a (possibly multi-level) aggregation pass.
#[derive(Debug)]
struct Level {
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    kernels: Vec<Kernel>,
    map: GroupMap,
    accs: Vec<Acc>, // groups × aggs, flat
}

impl Level {
    /// Whether this level can run the fused vectorized pipeline: a dense
    /// group map whose every dimension reads through a packed/typed vector,
    /// and only typed numeric / `count(*)` lanes. The decision is a pure
    /// function of the (level, input, config) triple, so every worker chunk
    /// agrees with the planning pass in [`multi_hash_aggregate_with_config`].
    fn fused_coder<'a>(&self, input: &'a Table, config: &ParallelConfig) -> Option<BlockCoder<'a>> {
        if !config.vector || self.group_cols.is_empty() {
            return None;
        }
        if self.kernels.iter().any(|k| matches!(k, Kernel::Generic)) {
            return None;
        }
        let GroupMap::Dense(map) = &self.map else {
            return None;
        };
        BlockCoder::try_new(input, map.space())
    }

    /// Pick this level's execution mode for one worker chunk.
    fn begin_chunk<'a>(
        &mut self,
        input: &'a Table,
        config: &ParallelConfig,
        stats: &mut ExecStats,
    ) -> LevelExec<'a> {
        if let Some(coder) = self.fused_coder(input, config) {
            let srcs: Vec<LaneSrc<'a>> = self
                .kernels
                .iter()
                .map(|k| match k {
                    Kernel::NumericCol(c) => LaneSrc::for_column(input.column(*c))
                        .expect("classified numeric lane has a numeric column"),
                    Kernel::CountStar => LaneSrc::CountStar,
                    Kernel::Generic => unreachable!("fused_coder rejects generic lanes"),
                })
                .collect();
            stats.pack_width = stats.pack_width.max(coder.pack_width() as u64);
            // The fused state owns the dense map for the duration of the
            // chunk; end_chunk puts it back along with the accumulators.
            let GroupMap::Dense(map) = std::mem::replace(&mut self.map, GroupMap::for_space(None))
            else {
                unreachable!("fused_coder requires the dense path");
            };
            debug_assert!(self.accs.is_empty(), "fused chunks start from empty state");
            LevelExec::Fused(Box::new(FusedAgg::new(coder, map, srcs)))
        } else {
            LevelExec::Scalar(lane_slices(&self.kernels, input))
        }
    }

    /// Fold a chunk's fused state back into the level (no-op for scalar).
    fn end_chunk(&mut self, exec: LevelExec<'_>) {
        if let LevelExec::Fused(fused) = exec {
            let funcs: Vec<AggFunc> = self.aggs.iter().map(|s| s.func).collect();
            let (map, accs) = fused.into_accs(&funcs);
            self.map = GroupMap::Dense(map);
            self.accs = accs;
        }
    }

    fn absorb(
        &mut self,
        input: &Table,
        row: usize,
        slices: &[Option<NumSlice<'_>>],
        stats: &mut ExecStats,
    ) -> Result<()> {
        let gid = if self.group_cols.is_empty() {
            if self.map.is_empty() {
                self.map.get_or_insert_key(&[], stats)
            } else {
                0
            }
        } else {
            self.map
                .get_or_insert_row(input, &self.group_cols, row, stats)
        };
        let base = gid * self.aggs.len();
        if base + self.aggs.len() > self.accs.len() {
            for spec in &self.aggs {
                self.accs.push(Acc::new(spec.func));
            }
        }
        for (i, spec) in self.aggs.iter().enumerate() {
            match self.kernels[i] {
                Kernel::CountStar => self.accs[base + i].update_f64(None),
                Kernel::NumericCol(_) => {
                    let s = slices[i].as_ref().expect("numeric lane has a typed slice");
                    self.accs[base + i].update_f64(s.get_f64(row));
                }
                Kernel::Generic => {
                    let v = spec.input.eval(input, row, stats)?;
                    self.accs[base + i].update(&v)?;
                }
            }
        }
        Ok(())
    }

    /// Fold a worker's partial level into this one, preserving this level's
    /// group order and appending the partial's unseen groups in its own
    /// first-appearance order. Because workers scan contiguous chunks in
    /// row order and merge in worker order, the merged group order equals
    /// the serial scan's order.
    fn merge_from(&mut self, other: Level, stats: &mut ExecStats) -> Result<()> {
        let width = self.aggs.len();
        let mut other_accs = other.accs.into_iter();
        for gid in self.map.merge_ids(other.map, stats) {
            let gid = gid as usize;
            if (gid + 1) * width > self.accs.len() {
                for spec in &self.aggs {
                    self.accs.push(Acc::new(spec.func));
                }
            }
            for i in 0..width {
                let partial = other_accs.next().expect("partial accs cover groups × aggs");
                self.accs[gid * width + i].merge(partial)?;
            }
        }
        Ok(())
    }

    /// Materialize the level: key columns built directly from the group
    /// map's stored keys (no per-row `Vec<Value>` clone), aggregate columns
    /// from the accumulator matrix.
    fn finish(self, input: &Table, stats: &mut ExecStats) -> Result<Table> {
        let input_schema = input.schema();
        let mut fields: Vec<Field> = self
            .group_cols
            .iter()
            .map(|&c| input_schema.field_at(c).clone())
            .collect();
        for spec in &self.aggs {
            fields.push(Field::new(
                spec.name.clone(),
                spec.output_type(input_schema),
            ));
        }
        let schema = Schema::new(fields)?.into_shared();
        let n_groups = self.map.len();
        let mut columns = self.map.build_key_columns(input, &self.group_cols)?;
        for (i, spec) in self.aggs.iter().enumerate() {
            let mut col = Column::new(spec.output_type(input_schema));
            for gid in 0..n_groups {
                let acc = &self.accs[gid * self.aggs.len() + i];
                if acc.spilled() {
                    stats.sketch_spills += 1;
                }
                col.push(acc.finish())?;
            }
            columns.push(col);
        }
        stats.rows_materialized += n_groups as u64;
        Ok(Table::from_columns(schema, columns)?)
    }
}

/// Hash-aggregate `input` grouped by `group_cols` computing `aggs`.
///
/// With an empty `group_cols`, produces exactly one global row (even for an
/// empty input — SQL global aggregates always return one row).
///
/// ```
/// use pa_engine::{hash_aggregate, AggSpec, ExecStats};
/// use pa_storage::{DataType, Schema, Table, Value};
///
/// let schema = Schema::from_pairs(&[("d", DataType::Str), ("a", DataType::Float)])
///     .unwrap()
///     .into_shared();
/// let mut f = Table::empty(schema);
/// f.push_row(&[Value::str("x"), Value::Float(2.0)]).unwrap();
/// f.push_row(&[Value::str("x"), Value::Float(3.0)]).unwrap();
/// f.push_row(&[Value::str("y"), Value::Float(5.0)]).unwrap();
///
/// let spec = AggSpec::sum_col(f.schema(), "a", "total").unwrap();
/// let mut stats = ExecStats::default();
/// let out = hash_aggregate(&f, &[0], &[spec], &mut stats).unwrap().sorted_by(&[0]);
/// assert_eq!(out.get(0, 1), Value::Float(5.0)); // x
/// assert_eq!(out.get(1, 1), Value::Float(5.0)); // y
/// assert_eq!(stats.rows_scanned, 3);
/// ```
pub fn hash_aggregate(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    stats: &mut ExecStats,
) -> Result<Table> {
    hash_aggregate_guarded(input, group_cols, aggs, &ResourceGuard::unlimited(), stats)
}

/// [`hash_aggregate`] under a [`ResourceGuard`]: scanned and materialized
/// rows are charged against the guard's budget. Parallelism follows the
/// environment configuration ([`ParallelConfig::from_env`]).
pub fn hash_aggregate_guarded(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    guard: &ResourceGuard,
    stats: &mut ExecStats,
) -> Result<Table> {
    hash_aggregate_with_config(
        input,
        group_cols,
        aggs,
        guard,
        stats,
        &ParallelConfig::from_env(),
    )
}

/// [`hash_aggregate_guarded`] with an explicit [`ParallelConfig`] (tests and
/// benches pin thread counts here instead of racing on env vars).
pub fn hash_aggregate_with_config(
    input: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    guard: &ResourceGuard,
    stats: &mut ExecStats,
    config: &ParallelConfig,
) -> Result<Table> {
    let mut tables = multi_hash_aggregate_with_config(
        input,
        &[(group_cols.to_vec(), aggs.to_vec())],
        guard,
        stats,
        config,
    )?;
    Ok(tables.pop().expect("one level in, one table out"))
}

/// Aggregate at several grouping levels in **one pass** over `input` —
/// the paper's synchronized-scan optimization for computing `Fk` and `Fj`
/// together.
pub fn multi_hash_aggregate(
    input: &Table,
    levels: &[(Vec<usize>, Vec<AggSpec>)],
    stats: &mut ExecStats,
) -> Result<Vec<Table>> {
    multi_hash_aggregate_guarded(input, levels, &ResourceGuard::unlimited(), stats)
}

/// [`multi_hash_aggregate`] under a [`ResourceGuard`]: the input scan is
/// charged morsel by morsel (so cancellation and budget exhaustion land
/// within one morsel), and every output group row is charged before
/// materialization. Parallelism follows [`ParallelConfig::from_env`].
pub fn multi_hash_aggregate_guarded(
    input: &Table,
    levels: &[(Vec<usize>, Vec<AggSpec>)],
    guard: &ResourceGuard,
    stats: &mut ExecStats,
) -> Result<Vec<Table>> {
    multi_hash_aggregate_with_config(input, levels, guard, stats, &ParallelConfig::from_env())
}

/// Scan `chunk` of `input` morsel by morsel, absorbing into `lvls`.
/// One guard charge per morsel: the charge both meters the budget and
/// observes cancellation, so a cancelled guard stops the scan within one
/// morsel on whichever worker runs this chunk.
///
/// Each level picks its execution mode once per chunk: the fused vectorized
/// pipeline where eligible, the hoisted scalar loop otherwise. The guard /
/// span cadence is identical on both, so budgets, cancellation latency, and
/// trace rollups do not depend on the kernel path.
fn scan_chunk(
    input: &Table,
    lvls: &mut [Level],
    chunk: std::ops::Range<usize>,
    guard: &ResourceGuard,
    stats: &mut ExecStats,
    config: &ParallelConfig,
    span: &mut SpanHandle,
) -> Result<()> {
    let mut execs: Vec<LevelExec> = lvls
        .iter_mut()
        .map(|lvl| lvl.begin_chunk(input, config, stats))
        .collect();
    let result = (|| -> Result<()> {
        for morsel in config.morsels(chunk) {
            guard.charge(morsel.len() as u64)?;
            span.add_morsels(1);
            span.add_rows(morsel.len() as u64);
            for (lvl, exec) in lvls.iter_mut().zip(execs.iter_mut()) {
                match exec {
                    LevelExec::Fused(fused) => fused.absorb_morsel(morsel.clone(), stats),
                    LevelExec::Scalar(slices) => {
                        stats.scalar_kernel_rows += morsel.len() as u64;
                        for row in morsel.clone() {
                            lvl.absorb(input, row, slices, stats)?;
                        }
                    }
                }
            }
        }
        Ok(())
    })();
    // Fold fused state back even on early exit, so a budget/cancellation
    // error never leaves a level with its map swapped out.
    for (lvl, exec) in lvls.iter_mut().zip(execs) {
        lvl.end_chunk(exec);
    }
    result
}

/// [`multi_hash_aggregate_guarded`] with an explicit [`ParallelConfig`].
pub fn multi_hash_aggregate_with_config(
    input: &Table,
    levels: &[(Vec<usize>, Vec<AggSpec>)],
    guard: &ResourceGuard,
    stats: &mut ExecStats,
    config: &ParallelConfig,
) -> Result<Vec<Table>> {
    for (cols, aggs) in levels {
        for &c in cols {
            if c >= input.num_columns() {
                return Err(EngineError::InvalidOperator(format!(
                    "group column {c} out of range"
                )));
            }
        }
        if aggs.is_empty() {
            return Err(EngineError::InvalidOperator(
                "aggregation requires at least one aggregate term".into(),
            ));
        }
    }
    stats.statements += 1;
    stats.holistic_lanes += levels
        .iter()
        .flat_map(|(_, aggs)| aggs)
        .filter(|s| s.func.is_holistic())
        .count() as u64;
    guard.check()?;

    let kernels: Vec<Vec<Kernel>> = levels
        .iter()
        .map(|(_, aggs)| classify_kernels(aggs, input))
        .collect();
    // Decide the group path once per level (the per-dimension domain scan
    // is O(n) for integer columns); workers clone the shared key space so
    // every partial uses the same codes and the merge can fold by code.
    let spaces: Vec<Option<DenseKeySpace>> = levels
        .iter()
        .map(|(cols, _)| DenseKeySpace::try_build(input, cols, config.dense_budget))
        .collect();
    for space in &spaces {
        if space.is_some() {
            stats.dense_group_ops += 1;
        } else {
            stats.hash_group_ops += 1;
        }
    }
    let make_levels = || -> Vec<Level> {
        levels
            .iter()
            .zip(&kernels)
            .zip(&spaces)
            .map(|(((cols, aggs), ks), space)| Level {
                group_cols: cols.clone(),
                aggs: aggs.clone(),
                kernels: ks.clone(),
                map: GroupMap::for_space(space.clone()),
                accs: Vec::new(),
            })
            .collect()
    };

    let n = input.num_rows();
    stats.rows_scanned += n as u64;
    let chunks = config.chunks(n);
    let mut span = guard.span("aggregate");

    // Plan-level kernel-path summary — the same predicate as
    // `Level::fused_coder`, evaluated once up front. Probing the coder here
    // also builds any lazy packed vectors serially, before workers race to
    // share them.
    let n_fused = levels
        .iter()
        .zip(&kernels)
        .zip(&spaces)
        .filter(|(((cols, _), ks), space)| {
            config.vector
                && !cols.is_empty()
                && !ks.iter().any(|k| matches!(k, Kernel::Generic))
                && space
                    .as_ref()
                    .is_some_and(|s| BlockCoder::try_new(input, s).is_some())
        })
        .count();
    span.set_detail(if n_fused == levels.len() {
        "vectorized"
    } else if n_fused > 0 {
        "mixed"
    } else {
        "scalar"
    });

    let mut lvls: Vec<Level> = if chunks.len() <= 1 {
        let mut lvls = make_levels();
        scan_chunk(input, &mut lvls, 0..n, guard, stats, config, &mut span)?;
        lvls
    } else {
        // Fan the contiguous chunks out over scoped workers; each builds
        // thread-local partials and its own stats. Panics are contained at
        // the thread boundary: the panicking worker cancels its siblings
        // through the shared guard (they stop at their next morsel) and the
        // panic surfaces as a typed `WorkerPanicked`, never an unwind into
        // the caller.
        type WorkerOut = Result<(Vec<Level>, ExecStats)>;
        let panicked = |p| EngineError::WorkerPanicked {
            operator: "multi_hash_aggregate".into(),
            payload: crate::error::panic_payload(p),
        };
        let worker_results: Vec<WorkerOut> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .enumerate()
                .map(|(w, chunk)| {
                    let make_levels = &make_levels;
                    let panicked = &panicked;
                    // Each worker times itself on a child span keyed by its
                    // worker index, so the merged trace orders workers
                    // deterministically regardless of close order.
                    let mut wspan = span.child("worker", w as u32);
                    s.spawn(move || -> WorkerOut {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> WorkerOut {
                            let mut lvls = make_levels();
                            let mut wstats = ExecStats::default();
                            scan_chunk(
                                input,
                                &mut lvls,
                                chunk,
                                guard,
                                &mut wstats,
                                config,
                                &mut wspan,
                            )?;
                            Ok((lvls, wstats))
                        }))
                        .unwrap_or_else(|p| {
                            guard.cancel();
                            Err(panicked(p))
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| Err(panicked(p))))
                .collect()
        });
        // A worker panic is the root cause; the Cancelled errors it induced
        // in siblings (possibly earlier in worker order) are secondary.
        if let Some(Err(e)) = worker_results
            .iter()
            .find(|r| matches!(r, Err(EngineError::WorkerPanicked { .. })))
        {
            return Err(e.clone());
        }
        // Deterministic ordered merge: worker 0's partial seeds the global
        // tables (its group order is the serial prefix order), later
        // workers fold in, in worker order.
        let mut iter = worker_results.into_iter();
        let (mut merged, wstats) = iter.next().expect("at least one worker")?;
        *stats += wstats;
        for result in iter {
            let (wl, wstats) = result?;
            *stats += wstats;
            for (dst, src) in merged.iter_mut().zip(wl) {
                dst.merge_from(src, stats)?;
            }
        }
        merged
    };

    // Global aggregates return one row even over empty input.
    for lvl in &mut lvls {
        if lvl.group_cols.is_empty() && lvl.map.is_empty() {
            lvl.map.get_or_insert_key(&[], stats);
            for spec in &lvl.aggs {
                lvl.accs.push(Acc::new(spec.func));
            }
        }
    }
    let out_rows: u64 = lvls.iter().map(|l| l.map.len() as u64).sum();
    guard.charge(out_rows)?;
    span.add_rows(out_rows);
    lvls.into_iter()
        .map(|lvl| lvl.finish(input, stats))
        .collect()
}

/// Group-by column resolution by name, shared by callers.
pub fn resolve_cols(schema: &Schema, names: &[&str]) -> Result<Vec<usize>> {
    names
        .iter()
        .map(|n| schema.index_of(n).map_err(EngineError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{Schema, Value};

    /// The paper's Table 1 fact table.
    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("state", DataType::Str),
            ("city", DataType::Str),
            ("salesAmt", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for (s, c, a) in [
            ("CA", "San Francisco", 13.0),
            ("CA", "San Francisco", 3.0),
            ("CA", "San Francisco", 67.0),
            ("CA", "Los Angeles", 23.0),
            ("TX", "Houston", 5.0),
            ("TX", "Houston", 35.0),
            ("TX", "Houston", 10.0),
            ("TX", "Houston", 14.0),
            ("TX", "Dallas", 53.0),
            ("TX", "Dallas", 32.0),
        ] {
            t.push_row(&[Value::str(s), Value::str(c), Value::Float(a)])
                .unwrap();
        }
        t
    }

    fn sum_a(t: &Table) -> AggSpec {
        AggSpec::sum_col(t.schema(), "salesAmt", "A").unwrap()
    }

    /// A table big enough to split into many small morsels, with integer
    /// values so chunked float sums are exact.
    fn big(n: usize, groups: i64) -> Table {
        let schema = Schema::from_pairs(&[
            ("g", DataType::Int),
            ("s", DataType::Str),
            ("a", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::with_capacity(schema, n);
        for i in 0..n {
            let g = (i as i64 * 7919) % groups;
            let row = [
                if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Int(g)
                },
                Value::str(format!("s{}", g % 5)),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Float((i % 100) as f64)
                },
            ];
            t.push_row(&row).unwrap();
        }
        t
    }

    fn par(threads: usize, morsel: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            morsel_rows: morsel,
            min_parallel_rows: 0,
            ..ParallelConfig::serial()
        }
    }

    #[test]
    fn fine_level_aggregation_matches_paper_example() {
        let f = sales();
        let mut st = ExecStats::default();
        let fk = hash_aggregate(&f, &[0, 1], &[sum_a(&f)], &mut st).unwrap();
        assert_eq!(fk.num_rows(), 4);
        let sorted = fk.sorted_by(&[0, 1]);
        let rows: Vec<Vec<Value>> = sorted.rows().collect();
        assert_eq!(
            rows[0],
            vec![
                Value::str("CA"),
                Value::str("Los Angeles"),
                Value::Float(23.0)
            ]
        );
        assert_eq!(
            rows[1],
            vec![
                Value::str("CA"),
                Value::str("San Francisco"),
                Value::Float(83.0)
            ]
        );
        assert_eq!(
            rows[2],
            vec![Value::str("TX"), Value::str("Dallas"), Value::Float(85.0)]
        );
        assert_eq!(
            rows[3],
            vec![Value::str("TX"), Value::str("Houston"), Value::Float(64.0)]
        );
        assert_eq!(st.rows_scanned, 10);
        assert_eq!(st.rows_materialized, 4);
    }

    #[test]
    fn coarse_from_fine_equals_coarse_from_fact() {
        // sum() is distributive: Fj from Fk == Fj from F.
        let f = sales();
        let mut st = ExecStats::default();
        let fk = hash_aggregate(&f, &[0, 1], &[sum_a(&f)], &mut st).unwrap();
        let fj_from_f = hash_aggregate(&f, &[0], &[sum_a(&f)], &mut st).unwrap();
        let spec = AggSpec::sum_col(fk.schema(), "A", "A").unwrap();
        let fj_from_fk = hash_aggregate(&fk, &[0], &[spec], &mut st).unwrap();
        let a: Vec<Vec<Value>> = fj_from_f.sorted_by(&[0]).rows().collect();
        let b: Vec<Vec<Value>> = fj_from_fk.sorted_by(&[0]).rows().collect();
        assert_eq!(a, b);
        assert_eq!(a[0], vec![Value::str("CA"), Value::Float(106.0)]);
        assert_eq!(a[1], vec![Value::str("TX"), Value::Float(149.0)]);
    }

    #[test]
    fn global_aggregation_no_group_by() {
        let f = sales();
        let mut st = ExecStats::default();
        let g = hash_aggregate(&f, &[], &[sum_a(&f)], &mut st).unwrap();
        assert_eq!(g.num_rows(), 1);
        assert_eq!(g.get(0, 0), Value::Float(255.0));
    }

    #[test]
    fn global_aggregation_over_empty_input_returns_one_null_row() {
        let f = Table::empty(sales().schema().clone());
        let mut st = ExecStats::default();
        let spec = AggSpec::sum_col(f.schema(), "salesAmt", "A").unwrap();
        let g = hash_aggregate(&f, &[], &[spec], &mut st).unwrap();
        assert_eq!(g.num_rows(), 1);
        assert_eq!(g.get(0, 0), Value::Null, "sum of nothing is NULL");
    }

    #[test]
    fn sum_skips_nulls_and_all_null_group_is_null() {
        let schema = Schema::from_pairs(&[("d", DataType::Int), ("a", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::Int(1), Value::Float(5.0)]).unwrap();
        t.push_row(&[Value::Int(1), Value::Null]).unwrap();
        t.push_row(&[Value::Int(2), Value::Null]).unwrap();
        let spec = AggSpec::sum_col(t.schema(), "a", "s").unwrap();
        let mut st = ExecStats::default();
        let out = hash_aggregate(&t, &[0], &[spec], &mut st)
            .unwrap()
            .sorted_by(&[0]);
        assert_eq!(out.get(0, 1), Value::Float(5.0));
        assert_eq!(out.get(1, 1), Value::Null);
    }

    #[test]
    fn count_vs_count_star() {
        let schema = Schema::from_pairs(&[("d", DataType::Int), ("a", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::Int(1), Value::Float(5.0)]).unwrap();
        t.push_row(&[Value::Int(1), Value::Null]).unwrap();
        let a = Expr::col(t.schema(), "a").unwrap();
        let specs = vec![
            AggSpec::new(AggFunc::Count, a.clone(), "cnt"),
            AggSpec::new(AggFunc::CountStar, Expr::lit(1), "cnt_star"),
        ];
        let mut st = ExecStats::default();
        let out = hash_aggregate(&t, &[0], &specs, &mut st).unwrap();
        assert_eq!(out.get(0, 1), Value::Int(1));
        assert_eq!(out.get(0, 2), Value::Int(2));
    }

    #[test]
    fn avg_min_max() {
        let f = sales();
        let a = Expr::col(f.schema(), "salesAmt").unwrap();
        let specs = vec![
            AggSpec::new(AggFunc::Avg, a.clone(), "avg"),
            AggSpec::new(AggFunc::Min, a.clone(), "min"),
            AggSpec::new(AggFunc::Max, a, "max"),
        ];
        let mut st = ExecStats::default();
        let out = hash_aggregate(&f, &[0], &specs, &mut st)
            .unwrap()
            .sorted_by(&[0]);
        // CA: 13,3,67,23
        assert_eq!(out.get(0, 1), Value::Float(106.0 / 4.0));
        assert_eq!(out.get(0, 2), Value::Float(3.0));
        assert_eq!(out.get(0, 3), Value::Float(67.0));
    }

    #[test]
    fn min_max_on_strings() {
        let f = sales();
        let c = Expr::col(f.schema(), "city").unwrap();
        let specs = vec![
            AggSpec::new(AggFunc::Min, c.clone(), "first_city"),
            AggSpec::new(AggFunc::Max, c, "last_city"),
        ];
        let mut st = ExecStats::default();
        let out = hash_aggregate(&f, &[0], &specs, &mut st)
            .unwrap()
            .sorted_by(&[0]);
        assert_eq!(out.get(0, 1), Value::str("Los Angeles"));
        assert_eq!(out.get(1, 2), Value::str("Houston"));
    }

    #[test]
    fn synchronized_scan_reads_input_once() {
        let f = sales();
        let mut st = ExecStats::default();
        let levels = vec![(vec![0, 1], vec![sum_a(&f)]), (vec![0], vec![sum_a(&f)])];
        let out = multi_hash_aggregate(&f, &levels, &mut st).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].num_rows(), 4);
        assert_eq!(out[1].num_rows(), 2);
        assert_eq!(st.rows_scanned, 10, "one scan for both levels");
    }

    #[test]
    fn aggregate_of_expression() {
        // sum(CASE WHEN city='Dallas' THEN A ELSE NULL END) — the horizontal
        // building block.
        let f = sales();
        let s = f.schema();
        let case = Expr::Case {
            branches: vec![(
                Expr::col(s, "city").unwrap().eq(Expr::lit("Dallas")),
                Expr::col(s, "salesAmt").unwrap(),
            )],
            else_value: None,
        };
        let spec = AggSpec::new(AggFunc::Sum, case, "dallas");
        let mut st = ExecStats::default();
        let out = hash_aggregate(&f, &[0], &[spec], &mut st)
            .unwrap()
            .sorted_by(&[0]);
        assert_eq!(out.get(0, 1), Value::Null, "CA has no Dallas rows");
        assert_eq!(out.get(1, 1), Value::Float(85.0));
        assert_eq!(st.case_condition_evals, 10, "one condition per row");
    }

    #[test]
    fn count_distinct() {
        let schema = Schema::from_pairs(&[("d", DataType::Int), ("x", DataType::Str)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        for (d, x) in [(1, "a"), (1, "a"), (1, "b"), (2, "c"), (2, "c")] {
            t.push_row(&[Value::Int(d), Value::str(x)]).unwrap();
        }
        t.push_row(&[Value::Int(2), Value::Null]).unwrap();
        let spec = AggSpec::new(
            AggFunc::CountDistinct,
            Expr::col(t.schema(), "x").unwrap(),
            "dx",
        );
        let mut st = ExecStats::default();
        let out = hash_aggregate(&t, &[0], &[spec], &mut st)
            .unwrap()
            .sorted_by(&[0]);
        assert_eq!(out.get(0, 1), Value::Int(2), "a, b");
        assert_eq!(out.get(1, 1), Value::Int(1), "c; NULL not counted");
        assert!(!AggFunc::CountDistinct.is_distributive(), "holistic");
    }

    #[test]
    fn percentile_and_sketch_aggregates_group_correctly() {
        let f = sales();
        let a = Expr::col(f.schema(), "salesAmt").unwrap();
        let specs = vec![
            AggSpec::new(AggFunc::Percentile(PBits::new(0.5)), a.clone(), "med"),
            AggSpec::new(
                AggFunc::ApproxPercentile(PBits::new(0.5)),
                a.clone(),
                "amed",
            ),
            AggSpec::new(AggFunc::ApproxCountDistinct, a, "adx"),
        ];
        let mut st = ExecStats::default();
        let out = hash_aggregate(&f, &[0], &specs, &mut st)
            .unwrap()
            .sorted_by(&[0]);
        // CA amounts: 3, 13, 23, 67 → median (13+23)/2 = 18.
        assert_eq!(out.get(0, 1), Value::Float(18.0));
        // TX amounts: 5, 10, 14, 32, 35, 53 → median (14+32)/2 = 23.
        assert_eq!(out.get(1, 1), Value::Float(23.0));
        // Tiny groups: the digest holds raw samples, so it is exact too.
        assert_eq!(out.get(0, 2), Value::Float(18.0));
        // All amounts are distinct; HLL is exact at these cardinalities.
        assert_eq!(out.get(0, 3), Value::Int(4));
        assert_eq!(out.get(1, 3), Value::Int(6));
        assert_eq!(st.holistic_lanes, 3, "three holistic lanes planned");
        assert_eq!(st.sketch_spills, 0, "nothing over budget");
        assert!(AggFunc::Percentile(PBits::new(0.5)).is_holistic());
        assert!(!AggFunc::Percentile(PBits::new(0.5)).is_distributive());
    }

    #[test]
    fn validates_inputs() {
        let f = sales();
        assert!(hash_aggregate(&f, &[99], &[sum_a(&f)], &mut ExecStats::default()).is_err());
        assert!(hash_aggregate(&f, &[0], &[], &mut ExecStats::default()).is_err());
    }

    #[test]
    fn guard_budget_stops_the_scan() {
        let f = sales();
        let mut st = ExecStats::default();
        // 10 input rows > 5-row budget: the whole table is one morsel, so
        // the first charge fails before absorbing.
        let guard = ResourceGuard::with_row_budget(5);
        let err = hash_aggregate_guarded(&f, &[0], &[sum_a(&f)], &guard, &mut st).unwrap_err();
        assert!(
            matches!(err, EngineError::BudgetExceeded { budget: 5, .. }),
            "{err}"
        );

        // 10 scanned + 2 groups fits a 12-row budget exactly.
        let guard = ResourceGuard::with_row_budget(12);
        let out = hash_aggregate_guarded(&f, &[0], &[sum_a(&f)], &guard, &mut st).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(guard.rows_charged(), 12);

        // 10 scanned + 4 groups does not fit 12: the failure comes from the
        // materialization charge, after the scan succeeded.
        let guard = ResourceGuard::with_row_budget(12);
        let err = hash_aggregate_guarded(&f, &[0, 1], &[sum_a(&f)], &guard, &mut st).unwrap_err();
        assert!(matches!(err, EngineError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn guard_cancellation_stops_the_scan() {
        let f = sales();
        let guard = ResourceGuard::with_row_budget(u64::MAX);
        guard.cancel();
        let err = hash_aggregate_guarded(&f, &[0], &[sum_a(&f)], &guard, &mut ExecStats::default())
            .unwrap_err();
        assert!(matches!(err, EngineError::Cancelled), "{err}");
    }

    #[test]
    fn distributive_classification() {
        assert!(AggFunc::Sum.is_distributive());
        assert!(AggFunc::Min.is_distributive());
        assert!(AggFunc::CountStar.is_distributive());
        assert!(!AggFunc::Avg.is_distributive(), "avg is algebraic");
        assert!(
            !AggFunc::Count.is_distributive(),
            "count re-aggregates as sum"
        );
    }

    #[test]
    fn parallel_output_identical_to_serial() {
        let t = big(10_000, 37);
        let a = Expr::Col(2);
        let specs = vec![
            AggSpec::new(AggFunc::Sum, a.clone(), "sum"),
            AggSpec::new(AggFunc::Count, a.clone(), "cnt"),
            AggSpec::new(AggFunc::CountStar, Expr::lit(1), "n"),
            AggSpec::new(AggFunc::Avg, a.clone(), "avg"),
            AggSpec::new(AggFunc::Min, a.clone(), "mn"),
            AggSpec::new(AggFunc::Max, a.clone(), "mx"),
            AggSpec::new(AggFunc::CountDistinct, Expr::Col(1), "dx"),
            AggSpec::new(AggFunc::Percentile(PBits::new(0.5)), a.clone(), "med"),
            AggSpec::new(AggFunc::Percentile(PBits::new(0.9)), a, "p90"),
            AggSpec::new(AggFunc::ApproxCountDistinct, Expr::Col(1), "adx"),
        ];
        let levels = vec![(vec![0, 1], specs.clone()), (vec![1], specs)];
        let mut serial_stats = ExecStats::default();
        let serial = multi_hash_aggregate_with_config(
            &t,
            &levels,
            &ResourceGuard::unlimited(),
            &mut serial_stats,
            &ParallelConfig::serial(),
        )
        .unwrap();
        for threads in [2, 4, 7] {
            let mut st = ExecStats::default();
            let parallel = multi_hash_aggregate_with_config(
                &t,
                &levels,
                &ResourceGuard::unlimited(),
                &mut st,
                &par(threads, 256),
            )
            .unwrap();
            for (s, p) in serial.iter().zip(&parallel) {
                let s_rows: Vec<Vec<Value>> = s.rows().collect();
                let p_rows: Vec<Vec<Value>> = p.rows().collect();
                assert_eq!(s_rows, p_rows, "threads={threads}");
            }
            assert_eq!(st.rows_scanned, serial_stats.rows_scanned);
        }
    }

    #[test]
    fn traced_scan_counts_every_row_exactly_once() {
        use crate::clock::SystemClock;
        use pa_obs::Tracer;
        let t = big(8_192, 13);
        let specs = vec![AggSpec::new(AggFunc::Sum, Expr::Col(2), "s")];
        for (threads, expect_workers) in [(1, 0), (4, 4)] {
            let tracer = Tracer::enabled(SystemClock::shared());
            let root = tracer.span("query");
            let guard = ResourceGuard::counting().with_tracer(tracer.clone());
            hash_aggregate_with_config(
                &t,
                &[0],
                &specs,
                &guard,
                &mut ExecStats::default(),
                &par(threads, 256),
            )
            .unwrap();
            root.finish();
            let report = tracer.take_report();
            let agg = report
                .spans()
                .iter()
                .find(|s| s.label == "aggregate")
                .expect("aggregate span recorded");
            let workers: Vec<_> = report.children(agg.id).collect();
            assert_eq!(workers.len(), expect_workers, "threads={threads}");
            // Scanned rows plus the 13 emitted groups — mirroring exactly
            // what the guard charges, so a trace ties out to rows_charged.
            assert_eq!(
                report.rows_inclusive(agg.id),
                8_192 + 13,
                "threads={threads}: every input row and output group counted once"
            );
            assert_eq!(report.morsels_inclusive(agg.id), 8_192 / 256);
            // Worker order in the report is the deterministic merge order.
            let ordinals: Vec<_> = workers.iter().map(|w| w.ordinal.unwrap()).collect();
            assert_eq!(ordinals, (0..expect_workers as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_budget_trips_mid_scan_on_the_shared_meter() {
        let t = big(20_000, 11);
        // Budget admits a few morsels, nowhere near the full scan: some
        // worker's charge must trip it mid-flight.
        let guard = ResourceGuard::with_row_budget(1_000);
        let err = hash_aggregate_with_config(
            &t,
            &[0],
            &[AggSpec::new(AggFunc::Sum, Expr::Col(2), "s")],
            &guard,
            &mut ExecStats::default(),
            &par(4, 128),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExceeded { .. }), "{err}");
        assert!(
            guard.rows_charged() < 20_000,
            "scan stopped early, charged {}",
            guard.rows_charged()
        );
    }

    #[test]
    fn precancelled_guard_stops_every_parallel_worker_at_first_morsel() {
        let t = big(20_000, 11);
        let guard = ResourceGuard::with_row_budget(u64::MAX);
        guard.cancel();
        let err = hash_aggregate_with_config(
            &t,
            &[0],
            &[AggSpec::new(AggFunc::Sum, Expr::Col(2), "s")],
            &guard,
            &mut ExecStats::default(),
            &par(4, 128),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Cancelled), "{err}");
        assert_eq!(guard.rows_charged(), 0, "no morsel was admitted");
    }

    #[test]
    fn typed_kernel_handles_int_columns_and_null_groups() {
        let schema = Schema::from_pairs(&[("g", DataType::Int), ("a", DataType::Int)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        for (g, a) in [(Some(1), Some(10)), (Some(1), None), (None, Some(7))] {
            t.push_row(&[
                g.map_or(Value::Null, Value::Int),
                a.map_or(Value::Null, Value::Int),
            ])
            .unwrap();
        }
        let a = Expr::Col(1);
        let specs = vec![
            AggSpec::new(AggFunc::Sum, a.clone(), "s"),
            AggSpec::new(AggFunc::Avg, a.clone(), "m"),
            AggSpec::new(AggFunc::Count, a, "c"),
        ];
        let out = hash_aggregate(&t, &[0], &specs, &mut ExecStats::default())
            .unwrap()
            .sorted_by(&[0]);
        // NULL group first.
        assert_eq!(out.get(0, 1), Value::Float(7.0));
        assert_eq!(out.get(1, 1), Value::Float(10.0));
        assert_eq!(out.get(1, 2), Value::Float(10.0));
        assert_eq!(out.get(1, 3), Value::Int(1));
    }
}
