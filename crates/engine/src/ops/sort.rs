//! Multi-key sort.
//!
//! Two uses: presenting result rows "in the order given by GROUP BY"
//! (SIGMOD §3.1), and partitioning rows for the OLAP window baseline the way
//! a 2004 optimizer evaluated `OVER (PARTITION BY ...)` — by sorting. Sort
//! comparisons are accounted because they are the dominant cost of that
//! baseline.

use crate::error::{EngineError, Result};
use crate::stats::ExecStats;
use pa_storage::Table;
use std::cmp::Ordering;

/// Row order of `input` sorted ascending by `cols` (NULLs first). Returns
/// the permutation; use [`sort`] for a materialized table.
pub fn sort_permutation(
    input: &Table,
    cols: &[usize],
    stats: &mut ExecStats,
) -> Result<Vec<usize>> {
    if cols.is_empty() {
        return Err(EngineError::InvalidOperator(
            "sort needs at least one key column".into(),
        ));
    }
    for &c in cols {
        if c >= input.num_columns() {
            return Err(EngineError::InvalidOperator(format!(
                "sort column {c} out of range"
            )));
        }
    }
    let mut order: Vec<usize> = (0..input.num_rows()).collect();
    let mut comparisons: u64 = 0;
    order.sort_by(|&a, &b| {
        for &c in cols {
            comparisons += 1;
            let cmp = input.column(c).get(a).total_cmp(&input.column(c).get(b));
            if cmp != Ordering::Equal {
                return cmp;
            }
        }
        Ordering::Equal
    });
    stats.sort_comparisons += comparisons;
    Ok(order)
}

/// Materialize `input` sorted by `cols`.
pub fn sort(input: &Table, cols: &[usize], stats: &mut ExecStats) -> Result<Table> {
    stats.statements += 1;
    stats.rows_scanned += input.num_rows() as u64;
    let order = sort_permutation(input, cols, stats)?;
    stats.rows_materialized += order.len() as u64;
    Ok(input.take(&order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::{DataType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("s", DataType::Str), ("n", DataType::Int)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        for (s, n) in [("b", 2), ("a", 9), ("b", 1), ("a", 3)] {
            t.push_row(&[Value::str(s), Value::Int(n)]).unwrap();
        }
        t
    }

    #[test]
    fn sorts_by_multiple_keys() {
        let t = table();
        let mut st = ExecStats::default();
        let out = sort(&t, &[0, 1], &mut st).unwrap();
        let rows: Vec<Vec<Value>> = out.rows().collect();
        assert_eq!(rows[0], vec![Value::str("a"), Value::Int(3)]);
        assert_eq!(rows[1], vec![Value::str("a"), Value::Int(9)]);
        assert_eq!(rows[2], vec![Value::str("b"), Value::Int(1)]);
        assert_eq!(rows[3], vec![Value::str("b"), Value::Int(2)]);
        assert!(st.sort_comparisons > 0);
    }

    #[test]
    fn permutation_matches_sort() {
        let t = table();
        let mut st = ExecStats::default();
        let perm = sort_permutation(&t, &[1], &mut st).unwrap();
        assert_eq!(perm, vec![2, 0, 3, 1]);
    }

    #[test]
    fn validates_columns() {
        let t = table();
        assert!(sort(&t, &[], &mut ExecStats::default()).is_err());
        assert!(sort(&t, &[7], &mut ExecStats::default()).is_err());
    }
}
