//! Window functions: `agg(measure) OVER (PARTITION BY cols)`.
//!
//! This is the **baseline** the paper compares against (SIGMOD §4.2): the
//! SQL-99 OLAP extension computes a partition aggregate *per input row*.
//! Faithful to how a 2004 optimizer evaluated it, the operator sorts the
//! input on the partition key (its "own temporary tables and indexes"),
//! computes one aggregate per run, then materializes an `n`-row result with
//! the aggregate replicated onto every row. Operating at row granularity on
//! all of `F` — rather than group granularity — is exactly where the
//! order-of-magnitude gap in Table 6 comes from.

use crate::error::{EngineError, Result};
use crate::ops::aggregate::AggFunc;
use crate::ops::sort::sort_permutation;
use crate::stats::ExecStats;
use pa_storage::{DataType, Field, Schema, Table, Value};

/// Append a window-aggregate column named `out_name` to `input`:
/// `func(measure_col) OVER (PARTITION BY partition_cols)`.
///
/// The result table contains all input columns plus the new column, with
/// rows in partition order (the order the sort-based plan produces).
/// An empty `partition_cols` treats the whole input as one partition.
pub fn window_aggregate(
    input: &Table,
    partition_cols: &[usize],
    func: AggFunc,
    measure_col: usize,
    out_name: &str,
    stats: &mut ExecStats,
) -> Result<Table> {
    if measure_col >= input.num_columns() {
        return Err(EngineError::InvalidOperator(format!(
            "measure column {measure_col} out of range"
        )));
    }
    for &c in partition_cols {
        if c >= input.num_columns() {
            return Err(EngineError::InvalidOperator(format!(
                "partition column {c} out of range"
            )));
        }
    }
    stats.statements += 1;
    let n = input.num_rows();
    stats.rows_scanned += n as u64;

    // Phase 1: sort rows into partition order (the optimizer's spool).
    let order: Vec<usize> = if partition_cols.is_empty() {
        (0..n).collect()
    } else {
        sort_permutation(input, partition_cols, stats)?
    };

    // Phase 2: one pass over runs, computing the aggregate per partition.
    let mut agg_values: Vec<Value> = Vec::with_capacity(n);
    let mut run_start = 0;
    while run_start < n {
        let mut run_end = run_start + 1;
        while run_end < n && same_key(input, partition_cols, order[run_start], order[run_end]) {
            run_end += 1;
        }
        let agg = aggregate_run(input, &order[run_start..run_end], func, measure_col)?;
        for _ in run_start..run_end {
            agg_values.push(agg.clone());
        }
        run_start = run_end;
    }

    // Phase 3: materialize the n-row result (the expensive part at scale).
    let mut fields: Vec<Field> = input.schema().fields().to_vec();
    let out_type = match func {
        AggFunc::Sum | AggFunc::Avg | AggFunc::Percentile(_) | AggFunc::ApproxPercentile(_) => {
            DataType::Float
        }
        AggFunc::Count
        | AggFunc::CountDistinct
        | AggFunc::CountStar
        | AggFunc::ApproxCountDistinct => DataType::Int,
        AggFunc::Min | AggFunc::Max => input.schema().field_at(measure_col).dtype,
    };
    fields.push(Field::new(out_name.to_string(), out_type));
    let schema = Schema::new(fields)?.into_shared();
    let mut columns: Vec<pa_storage::Column> =
        input.columns().iter().map(|c| c.take(&order)).collect();
    let mut agg_col = pa_storage::Column::with_capacity(out_type, n);
    for v in agg_values {
        agg_col.push(v)?;
    }
    columns.push(agg_col);
    stats.rows_materialized += n as u64;
    Ok(Table::from_columns(schema, columns)?)
}

fn same_key(t: &Table, cols: &[usize], a: usize, b: usize) -> bool {
    cols.iter()
        .all(|&c| t.column(c).get(a).key_eq(&t.column(c).get(b)))
}

fn aggregate_run(t: &Table, rows: &[usize], func: AggFunc, col: usize) -> Result<Value> {
    match func {
        AggFunc::CountStar => Ok(Value::Int(rows.len() as i64)),
        AggFunc::Count => Ok(Value::Int(
            rows.iter().filter(|&&r| t.column(col).is_valid(r)).count() as i64,
        )),
        AggFunc::CountDistinct => {
            let mut seen: pa_storage::FxHashSet<Value> = Default::default();
            for &r in rows {
                let v = t.column(col).get(r);
                if !v.is_null() {
                    seen.insert(v);
                }
            }
            Ok(Value::Int(seen.len() as i64))
        }
        AggFunc::Sum | AggFunc::Avg => {
            let mut sum = 0.0;
            let mut cnt = 0i64;
            for &r in rows {
                if let Some(x) = t.column(col).get_f64(r) {
                    sum += x;
                    cnt += 1;
                } else if t.column(col).is_valid(r) {
                    return Err(EngineError::ExprType("window sum of non-numeric".into()));
                }
            }
            if cnt == 0 {
                Ok(Value::Null)
            } else if func == AggFunc::Sum {
                Ok(Value::Float(sum))
            } else {
                Ok(Value::Float(sum / cnt as f64))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best = Value::Null;
            for &r in rows {
                let v = t.column(col).get(r);
                if v.is_null() {
                    continue;
                }
                let better = best.is_null()
                    || (func == AggFunc::Min && v.total_cmp(&best) == std::cmp::Ordering::Less)
                    || (func == AggFunc::Max && v.total_cmp(&best) == std::cmp::Ordering::Greater);
                if better {
                    best = v;
                }
            }
            Ok(best)
        }
        AggFunc::Percentile(_) | AggFunc::ApproxPercentile(_) | AggFunc::ApproxCountDistinct => {
            // The holistic functions run through the shared accumulator
            // protocol rather than a bespoke run loop.
            let mut acc = crate::ops::acc::Acc::new(func);
            for &r in rows {
                acc.update(&t.column(col).get(r))?;
            }
            Ok(acc.finish())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_storage::Schema;

    fn sales() -> Table {
        let schema = Schema::from_pairs(&[
            ("state", DataType::Str),
            ("city", DataType::Str),
            ("a", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema);
        for (s, c, a) in [
            ("TX", "Houston", 5.0),
            ("CA", "SF", 13.0),
            ("TX", "Dallas", 53.0),
            ("CA", "SF", 3.0),
            ("TX", "Houston", 35.0),
        ] {
            t.push_row(&[Value::str(s), Value::str(c), Value::Float(a)])
                .unwrap();
        }
        t
    }

    #[test]
    fn sum_over_partition_replicates_totals() {
        let t = sales();
        let mut st = ExecStats::default();
        let out = window_aggregate(&t, &[0], AggFunc::Sum, 2, "total", &mut st).unwrap();
        assert_eq!(out.num_rows(), 5, "one output row per input row");
        assert_eq!(out.num_columns(), 4);
        // Partition order: CA rows then TX rows.
        assert_eq!(out.get(0, 0), Value::str("CA"));
        assert_eq!(out.get(0, 3), Value::Float(16.0));
        assert_eq!(out.get(1, 3), Value::Float(16.0));
        assert_eq!(out.get(2, 3), Value::Float(93.0));
        assert_eq!(out.get(4, 3), Value::Float(93.0));
        assert!(st.sort_comparisons > 0, "sort-based plan");
        assert_eq!(st.rows_materialized, 5);
    }

    #[test]
    fn empty_partition_list_is_global_window() {
        let t = sales();
        let mut st = ExecStats::default();
        let out = window_aggregate(&t, &[], AggFunc::Sum, 2, "total", &mut st).unwrap();
        for i in 0..out.num_rows() {
            assert_eq!(out.get(i, 3), Value::Float(109.0));
        }
    }

    #[test]
    fn count_and_avg_windows() {
        let t = sales();
        let mut st = ExecStats::default();
        let cnt = window_aggregate(&t, &[0], AggFunc::CountStar, 2, "n", &mut st).unwrap();
        assert_eq!(cnt.get(0, 3), Value::Int(2)); // CA
        assert_eq!(cnt.get(2, 3), Value::Int(3)); // TX
        let avg = window_aggregate(&t, &[0], AggFunc::Avg, 2, "m", &mut st).unwrap();
        assert_eq!(avg.get(0, 3), Value::Float(8.0));
    }

    #[test]
    fn null_measures_are_skipped() {
        let schema = Schema::from_pairs(&[("d", DataType::Int), ("a", DataType::Float)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        t.push_row(&[Value::Int(1), Value::Null]).unwrap();
        t.push_row(&[Value::Int(1), Value::Float(4.0)]).unwrap();
        t.push_row(&[Value::Int(2), Value::Null]).unwrap();
        let mut st = ExecStats::default();
        let out = window_aggregate(&t, &[0], AggFunc::Sum, 1, "s", &mut st).unwrap();
        assert_eq!(out.get(0, 2), Value::Float(4.0));
        assert_eq!(
            out.get(2, 2),
            Value::Null,
            "all-NULL partition sums to NULL"
        );
    }

    #[test]
    fn median_window_replicates_partition_median() {
        use crate::ops::aggregate::PBits;
        let t = sales();
        let mut st = ExecStats::default();
        let out = window_aggregate(
            &t,
            &[0],
            AggFunc::Percentile(PBits::new(0.5)),
            2,
            "med",
            &mut st,
        )
        .unwrap();
        // CA: 3, 13 → 8.0; TX: 5, 35, 53 → 35.0.
        assert_eq!(out.get(0, 3), Value::Float(8.0));
        assert_eq!(out.get(2, 3), Value::Float(35.0));
    }

    #[test]
    fn validates_columns() {
        let t = sales();
        let mut st = ExecStats::default();
        assert!(window_aggregate(&t, &[9], AggFunc::Sum, 2, "x", &mut st).is_err());
        assert!(window_aggregate(&t, &[0], AggFunc::Sum, 9, "x", &mut st).is_err());
    }
}
