//! Engine error type.

use pa_storage::StorageError;
use std::fmt;

/// Errors raised by the execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// An expression applied an operator to incompatible values.
    ExprType(String),
    /// An operator was invoked with inconsistent arguments
    /// (mismatched key arity, unknown columns, ...).
    InvalidOperator(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::ExprType(msg) => write!(f, "expression type error: {msg}"),
            EngineError::InvalidOperator(msg) => write!(f, "invalid operator: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Convenience alias used across the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_storage_errors() {
        let e: EngineError = StorageError::TableNotFound("F".into()).into();
        assert_eq!(e.to_string(), "storage: table not found: F");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn expr_type_display() {
        let e = EngineError::ExprType("cannot add Str".into());
        assert!(e.to_string().contains("cannot add Str"));
    }
}
