//! Engine error type.

use pa_storage::StorageError;
use std::fmt;

/// Errors raised by the execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// An expression applied an operator to incompatible values.
    ExprType(String),
    /// An operator was invoked with inconsistent arguments
    /// (mismatched key arity, unknown columns, ...).
    InvalidOperator(String),
    /// A [`crate::ResourceGuard`] row budget was exhausted mid-plan.
    BudgetExceeded {
        /// The configured ceiling, in rows of work.
        budget: u64,
        /// The running total that tripped it.
        attempted: u64,
    },
    /// Cooperative cancellation was requested through a
    /// [`crate::ResourceGuard`].
    Cancelled,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::ExprType(msg) => write!(f, "expression type error: {msg}"),
            EngineError::InvalidOperator(msg) => write!(f, "invalid operator: {msg}"),
            EngineError::BudgetExceeded { budget, attempted } => write!(
                f,
                "row budget exceeded: plan needed {attempted} rows of work, budget is {budget}"
            ),
            EngineError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Convenience alias used across the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_storage_errors() {
        let e: EngineError = StorageError::TableNotFound("F".into()).into();
        assert_eq!(e.to_string(), "storage: table not found: F");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn expr_type_display() {
        let e = EngineError::ExprType("cannot add Str".into());
        assert!(e.to_string().contains("cannot add Str"));
    }

    #[test]
    fn guard_errors_display() {
        let e = EngineError::BudgetExceeded {
            budget: 100,
            attempted: 150,
        };
        assert!(e.to_string().contains("100"), "{e}");
        assert!(e.to_string().contains("150"), "{e}");
        assert!(EngineError::Cancelled.to_string().contains("cancelled"));
    }
}
