//! Engine error type.

use pa_storage::StorageError;
use std::fmt;

/// Errors raised by the execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// An expression applied an operator to incompatible values.
    ExprType(String),
    /// An operator was invoked with inconsistent arguments
    /// (mismatched key arity, unknown columns, ...).
    InvalidOperator(String),
    /// A [`crate::ResourceGuard`] row budget was exhausted mid-plan.
    BudgetExceeded {
        /// The configured ceiling, in rows of work.
        budget: u64,
        /// The running total that tripped it.
        attempted: u64,
    },
    /// Cooperative cancellation was requested through a
    /// [`crate::ResourceGuard`].
    Cancelled,
    /// A [`crate::ResourceGuard`] wall-clock deadline passed mid-plan.
    /// Durations are carried as whole milliseconds to keep the error
    /// `Clone + Eq`.
    DeadlineExceeded {
        /// Wall time the query had consumed when the trip was observed.
        elapsed_ms: u64,
        /// The configured allowance.
        limit_ms: u64,
    },
    /// A parallel worker thread panicked. The panic was caught at the
    /// thread boundary, sibling workers were cancelled through the shared
    /// guard, and the panic is reported as this typed error instead of
    /// unwinding into (and poisoning) the caller.
    WorkerPanicked {
        /// Which operator's worker pool caught the panic.
        operator: String,
        /// The stringified panic payload.
        payload: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::ExprType(msg) => write!(f, "expression type error: {msg}"),
            EngineError::InvalidOperator(msg) => write!(f, "invalid operator: {msg}"),
            EngineError::BudgetExceeded { budget, attempted } => write!(
                f,
                "row budget exceeded: plan needed {attempted} rows of work, budget is {budget}"
            ),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::DeadlineExceeded {
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms}ms elapsed against a {limit_ms}ms allowance"
            ),
            EngineError::WorkerPanicked { operator, payload } => {
                write!(f, "worker panicked in {operator}: {payload}")
            }
        }
    }
}

/// Render a caught panic payload for [`EngineError::WorkerPanicked`].
pub fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Convenience alias used across the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_storage_errors() {
        let e: EngineError = StorageError::TableNotFound("F".into()).into();
        assert_eq!(e.to_string(), "storage: table not found: F");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn expr_type_display() {
        let e = EngineError::ExprType("cannot add Str".into());
        assert!(e.to_string().contains("cannot add Str"));
    }

    #[test]
    fn guard_errors_display() {
        let e = EngineError::BudgetExceeded {
            budget: 100,
            attempted: 150,
        };
        assert!(e.to_string().contains("100"), "{e}");
        assert!(e.to_string().contains("150"), "{e}");
        assert!(EngineError::Cancelled.to_string().contains("cancelled"));
        let e = EngineError::DeadlineExceeded {
            elapsed_ms: 120,
            limit_ms: 100,
        };
        assert!(e.to_string().contains("120"), "{e}");
        assert!(e.to_string().contains("100"), "{e}");
        let e = EngineError::WorkerPanicked {
            operator: "multi_hash_aggregate".into(),
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("multi_hash_aggregate"), "{e}");
        assert!(e.to_string().contains("boom"), "{e}");
    }

    #[test]
    fn panic_payloads_stringify() {
        let p = std::panic::catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_payload(p), "literal");
        let msg = format!("formatted {}", 7);
        let p = std::panic::catch_unwind(|| panic!("{msg}")).unwrap_err();
        assert_eq!(panic_payload(p), "formatted 7");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42u8)).unwrap_err();
        assert_eq!(panic_payload(p), "non-string panic payload");
    }
}
