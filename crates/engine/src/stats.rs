//! Execution statistics.
//!
//! The paper's comparisons hinge on *work*: scans of `F`, CASE conditions
//! evaluated per row, rows materialized into temporaries, per-row UPDATE
//! records. Operators account their work here so tests can assert cost
//! *shape* (e.g. "direct CASE evaluates N conditions per row of F") instead
//! of only trusting wall-clock.

use std::fmt;
use std::ops::AddAssign;

/// Work counters accumulated while executing a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Input rows read by scans/aggregations/joins.
    pub rows_scanned: u64,
    /// Rows written into result or temporary tables.
    pub rows_materialized: u64,
    /// Hash-table probes performed (group lookup, join probe, index probe).
    pub hash_probes: u64,
    /// Rows inserted into hash tables (group-by build, join build).
    pub hash_build_rows: u64,
    /// CASE WHEN conditions evaluated.
    pub case_condition_evals: u64,
    /// Rows updated in place.
    pub rows_updated: u64,
    /// Comparisons performed by sort operators.
    pub sort_comparisons: u64,
    /// SQL-statement-equivalent steps executed (matches the paper's
    /// "overhead from at least five SQL statements" accounting).
    pub statements: u64,
    /// WAL records written while this plan ran.
    pub wal_records: u64,
    /// WAL bytes written while this plan ran.
    pub wal_bytes: u64,
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.rows_scanned += rhs.rows_scanned;
        self.rows_materialized += rhs.rows_materialized;
        self.hash_probes += rhs.hash_probes;
        self.hash_build_rows += rhs.hash_build_rows;
        self.case_condition_evals += rhs.case_condition_evals;
        self.rows_updated += rhs.rows_updated;
        self.sort_comparisons += rhs.sort_comparisons;
        self.statements += rhs.statements;
        self.wal_records += rhs.wal_records;
        self.wal_bytes += rhs.wal_bytes;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} materialized={} probes={} built={} case_evals={} updated={} sort_cmps={} stmts={} wal_recs={} wal_bytes={}",
            self.rows_scanned,
            self.rows_materialized,
            self.hash_probes,
            self.hash_build_rows,
            self.case_condition_evals,
            self.rows_updated,
            self.sort_comparisons,
            self.statements,
            self.wal_records,
            self.wal_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = ExecStats {
            rows_scanned: 1,
            rows_materialized: 2,
            hash_probes: 3,
            hash_build_rows: 4,
            case_condition_evals: 5,
            rows_updated: 6,
            sort_comparisons: 7,
            statements: 8,
            wal_records: 9,
            wal_bytes: 10,
        };
        a += a;
        assert_eq!(a.rows_scanned, 2);
        assert_eq!(a.wal_bytes, 20);
        assert_eq!(a.statements, 16);
    }

    #[test]
    fn display_mentions_every_counter() {
        let s = ExecStats::default().to_string();
        for key in [
            "scanned",
            "materialized",
            "probes",
            "case_evals",
            "updated",
            "stmts",
            "wal_recs",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
