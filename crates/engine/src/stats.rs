//! Execution statistics.
//!
//! The paper's comparisons hinge on *work*: scans of `F`, CASE conditions
//! evaluated per row, rows materialized into temporaries, per-row UPDATE
//! records. Operators account their work here so tests can assert cost
//! *shape* (e.g. "direct CASE evaluates N conditions per row of F") instead
//! of only trusting wall-clock.
//!
//! Since the serving layer landed, stats also carry fault-tolerance
//! observability: total guard charges ([`ExecStats::rows_charged`]), what
//! the degradation ladder changed ([`ExecStats::degraded_to`]), and why a
//! first attempt aborted ([`ExecStats::abort_cause`]).

use std::fmt;
use std::ops::AddAssign;

/// What the serving layer's degradation ladder changed before this result
/// was produced (None in the common, undegraded case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// The query was retried with the morsel-parallel layer forced serial.
    Serial,
    /// A CASE horizontal strategy was swapped for its SPJ counterpart.
    SpjFallback,
    /// Both rungs were taken: serial retry, then the SPJ strategy.
    SerialThenSpj,
}

impl Degradation {
    /// Short label for displays and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Degradation::Serial => "serial",
            Degradation::SpjFallback => "spj",
            Degradation::SerialThenSpj => "serial+spj",
        }
    }
}

/// Why an attempt at this query aborted (the cause of the *first* failure
/// when the result came from a degraded retry, or of the final failure when
/// the query never succeeded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// The row budget ran out.
    Budget,
    /// The wall-clock deadline passed.
    Deadline,
    /// Cooperative cancellation.
    Cancelled,
    /// A worker thread panicked and was contained.
    WorkerPanic,
    /// The storage layer failed (WAL device, catalog).
    Storage,
}

impl AbortCause {
    /// Short label for displays and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AbortCause::Budget => "budget",
            AbortCause::Deadline => "deadline",
            AbortCause::Cancelled => "cancelled",
            AbortCause::WorkerPanic => "worker-panic",
            AbortCause::Storage => "storage",
        }
    }
}

/// Work counters accumulated while executing a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Input rows read by scans/aggregations/joins.
    pub rows_scanned: u64,
    /// Rows written into result or temporary tables.
    pub rows_materialized: u64,
    /// Hash-table probes performed (group lookup, join probe, index probe).
    pub hash_probes: u64,
    /// Rows inserted into hash tables (group-by build, join build).
    pub hash_build_rows: u64,
    /// CASE WHEN conditions evaluated.
    pub case_condition_evals: u64,
    /// Rows updated in place.
    pub rows_updated: u64,
    /// Comparisons performed by sort operators.
    pub sort_comparisons: u64,
    /// SQL-statement-equivalent steps executed (matches the paper's
    /// "overhead from at least five SQL statements" accounting).
    pub statements: u64,
    /// WAL records written while this plan ran.
    pub wal_records: u64,
    /// WAL bytes written while this plan ran.
    pub wal_bytes: u64,
    /// Rows charged against the query's [`crate::ResourceGuard`] — the
    /// metered total the budget was enforced over (scan morsels plus
    /// materialized group rows), as rolled up by the per-query guard.
    pub rows_charged: u64,
    /// Aggregation passes (group maps and dispatch tables) that took the
    /// dense direct-addressed code path (DESIGN.md §10).
    pub dense_group_ops: u64,
    /// Aggregation passes that fell back to the hash group path.
    pub hash_group_ops: u64,
    /// Combination-catalog lookups answered from cache (the `SELECT
    /// DISTINCT` discovery pass was skipped).
    pub combo_cache_hits: u64,
    /// Combination-catalog lookups that missed and ran the discovery pass.
    pub combo_cache_misses: u64,
    /// Rows scanned through the fused vectorized kernels (DESIGN.md §12):
    /// block unpack → composite code → dense scatter, no per-row dispatch.
    pub vectorized_kernel_rows: u64,
    /// Rows scanned through the scalar per-row fallback of a path that
    /// *could* vectorize (ineligible columns, disabled via `PA_VECTOR=0`).
    pub scalar_kernel_rows: u64,
    /// RLE runs absorbed by the run-level fast path (one group lookup and
    /// register-resident accumulation per run).
    pub rle_runs: u64,
    /// Widest bit-packed dimension read by the vectorized kernels, in bits
    /// (0 when no packed dimension was read; max-merged, not summed).
    pub pack_width: u64,
    /// Holistic aggregate lanes planned (percentile, count(DISTINCT),
    /// sketch aggregates) — the lanes whose partials carry more than a
    /// few scalars (DESIGN.md §14).
    pub holistic_lanes: u64,
    /// Exact-percentile group states that outgrew `PA_PERCENTILE_BUDGET`
    /// and spilled to a t-digest (the result is approximate for those
    /// groups).
    pub sketch_spills: u64,
    /// What the degradation ladder changed, when this result came from a
    /// degraded retry.
    pub degraded_to: Option<Degradation>,
    /// Why the first attempt aborted, when there was a failed attempt.
    pub abort_cause: Option<AbortCause>,
}

impl AddAssign for ExecStats {
    fn add_assign(&mut self, rhs: ExecStats) {
        self.rows_scanned += rhs.rows_scanned;
        self.rows_materialized += rhs.rows_materialized;
        self.hash_probes += rhs.hash_probes;
        self.hash_build_rows += rhs.hash_build_rows;
        self.case_condition_evals += rhs.case_condition_evals;
        self.rows_updated += rhs.rows_updated;
        self.sort_comparisons += rhs.sort_comparisons;
        self.statements += rhs.statements;
        self.wal_records += rhs.wal_records;
        self.wal_bytes += rhs.wal_bytes;
        self.rows_charged += rhs.rows_charged;
        self.dense_group_ops += rhs.dense_group_ops;
        self.hash_group_ops += rhs.hash_group_ops;
        self.combo_cache_hits += rhs.combo_cache_hits;
        self.combo_cache_misses += rhs.combo_cache_misses;
        self.vectorized_kernel_rows += rhs.vectorized_kernel_rows;
        self.scalar_kernel_rows += rhs.scalar_kernel_rows;
        self.rle_runs += rhs.rle_runs;
        self.holistic_lanes += rhs.holistic_lanes;
        self.sketch_spills += rhs.sketch_spills;
        // Width is a property of the widest dimension read, not a volume:
        // merging worker stats keeps the max.
        self.pack_width = self.pack_width.max(rhs.pack_width);
        // Markers: first set wins, so folding partial stats into a query
        // total never erases what the service recorded.
        self.degraded_to = self.degraded_to.or(rhs.degraded_to);
        self.abort_cause = self.abort_cause.or(rhs.abort_cause);
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} materialized={} probes={} built={} case_evals={} updated={} sort_cmps={} stmts={} wal_recs={} wal_bytes={} charged={} dense_ops={} hash_ops={} combo_hits={} combo_misses={} vec_rows={} scalar_rows={} rle_runs={} pack_width={} holistic_lanes={} sketch_spills={} degraded={} abort={}",
            self.rows_scanned,
            self.rows_materialized,
            self.hash_probes,
            self.hash_build_rows,
            self.case_condition_evals,
            self.rows_updated,
            self.sort_comparisons,
            self.statements,
            self.wal_records,
            self.wal_bytes,
            self.rows_charged,
            self.dense_group_ops,
            self.hash_group_ops,
            self.combo_cache_hits,
            self.combo_cache_misses,
            self.vectorized_kernel_rows,
            self.scalar_kernel_rows,
            self.rle_runs,
            self.pack_width,
            self.holistic_lanes,
            self.sketch_spills,
            self.degraded_to.map_or("none", |d| d.label()),
            self.abort_cause.map_or("none", |c| c.label()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = ExecStats {
            rows_scanned: 1,
            rows_materialized: 2,
            hash_probes: 3,
            hash_build_rows: 4,
            case_condition_evals: 5,
            rows_updated: 6,
            sort_comparisons: 7,
            statements: 8,
            wal_records: 9,
            wal_bytes: 10,
            rows_charged: 11,
            dense_group_ops: 12,
            hash_group_ops: 13,
            combo_cache_hits: 14,
            combo_cache_misses: 15,
            vectorized_kernel_rows: 16,
            scalar_kernel_rows: 17,
            rle_runs: 18,
            pack_width: 19,
            holistic_lanes: 20,
            sketch_spills: 21,
            degraded_to: None,
            abort_cause: None,
        };
        a += a;
        assert_eq!(a.rows_scanned, 2);
        assert_eq!(a.wal_bytes, 20);
        assert_eq!(a.statements, 16);
        assert_eq!(a.rows_charged, 22);
        assert_eq!(a.dense_group_ops, 24);
        assert_eq!(a.hash_group_ops, 26);
        assert_eq!(a.combo_cache_hits, 28);
        assert_eq!(a.combo_cache_misses, 30);
        assert_eq!(a.vectorized_kernel_rows, 32);
        assert_eq!(a.scalar_kernel_rows, 34);
        assert_eq!(a.rle_runs, 36);
        assert_eq!(a.pack_width, 19, "width max-merges, it does not sum");
        assert_eq!(a.holistic_lanes, 40);
        assert_eq!(a.sketch_spills, 42);
    }

    #[test]
    fn pack_width_merges_by_max() {
        let mut a = ExecStats {
            pack_width: 7,
            ..ExecStats::default()
        };
        a += ExecStats {
            pack_width: 3,
            ..ExecStats::default()
        };
        assert_eq!(a.pack_width, 7);
        a += ExecStats {
            pack_width: 12,
            ..ExecStats::default()
        };
        assert_eq!(a.pack_width, 12);
    }

    #[test]
    fn markers_stick_across_accumulation() {
        let mut total = ExecStats {
            degraded_to: Some(Degradation::Serial),
            abort_cause: Some(AbortCause::Budget),
            ..ExecStats::default()
        };
        total += ExecStats {
            degraded_to: Some(Degradation::SpjFallback),
            abort_cause: Some(AbortCause::Deadline),
            ..ExecStats::default()
        };
        assert_eq!(total.degraded_to, Some(Degradation::Serial), "first wins");
        assert_eq!(total.abort_cause, Some(AbortCause::Budget));
        let mut fresh = ExecStats::default();
        fresh += total;
        assert_eq!(fresh.degraded_to, Some(Degradation::Serial), "absorbed");
    }

    #[test]
    fn display_mentions_every_counter() {
        let s = ExecStats::default().to_string();
        for key in [
            "scanned",
            "materialized",
            "probes",
            "case_evals",
            "updated",
            "stmts",
            "wal_recs",
            "charged",
            "dense_ops",
            "hash_ops",
            "combo_hits",
            "combo_misses",
            "vec_rows",
            "scalar_rows",
            "rle_runs",
            "pack_width",
            "holistic_lanes",
            "sketch_spills",
            "degraded",
            "abort",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        let s = ExecStats {
            degraded_to: Some(Degradation::SerialThenSpj),
            abort_cause: Some(AbortCause::WorkerPanic),
            ..ExecStats::default()
        }
        .to_string();
        assert!(s.contains("serial+spj"), "{s}");
        assert!(s.contains("worker-panic"), "{s}");
    }
}
