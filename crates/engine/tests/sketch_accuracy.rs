//! Accuracy-bound tests for the approximate aggregates (DESIGN.md §14).
//!
//! * **t-digest** (`approx_percentile`): for every seeded distribution and
//!   query rank, the *rank error* of the returned quantile — the distance
//!   between the requested rank and the true rank of the returned value in
//!   the sorted data — must stay within the documented
//!   [`TDIGEST_RANK_EPSILON`].
//! * **HyperLogLog** (`approx_count_distinct`): the relative error of the
//!   estimate must stay within 3σ of the standard error `1.04/√m`
//!   ([`HLL_STD_ERROR`]) for m = [`HLL_REGISTERS`] registers.
//!
//! Each assertion message carries the observed error, the seed, and the
//! distribution name, so a failure is immediately reproducible.
//!
//! Distributions: uniform, zipf-like (heavy head), all-equal (one distinct
//! value), all-distinct (every value unique) — the degenerate shapes where
//! naive sketches break first.

use pa_engine::{Acc, AggFunc, PBits, TDIGEST_RANK_EPSILON};
use pa_engine::{HLL_REGISTERS, HLL_STD_ERROR};
use pa_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Seeded distributions
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum Dist {
    Uniform,
    Zipf,
    AllEqual,
    AllDistinct,
}

const DISTS: [Dist; 4] = [Dist::Uniform, Dist::Zipf, Dist::AllEqual, Dist::AllDistinct];

impl Dist {
    fn name(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Zipf => "zipf",
            Dist::AllEqual => "all-equal",
            Dist::AllDistinct => "all-distinct",
        }
    }

    /// `n` float samples of the distribution.
    fn floats(self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| match self {
                Dist::Uniform => rng.gen_range(0..1_000_000i64) as f64 / 1000.0,
                // Zipf-like heavy head: value ~ 1/u, so a few huge values
                // and a dense floor — the shape that stresses centroid
                // weight bounds at the tails.
                Dist::Zipf => {
                    let u = (rng.gen_range(1..1_000_000i64) as f64) / 1_000_000.0;
                    1.0 / u
                }
                Dist::AllEqual => 42.0,
                Dist::AllDistinct => i as f64,
            })
            .collect()
    }

    /// `n` key samples with a distribution-dependent distinct structure.
    fn keys(self, n: usize, seed: u64) -> Vec<Value> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| match self {
                Dist::Uniform => Value::Int(rng.gen_range(0..(n as i64 / 2).max(1))),
                Dist::Zipf => {
                    // Heavy head over ~n/4 keys: key 0 dominates.
                    let u = (rng.gen_range(1..1_000_000i64) as f64) / 1_000_000.0;
                    Value::Int(((1.0 / u - 1.0) as i64).min(n as i64 / 4))
                }
                Dist::AllEqual => Value::str("the-one-key"),
                Dist::AllDistinct => Value::Int(i as i64),
            })
            .collect()
    }
}

fn exact_distinct(keys: &[Value]) -> usize {
    let mut seen: pa_storage::FxHashSet<Value> = Default::default();
    for k in keys {
        seen.insert(k.clone());
    }
    seen.len()
}

/// Rank error of returning `x` for requested rank `p`: a value with ties
/// occupies the whole rank *interval* [below/n, not_above/n], so the error
/// is the distance from `p` to that interval (0 when `p` falls inside it —
/// e.g. any percentile of all-equal data is exactly right).
fn rank_error(sorted: &[f64], x: f64, p: f64) -> f64 {
    let n = sorted.len().max(1) as f64;
    let lo = sorted.partition_point(|v| *v < x) as f64 / n;
    let hi = sorted.partition_point(|v| *v <= x) as f64 / n;
    if p < lo {
        lo - p
    } else if p > hi {
        p - hi
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------
// t-digest rank error
// ---------------------------------------------------------------------

#[test]
fn tdigest_rank_error_within_documented_epsilon() {
    const N: usize = 20_000;
    for dist in DISTS {
        for seed in [101u64, 202, 303] {
            let data = dist.floats(N, seed);
            let mut sorted = data.clone();
            sorted.sort_by(f64::total_cmp);
            for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
                let mut acc = Acc::new(AggFunc::ApproxPercentile(PBits::new(p)));
                for &x in &data {
                    acc.update(&Value::Float(x)).unwrap();
                }
                let Value::Float(q) = acc.finish() else {
                    panic!("approx_percentile produced a non-float");
                };
                let err = rank_error(&sorted, q, p);
                assert!(
                    err <= TDIGEST_RANK_EPSILON,
                    "t-digest rank error {err:.4} > epsilon {TDIGEST_RANK_EPSILON} \
                     (dist={}, seed={seed}, p={p}, got={q})",
                    dist.name()
                );
            }
        }
    }
}

/// The bound survives the merge path: shard the stream, merge the digests,
/// and hold the same epsilon.
#[test]
fn tdigest_rank_error_survives_merges() {
    const N: usize = 20_000;
    for dist in DISTS {
        for seed in [77u64, 88] {
            let data = dist.floats(N, seed);
            let mut sorted = data.clone();
            sorted.sort_by(f64::total_cmp);
            for p in [0.05, 0.5, 0.95] {
                let func = AggFunc::ApproxPercentile(PBits::new(p));
                let mut merged = Acc::new(func);
                for chunk in data.chunks(N / 7) {
                    let mut part = Acc::new(func);
                    for &x in chunk {
                        part.update(&Value::Float(x)).unwrap();
                    }
                    merged.merge(part).unwrap();
                }
                let Value::Float(q) = merged.finish() else {
                    panic!("approx_percentile produced a non-float");
                };
                let err = rank_error(&sorted, q, p);
                assert!(
                    err <= TDIGEST_RANK_EPSILON,
                    "merged t-digest rank error {err:.4} > epsilon {TDIGEST_RANK_EPSILON} \
                     (dist={}, seed={seed}, p={p}, got={q})",
                    dist.name()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// HLL relative error
// ---------------------------------------------------------------------

#[test]
fn hll_relative_error_within_three_sigma() {
    const N: usize = 30_000;
    assert!(
        (HLL_STD_ERROR - 1.04 / (HLL_REGISTERS as f64).sqrt()).abs() < 1e-12,
        "documented standard error matches 1.04/sqrt(m)"
    );
    let bound = 3.0 * HLL_STD_ERROR;
    for dist in DISTS {
        for seed in [11u64, 22, 33] {
            let keys = dist.keys(N, seed);
            let truth = exact_distinct(&keys) as f64;
            let mut acc = Acc::new(AggFunc::ApproxCountDistinct);
            for k in &keys {
                acc.update(k).unwrap();
            }
            let Value::Int(est) = acc.finish() else {
                panic!("approx_count_distinct produced a non-int");
            };
            let rel = (est as f64 - truth) / truth;
            assert!(
                rel.abs() <= bound,
                "HLL relative error {rel:+.4} outside 3σ bound {bound:.4} \
                 (dist={}, seed={seed}, exact={truth}, estimate={est})",
                dist.name()
            );
        }
    }
}

/// Merging per-shard HLLs equals inserting the union into one sketch, so
/// the merged estimate inherits the same bound.
#[test]
fn hll_merge_is_lossless_and_bounded() {
    const N: usize = 30_000;
    let bound = 3.0 * HLL_STD_ERROR;
    for dist in DISTS {
        for seed in [44u64, 55] {
            let keys = dist.keys(N, seed);
            let truth = exact_distinct(&keys) as f64;
            let mut whole = Acc::new(AggFunc::ApproxCountDistinct);
            for k in &keys {
                whole.update(k).unwrap();
            }
            let mut merged = Acc::new(AggFunc::ApproxCountDistinct);
            for chunk in keys.chunks(N / 5) {
                let mut part = Acc::new(AggFunc::ApproxCountDistinct);
                for k in chunk {
                    part.update(k).unwrap();
                }
                merged.merge(part).unwrap();
            }
            assert_eq!(
                merged.serialize(),
                whole.serialize(),
                "HLL merge must be lossless (dist={}, seed={seed})",
                dist.name()
            );
            let Value::Int(est) = merged.finish() else {
                panic!("approx_count_distinct produced a non-int");
            };
            let rel = (est as f64 - truth) / truth;
            assert!(
                rel.abs() <= bound,
                "merged HLL relative error {rel:+.4} outside 3σ bound {bound:.4} \
                 (dist={}, seed={seed}, exact={truth}, estimate={est})",
                dist.name()
            );
        }
    }
}
