//! Snapshot-isolation differential oracle.
//!
//! A query pinned to a [`pa_storage::SnapshotView`] must be isolated from
//! every write that lands after the pin: its result is byte-identical to
//! the same query on a quiesced catalog frozen at the pin's epoch, no
//! matter how many seeded appends and updates hammer the live table while
//! the query runs, and no matter which parallel mode evaluates it
//! (serial, 1, 2, or 4 workers).
//!
//! The pinned alias is scanned directly (the executor recognizes the
//! hidden prefix and skips re-pinning), so the Arc the test holds is the
//! only thing keeping the frozen columns alive — exactly how the executor
//! holds its per-query pin.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pa_core::{HorizontalOptions, HorizontalQuery, ParallelMode, PercentageEngine};
use pa_storage::{Catalog, DataType, Schema, Table, Value};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Integer-valued measures (exact sums under any regrouping), NULLs in
/// every column, few distinct keys.
fn seeded_row(state: &mut u64) -> Vec<Value> {
    let g = lcg(state);
    let d = lcg(state);
    let a = lcg(state);
    vec![
        if g.is_multiple_of(10) {
            Value::Null
        } else {
            Value::Int((g % 4) as i64)
        },
        if d.is_multiple_of(11) {
            Value::Null
        } else {
            Value::Int((d % 5) as i64)
        },
        if a.is_multiple_of(8) {
            Value::Null
        } else {
            Value::Float((a % 7) as f64 - 3.0)
        },
    ]
}

fn build_catalog(rows: usize, seed: u64) -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Int),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::with_capacity(schema, rows);
    let mut state = seed;
    for _ in 0..rows {
        t.push_row(&seeded_row(&mut state)).unwrap();
    }
    catalog.create_table("f", t).unwrap();
    catalog
}

/// (column names, sorted rows): the byte-identity fingerprint.
fn fingerprint(t: &Table) -> (Vec<String>, Vec<Vec<Value>>) {
    let names: Vec<String> = t.schema().fields().iter().map(|f| f.name.clone()).collect();
    let all: Vec<usize> = (0..t.num_columns()).collect();
    (names, t.sorted_by(&all).rows().collect())
}

/// One seeded writer mutation through the catalog's logging funnel:
/// mostly appends, every fourth op a logged in-place update.
fn writer_op(catalog: &Catalog, state: &mut u64) {
    let shared = catalog.table("f").unwrap();
    let mut t = shared.write();
    if lcg(state).is_multiple_of(4) && t.num_rows() > 0 {
        let row = (lcg(state) as usize) % t.num_rows();
        let before = vec![t.column(2).get(row)];
        let after = vec![Value::Float((lcg(state) % 9) as f64)];
        t.column_mut(2).set(row, after[0].clone()).unwrap();
        catalog
            .with_wal_mutating("f", |w| w.log_update("f", row, &[2], &before, &after))
            .unwrap();
    } else {
        let start = t.num_rows();
        let row = seeded_row(state);
        t.push_row(&row).unwrap();
        catalog
            .with_wal_mutating("f", |w| w.log_bulk_insert("f", &t, start))
            .unwrap();
    }
}

#[test]
fn pinned_snapshot_queries_are_byte_identical_under_concurrent_writes() {
    let modes = [
        ParallelMode::Serial,
        ParallelMode::Threads(1),
        ParallelMode::Threads(2),
        ParallelMode::Threads(4),
    ];
    let catalog = build_catalog(2_000, 42);
    let engine = PercentageEngine::with_unique_temps(&catalog);
    let view = catalog.pin_table("f").unwrap();

    // Quiesced reference: a standalone catalog holding a copy of the
    // frozen table, queried before any writer starts.
    let refcat = Catalog::new();
    refcat
        .create_table("f", view.table().read().clone())
        .unwrap();
    let ref_engine = PercentageEngine::with_unique_temps(&refcat);
    let hq = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
    let expected: Vec<_> = modes
        .iter()
        .map(|mode| {
            let opts = HorizontalOptions {
                parallel: *mode,
                ..HorizontalOptions::default()
            };
            fingerprint(&ref_engine.horizontal_with(&hq, &opts).unwrap().snapshot())
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for w in 0..2u64 {
            let catalog = &catalog;
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut state = 0xD1F0_5EED ^ (w << 17);
                while !stop.load(Ordering::Relaxed) {
                    writer_op(catalog, &mut state);
                }
            });
        }

        // The pinned alias is a frozen table: every query over it, in any
        // parallel mode, must reproduce the quiesced reference while the
        // writers race.
        let aq = HorizontalQuery::hpct(view.alias(), &["g"], "a", &["d"]);
        for round in 0..12 {
            for (mode, exp) in modes.iter().zip(&expected) {
                let opts = HorizontalOptions {
                    parallel: *mode,
                    ..HorizontalOptions::default()
                };
                let got = fingerprint(&engine.horizontal_with(&aq, &opts).unwrap().snapshot());
                assert_eq!(
                    &got, exp,
                    "round {round}, {mode:?}: pinned snapshot result drifted"
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // The race was real: writers moved the live table past the pin...
    let live_rows = catalog.table("f").unwrap().read().num_rows();
    assert!(live_rows > view.rows(), "writers never landed a row");
    // ...the view still sees exactly its frozen high-water mark...
    assert_eq!(view.table().read().num_rows(), view.rows());
    // ...and a fresh pin observes the new version of the world.
    let fresh = catalog.pin_table("f").unwrap();
    assert!(fresh.version() > view.version());
    assert_eq!(fresh.rows(), live_rows);
}

/// Degraded/retried queries re-pin: after the first pin is dropped and the
/// table mutates, the executor's next automatic pin must observe the new
/// epoch — queries on the *source name* see fresh data, never the stale
/// frozen alias.
#[test]
fn repinning_after_writes_observes_the_new_epoch() {
    let catalog = build_catalog(500, 7);
    let engine = PercentageEngine::with_unique_temps(&catalog);
    let hq = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
    let before = fingerprint(&engine.horizontal(&hq).unwrap().snapshot());

    let mut state = 99;
    for _ in 0..40 {
        writer_op(&catalog, &mut state);
    }

    let after = fingerprint(&engine.horizontal(&hq).unwrap().snapshot());
    assert_ne!(
        before, after,
        "a fresh query must re-pin and see the mutated table"
    );

    // And the re-pinned run matches a quiesced copy of the *new* state.
    let refcat = Catalog::new();
    refcat
        .create_table("f", catalog.table("f").unwrap().read().clone())
        .unwrap();
    let ref_engine = PercentageEngine::with_unique_temps(&refcat);
    let expected = fingerprint(&ref_engine.horizontal(&hq).unwrap().snapshot());
    assert_eq!(after, expected);
}
