//! Shard-merge differential oracle for the mergeable partial-aggregate
//! protocol (DESIGN.md §14).
//!
//! The contract under test: for **any** aggregate function, splitting a
//! table into `k` disjoint shards, aggregating each shard independently
//! with [`partial_aggregate`], shipping each [`ShardPartial`] through its
//! versioned wire encoding, merging the decoded partials in **any** order,
//! and finalizing must produce the exact table a single-pass aggregation
//! of the union produces — byte-identical, across shard counts, shuffle
//! seeds, and worker-thread counts.
//!
//! Determinism classes (the header of `ops/acc.rs`):
//!
//! * **Order-insensitive** — every exact aggregate plus the HLL sketch:
//!   byte-identical under any shard split and merge order. Measures are
//!   integer-valued floats, so float sums are exact under regrouping
//!   (same convention as the strategy differential oracle).
//! * **Ordered-deterministic** — the t-digest (`ApproxPercentile`):
//!   byte-identical when partials merge in a fixed order; within the
//!   documented rank-error bound under shuffles.
//!
//! The proptest half pins the merge algebra itself: `merge` is
//! associative and commutative with `Acc::new` as identity, every partial
//! survives a serialize → deserialize → merge round trip, and corrupted
//! or truncated bytes yield typed errors, never panics.

use pa_engine::{
    hash_aggregate_with_config, partial_aggregate, Acc, AggFunc, AggSpec, ExecStats, Expr, PBits,
    ParallelConfig, ResourceGuard, ShardPartial, TDIGEST_RANK_EPSILON,
};
use pa_storage::{DataType, Schema, Table, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// Deterministic fact table: two dimension columns (with NULLs), one
/// integer-valued float measure (exact under regrouped addition, with
/// NULLs), one string measure for distinct counts.
fn fact_table(rows: usize, seed: u64) -> Table {
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Str),
        ("a", DataType::Float),
        ("s", DataType::Str),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::empty(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rows {
        let g = if rng.gen_bool(0.05) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(0..5i64))
        };
        let d = Value::str(["x", "y", "z"][rng.gen_range(0..3usize)]);
        let a = if rng.gen_bool(0.1) {
            Value::Null
        } else {
            Value::Float(rng.gen_range(-50..=50i64) as f64)
        };
        let s = Value::str(format!("s{}", rng.gen_range(0..40u32)));
        t.push_row(&[g, d, a, s]).unwrap();
    }
    t
}

/// Every aggregate function of the protocol, exercised in one lane list.
/// `ApproxPercentile` is ordered-deterministic, not order-insensitive, so
/// the shuffled oracle splits the lane list on [`order_insensitive`].
fn all_funcs() -> Vec<(AggFunc, &'static str, &'static str)> {
    vec![
        (AggFunc::Sum, "a", "sum_a"),
        (AggFunc::Count, "a", "cnt_a"),
        (AggFunc::CountStar, "a", "n"),
        (AggFunc::Avg, "a", "avg_a"),
        (AggFunc::Min, "a", "min_a"),
        (AggFunc::Max, "a", "max_a"),
        (AggFunc::CountDistinct, "s", "ds"),
        (AggFunc::Percentile(PBits::new(0.5)), "a", "med_a"),
        (AggFunc::Percentile(PBits::new(0.95)), "a", "p95_a"),
        (AggFunc::ApproxPercentile(PBits::new(0.5)), "a", "amed_a"),
        (AggFunc::ApproxCountDistinct, "s", "ads"),
    ]
}

fn order_insensitive(func: AggFunc) -> bool {
    !matches!(func, AggFunc::ApproxPercentile(_))
}

fn specs_of(t: &Table, funcs: &[(AggFunc, &'static str, &'static str)]) -> Vec<AggSpec> {
    funcs
        .iter()
        .map(|(f, col, name)| AggSpec::new(*f, Expr::col(t.schema(), col).unwrap(), *name))
        .collect()
}

/// Split `t` into `k` disjoint shards by a seeded random assignment
/// (shards may be empty — the protocol must tolerate that).
fn random_shards(t: &Table, k: usize, seed: u64) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); k];
    for row in 0..t.num_rows() {
        assignment[rng.gen_range(0..k)].push(row);
    }
    assignment
        .into_iter()
        .map(|rows| {
            let columns = t.columns().iter().map(|c| c.take(&rows)).collect();
            Table::from_columns(t.schema().clone(), columns).unwrap()
        })
        .collect()
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

/// Shard, aggregate each shard, ship every partial through its wire
/// encoding, merge in a shuffled order, finalize.
fn sharded_result(
    t: &Table,
    group_cols: &[usize],
    specs: &[AggSpec],
    k: usize,
    seed: u64,
) -> Table {
    let mut stats = ExecStats::default();
    let mut wires: Vec<Vec<u8>> = random_shards(t, k, seed)
        .iter()
        .map(|shard| {
            partial_aggregate(shard, group_cols, specs, &mut stats)
                .unwrap()
                .serialize()
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    shuffle(&mut wires, &mut rng);
    let mut merged: Option<ShardPartial> = None;
    for bytes in &wires {
        let p = ShardPartial::deserialize(bytes).unwrap();
        match &mut merged {
            None => merged = Some(p),
            Some(m) => m.merge(p).unwrap(),
        }
    }
    merged.unwrap().finalize(&mut stats).unwrap()
}

fn single_pass(t: &Table, group_cols: &[usize], specs: &[AggSpec]) -> Table {
    let mut stats = ExecStats::default();
    partial_aggregate(t, group_cols, specs, &mut stats)
        .unwrap()
        .finalize(&mut stats)
        .unwrap()
}

fn rows_of(t: &Table) -> Vec<Vec<Value>> {
    t.rows().collect()
}

/// Rows of a hash-aggregate result, re-sorted into the finalize order
/// (keys ascending in `Value::total_cmp` order, NULLs first).
fn sorted_rows(t: &Table, key_cols: usize) -> Vec<Vec<Value>> {
    let mut rows = rows_of(t);
    rows.sort_by(|a, b| {
        a[..key_cols]
            .iter()
            .zip(&b[..key_cols])
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

// ---------------------------------------------------------------------
// The differential oracle
// ---------------------------------------------------------------------

/// Headline oracle: any split, any merge order, byte-identical to the
/// single pass — for every order-insensitive aggregate at once.
#[test]
fn shard_merge_identical_to_single_pass_any_split_any_order() {
    let t = fact_table(700, 7);
    let funcs: Vec<_> = all_funcs()
        .into_iter()
        .filter(|(f, ..)| order_insensitive(*f))
        .collect();
    let specs = specs_of(&t, &funcs);
    for group_cols in [vec![0usize], vec![0, 1], vec![]] {
        let want = rows_of(&single_pass(&t, &group_cols, &specs));
        for k in [1usize, 2, 3, 5, 8] {
            for seed in [1u64, 2, 3] {
                let got = rows_of(&sharded_result(&t, &group_cols, &specs, k, seed));
                assert_eq!(
                    got, want,
                    "k={k} seed={seed} group_cols={group_cols:?} diverged"
                );
            }
        }
    }
}

/// The sharded protocol agrees with the morsel-parallel operator the
/// query engine actually runs, at 1, 2, and 4 worker threads.
#[test]
fn shard_merge_matches_parallel_hash_aggregate_at_1_2_4_threads() {
    let t = fact_table(900, 11);
    let funcs = all_funcs();
    let specs = specs_of(&t, &funcs);
    let group_cols = vec![0usize, 1];
    // Fixed merge order (seed-stable shards merged unshuffled) keeps the
    // t-digest lane deterministic too; compare against every thread count.
    let mut stats = ExecStats::default();
    let mut merged: Option<ShardPartial> = None;
    for shard in random_shards(&t, 4, 21) {
        let p = ShardPartial::deserialize(
            &partial_aggregate(&shard, &group_cols, &specs, &mut stats)
                .unwrap()
                .serialize(),
        )
        .unwrap();
        match &mut merged {
            None => merged = Some(p),
            Some(m) => m.merge(p).unwrap(),
        }
    }
    let sharded = merged.unwrap().finalize(&mut stats).unwrap();

    // The t-digest lane is ordered-deterministic: the engine's serial scan
    // updates row-by-row while the sharded path merges four digests, so
    // compare that lane by rank error, everything else byte-identically.
    let tdigest_lane: usize = group_cols.len() + 9; // amed_a
    for threads in [1usize, 2, 4] {
        let config = ParallelConfig {
            threads,
            morsel_rows: 64,
            min_parallel_rows: 0,
            ..ParallelConfig::serial()
        };
        let engine_out = hash_aggregate_with_config(
            &t,
            &group_cols,
            &specs,
            &ResourceGuard::unlimited(),
            &mut ExecStats::default(),
            &config,
        )
        .unwrap();
        let want = sorted_rows(&engine_out, group_cols.len());
        let got = rows_of(&sharded);
        assert_eq!(got.len(), want.len(), "threads={threads} group count");
        for (g, w) in got.iter().zip(&want) {
            for (lane, (gv, wv)) in g.iter().zip(w).enumerate() {
                if lane == tdigest_lane {
                    let (gx, wx) = (gv.as_f64().unwrap_or(0.0), wv.as_f64().unwrap_or(0.0));
                    assert!(
                        (gx - wx).abs() <= 101.0 * TDIGEST_RANK_EPSILON,
                        "threads={threads} t-digest lane drifted: {gx} vs {wx}"
                    );
                } else {
                    assert_eq!(gv, wv, "threads={threads} lane={lane} key={:?}", &g[..2]);
                }
            }
        }
    }
}

/// The t-digest lane is byte-identical under a *fixed* merge order, and
/// rank-bounded under shuffles.
#[test]
fn tdigest_lane_deterministic_under_fixed_merge_order() {
    let t = fact_table(600, 13);
    let specs = specs_of(
        &t,
        &[(AggFunc::ApproxPercentile(PBits::new(0.9)), "a", "p90")],
    );
    let group_cols = [0usize];
    let run = |_: u64| {
        let mut stats = ExecStats::default();
        let mut merged: Option<ShardPartial> = None;
        for shard in random_shards(&t, 3, 99) {
            let p = partial_aggregate(&shard, &group_cols, &specs, &mut stats).unwrap();
            match &mut merged {
                None => merged = Some(p),
                Some(m) => m.merge(p).unwrap(),
            }
        }
        merged.unwrap().serialize()
    };
    assert_eq!(run(0), run(1), "fixed merge order must be reproducible");

    // Shuffled orders stay within the documented rank-error bound of the
    // exact percentile (|a| <= 50, so 2·epsilon·range = 10).
    let exact_specs = specs_of(&t, &[(AggFunc::Percentile(PBits::new(0.9)), "a", "p90")]);
    let exact = single_pass(&t, &group_cols, &exact_specs);
    for seed in [5u64, 6, 7] {
        let approx = sharded_result(&t, &group_cols, &specs, 3, seed);
        for (a, e) in rows_of(&approx).iter().zip(rows_of(&exact)) {
            let (av, ev) = (a[1].as_f64().unwrap_or(0.0), e[1].as_f64().unwrap_or(0.0));
            assert!(
                (av - ev).abs() <= 101.0 * TDIGEST_RANK_EPSILON,
                "seed={seed}: approx {av} too far from exact {ev}"
            );
        }
    }
}

/// Empty shards, empty tables, and the one-row global-aggregate shape.
#[test]
fn empty_shards_and_global_aggregates() {
    let t = fact_table(40, 3);
    let funcs = all_funcs();
    let specs = specs_of(&t, &funcs);
    // 16 shards over 40 rows: some shards are empty with high probability.
    let want = rows_of(&single_pass(&t, &[], &specs));
    assert_eq!(want.len(), 1, "global aggregate is one row");
    let got = rows_of(&sharded_result(&t, &[], &specs, 16, 2));
    // Drop the t-digest lane from the byte comparison (ordered class).
    let lane = 9;
    for (g, w) in got.iter().zip(&want) {
        for (i, (gv, wv)) in g.iter().zip(w).enumerate() {
            if i != lane {
                assert_eq!(gv, wv, "lane {i}");
            }
        }
    }

    // An all-empty union finalizes to the SQL empty-aggregate row.
    let schema = t.schema().clone();
    let empty = Table::empty(schema);
    let out = single_pass(&empty, &[], &specs);
    assert_eq!(out.num_rows(), 1);
    assert_eq!(rows_of(&out)[0][0], Value::Null, "sum of nothing is NULL");
    // ... and grouped aggregation of nothing is zero rows.
    let out = single_pass(&empty, &[0], &specs);
    assert_eq!(out.num_rows(), 0);
}

// ---------------------------------------------------------------------
// Merge-algebra laws (proptest)
// ---------------------------------------------------------------------

/// Values drawn for accumulator streams: ints, floats (integer-valued for
/// exactness), strings, and NULLs.
fn value_stream() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        prop_oneof![
            3 => (-40i64..40).prop_map(Value::Int),
            3 => (-40i64..40).prop_map(|x| Value::Float(x as f64)),
            1 => Just(Value::Null),
        ],
        0..60,
    )
}

fn str_stream() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0u32..25).prop_map(|i| Value::str(format!("k{i}"))),
            1 => Just(Value::Null),
        ],
        0..60,
    )
}

/// Functions whose serialized accumulator state must be identical under
/// any merge tree (the order-insensitive class).
fn exact_and_hll_funcs() -> Vec<AggFunc> {
    vec![
        AggFunc::Sum,
        AggFunc::Count,
        AggFunc::CountStar,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::CountDistinct,
        AggFunc::Percentile(PBits::new(0.25)),
        AggFunc::Percentile(PBits::new(0.5)),
        AggFunc::ApproxCountDistinct,
    ]
}

fn acc_of(func: AggFunc, values: &[Value]) -> Acc {
    let mut acc = Acc::new(func);
    for v in values {
        acc.update(v).unwrap();
    }
    acc
}

fn stream_for(func: AggFunc, nums: &[Value], strs: &[Value]) -> Vec<Value> {
    if matches!(func, AggFunc::CountDistinct | AggFunc::ApproxCountDistinct) {
        strs.to_vec()
    } else {
        nums.to_vec()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge is associative and commutative, with `Acc::new` as identity,
    /// down to the serialized bytes — for every order-insensitive function.
    #[test]
    fn merge_algebra_laws(nums in value_stream(), strs in str_stream(),
                          cut1 in 0usize..60, cut2 in 0usize..60) {
        for func in exact_and_hll_funcs() {
            let stream = stream_for(func, &nums, &strs);
            let c1 = cut1.min(stream.len());
            let c2 = cut2.min(stream.len()).max(c1);
            let (xs, ys, zs) = (&stream[..c1], &stream[c1..c2], &stream[c2..]);

            let whole = acc_of(func, &stream);

            // Associativity: (x+y)+z == x+(y+z) == whole.
            let mut left = acc_of(func, xs);
            left.merge(acc_of(func, ys)).unwrap();
            left.merge(acc_of(func, zs)).unwrap();
            let mut right = acc_of(func, ys);
            right.merge(acc_of(func, zs)).unwrap();
            let mut x = acc_of(func, xs);
            x.merge(right).unwrap();
            prop_assert_eq!(left.serialize(), x.serialize(), "assoc {:?}", func);
            prop_assert_eq!(left.serialize(), whole.serialize(), "split {:?}", func);
            prop_assert_eq!(left.finish(), whole.finish(), "finalize {:?}", func);

            // Commutativity: x+y == y+x.
            let mut xy = acc_of(func, xs);
            xy.merge(acc_of(func, &stream[c1..])).unwrap();
            let mut yx = acc_of(func, &stream[c1..]);
            yx.merge(acc_of(func, xs)).unwrap();
            prop_assert_eq!(xy.serialize(), yx.serialize(), "comm {:?}", func);

            // Identity: new + x == x == x + new.
            let mut id = Acc::new(func);
            id.merge(acc_of(func, &stream)).unwrap();
            prop_assert_eq!(id.serialize(), whole.serialize(), "lid {:?}", func);
            let mut xid = acc_of(func, &stream);
            xid.merge(Acc::new(func)).unwrap();
            prop_assert_eq!(xid.serialize(), whole.serialize(), "rid {:?}", func);
        }
    }

    /// The t-digest is deterministic under a fixed merge order: folding
    /// the same splits in the same order twice gives identical bytes.
    #[test]
    fn tdigest_fixed_order_reproducible(nums in value_stream(), cut in 0usize..60) {
        let func = AggFunc::ApproxPercentile(PBits::new(0.5));
        let c = cut.min(nums.len());
        let fold = || {
            let mut acc = acc_of(func, &nums[..c]);
            acc.merge(acc_of(func, &nums[c..])).unwrap();
            acc.serialize()
        };
        prop_assert_eq!(fold(), fold());
        // Identity holds for the ordered class too.
        let mut id = Acc::new(func);
        id.merge(acc_of(func, &nums)).unwrap();
        prop_assert_eq!(id.serialize(), acc_of(func, &nums).serialize());
    }

    /// Every partial survives serialize → deserialize → merge, and the
    /// decoded copy is indistinguishable from the original.
    #[test]
    fn serialization_round_trip_then_merge(nums in value_stream(), strs in str_stream()) {
        let mut funcs = exact_and_hll_funcs();
        funcs.push(AggFunc::ApproxPercentile(PBits::new(0.75)));
        for func in funcs {
            let stream = stream_for(func, &nums, &strs);
            let acc = acc_of(func, &stream);
            let decoded = Acc::deserialize(&acc.serialize()).unwrap();
            prop_assert_eq!(acc.serialize(), decoded.serialize(), "{:?}", func);
            prop_assert_eq!(acc.finish(), decoded.finish(), "{:?}", func);
            // A decoded partial must keep merging.
            let mut m = decoded;
            m.merge(Acc::deserialize(&acc.serialize()).unwrap()).unwrap();
            let mut direct = acc_of(func, &stream);
            direct.merge(acc_of(func, &stream)).unwrap();
            if order_insensitive(func) {
                prop_assert_eq!(m.serialize(), direct.serialize(), "{:?}", func);
            }
        }
    }

    /// Corrupting any single bit, or truncating at any length, of a
    /// serialized shard partial yields a typed error — never a panic,
    /// never a silently wrong decode that differs from the original.
    #[test]
    fn corrupted_partials_fail_typed(seed in 0u64..500) {
        let t = fact_table(30, seed);
        let specs = specs_of(&t, &all_funcs());
        let mut stats = ExecStats::default();
        let wire = partial_aggregate(&t, &[0], &specs, &mut stats).unwrap().serialize();
        // Truncations: every prefix must fail cleanly.
        let step = (wire.len() / 23).max(1);
        for cut in (0..wire.len()).step_by(step) {
            prop_assert!(ShardPartial::deserialize(&wire[..cut]).is_err(), "cut={cut}");
        }
        // Bit flips: CRC coverage means any decode is an error (flips in
        // the checksum itself included).
        let bit_step = (wire.len() * 8 / 61).max(1);
        for bit in (0..wire.len() * 8).step_by(bit_step) {
            let mut bad = wire.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(ShardPartial::deserialize(&bad).is_err(), "bit={bit}");
        }
    }
}

/// `CountDistinct` merge determinism regression: the FxHashSet union used
/// to leak iteration order into serialized bytes; the canonical encoding
/// sorts elements, so any accumulation path yields identical bytes.
#[test]
fn count_distinct_bytes_independent_of_accumulation_path() {
    let keys: Vec<Value> = (0..50).map(|i| Value::str(format!("k{i}"))).collect();
    let whole = acc_of(AggFunc::CountDistinct, &keys);
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..10 {
        let mut shuffled = keys.clone();
        shuffle(&mut shuffled, &mut rng);
        // Random split points, merged in random order.
        let cut = rng.gen_range(0..shuffled.len());
        let mut a = acc_of(AggFunc::CountDistinct, &shuffled[cut..]);
        a.merge(acc_of(AggFunc::CountDistinct, &shuffled[..cut]))
            .unwrap();
        assert_eq!(a.serialize(), whole.serialize());
        assert_eq!(a.finish(), Value::Int(50));
    }
}
