//! Differential oracle harness: every pair of evaluation strategies that
//! claims to compute the same relation must produce *byte-identical*
//! results, and a divergence must fail with an actionable message — the
//! two strategy names and the first row where they disagree.
//!
//! Three oracles, mirroring the repo's equivalence claims:
//!
//! 1. **CASE vs SPJ** (± hash dispatch): all four `HorizontalStrategy`
//!    plans over proptest-generated fact tables (NULL dimensions, NULL and
//!    negative measures, duplicate rows).
//! 2. **Serial vs parallel**: `ParallelMode::Serial` against
//!    `Threads(1|2|4)` on a table large enough (> 3 morsels) that 4 real
//!    workers engage — driven through `HorizontalOptions.parallel`, not
//!    the environment, so the test cannot race other tests over env vars.
//! 3. **Vertical vs horizontally-transposed-then-flattened**: the `Hpct`
//!    matrix mapped back to `(group, by-value, pct)` triples via its cell
//!    column names must equal the `Vpct` relation, modulo the documented
//!    NULL-cell divergence (SIGMOD's `ELSE 0` CASE arm renders an
//!    all-NULL cell as 0 where `Vpct`'s `sum()` of nothing is NULL).
//!
//! Measures are integer-valued floats throughout: their sums are exact
//! under any regrouping of additions (DESIGN.md §7), so "identical" means
//! bitwise equality, not within-epsilon. This is a pa-engine *dev*
//! dependency on pa-core — a dev-dep cycle Cargo permits — because the
//! strategies under test are planned above the operator layer but the
//! operators are what diverge.

use pa_core::{
    HorizontalOptions, HorizontalQuery, HorizontalStrategy, ParallelMode, PercentageEngine,
    VpctQuery, VpctStrategy,
};
use pa_storage::{Catalog, DataType, Schema, Table, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Row {
    g: Option<i64>,
    d: Option<i64>,
    a: Option<i64>,
}

/// NULLs in every column, few distinct keys (duplicates guaranteed),
/// negative measures (zero-sum groups reachable).
fn row_strategy() -> impl Strategy<Value = Row> {
    (
        prop::option::weighted(0.9, 0..4i64),
        prop::option::weighted(0.9, 0..5i64),
        prop::option::weighted(0.85, -3..=3i64),
    )
        .prop_map(|(g, d, a)| Row { g, d, a })
}

fn build_catalog(rows: &[Row]) -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Int),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::with_capacity(schema, rows.len());
    for r in rows {
        t.push_row(&[
            Value::from(r.g),
            Value::from(r.d),
            Value::from(r.a.map(|x| x as f64)),
        ])
        .unwrap();
    }
    catalog.create_table("f", t).unwrap();
    catalog
}

fn sorted_rows(t: &Table) -> Vec<Vec<Value>> {
    let all: Vec<usize> = (0..t.num_columns()).collect();
    t.sorted_by(&all).rows().collect()
}

/// Byte-identical comparison with an actionable verdict: `None` on
/// agreement, otherwise a message carrying both strategy names, the first
/// divergent (sorted) row index and both rows in full.
fn first_divergence(name_a: &str, a: &Table, name_b: &str, b: &Table) -> Option<String> {
    if a.num_columns() != b.num_columns() {
        return Some(format!(
            "{name_a} vs {name_b}: column count {} vs {}",
            a.num_columns(),
            b.num_columns()
        ));
    }
    let ra = sorted_rows(a);
    let rb = sorted_rows(b);
    for (i, (x, y)) in ra.iter().zip(rb.iter()).enumerate() {
        if x != y {
            return Some(format!(
                "{name_a} vs {name_b}: first divergent row {i}: {x:?} vs {y:?}"
            ));
        }
    }
    if ra.len() != rb.len() {
        let i = ra.len().min(rb.len());
        let extra = if ra.len() > rb.len() {
            format!("{name_a} has extra row {:?}", ra[i])
        } else {
            format!("{name_b} has extra row {:?}", rb[i])
        };
        return Some(format!(
            "{name_a} vs {name_b}: row count {} vs {}; first unmatched row {i}: {extra}",
            ra.len(),
            rb.len()
        ));
    }
    None
}

/// Every horizontal plan variant under test: the four strategies (the CASE
/// pair defaulting to the dense jump-table group path, which on dense
/// inputs runs the vectorized bit-packed kernels), the hash-dispatch
/// ablation of each CASE strategy (hash group path through the same pivot),
/// the legacy O(N)-per-row CASE chain of each (jump table off), and the
/// scalar-kernel ablation of each (vectorized path forced off, same dense
/// plan). The four CASE code paths — vectorized dense pivot, scalar dense
/// pivot, hash pivot, legacy chain — all appear, so every oracle that
/// consumes this list is also a vectorized-vs-scalar-vs-hash-vs-legacy
/// differential.
fn horizontal_variants() -> Vec<(String, HorizontalOptions)> {
    let mut v = Vec::new();
    for strategy in HorizontalStrategy::all() {
        v.push((
            strategy.label().to_string(),
            HorizontalOptions::with_strategy(strategy),
        ));
    }
    for strategy in [
        HorizontalStrategy::CaseDirect,
        HorizontalStrategy::CaseFromFv,
    ] {
        v.push((
            format!("{}+dispatch", strategy.label()),
            HorizontalOptions {
                strategy,
                hash_dispatch: true,
                ..HorizontalOptions::default()
            },
        ));
        v.push((
            format!("{}+legacy-chain", strategy.label()),
            HorizontalOptions {
                strategy,
                jump_table: false,
                ..HorizontalOptions::default()
            },
        ));
        v.push((
            format!("{}+scalar-kernels", strategy.label()),
            HorizontalOptions {
                strategy,
                scalar_kernels: true,
                ..HorizontalOptions::default()
            },
        ));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Oracle 1: CASE vs SPJ (and ± dispatch) are byte-identical.
    #[test]
    fn case_and_spj_strategies_are_byte_identical(
        rows in prop::collection::vec(row_strategy(), 1..60)
    ) {
        let catalog = build_catalog(&rows);
        let engine = PercentageEngine::with_unique_temps(&catalog);
        let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
        let variants = horizontal_variants();
        let (ref_name, ref_opts) = &variants[0];
        let reference = engine.horizontal_with(&q, ref_opts).unwrap().snapshot();
        for (name, opts) in &variants[1..] {
            let got = engine.horizontal_with(&q, opts).unwrap().snapshot();
            if let Some(diff) = first_divergence(ref_name, &reference, name, &got) {
                prop_assert!(false, "{diff}");
            }
        }
    }

    /// Oracle 1b: the vertical strategies against the best plan, same
    /// byte-identical contract.
    #[test]
    fn vertical_strategies_are_byte_identical(
        rows in prop::collection::vec(row_strategy(), 1..60)
    ) {
        let catalog = build_catalog(&rows);
        let engine = PercentageEngine::with_unique_temps(&catalog);
        let q = VpctQuery::single("f", &["g", "d"], "a", &["d"]);
        let reference = engine.vpct_with(&q, &VpctStrategy::best()).unwrap().snapshot();
        for strat in [
            VpctStrategy::without_index(),
            VpctStrategy::with_update(),
            VpctStrategy::fj_from_f(),
            VpctStrategy::synchronized(),
        ] {
            let got = engine.vpct_with(&q, &strat).unwrap().snapshot();
            if let Some(diff) = first_divergence("best", &reference, &format!("{strat:?}"), &got) {
                prop_assert!(false, "{diff}");
            }
        }
    }

    /// Oracle 3: flattening the `Hpct` matrix reproduces `Vpct`.
    #[test]
    fn flattened_horizontal_equals_vertical(
        rows in prop::collection::vec(row_strategy(), 1..60)
    ) {
        let catalog = build_catalog(&rows);
        let engine = PercentageEngine::with_unique_temps(&catalog);
        let v = engine
            .vpct(&VpctQuery::single("f", &["g", "d"], "a", &["d"]))
            .unwrap()
            .snapshot();
        let h = engine
            .horizontal(&HorizontalQuery::hpct("f", &["g"], "a", &["d"]))
            .unwrap();
        let ht = h.snapshot();
        let names = &h.cell_columns[0];
        let mut hrow = std::collections::HashMap::new();
        for r in 0..ht.num_rows() {
            hrow.insert(ht.get(r, 0).to_string(), r);
        }
        // Every vertical row must be found in the flattened matrix.
        for r in 0..v.num_rows() {
            let g = v.get(r, 0).to_string();
            let d = v.get(r, 1);
            let col_name = names
                .iter()
                .find(|n| **n == format!("d={d}"))
                .expect("cell column exists for every observed BY value");
            let c = ht.schema().index_of(col_name).unwrap();
            let pct_h = ht.get(hrow[&g], c);
            let pct_v = v.get(r, 2);
            if pct_v.is_null() {
                // Documented divergence: all-NULL cell is NULL vertically,
                // 0 horizontally (ELSE 0) — unless the whole group total is
                // zero/NULL, where both are NULL.
                prop_assert!(
                    pct_h.is_null() || pct_h.as_f64().is_some_and(|x| x == 0.0),
                    "vertical vs horizontal-flattened: g={g} d={d}: \
                     horizontal {pct_h:?} for NULL vertical cell"
                );
            } else {
                prop_assert!(
                    pct_h == pct_v,
                    "vertical vs horizontal-flattened: first divergent cell \
                     g={g} d={d}: vertical {pct_v:?} vs horizontal {pct_h:?}"
                );
            }
        }
        // And the matrix must not contain cells the vertical relation lacks:
        // every non-NULL, non-zero cell corresponds to some vertical row.
        let vert_rows = v.num_rows();
        let mut nonzero_cells = 0usize;
        for r in 0..ht.num_rows() {
            for name in names {
                let c = ht.schema().index_of(name).unwrap();
                match ht.get(r, c).as_f64() {
                    Some(x) if x != 0.0 => nonzero_cells += 1,
                    _ => {}
                }
            }
        }
        prop_assert!(
            nonzero_cells <= vert_rows,
            "horizontal matrix has {nonzero_cells} non-zero cells but the \
             vertical relation only {vert_rows} rows"
        );
    }
}

/// Oracle 2: serial vs real morsel parallelism, all strategies.
///
/// 260 096 rows = 3×64Ki morsels + remainder, above the 32Ki serial
/// threshold, so `Threads(4)` engages four genuine workers
/// (`ParallelConfig::effective_threads`). Deterministic LCG data — the
/// point here is the fan-out/merge path, not input diversity (oracle 1
/// covers that).
#[test]
fn serial_and_parallel_plans_are_byte_identical() {
    const N: usize = 260_096;
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Int),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::with_capacity(schema, N);
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..N {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let g = (state >> 33) % 101;
        let d = (state >> 13) % 7;
        let a = (state >> 3) % 1000;
        t.push_row(&[
            Value::from(g as i64),
            Value::from(d as i64),
            Value::from(a as f64),
        ])
        .unwrap();
    }
    catalog.create_table("f", t).unwrap();
    let engine = PercentageEngine::with_unique_temps(&catalog);
    let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);

    for (name, opts) in horizontal_variants() {
        let serial = engine
            .horizontal_with(
                &q,
                &HorizontalOptions {
                    parallel: ParallelMode::Serial,
                    ..opts.clone()
                },
            )
            .unwrap()
            .snapshot();
        for threads in [1usize, 2, 4] {
            let parallel = engine
                .horizontal_with(
                    &q,
                    &HorizontalOptions {
                        parallel: ParallelMode::Threads(threads),
                        ..opts.clone()
                    },
                )
                .unwrap()
                .snapshot();
            if let Some(diff) = first_divergence(
                &format!("{name}/serial"),
                &serial,
                &format!("{name}/threads={threads}"),
                &parallel,
            ) {
                panic!("{diff}");
            }
        }
    }
}

/// Deterministic fact table with one dimension optionally stretched across
/// more codes than the dense budget (values spaced `spread` apart), so the
/// same generator produces inputs on either side of the 2^20-code budget.
fn budget_catalog(n: usize, g_spread: i64, d_spread: i64) -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Int),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::with_capacity(schema, n);
    let mut state = 0xdead_beef_cafe_f00du64;
    for _ in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let g = ((state >> 33) % 7) as i64 * g_spread;
        let d = ((state >> 13) % 7) as i64 * d_spread;
        let a = ((state >> 3) % 1000) as i64;
        t.push_row(&[Value::from(g), Value::from(d), Value::from(a as f64)])
            .unwrap();
    }
    catalog.create_table("f", t).unwrap();
    catalog
}

/// Dense vs hash vs legacy CASE paths on both sides of the dense-code
/// budget, byte-identical at 1/2/4 workers against the serial plan.
///
/// * `d_spread = 230_000` pushes the BY dimension over the 2^20-code
///   budget: the jump table is ineligible, the default plan falls back to
///   the legacy chain, `+dispatch` runs the all-hash pivot.
/// * `g_spread = 230_000` pushes only the GROUP BY dimension over budget
///   while the BY dimension stays dense: the pivot runs with a hash group
///   map but dense per-term cell maps — the mixed path.
/// * spreads of 1 keep everything dense (the all-dense side).
#[test]
fn group_paths_agree_on_both_sides_of_the_dense_budget() {
    const N: usize = 200_000; // 4 morsels: real fan-out at Threads(4)
    let case_variants: Vec<(String, HorizontalOptions)> = horizontal_variants()
        .into_iter()
        .filter(|(name, _)| name.contains("CASE"))
        .collect();
    for (g_spread, d_spread) in [(1, 1), (1, 230_000), (230_000, 1)] {
        let catalog = budget_catalog(N, g_spread, d_spread);
        let engine = PercentageEngine::with_unique_temps(&catalog);
        let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
        let (ref_name, ref_opts) = &case_variants[0];
        let reference = engine
            .horizontal_with(
                &q,
                &HorizontalOptions {
                    parallel: ParallelMode::Serial,
                    ..ref_opts.clone()
                },
            )
            .unwrap();
        if (g_spread, d_spread) == (1, 1) {
            assert!(
                reference.stats.dense_group_ops > 0 && reference.stats.hash_group_ops == 0,
                "all-dense input must take the dense path: {:?}",
                reference.stats
            );
        }
        if (g_spread, d_spread) == (230_000, 1) {
            assert!(
                reference.stats.dense_group_ops > 0 && reference.stats.hash_group_ops > 0,
                "over-budget GROUP BY with dense BY must take the mixed path: {:?}",
                reference.stats
            );
        }
        let reference = reference.snapshot();
        for (name, opts) in &case_variants {
            for threads in [1usize, 2, 4] {
                let got = engine
                    .horizontal_with(
                        &q,
                        &HorizontalOptions {
                            parallel: ParallelMode::Threads(threads),
                            ..opts.clone()
                        },
                    )
                    .unwrap();
                // (Only the direct variant: FROM FV builds FV through the
                // regular aggregation, which may legitimately run dense.)
                if name == "CASE from F+dispatch" {
                    assert_eq!(
                        got.stats.dense_group_ops, 0,
                        "hash dispatch must never touch the dense path: {:?}",
                        got.stats
                    );
                }
                let got = got.snapshot();
                if let Some(diff) = first_divergence(
                    &format!("{ref_name}/serial/spread=({g_spread},{d_spread})"),
                    &reference,
                    &format!("{name}/threads={threads}/spread=({g_spread},{d_spread})"),
                    &got,
                ) {
                    panic!("{diff}");
                }
            }
        }
    }
}

/// Vectorized vs scalar kernels on RLE-friendly input: the fact table is
/// sorted by the BY dimension, so the fused pivot sees long constant
/// cell-code blocks and takes its run-level fast path. The result must be
/// byte-identical to the forced-scalar plan at every thread count, and the
/// kernel-path counters must prove which path each plan actually ran —
/// NULL measures included, so the validity-branch in the scatter kernels is
/// exercised, not just the happy path.
#[test]
fn vectorized_rle_path_matches_scalar_kernels_on_sorted_input() {
    const N: usize = 200_000; // 4 morsels: real fan-out at Threads(4)
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Str),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::with_capacity(schema, N);
    let mut state = 0x0123_4567_89ab_cdefu64;
    for i in 0..N {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let g = ((state >> 33) % 101) as i64;
        // Sorted string dimension: 7 runs of ~28.5k rows each, far longer
        // than the 1024-row kernel blocks — and dictionary-coded, so the
        // fused pivot reads it through the bit-packed code vector.
        let d = format!("d{}", i * 7 / N);
        let a = if state.is_multiple_of(10) {
            Value::Null
        } else {
            Value::from(((state >> 3) % 1000) as f64)
        };
        t.push_row(&[Value::from(g), Value::str(&d), a]).unwrap();
    }
    catalog.create_table("f", t).unwrap();
    let engine = PercentageEngine::with_unique_temps(&catalog);
    let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);

    let scalar = engine
        .horizontal_with(
            &q,
            &HorizontalOptions {
                scalar_kernels: true,
                parallel: ParallelMode::Serial,
                ..HorizontalOptions::default()
            },
        )
        .unwrap();
    assert!(
        scalar.stats.scalar_kernel_rows > 0 && scalar.stats.vectorized_kernel_rows == 0,
        "forced-scalar plan must not touch the vectorized kernels: {:?}",
        scalar.stats
    );
    let scalar = scalar.snapshot();

    for threads in [1usize, 2, 4] {
        let vectorized = engine
            .horizontal_with(
                &q,
                &HorizontalOptions {
                    parallel: ParallelMode::Threads(threads),
                    ..HorizontalOptions::default()
                },
            )
            .unwrap();
        assert!(
            vectorized.stats.vectorized_kernel_rows >= N as u64,
            "dense sorted input must run the vectorized kernels: {:?}",
            vectorized.stats
        );
        assert!(
            vectorized.stats.rle_runs > 0,
            "sorted BY dimension must hit the RLE fast path: {:?}",
            vectorized.stats
        );
        assert!(
            vectorized.stats.pack_width > 0,
            "vectorized plan must record its pack width: {:?}",
            vectorized.stats
        );
        if let Some(diff) = first_divergence(
            "scalar-kernels/serial",
            &scalar,
            &format!("vectorized/threads={threads}"),
            &vectorized.snapshot(),
        ) {
            panic!("{diff}");
        }
    }
}

/// A cache-warm combination catalog must not change a single byte of the
/// result, only the miss/hit counters.
#[test]
fn cache_cold_and_cache_warm_catalog_are_byte_identical() {
    let catalog = budget_catalog(50_000, 1, 1);
    let engine = PercentageEngine::with_unique_temps(&catalog);
    let q = HorizontalQuery::hpct("f", &["g"], "a", &["d"]);
    for (name, opts) in horizontal_variants()
        .into_iter()
        .filter(|(name, _)| name.contains("CASE"))
    {
        // The executor scans a pinned snapshot alias, so combos are keyed
        // by the alias; invalidate through the catalog to reach it.
        catalog.invalidate_combos("f");
        let cold = engine.horizontal_with(&q, &opts).unwrap();
        assert!(
            cold.stats.combo_cache_misses > 0 && cold.stats.combo_cache_hits == 0,
            "{name}: first evaluation must miss the cold cache: {:?}",
            cold.stats
        );
        let warm = engine.horizontal_with(&q, &opts).unwrap();
        assert!(
            warm.stats.combo_cache_hits > 0 && warm.stats.combo_cache_misses == 0,
            "{name}: second evaluation must hit the warm cache: {:?}",
            warm.stats
        );
        if let Some(diff) = first_divergence(
            &format!("{name}/cold"),
            &cold.snapshot(),
            &format!("{name}/warm"),
            &warm.snapshot(),
        ) {
            panic!("{diff}");
        }
    }
}

/// The harness itself must be able to see a divergence: feed it two tables
/// that differ in one cell and check the message carries both names and
/// the divergent row.
#[test]
fn harness_reports_injected_divergence() {
    let schema = Schema::from_pairs(&[("g", DataType::Int), ("p", DataType::Float)])
        .unwrap()
        .into_shared();
    let mut a = Table::empty(schema.clone());
    let mut b = Table::empty(schema);
    for g in 0..3i64 {
        a.push_row(&[Value::from(g), Value::from(0.25f64)]).unwrap();
        let p = if g == 1 { 0.5 } else { 0.25 };
        b.push_row(&[Value::from(g), Value::from(p)]).unwrap();
    }
    let msg =
        first_divergence("case_direct", &a, "spj_direct", &b).expect("divergence must be detected");
    assert!(
        msg.contains("case_direct") && msg.contains("spj_direct"),
        "message names both strategies: {msg}"
    );
    assert!(
        msg.contains("first divergent row 1"),
        "message pins the first divergent row: {msg}"
    );

    // Row-count divergence is also actionable.
    let mut c = Table::empty(a.schema().clone());
    c.push_row(&[Value::from(0i64), Value::from(0.25f64)])
        .unwrap();
    let msg = first_divergence("serial", &a, "threads=4", &c).expect("count divergence");
    assert!(msg.contains("row count 3 vs 1"), "{msg}");
}
