//! Panic isolation and deadline determinism at the operator level.
//!
//! The chaos panic injector is process-global, so every test that arms it
//! holds `CHAOS` for its whole arm..disarm window — tests in this binary
//! may run concurrently, but chaos windows never overlap.

use pa_engine::chaos::{self, CHAOS_PANIC_MSG};
use pa_engine::clock::TestClock;
use pa_engine::{
    hash_aggregate_with_config, AggFunc, AggSpec, Deadline, EngineError, ExecStats, Expr,
    ParallelConfig, ResourceGuard,
};
use pa_storage::{DataType, Schema, Table, Value};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

static CHAOS: Mutex<()> = Mutex::new(());

fn chaos_window() -> std::sync::MutexGuard<'static, ()> {
    CHAOS.lock().unwrap_or_else(|e| e.into_inner())
}

/// `n` rows over a few groups with deterministic values.
fn fixture(n: usize) -> Table {
    let schema = Schema::from_pairs(&[("g", DataType::Int), ("a", DataType::Float)])
        .unwrap()
        .into_shared();
    let mut t = Table::with_capacity(schema, n);
    for i in 0..n {
        t.push_row(&[Value::Int((i % 7) as i64), Value::Float((i % 11) as f64)])
            .unwrap();
    }
    t
}

fn specs(t: &Table) -> Vec<AggSpec> {
    let a = Expr::col(t.schema(), "a").unwrap();
    vec![
        AggSpec::new(AggFunc::Sum, a.clone(), "sum"),
        AggSpec::new(AggFunc::Count, a, "cnt"),
    ]
}

fn parallel_config(threads: usize, morsel_rows: usize) -> ParallelConfig {
    ParallelConfig {
        threads,
        morsel_rows,
        min_parallel_rows: 0,
        ..ParallelConfig::serial()
    }
}

fn aggregate(t: &Table, guard: &ResourceGuard, cfg: &ParallelConfig) -> Result<Table, EngineError> {
    hash_aggregate_with_config(t, &[0], &specs(t), guard, &mut ExecStats::default(), cfg)
}

#[test]
fn worker_panic_is_caught_as_a_typed_error_and_the_operator_stays_usable() {
    let _w = chaos_window();
    let t = fixture(4096);
    let cfg = parallel_config(4, 256);
    // 16 morsels split over 4 workers: every scan charge happens on a
    // worker thread, so tick 3 panics inside a worker.
    chaos::arm(3);
    let err = aggregate(&t, &ResourceGuard::unlimited(), &cfg).unwrap_err();
    assert!(!chaos::is_armed(), "the injected panic fired");
    match &err {
        EngineError::WorkerPanicked { operator, payload } => {
            assert_eq!(operator, "multi_hash_aggregate");
            assert_eq!(payload, CHAOS_PANIC_MSG);
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The same inputs aggregate fine now: nothing was poisoned.
    let clean = aggregate(&t, &ResourceGuard::unlimited(), &cfg).unwrap();
    assert_eq!(clean.num_rows(), 7);
}

#[test]
fn panicking_worker_cancels_its_siblings_guard() {
    let _w = chaos_window();
    let t = fixture(4096);
    let guard = ResourceGuard::with_row_budget(u64::MAX);
    chaos::arm(2);
    let err = aggregate(&t, &guard, &parallel_config(4, 256)).unwrap_err();
    assert!(matches!(err, EngineError::WorkerPanicked { .. }), "{err:?}");
    assert!(
        guard.is_cancelled(),
        "the catch block cancels the shared guard so siblings stop within a morsel"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Wherever in the scan the panic lands, and whatever the worker
    /// count, the operator reports the typed error (never unwinding into
    /// the caller, never deadlocking) and works again immediately after.
    #[test]
    fn injected_panic_anywhere_in_the_scan_is_contained(
        tick in 0u64..16,
        threads in 2usize..5,
    ) {
        let _w = chaos_window();
        let t = fixture(4096);
        let cfg = parallel_config(threads, 256);
        // 16 scan morsels regardless of thread count, all charged on
        // worker threads; `tick` stays below 16 so the panic always fires
        // in a worker.
        chaos::arm(tick);
        let err = aggregate(&t, &ResourceGuard::unlimited(), &cfg).unwrap_err();
        chaos::disarm();
        prop_assert!(
            matches!(err, EngineError::WorkerPanicked { .. }),
            "tick {}: {:?}", tick, err
        );
        let clean = aggregate(&t, &ResourceGuard::unlimited(), &cfg).unwrap();
        prop_assert_eq!(clean.num_rows(), 7);
    }

    /// Deadline determinism: with an injected clock ticking once per guard
    /// charge, the scan aborts at the same morsel boundary whatever the
    /// worker count — rows_charged at the trip is a pure function of the
    /// tick schedule, not of thread scheduling.
    #[test]
    fn deadline_aborts_at_the_same_morsel_boundary_across_thread_counts(
        allow_ticks in 1u64..14,
    ) {
        let t = fixture(4096);
        let mut charged_at_trip = Vec::new();
        for threads in [1usize, 2, 4] {
            // Each charge advances the clock 1ms; the allowance expires
            // after `allow_ticks` charges, independent of wall time.
            let clock = Arc::new(TestClock::with_auto_step(Duration::from_millis(1)));
            let guard = ResourceGuard::with_deadline(Deadline::with_clock(
                Duration::from_millis(allow_ticks),
                clock,
            ));
            let query = guard.per_query();
            let err = aggregate(&t, &query, &parallel_config(threads, 256)).unwrap_err();
            prop_assert!(
                matches!(err, EngineError::DeadlineExceeded { .. }),
                "threads {}: {:?}", threads, err
            );
            charged_at_trip.push(query.rows_charged());
        }
        prop_assert_eq!(charged_at_trip[0], charged_at_trip[1], "1 vs 2 threads");
        prop_assert_eq!(charged_at_trip[0], charged_at_trip[2], "1 vs 4 threads");
    }
}
