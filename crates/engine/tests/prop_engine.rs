//! Property tests for the physical operators, each checked against a naive
//! reference implementation over the same random input.

use pa_engine::{
    distinct, filter, hash_aggregate, hash_join, sort, window_aggregate, AggFunc, AggSpec,
    ExecStats, Expr, JoinType,
};
use pa_storage::{DataType, Schema, Table, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Row {
    g: Option<i64>,
    d: Option<i64>,
    a: Option<i64>,
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            prop::option::weighted(0.9, 0..5i64),
            prop::option::weighted(0.9, 0..4i64),
            prop::option::weighted(0.85, -20..=20i64),
        )
            .prop_map(|(g, d, a)| Row { g, d, a }),
        0..max,
    )
}

fn table_of(rows: &[Row]) -> Table {
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("d", DataType::Int),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::empty(schema);
    for r in rows {
        t.push_row(&[
            Value::from(r.g),
            Value::from(r.d),
            Value::from(r.a.map(|x| x as f64)),
        ])
        .unwrap();
    }
    t
}

fn key_of(v: &Value) -> String {
    v.to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aggregate_matches_reference(rows in rows_strategy(120)) {
        let t = table_of(&rows);
        let specs = vec![
            AggSpec::new(AggFunc::Sum, Expr::col(t.schema(), "a").unwrap(), "sum"),
            AggSpec::new(AggFunc::Count, Expr::col(t.schema(), "a").unwrap(), "cnt"),
            AggSpec::new(AggFunc::CountStar, Expr::lit(1), "n"),
            AggSpec::new(AggFunc::Min, Expr::col(t.schema(), "a").unwrap(), "mn"),
            AggSpec::new(AggFunc::Max, Expr::col(t.schema(), "a").unwrap(), "mx"),
        ];
        let out = hash_aggregate(&t, &[0], &specs, &mut ExecStats::default()).unwrap();

        // Reference.
        #[derive(Default)]
        struct Ref {
            sum: f64,
            any: bool,
            cnt: i64,
            n: i64,
            mn: Option<i64>,
            mx: Option<i64>,
        }
        let mut model: BTreeMap<String, Ref> = BTreeMap::new();
        for r in &rows {
            let e = model.entry(key_of(&Value::from(r.g))).or_default();
            e.n += 1;
            if let Some(a) = r.a {
                e.sum += a as f64;
                e.any = true;
                e.cnt += 1;
                e.mn = Some(e.mn.map_or(a, |m| m.min(a)));
                e.mx = Some(e.mx.map_or(a, |m| m.max(a)));
            }
        }
        prop_assert_eq!(out.num_rows(), model.len());
        for i in 0..out.num_rows() {
            let key = key_of(&out.get(i, 0));
            let m = &model[&key];
            if m.any {
                prop_assert!((out.get(i, 1).as_f64().unwrap() - m.sum).abs() < 1e-9);
                prop_assert_eq!(out.get(i, 4).as_f64().unwrap(), m.mn.unwrap() as f64);
                prop_assert_eq!(out.get(i, 5).as_f64().unwrap(), m.mx.unwrap() as f64);
            } else {
                prop_assert!(out.get(i, 1).is_null());
                prop_assert!(out.get(i, 4).is_null());
            }
            prop_assert_eq!(out.get(i, 2).as_i64().unwrap(), m.cnt);
            prop_assert_eq!(out.get(i, 3).as_i64().unwrap(), m.n);
        }
    }

    #[test]
    fn join_matches_nested_loop(left in rows_strategy(60), right in rows_strategy(60)) {
        let lt = table_of(&left);
        let rt = table_of(&right);
        for (jt, outer) in [(JoinType::Inner, false), (JoinType::LeftOuter, true)] {
            let out = hash_join(&lt, &rt, &[0], &[0], jt, None, &mut ExecStats::default()).unwrap();
            // Reference: nested loop with grouping (NULL = NULL) semantics.
            let mut expected = 0usize;
            for l in &left {
                let matches = right
                    .iter()
                    .filter(|r| Value::from(l.g).key_eq(&Value::from(r.g)))
                    .count();
                expected += if matches == 0 && outer { 1 } else { matches };
            }
            prop_assert_eq!(out.num_rows(), expected, "{:?}", jt);
        }
    }

    #[test]
    fn distinct_matches_set(rows in rows_strategy(120)) {
        let t = table_of(&rows);
        let out = distinct(&t, &[0, 1], &mut ExecStats::default()).unwrap();
        let model: std::collections::BTreeSet<(String, String)> = rows
            .iter()
            .map(|r| (key_of(&Value::from(r.g)), key_of(&Value::from(r.d))))
            .collect();
        prop_assert_eq!(out.num_rows(), model.len());
    }

    #[test]
    fn filter_matches_retain(rows in rows_strategy(120), threshold in -20i64..=20) {
        let t = table_of(&rows);
        let pred = Expr::Cmp(
            pa_engine::CmpOp::Gt,
            Box::new(Expr::col(t.schema(), "a").unwrap()),
            Box::new(Expr::lit(threshold)),
        );
        let out = filter(&t, &pred, &mut ExecStats::default()).unwrap();
        let expected = rows.iter().filter(|r| r.a.is_some_and(|a| a > threshold)).count();
        prop_assert_eq!(out.num_rows(), expected, "NULL predicates drop rows");
    }

    #[test]
    fn sort_matches_std_sort(rows in rows_strategy(120)) {
        let t = table_of(&rows);
        let out = sort(&t, &[2], &mut ExecStats::default()).unwrap();
        let mut model: Vec<Option<i64>> = rows.iter().map(|r| r.a).collect();
        // NULLs first, then ascending — Option<i64> sorts None first already.
        model.sort();
        for (i, m) in model.iter().enumerate() {
            prop_assert_eq!(out.get(i, 2), Value::from(m.map(|x| x as f64)), "row {}", i);
        }
    }

    #[test]
    fn window_sum_equals_group_sum_broadcast(rows in rows_strategy(120)) {
        let t = table_of(&rows);
        let out =
            window_aggregate(&t, &[0], AggFunc::Sum, 2, "w", &mut ExecStats::default()).unwrap();
        // Model: per-group sums.
        let mut sums: BTreeMap<String, (f64, bool)> = BTreeMap::new();
        for r in &rows {
            let e = sums.entry(key_of(&Value::from(r.g))).or_default();
            if let Some(a) = r.a {
                e.0 += a as f64;
                e.1 = true;
            }
        }
        prop_assert_eq!(out.num_rows(), t.num_rows());
        for i in 0..out.num_rows() {
            let key = key_of(&out.get(i, 0));
            let (sum, any) = sums[&key];
            if any {
                prop_assert!((out.get(i, 3).as_f64().unwrap() - sum).abs() < 1e-9);
            } else {
                prop_assert!(out.get(i, 3).is_null());
            }
        }
    }

    #[test]
    fn count_distinct_matches_set_model(rows in rows_strategy(150)) {
        let t = table_of(&rows);
        let spec = AggSpec::new(
            AggFunc::CountDistinct,
            Expr::col(t.schema(), "d").unwrap(),
            "dd",
        );
        let out = hash_aggregate(&t, &[0], &[spec], &mut ExecStats::default()).unwrap();
        let mut model: BTreeMap<String, std::collections::BTreeSet<i64>> = BTreeMap::new();
        for r in &rows {
            let e = model.entry(key_of(&Value::from(r.g))).or_default();
            if let Some(d) = r.d {
                e.insert(d);
            }
        }
        for i in 0..out.num_rows() {
            let key = key_of(&out.get(i, 0));
            prop_assert_eq!(out.get(i, 1).as_i64().unwrap() as usize, model[&key].len());
        }
    }
}
