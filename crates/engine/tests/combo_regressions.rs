//! Regression tests for the combination catalog and the dense group path:
//!
//! * every logged mutation (bulk INSERT, per-row UPDATE) must invalidate
//!   the mutated table's cached combination sets — and only that table's;
//! * a recovered catalog starts with a cold (empty) combination cache;
//! * a dimension whose dictionary outgrows the dense-code budget
//!   mid-append must silently fall back to the hash group path with
//!   byte-identical results.

use pa_engine::{
    hash_aggregate_with_config, insert_into, update_from, AggFunc, AggSpec, ExecStats, Expr,
    ParallelConfig, ResourceGuard, SetClause,
};
use pa_storage::{Catalog, DataType, Schema, Table, Value};

fn dims(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

fn sales_catalog() -> Catalog {
    let catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("store", DataType::Int),
        ("dweek", DataType::Str),
        ("amt", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let mut t = Table::empty(schema);
    for (s, d, a) in [
        (1, "Mon", 10.0),
        (1, "Tue", 20.0),
        (2, "Mon", 5.0),
        (2, "Tue", 7.0),
    ] {
        t.push_row(&[Value::Int(s), Value::str(d), Value::Float(a)])
            .unwrap();
    }
    catalog.create_table("sales", t).unwrap();
    catalog
}

/// One-row batch with the sales schema.
fn batch(catalog: &Catalog, s: i64, d: &str, a: f64) -> Table {
    let schema = catalog.table("sales").unwrap().read().schema().clone();
    let mut b = Table::empty(schema);
    b.push_row(&[Value::Int(s), Value::str(d), Value::Float(a)])
        .unwrap();
    b
}

fn seed_cache(catalog: &Catalog) {
    catalog.combo_cache().store(
        "sales",
        &dims(&["dweek"]),
        vec![vec![Value::str("Mon")], vec![Value::str("Tue")]],
    );
    catalog
        .combo_cache()
        .store("other", &dims(&["dweek"]), vec![vec![Value::str("Mon")]]);
}

#[test]
fn wal_append_invalidates_combo_catalog() {
    let catalog = sales_catalog();
    seed_cache(&catalog);
    let before = catalog.combo_cache().stats();
    assert_eq!(before.entries, 2);

    let mut stats = ExecStats::default();
    let b = batch(&catalog, 3, "Wed", 1.0);
    insert_into(&catalog, "sales", &b, &mut stats).unwrap();

    let after = catalog.combo_cache().stats();
    assert!(
        catalog
            .combo_cache()
            .get("sales", &dims(&["dweek"]))
            .is_none(),
        "append must drop the mutated table's cached combinations"
    );
    assert!(
        catalog
            .combo_cache()
            .get("other", &dims(&["dweek"]))
            .is_some(),
        "append must not drop other tables' entries"
    );
    assert_eq!(after.invalidations, before.invalidations + 1);
}

#[test]
fn wal_update_invalidates_combo_catalog() {
    let catalog = sales_catalog();
    seed_cache(&catalog);

    // UPDATE sales SET amt = amt joined against a one-row source — the
    // values don't matter, only that the mutation is logged.
    let src = batch(&catalog, 1, "Mon", 0.0);
    let sets = vec![SetClause {
        target_col: 2,
        expr: Expr::Col(2),
    }];
    let mut stats = ExecStats::default();
    let n = update_from(&catalog, "sales", &[0], &src, &[0], None, &sets, &mut stats).unwrap();
    assert!(n > 0, "update must touch at least one row");

    assert!(
        catalog
            .combo_cache()
            .get("sales", &dims(&["dweek"]))
            .is_none(),
        "logged UPDATE must drop the mutated table's cached combinations"
    );
    assert!(
        catalog
            .combo_cache()
            .get("other", &dims(&["dweek"]))
            .is_some(),
        "UPDATE must not drop other tables' entries"
    );
    assert!(catalog.combo_cache().stats().invalidations >= 1);
}

#[test]
fn recovered_catalog_starts_cache_cold() {
    let catalog = sales_catalog();
    seed_cache(&catalog);
    assert_eq!(catalog.combo_cache().stats().entries, 2);

    let image = catalog.with_wal(|w| w.snapshot()).unwrap();
    let (recovered, report) =
        Catalog::recover(Box::new(pa_storage::log::MemLogStore::from_bytes(image))).unwrap();
    assert!(report.is_clean(), "{report:?}");

    let stats = recovered.combo_cache().stats();
    assert_eq!(
        stats.entries, 0,
        "recovery must not resurrect cached combination sets"
    );
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 0);
}

/// Checkpoint slot the test can read back after `checkpoint_now`.
#[derive(Debug, Clone, Default)]
struct SharedCkpt(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl pa_storage::CheckpointStore for SharedCkpt {
    fn save(&mut self, frame: &[u8]) -> pa_storage::Result<()> {
        *self.0.lock().unwrap() = frame.to_vec();
        Ok(())
    }

    fn read_raw(&mut self) -> pa_storage::Result<Vec<u8>> {
        Ok(self.0.lock().unwrap().clone())
    }
}

/// Mirror of [`recovered_catalog_starts_cache_cold`] for checkpoint-aware
/// recovery: installing image tables goes through the same mutation funnel
/// live writes use, so nothing cached before the crash can survive — even
/// though the image itself bypasses record-by-record replay.
#[test]
fn checkpoint_recovered_catalog_starts_cache_cold() {
    let catalog = sales_catalog();
    let store = SharedCkpt::default();
    catalog.set_checkpoint_store(
        Box::new(store.clone()),
        pa_storage::CheckpointPolicy::disabled(),
    );

    // A pre-checkpoint append, the checkpoint, then a post-checkpoint
    // append: recovery must install the image AND replay a WAL suffix.
    let mut stats = ExecStats::default();
    insert_into(
        &catalog,
        "sales",
        &batch(&catalog, 3, "Wed", 2.0),
        &mut stats,
    )
    .unwrap();
    catalog.checkpoint_now().unwrap();
    insert_into(
        &catalog,
        "sales",
        &batch(&catalog, 4, "Thu", 3.0),
        &mut stats,
    )
    .unwrap();
    seed_cache(&catalog);
    assert_eq!(catalog.combo_cache().stats().entries, 2);

    let wal = catalog.with_wal(|w| w.snapshot()).unwrap();
    let (recovered, report) = Catalog::recover_with_checkpoint(
        Box::new(pa_storage::log::MemLogStore::from_bytes(wal)),
        Box::new(store.clone()),
        1 << 20,
        pa_storage::CheckpointPolicy::disabled(),
    )
    .unwrap();
    assert!(report.checkpoint_error.is_none(), "{report:?}");
    assert!(report.checkpoint_tables >= 1 && report.checkpoint_lsn > 1);
    assert!(
        report.records_replayed >= 1,
        "the post-checkpoint suffix must replay: {report:?}"
    );

    let stats = recovered.combo_cache().stats();
    assert_eq!(
        stats.entries, 0,
        "checkpoint install must leave the combination cache cold"
    );
    assert_eq!((stats.hits, stats.misses), (0, 0));

    let live: Vec<Vec<Value>> = catalog.table("sales").unwrap().read().rows().collect();
    let rec: Vec<Vec<Value>> = recovered.table("sales").unwrap().read().rows().collect();
    assert_eq!(rec, live, "image + suffix must reproduce the live table");
}

#[test]
fn dictionary_overflow_mid_append_falls_back_to_hash() {
    // A string dimension under a tiny dense budget: dense while the
    // dictionary is small, hash after appends push it past the budget —
    // with byte-identical aggregation results on both paths.
    let budget = 16;
    let config = ParallelConfig {
        dense_budget: budget,
        ..ParallelConfig::serial()
    };
    let catalog = sales_catalog();
    let specs = vec![AggSpec::new(AggFunc::Sum, Expr::Col(2), "total")];
    let guard = ResourceGuard::unlimited();

    let shared = catalog.table("sales").unwrap();
    let mut stats = ExecStats::default();
    let out = hash_aggregate_with_config(&shared.read(), &[1], &specs, &guard, &mut stats, &config)
        .unwrap();
    assert_eq!(out.num_rows(), 2);
    assert!(
        stats.dense_group_ops > 0 && stats.hash_group_ops == 0,
        "small dictionary must run dense: {stats}"
    );

    // Mid-append dictionary growth: more distinct strings than the budget.
    let mut stats = ExecStats::default();
    for i in 0..budget as i64 {
        let b = batch(&catalog, 9, &format!("day{i}"), 1.0);
        insert_into(&catalog, "sales", &b, &mut stats).unwrap();
    }

    let mut dense_stats = ExecStats::default();
    let dense = hash_aggregate_with_config(
        &shared.read(),
        &[1],
        &specs,
        &guard,
        &mut dense_stats,
        &ParallelConfig::serial(), // default budget: still dense-eligible
    )
    .unwrap();
    assert!(
        dense_stats.dense_group_ops > 0 && dense_stats.hash_group_ops == 0,
        "{dense_stats}"
    );

    let mut hash_stats = ExecStats::default();
    let hashed = hash_aggregate_with_config(
        &shared.read(),
        &[1],
        &specs,
        &guard,
        &mut hash_stats,
        &config, // overflowed budget: must fall back
    )
    .unwrap();
    assert!(
        hash_stats.hash_group_ops > 0 && hash_stats.dense_group_ops == 0,
        "overflowed dictionary must fall back to hash: {hash_stats}"
    );

    let key: Vec<usize> = vec![0];
    let d: Vec<Vec<Value>> = dense.sorted_by(&key).rows().collect();
    let h: Vec<Vec<Value>> = hashed.sorted_by(&key).rows().collect();
    assert_eq!(d, h, "dense and hash group paths must agree byte-for-byte");
    assert_eq!(d.len(), 2 + budget);
}
