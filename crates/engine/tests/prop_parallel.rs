//! Determinism of morsel-parallel aggregation: for random tables (NULLs,
//! dictionary-encoded strings, duplicate keys) the parallel scan must
//! produce output *identical* to the serial scan — same groups, same group
//! order, same cell values — across worker counts {1, 2, 4, 7}.
//!
//! Inputs use integer-valued floats: those sums are exact under any
//! regrouping of additions, so "identical" here means byte-identical, not
//! within-epsilon (DESIGN.md §7 states the float caveat precisely).

use pa_engine::{
    hash_aggregate_with_config, multi_hash_aggregate_with_config, AggFunc, AggSpec, EngineError,
    ExecStats, Expr, ParallelConfig, ResourceGuard,
};
use pa_storage::{DataType, Schema, Table, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Row {
    g: Option<i64>,
    s: Option<usize>,
    a: Option<i64>,
}

/// Rows with NULLs in every column, few distinct keys (duplicates
/// guaranteed), and a small string domain (dictionary codes collide across
/// worker chunks).
fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            prop::option::weighted(0.9, 0..6i64),
            prop::option::weighted(0.9, 0..4usize),
            prop::option::weighted(0.85, -50..=50i64),
        )
            .prop_map(|(g, s, a)| Row { g, s, a }),
        0..max,
    )
}

fn table_of(rows: &[Row]) -> Table {
    let schema = Schema::from_pairs(&[
        ("g", DataType::Int),
        ("s", DataType::Str),
        ("a", DataType::Float),
    ])
    .unwrap()
    .into_shared();
    let names = ["north", "south", "east", "west"];
    let mut t = Table::with_capacity(schema, rows.len());
    for r in rows {
        t.push_row(&[
            Value::from(r.g),
            r.s.map_or(Value::Null, |i| Value::str(names[i])),
            Value::from(r.a.map(|x| x as f64)),
        ])
        .unwrap();
    }
    t
}

fn all_func_specs(t: &Table) -> Vec<AggSpec> {
    let a = Expr::col(t.schema(), "a").unwrap();
    let s = Expr::col(t.schema(), "s").unwrap();
    vec![
        AggSpec::new(AggFunc::Sum, a.clone(), "sum"),
        AggSpec::new(AggFunc::Count, a.clone(), "cnt"),
        AggSpec::new(AggFunc::CountStar, Expr::lit(1), "n"),
        AggSpec::new(AggFunc::Avg, a.clone(), "avg"),
        AggSpec::new(AggFunc::Min, a.clone(), "mn"),
        AggSpec::new(AggFunc::Max, a, "mx"),
        AggSpec::new(AggFunc::CountDistinct, s, "ds"),
    ]
}

/// Tiny morsels so even small random tables split across several workers.
fn config(threads: usize) -> ParallelConfig {
    ParallelConfig {
        threads,
        morsel_rows: 16,
        min_parallel_rows: 0,
        ..ParallelConfig::serial()
    }
}

fn snapshot(t: &Table) -> Vec<Vec<Value>> {
    // Unsorted: group order itself must be identical, not just group content.
    t.rows().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_hash_aggregate_identical_to_serial(rows in rows_strategy(300)) {
        let t = table_of(&rows);
        let specs = all_func_specs(&t);
        let serial = hash_aggregate_with_config(
            &t,
            &[0, 1],
            &specs,
            &ResourceGuard::unlimited(),
            &mut ExecStats::default(),
            &config(1),
        )
        .unwrap();
        for threads in [2usize, 4, 7] {
            let parallel = hash_aggregate_with_config(
                &t,
                &[0, 1],
                &specs,
                &ResourceGuard::unlimited(),
                &mut ExecStats::default(),
                &config(threads),
            )
            .unwrap();
            prop_assert_eq!(
                snapshot(&serial),
                snapshot(&parallel),
                "threads={}",
                threads
            );
        }
    }

    #[test]
    fn parallel_multi_level_identical_to_serial(rows in rows_strategy(300)) {
        let t = table_of(&rows);
        let specs = all_func_specs(&t);
        let levels = vec![
            (vec![0usize, 1], specs.clone()),
            (vec![1], specs.clone()),
            (vec![], specs),
        ];
        let serial = multi_hash_aggregate_with_config(
            &t,
            &levels,
            &ResourceGuard::unlimited(),
            &mut ExecStats::default(),
            &config(1),
        )
        .unwrap();
        for threads in [2usize, 4, 7] {
            let parallel = multi_hash_aggregate_with_config(
                &t,
                &levels,
                &ResourceGuard::unlimited(),
                &mut ExecStats::default(),
                &config(threads),
            )
            .unwrap();
            for (lvl, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                prop_assert_eq!(
                    snapshot(s),
                    snapshot(p),
                    "threads={} level={}",
                    threads,
                    lvl
                );
            }
        }
    }
}

/// The satellite guarantee: cancelling the shared guard stops a parallel
/// scan mid-flight — every worker observes the cancel at its next morsel
/// boundary and the whole aggregation returns `Cancelled`.
#[test]
fn cancelling_mid_scan_stops_all_parallel_workers() {
    let n = 1 << 18;
    let schema = Schema::from_pairs(&[("g", DataType::Int), ("a", DataType::Float)])
        .unwrap()
        .into_shared();
    let mut t = Table::with_capacity(schema, n);
    for i in 0..n {
        t.push_row(&[Value::Int((i % 101) as i64), Value::Float((i % 13) as f64)])
            .unwrap();
    }
    let specs = all_func_specs_small(&t);
    let guard = ResourceGuard::with_row_budget(u64::MAX);
    let config = ParallelConfig {
        threads: 4,
        morsel_rows: 512,
        min_parallel_rows: 0,
        ..ParallelConfig::serial()
    };

    let result = std::thread::scope(|s| {
        // Poller: cancel as soon as any worker has charged its first morsel,
        // i.e. while the scan is genuinely mid-flight.
        let poller_guard = &guard;
        s.spawn(move || {
            while poller_guard.rows_charged() == 0 {
                std::thread::yield_now();
            }
            poller_guard.cancel();
        });
        hash_aggregate_with_config(&t, &[0], &specs, &guard, &mut ExecStats::default(), &config)
    });

    let err = result.expect_err("cancelled scan must not produce a result");
    assert!(matches!(err, EngineError::Cancelled), "{err}");
    assert!(
        guard.rows_charged() < n as u64,
        "scan stopped before charging the full input ({} of {n})",
        guard.rows_charged()
    );
}

fn all_func_specs_small(t: &Table) -> Vec<AggSpec> {
    let a = Expr::col(t.schema(), "a").unwrap();
    vec![
        AggSpec::new(AggFunc::Sum, a.clone(), "sum"),
        AggSpec::new(AggFunc::Avg, a.clone(), "avg"),
        AggSpec::new(AggFunc::Min, a.clone(), "mn"),
        AggSpec::new(AggFunc::CountDistinct, a, "ds"),
    ]
}
