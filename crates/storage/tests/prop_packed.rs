//! Property tests for the bit-packed slot vectors (DESIGN.md §12): packing
//! followed by `get`/`unpack_into` must reproduce the source slots exactly,
//! at every width, for every block alignment — the vectorized kernels'
//! correctness rests on this round trip.

use pa_storage::{width_for, Bitmap, PackedCodes, MAX_PACK_WIDTH};
use proptest::prelude::*;

/// Mask raw values down to `width` bits and force the boundary value into
/// slot 0, so every width exercises its overflow edge rather than only the
/// values the RNG happened on.
fn slots_at_width(raw: &[u32], width: u32) -> Vec<u32> {
    let max = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    let mut slots: Vec<u32> = raw.iter().map(|&v| v & max).collect();
    if !slots.is_empty() {
        slots[0] = max;
    }
    slots
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pack_get_roundtrip(
        width in 1u32..=MAX_PACK_WIDTH,
        raw in prop::collection::vec(any::<u32>(), 0..300),
    ) {
        let slots = slots_at_width(&raw, width);
        let p = PackedCodes::pack(&slots, width);
        prop_assert_eq!(p.len(), slots.len());
        prop_assert_eq!(p.width(), width);
        for (i, &s) in slots.iter().enumerate() {
            prop_assert_eq!(p.get(i), s);
        }
    }

    #[test]
    fn unpack_into_matches_source_at_any_offset(
        width in 1u32..=MAX_PACK_WIDTH,
        raw in prop::collection::vec(any::<u32>(), 1..300),
        start in 0usize..300,
        blen in 1usize..128,
    ) {
        let slots = slots_at_width(&raw, width);
        let p = PackedCodes::pack(&slots, width);
        let start = start % slots.len();
        let blen = blen.min(slots.len() - start);
        let mut out = vec![u32::MAX; blen];
        p.unpack_into(start, &mut out);
        prop_assert_eq!(&out[..], &slots[start..start + blen]);
    }

    #[test]
    fn from_codes_folds_nulls_and_roundtrips(
        rows in prop::collection::vec((0u32..50, any::<bool>()), 0..300),
        extra_dict in 0usize..8,
    ) {
        // NULL rows carry a placeholder code 0 that must never surface.
        let codes: Vec<u32> = rows.iter().map(|&(c, v)| if v { c } else { 0 }).collect();
        let validity: Bitmap = rows.iter().map(|&(_, v)| v).collect();
        let dict_len = 50 + extra_dict;
        let p = PackedCodes::from_codes(&codes, &validity, dict_len)
            .expect("small dictionary always packs");
        prop_assert_eq!(p.width(), width_for(dict_len as u64));
        for (i, &(c, valid)) in rows.iter().enumerate() {
            let expect = if valid { c + 1 } else { 0 };
            prop_assert_eq!(p.get(i), expect);
        }
    }

    #[test]
    fn rle_runs_survive_block_boundaries(
        run_lens in prop::collection::vec(1usize..200, 1..8),
        vals in prop::collection::vec(0u32..7, 8),
    ) {
        // Runs deliberately sized to straddle 64-slot unpack blocks and
        // word boundaries: run structure must be preserved verbatim.
        let slots: Vec<u32> = run_lens
            .iter()
            .zip(&vals)
            .flat_map(|(&n, &v)| std::iter::repeat_n(v, n))
            .collect();
        let p = PackedCodes::pack(&slots, 3);
        let mut out = vec![0u32; slots.len()];
        p.unpack_into(0, &mut out);
        prop_assert_eq!(&out, &slots);
    }
}

#[test]
fn all_null_column_packs_to_zero_slots() {
    let codes = vec![0u32; 150];
    let validity: Bitmap = (0..150).map(|_| false).collect();
    let p = PackedCodes::from_codes(&codes, &validity, 1000).expect("packs");
    for i in 0..150 {
        assert_eq!(p.get(i), 0);
    }
}

#[test]
fn single_value_column_is_width_one() {
    // dict_len 1 → max slot 1 → 1 bit.
    let codes = vec![0u32; 97];
    let validity: Bitmap = (0..97).map(|_| true).collect();
    let p = PackedCodes::from_codes(&codes, &validity, 1).expect("packs");
    assert_eq!(p.width(), 1);
    for i in 0..97 {
        assert_eq!(p.get(i), 1);
    }
}

#[test]
fn dictionary_over_32_bit_domain_refuses_to_pack() {
    let codes = vec![0u32];
    let validity: Bitmap = std::iter::once(true).collect();
    // Folded domain u32::MAX + 1 needs 33 bits.
    assert!(PackedCodes::from_codes(&codes, &validity, u32::MAX as usize + 1).is_none());
    // One below the boundary still packs, at exactly 32 bits.
    let p = PackedCodes::from_codes(&codes, &validity, u32::MAX as usize).expect("packs");
    assert_eq!(p.width(), 32);
}
