//! Crash-recovery property tests.
//!
//! A random DDL/DML workload runs against a catalog; the log is then cut at
//! a random byte (or torn mid-write by a seeded [`FaultInjector`]) and
//! recovered. The recovered catalog must always be *prefix-consistent*:
//! exactly the state produced by some record-prefix of the workload's log,
//! structurally sound (column lengths, validity bitmaps, dictionary codes),
//! and ready to keep logging.
//!
//! Failures print the deriving seed and a one-line repro command
//! (`PA_PROPTEST_SEED=<seed> cargo test <name>`); fault-injector errors
//! additionally carry their own `[fault seed N]` tag.

use pa_storage::log::MemLogStore;
use pa_storage::wal::scan_log;
use pa_storage::{
    Catalog, DataType, FaultInjector, FaultPlan, Schema, StorageError, Table, Value, Wal,
};
use proptest::prelude::*;

/// One step of the random workload. `slot` picks a table (fixed schema per
/// slot so generated values always type-check), the payload fields seed the
/// row values.
#[derive(Debug, Clone)]
enum Op {
    Create { slot: u8, rows: u8, a: i64, b: i64 },
    Insert { slot: u8, rows: u8, a: i64, b: i64 },
    Update { slot: u8, row: u8, a: i64, b: i64 },
    Drop { slot: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let payload = || (0u8..4, 0u8..8, -1000i64..1000, -1000i64..1000);
    prop_oneof![
        3 => payload().prop_map(|(slot, rows, a, b)| Op::Create { slot, rows, a, b }),
        4 => payload().prop_map(|(slot, rows, a, b)| Op::Insert { slot, rows, a, b }),
        4 => payload().prop_map(|(slot, row, a, b)| Op::Update { slot, row, a, b }),
        1 => payload().prop_map(|(slot, ..)| Op::Drop { slot }),
    ]
}

fn slot_name(slot: u8) -> String {
    format!("t{}", slot % 4)
}

/// Per-slot schema: exercises every data type, including dictionary columns.
fn slot_schema(slot: u8) -> Schema {
    match slot % 4 {
        0 => Schema::from_pairs(&[("d", DataType::Int), ("a", DataType::Float)]).unwrap(),
        1 => Schema::from_pairs(&[("s", DataType::Str), ("n", DataType::Int)]).unwrap(),
        2 => Schema::from_pairs(&[("x", DataType::Float)]).unwrap(),
        _ => Schema::from_pairs(&[
            ("k", DataType::Str),
            ("v", DataType::Float),
            ("w", DataType::Int),
        ])
        .unwrap(),
    }
}

/// Deterministic row for (slot, i, a, b), with NULLs sprinkled in.
fn slot_row(slot: u8, i: i64, a: i64, b: i64) -> Vec<Value> {
    let null_every = |k: i64, v: Value| if (i + k) % 5 == 0 { Value::Null } else { v };
    match slot % 4 {
        0 => vec![
            null_every(a, Value::Int(a + i)),
            null_every(b, Value::Float((b + i) as f64 / 4.0)),
        ],
        1 => vec![
            null_every(a, Value::str(format!("s{}", (a + i).rem_euclid(17)))),
            null_every(b, Value::Int(b - i)),
        ],
        2 => vec![null_every(a, Value::Float((a * 3 + b + i) as f64))],
        _ => vec![
            null_every(a, Value::str(format!("k{}", (b + i).rem_euclid(9)))),
            null_every(b, Value::Float(i as f64)),
            null_every(a + b, Value::Int(i)),
        ],
    }
}

/// Apply one op through the catalog's logging write paths. Returns Err when
/// the log device refused a record (the simulated crash point).
fn apply_op(catalog: &Catalog, op: &Op) -> Result<(), StorageError> {
    match *op {
        Op::Create { slot, rows, a, b } => {
            let mut t = Table::empty(slot_schema(slot).into_shared());
            for i in 0..rows as i64 {
                t.push_row(&slot_row(slot, i, a, b)).unwrap();
            }
            catalog.create_or_replace_table(slot_name(slot), t);
            // DDL swallows device errors (counted in write_errors); surface
            // them here so the workload stops at the crash like DML does.
            if catalog.wal_stats().write_errors > 0 {
                return Err(StorageError::Io("device refused DDL record".into()));
            }
            Ok(())
        }
        Op::Insert { slot, rows, a, b } => {
            let Ok(shared) = catalog.table(&slot_name(slot)) else {
                return Ok(()); // no such table yet; op is a no-op
            };
            let mut t = shared.write();
            let start = t.num_rows();
            for i in 0..rows as i64 {
                t.push_row(&slot_row(slot, start as i64 + i, a, b)).unwrap();
            }
            catalog.with_wal(|w| w.log_bulk_insert(&slot_name(slot), &t, start))
        }
        Op::Update { slot, row, a, b } => {
            let Ok(shared) = catalog.table(&slot_name(slot)) else {
                return Ok(());
            };
            let mut t = shared.write();
            if t.num_rows() == 0 {
                return Ok(());
            }
            let row = row as usize % t.num_rows();
            let full_before = t.row(row).unwrap();
            let full_after = slot_row(slot, a ^ b, b, a);
            // Alternate between full-row updates and single-column updates,
            // mirroring the engine's SET-clause write path, which logs only
            // the touched columns.
            let cols: Vec<usize> = if b % 2 == 0 {
                (0..full_after.len()).collect()
            } else {
                vec![a.rem_euclid(full_after.len() as i64) as usize]
            };
            let before: Vec<Value> = cols.iter().map(|&c| full_before[c].clone()).collect();
            let after: Vec<Value> = cols.iter().map(|&c| full_after[c].clone()).collect();
            for (&c, v) in cols.iter().zip(&after) {
                t.column_mut(c).set(row, v.clone()).unwrap();
            }
            catalog.with_wal(|w| w.log_update(&slot_name(slot), row, &cols, &before, &after))
        }
        Op::Drop { slot } => {
            let _ = catalog.drop_table(&slot_name(slot));
            Ok(())
        }
    }
}

/// Materialize every table as (name, rows) for state comparison.
fn state_of(catalog: &Catalog) -> Vec<(String, Vec<Vec<Value>>)> {
    catalog
        .table_names()
        .into_iter()
        .map(|name| {
            let table = catalog.table(&name).unwrap();
            let rows = table.read().rows().collect();
            (name, rows)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cut the log at an arbitrary byte: recovery must replay exactly the
    /// record-prefix that survives, pass integrity checks, and — for an
    /// uncut log — reproduce the live catalog bit for bit.
    #[test]
    fn recovery_is_prefix_consistent(
        ops in prop::collection::vec(op_strategy(), 1..40),
        cut_frac in 0u32..=1000,
    ) {
        let catalog = Catalog::new();
        for op in &ops {
            apply_op(&catalog, op).expect("mem store never fails");
        }
        let full = catalog.with_wal(|w| w.snapshot()).unwrap();
        let cut = (full.len() as u64 * cut_frac as u64 / 1000) as usize;
        let image = full[..cut].to_vec();

        // Record-level prefix consistency: the cut log's records are a
        // prefix of the full log's records.
        let full_scan = scan_log(&full);
        let cut_scan = scan_log(&image);
        prop_assert!(full_scan.corruption.is_none());
        let n = cut_scan.records.len();
        prop_assert!(n <= full_scan.records.len());
        prop_assert_eq!(&cut_scan.records[..], &full_scan.records[..n]);

        // Recovery replays that prefix into a structurally sound catalog.
        let (recovered, report) =
            Catalog::recover(Box::new(MemLogStore::from_bytes(image))).unwrap();
        recovered.check_integrity().unwrap();
        prop_assert_eq!(report.records_replayed + report.records_skipped, n as u64);
        prop_assert_eq!(report.bytes_skipped, (cut as u64) - cut_scan.valid_len);

        // An uncut log recovers the exact live state.
        if cut == full.len() {
            prop_assert!(report.is_clean());
            prop_assert_eq!(state_of(&recovered), state_of(&catalog));
        }

        // The recovered WAL keeps working: one more record, still clean.
        recovered
            .with_wal(|w| w.log_create_table("post", &slot_schema(0)))
            .unwrap();
        let again = recovered.with_wal(|w| w.snapshot()).unwrap();
        let rescan = scan_log(&again);
        prop_assert!(rescan.corruption.is_none());
        prop_assert_eq!(rescan.records.len(), n + 1);
    }

    /// Torn writes injected by a seeded fault plan: the workload stops at
    /// the simulated crash, and whatever bytes survived recover into a
    /// prefix-consistent, integrity-checked catalog.
    #[test]
    fn recovery_survives_seeded_torn_writes(
        ops in prop::collection::vec(op_strategy(), 1..40),
        fault_seed in 0u64..1 << 48,
    ) {
        let plan = FaultPlan::seeded_torn_write(fault_seed, 6000);
        let injector = FaultInjector::from_seed_plan(MemLogStore::new(), fault_seed, plan);
        let wal = Wal::with_store(Box::new(injector), 1 << 20);
        let catalog = Catalog::from_wal(wal);

        let mut crashed = false;
        for op in &ops {
            if let Err(e) = apply_op(&catalog, op) {
                // Injected failures name their seed for reproduction; DDL
                // crashes surface via the write_errors counter instead.
                let msg = e.to_string();
                prop_assert!(
                    msg.contains(&format!("fault seed {fault_seed}"))
                        || msg.contains("device refused DDL record"),
                    "unexpected error: {}", msg
                );
                crashed = true;
                break;
            }
        }

        // The surviving bytes (possibly a torn prefix) must recover.
        // Device already offline means recovery gets nothing — also valid.
        let image = catalog.with_wal(|w| w.snapshot().unwrap_or_default());
        let (recovered, report) =
            Catalog::recover(Box::new(MemLogStore::from_bytes(image.clone()))).unwrap();
        recovered.check_integrity().unwrap();
        if crashed {
            let scan = scan_log(&image);
            prop_assert_eq!(scan.valid_len + report.bytes_skipped, image.len() as u64);
        } else {
            // No crash: the plan's cut lay beyond the workload's volume.
            prop_assert!(report.corruption.is_none());
            prop_assert_eq!(state_of(&recovered), state_of(&catalog));
        }
    }
}
