//! Crash-at-every-offset recovery tests.
//!
//! A fixed workload runs twice in lockstep: once WAL-only and once with
//! automatic checkpointing. Every byte offset of the durable state — the
//! WAL tail, and the checkpoint frame mid-append — is then treated as a
//! crash point and recovered. The recovered catalog must always pass
//! integrity checks and equal the state after some committed record
//! prefix of the workload; a torn checkpoint must fall back to the
//! previous image (or full replay) without losing a single committed
//! record.
//!
//! Unlike the seeded random cuts in `prop_recovery.rs`, these sweeps are
//! deterministic and exhaustive at byte granularity.

use std::sync::{Arc, Mutex};

use pa_storage::log::MemLogStore;
use pa_storage::{
    scan_checkpoints, scan_log, Catalog, CheckpointPolicy, CheckpointStore, DataType,
    MemCheckpointStore, Result, Schema, Table, Value,
};

/// Checkpoint slot that hands the test a live view of the retained image.
/// `save` replaces atomically (like [`MemCheckpointStore`]); the shared
/// buffer lets the workload capture the image after every op.
#[derive(Debug, Clone, Default)]
struct SharedCkptStore(Arc<Mutex<Vec<u8>>>);

impl SharedCkptStore {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl CheckpointStore for SharedCkptStore {
    fn save(&mut self, frame: &[u8]) -> Result<()> {
        *self.0.lock().unwrap() = frame.to_vec();
        Ok(())
    }

    fn read_raw(&mut self) -> Result<Vec<u8>> {
        Ok(self.bytes())
    }
}

// ---- deterministic workload -----------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Op {
    Create(&'static str, usize),
    Insert(&'static str, usize),
    Update(&'static str, usize),
    Drop(&'static str),
}

/// Mixes both schemas, dictionary strings, NULLs, per-column updates, and a
/// drop + recreate. With `every_records(4)` this cuts several checkpoints.
fn workload() -> Vec<Op> {
    vec![
        Op::Create("f", 6),
        Op::Insert("f", 4),
        Op::Update("f", 1),
        Op::Create("g", 5),
        Op::Insert("g", 3),
        Op::Update("g", 0),
        Op::Insert("f", 2),
        Op::Drop("g"),
        Op::Create("g", 2),
        Op::Update("f", 3),
        Op::Insert("g", 4),
        Op::Insert("f", 1),
    ]
}

fn int_float_table(n: usize, salt: i64) -> Table {
    let schema = Schema::from_pairs(&[("d", DataType::Int), ("a", DataType::Float)])
        .unwrap()
        .into_shared();
    let mut t = Table::empty(schema);
    for i in 0..n as i64 {
        let a = if (i + salt) % 4 == 0 {
            Value::Null
        } else {
            Value::Float((i * 3 + salt) as f64 / 2.0)
        };
        t.push_row(&[Value::Int(i + salt), a]).unwrap();
    }
    t
}

fn str_int_table(n: usize, salt: i64) -> Table {
    let schema = Schema::from_pairs(&[("s", DataType::Str), ("n", DataType::Int)])
        .unwrap()
        .into_shared();
    let mut t = Table::empty(schema);
    for i in 0..n as i64 {
        let s = if (i + salt) % 5 == 0 {
            Value::Null
        } else {
            Value::str(format!("s{}", (i + salt) % 3))
        };
        t.push_row(&[s, Value::Int(salt - i)]).unwrap();
    }
    t
}

fn build(name: &str, rows: usize, salt: i64) -> Table {
    if name == "g" {
        str_int_table(rows, salt)
    } else {
        int_float_table(rows, salt)
    }
}

/// Apply one op through the catalog's logging write paths, then give the
/// checkpoint policy its chance (outside any table guard, like the engine's
/// write operators do).
fn apply(catalog: &Catalog, op: Op, idx: usize) {
    let salt = idx as i64 + 1;
    match op {
        Op::Create(name, rows) => {
            catalog.create_or_replace_table(name, build(name, rows, salt));
        }
        Op::Insert(name, rows) => {
            let add = build(name, rows, salt);
            let shared = catalog.table(name).unwrap();
            let mut t = shared.write();
            let start = t.num_rows();
            t.extend_from(&add).unwrap();
            catalog
                .with_wal_mutating(name, |w| w.log_bulk_insert(name, &t, start))
                .unwrap();
        }
        Op::Update(name, row) => {
            let shared = catalog.table(name).unwrap();
            let mut t = shared.write();
            let row = row % t.num_rows();
            let before = vec![t.column(1).get(row)];
            let after = vec![if name == "g" {
                Value::Int(salt * 7)
            } else {
                Value::Float(salt as f64 * 7.5)
            }];
            t.column_mut(1).set(row, after[0].clone()).unwrap();
            catalog
                .with_wal_mutating(name, |w| w.log_update(name, row, &[1], &before, &after))
                .unwrap();
        }
        Op::Drop(name) => {
            catalog.drop_table(name).unwrap();
        }
    }
    catalog.maybe_checkpoint();
}

// ---- oracles --------------------------------------------------------------

type State = Vec<(String, Vec<Vec<Value>>)>;

fn state_of(catalog: &Catalog) -> State {
    catalog
        .table_names()
        .into_iter()
        .map(|name| {
            let table = catalog.table(&name).unwrap();
            let rows = table.read().rows().collect();
            (name, rows)
        })
        .collect()
}

fn recover_state(bytes: &[u8]) -> State {
    let (cat, _) = Catalog::recover(Box::new(MemLogStore::from_bytes(bytes.to_vec()))).unwrap();
    cat.check_integrity().unwrap();
    state_of(&cat)
}

/// `states[k]` = catalog state after replaying the first `k` records of the
/// full (never-compacted) log — the set of all committed prefixes.
fn prefix_states(full: &[u8]) -> Vec<State> {
    let scan = scan_log(full);
    assert!(scan.corruption.is_none(), "{:?}", scan.corruption);
    let mut states = Vec::with_capacity(scan.frame_lens.len() + 1);
    let mut end = 0usize;
    states.push(recover_state(&[]));
    for len in &scan.frame_lens {
        end += *len as usize;
        states.push(recover_state(&full[..end]));
    }
    states
}

fn image_lsn(ckpt_bytes: &[u8]) -> u64 {
    scan_checkpoints(ckpt_bytes).0.map_or(0, |i| i.lsn)
}

// ---- the sweeps -----------------------------------------------------------

/// Checkpoints disabled: cut the WAL at EVERY byte offset. Recovery must
/// yield exactly the state of the record prefix that survives the cut.
#[test]
fn wal_only_crash_at_every_offset_recovers_a_committed_prefix() {
    let catalog = Catalog::new();
    for (idx, op) in workload().into_iter().enumerate() {
        apply(&catalog, op, idx);
    }
    let full = catalog.with_wal(|w| w.snapshot()).unwrap();
    let states = prefix_states(&full);
    assert!(states.len() > 12, "workload too small to be interesting");

    for cut in 0..=full.len() {
        let prefix = &full[..cut];
        let n = scan_log(prefix).records.len();
        let (rec, report) =
            Catalog::recover(Box::new(MemLogStore::from_bytes(prefix.to_vec()))).unwrap();
        rec.check_integrity().unwrap();
        assert_eq!(
            report.records_replayed + report.records_skipped,
            n as u64,
            "cut at byte {cut}"
        );
        assert_eq!(state_of(&rec), states[n], "cut at byte {cut}");
    }
    // The uncut log reproduces the live catalog exactly.
    assert_eq!(state_of(&catalog), states[states.len() - 1]);
}

/// Checkpoints enabled: two exhaustive sweeps over the durable byte state.
///
/// 1. The WAL tail (already compacted behind the newest image) is cut at
///    every byte offset with the image intact — recovery = image + the
///    surviving suffix records, always a committed prefix.
/// 2. Every checkpoint write is torn at every byte offset of its frame,
///    paired with the pre-compaction WAL it was cut against (exactly the
///    bytes a crash mid-append leaves behind under the append-then-discard
///    store protocol) — recovery falls back to the previous image or full
///    replay and loses nothing.
#[test]
fn checkpointed_crash_at_every_offset_recovers_a_committed_prefix() {
    let shadow = Catalog::new(); // same ops, never compacted: the oracle
    let store = SharedCkptStore::default();
    let catalog = Catalog::new();
    catalog.set_checkpoint_store(Box::new(store.clone()), CheckpointPolicy::every_records(4));

    // Durable state after each op: (image bytes, compacted WAL bytes,
    // shadow full WAL bytes, live state).
    type DurableState = (Vec<u8>, Vec<u8>, Vec<u8>, State);
    let mut after_op: Vec<DurableState> = Vec::new();
    for (idx, op) in workload().into_iter().enumerate() {
        apply(&shadow, op, idx);
        apply(&catalog, op, idx);
        after_op.push((
            store.bytes(),
            catalog.with_wal(|w| w.snapshot()).unwrap(),
            shadow.with_wal(|w| w.snapshot()).unwrap(),
            state_of(&catalog),
        ));
    }
    assert!(!catalog.checkpoint_degraded());
    assert_eq!(
        state_of(&catalog),
        state_of(&shadow),
        "compaction must not change live state"
    );

    let fences: Vec<u64> = after_op.iter().map(|(c, ..)| image_lsn(c)).collect();
    assert!(
        fences.iter().filter(|f| **f > 1).count() >= 2,
        "workload must cut at least two checkpoints, fences: {fences:?}"
    );
    // The compacted WAL is always a byte suffix of the shadow's full log:
    // compaction pops whole frames and LSN stamping is identical.
    for (_, wal, shadow_wal, _) in &after_op {
        assert!(shadow_wal.ends_with(wal), "compacted WAL diverged");
    }

    let shadow_full = &after_op.last().unwrap().2;
    let states = prefix_states(shadow_full);

    // Sweep 1: tear the WAL tail at every offset, newest image intact.
    let (ckpt_bytes, wal_bytes, _, _) = after_op.last().unwrap();
    let fence = image_lsn(ckpt_bytes);
    assert!(fence > 1);
    for cut in 0..=wal_bytes.len() {
        let prefix = wal_bytes[..cut].to_vec();
        let n = scan_log(&prefix).records.len();
        let (rec, report) = Catalog::recover_with_checkpoint(
            Box::new(MemLogStore::from_bytes(prefix)),
            Box::new(MemCheckpointStore::from_bytes(ckpt_bytes.clone())),
            1 << 20,
            CheckpointPolicy::disabled(),
        )
        .unwrap();
        rec.check_integrity().unwrap();
        assert!(report.checkpoint_error.is_none(), "wal cut at byte {cut}");
        assert_eq!(report.checkpoint_lsn, fence);
        assert_eq!(report.records_pre_checkpoint, 0, "wal cut at byte {cut}");
        // Image holds records 1..fence; the surviving suffix adds n more.
        assert_eq!(
            state_of(&rec),
            states[(fence - 1) as usize + n],
            "wal cut at byte {cut}"
        );
    }

    // Sweep 2: tear every checkpoint write at every byte of its frame.
    let mut torn_events = 0;
    for k in 0..after_op.len() {
        let prev_fence = if k == 0 { 0 } else { fences[k - 1] };
        if fences[k] == prev_fence {
            continue; // no checkpoint fired during this op
        }
        torn_events += 1;
        let old_image: Vec<u8> = if k == 0 {
            Vec::new()
        } else {
            after_op[k - 1].0.clone()
        };
        let new_frame = &after_op[k].0;
        // The WAL as the checkpointer saw it at save time: everything past
        // the previous fence, through the end of this op's records.
        let shadow_k = &after_op[k].2;
        let scan = scan_log(shadow_k);
        let mut off = 0usize;
        for (lsn, len) in scan.lsns.iter().zip(&scan.frame_lens) {
            if *lsn >= prev_fence.max(1) {
                break;
            }
            off += *len as usize;
        }
        let wal_at_save = &shadow_k[off..];

        // i < len: torn mid-append (old image survives the append-then-
        // discard protocol). i == len: crash after the append landed but
        // before compaction — the image and the full pre-compaction WAL
        // coexist, and replay must skip what the image already holds.
        for i in 0..=new_frame.len() {
            let mut disk = old_image.clone();
            disk.extend_from_slice(&new_frame[..i]);
            let (rec, report) = Catalog::recover_with_checkpoint(
                Box::new(MemLogStore::from_bytes(wal_at_save.to_vec())),
                Box::new(MemCheckpointStore::from_bytes(disk)),
                1 << 20,
                CheckpointPolicy::disabled(),
            )
            .unwrap();
            rec.check_integrity().unwrap();
            if i < new_frame.len() {
                assert_eq!(report.checkpoint_lsn, prev_fence, "op {k}, torn at {i}");
                assert_eq!(
                    report.checkpoint_error.is_some(),
                    i > 0,
                    "op {k}, torn at {i}: {:?}",
                    report.checkpoint_error
                );
            } else {
                assert_eq!(report.checkpoint_lsn, fences[k]);
                assert!(
                    report.records_pre_checkpoint > 0,
                    "uncompacted WAL must overlap the fresh image"
                );
            }
            assert_eq!(state_of(&rec), after_op[k].3, "op {k}, torn at byte {i}");
        }
    }
    assert!(torn_events >= 2, "expected several torn-checkpoint events");
}
