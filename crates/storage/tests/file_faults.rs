//! Seeded fault coverage for the *file-backed* stores.
//!
//! The in-memory stores get chaos coverage everywhere; these tests route
//! `FileLogStore` and the checkpoint stores through the same
//! [`FaultInjector`] so torn writes, failed fsyncs, and bit rot are
//! exercised against real files — the paths production would hit.

use pa_storage::{
    scan_checkpoints, Catalog, CheckpointPolicy, CheckpointStore, FaultInjector, FaultPlan,
    FileCheckpointStore, FileLogStore, LogCheckpointStore, LogStore, MemCheckpointStore, Schema,
    StorageError, Table, Value,
};
use std::path::PathBuf;

/// A unique on-disk path per test (no tempfile crate in the sanctioned
/// dependency set).
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pa-file-faults-{tag}-{}", std::process::id()))
}

fn seeded_catalog_on(store: Box<dyn LogStore>, rows: usize) -> Catalog {
    let wal = pa_storage::Wal::with_store(store, 64 << 20);
    let catalog = Catalog::from_wal(wal);
    let schema = pa_storage::Schema::from_pairs(&[
        ("d", pa_storage::DataType::Int),
        ("a", pa_storage::DataType::Float),
    ])
    .unwrap()
    .into_shared();
    catalog.create_table("f", Table::empty(schema)).unwrap();
    let shared = catalog.table("f").unwrap();
    for i in 0..rows {
        let mut t = shared.write();
        let start = t.num_rows();
        t.push_row(&[Value::Int(i as i64 % 5), Value::Float(i as f64)])
            .unwrap();
        catalog
            .with_wal_mutating("f", |w| w.log_bulk_insert("f", &t, start))
            .unwrap();
    }
    catalog
}

#[test]
fn torn_file_write_recovers_the_persisted_prefix() {
    let path = temp_path("torn-log");
    let _ = std::fs::remove_file(&path);
    // Write through a fault injector that tears the log mid-frame at a
    // seeded offset, then recover from the *file* as a crashed process
    // would and check the prefix survived intact.
    let seed = 0xF11E_u64;
    let plan = FaultPlan::seeded_torn_write(seed, 4096);
    let cut = plan.torn_write_at.unwrap();
    {
        let store = FileLogStore::open(&path).unwrap();
        let injector = FaultInjector::from_seed_plan(store, seed, plan);
        let wal = pa_storage::Wal::with_store(Box::new(injector), 64 << 20);
        let catalog = Catalog::from_wal(wal);
        let schema = Schema::from_pairs(&[("d", pa_storage::DataType::Int)])
            .unwrap()
            .into_shared();
        if catalog.create_table("f", Table::empty(schema)).is_ok() {
            let shared = catalog.table("f").unwrap();
            for i in 0..200i64 {
                let mut t = shared.write();
                let start = t.num_rows();
                if t.push_row(&[Value::Int(i)]).is_err() {
                    break;
                }
                let logged = catalog.with_wal_mutating("f", |w| w.log_bulk_insert("f", &t, start));
                if logged.is_err() {
                    break; // the device died at the cut, as planned
                }
            }
        }
        // Drop without any clean shutdown: the crash.
    }
    let on_disk = std::fs::metadata(&path).unwrap().len();
    assert!(
        on_disk <= cut,
        "no bytes past the tear may reach the file: {on_disk} > {cut} [fault seed {seed}]"
    );
    let (catalog, report) = Catalog::recover(Box::new(FileLogStore::open(&path).unwrap())).unwrap();
    // Whatever re-read cleanly replayed; the torn tail was truncated.
    assert_eq!(report.records_skipped, 0, "[fault seed {seed}]");
    if let Ok(shared) = catalog.table("f") {
        let t = shared.read();
        for i in 0..t.num_rows() {
            assert_eq!(t.get(i, 0), Value::Int(i as i64), "[fault seed {seed}]");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_fsync_is_transparent_to_the_caller_via_retry() {
    let path = temp_path("fsync");
    let _ = std::fs::remove_file(&path);
    let store = FileLogStore::open(&path).unwrap();
    let plan = FaultPlan {
        error_on_sync: Some(0),
        ..FaultPlan::default()
    };
    let mut injector = FaultInjector::new(store, plan);
    injector.append(b"frame").unwrap();
    let err = injector.sync().unwrap_err();
    assert!(
        err.is_transient(),
        "a failed fsync must be typed transient so the retry layer absorbs it: {err}"
    );
    injector.sync().expect("second sync succeeds");
    assert_eq!(injector.read_all().unwrap(), b"frame");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_rot_on_file_log_read_truncates_at_the_flip() {
    let path = temp_path("bitrot");
    let _ = std::fs::remove_file(&path);
    {
        let catalog = seeded_catalog_on(Box::new(FileLogStore::open(&path).unwrap()), 20);
        catalog.with_wal(|w| w.sync()).unwrap();
    }
    // Recover through an injector flipping one bit mid-log: the CRC chain
    // must reject the flipped frame and keep only the prefix.
    let len = std::fs::metadata(&path).unwrap().len();
    let flip_byte = len / 2;
    let plan = FaultPlan {
        flip_bit_on_read: Some(flip_byte * 8),
        ..FaultPlan::default()
    };
    let injector = FaultInjector::new(FileLogStore::open(&path).unwrap(), plan);
    let (catalog, report) = Catalog::recover(Box::new(injector)).unwrap();
    assert!(
        report.corruption.is_some(),
        "a mid-log bit flip must be detected, got {report:?}"
    );
    let t = catalog.table("f").unwrap();
    let t = t.read();
    assert!(t.num_rows() < 20, "rows past the flip cannot replay");
    for i in 0..t.num_rows() {
        assert_eq!(t.get(i, 1), Value::Float(i as f64));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn file_checkpoint_survives_a_torn_temp_file() {
    let dir = temp_path("ckpt-dir");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = FileCheckpointStore::open(&dir, "img").unwrap();
    let good = {
        let catalog = seeded_catalog_on(Box::new(pa_storage::MemLogStore::new()), 10);
        let (frame, _, _) = catalog.export_image().unwrap();
        frame
    };
    store.save(&good).unwrap();
    // A crash mid-save leaves a torn *temp* file next to the live image —
    // simulate it, then prove reads keep serving the renamed good image.
    std::fs::write(dir.join("img.tmp"), &good[..good.len() / 2]).unwrap();
    let raw = store.read_raw().unwrap();
    assert_eq!(raw, good, "the live image must not see the torn temp");
    let (image, why) = scan_checkpoints(&raw);
    assert!(why.is_none(), "{why:?}");
    assert_eq!(image.unwrap().tables.len(), 1);
    // And a *torn live file* (crash during a non-atomic overwrite, or rot)
    // degrades to "no usable image", never a panic.
    std::fs::write(store.path(), &good[..good.len() / 3]).unwrap();
    let (image, why) = scan_checkpoints(&store.read_raw().unwrap());
    assert!(image.is_none());
    assert!(why.is_some(), "torn image must be reported");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn log_checkpoint_store_over_faulted_file_rejects_rotten_images() {
    let path = temp_path("ckpt-log");
    let _ = std::fs::remove_file(&path);
    let wal_path = temp_path("ckpt-wal");
    let _ = std::fs::remove_file(&wal_path);
    // Checkpoint a file-backed catalog into a LogCheckpointStore whose
    // underlying FileLogStore flips a bit on every read. The image is
    // saved without compacting the WAL (export_image, not checkpoint_now)
    // so recovery can prove the fallback-to-full-replay path.
    {
        let catalog = seeded_catalog_on(Box::new(FileLogStore::open(&wal_path).unwrap()), 15);
        let (frame, _, _) = catalog.export_image().unwrap();
        let mut store = LogCheckpointStore::new(Box::new(FileLogStore::open(&path).unwrap()));
        store.save(&frame).unwrap();
        catalog.with_wal(|w| w.sync()).unwrap();
    }
    let img_len = std::fs::metadata(&path).unwrap().len();
    let plan = FaultPlan {
        flip_bit_on_read: Some((img_len / 2) * 8),
        ..FaultPlan::default()
    };
    let rotten = FaultInjector::new(FileLogStore::open(&path).unwrap(), plan);
    let (catalog, report) = Catalog::recover_with_checkpoint(
        Box::new(FileLogStore::open(&wal_path).unwrap()),
        Box::new(LogCheckpointStore::new(Box::new(rotten))),
        64 << 20,
        CheckpointPolicy::disabled(),
    )
    .unwrap();
    assert!(
        report.checkpoint_error.is_some(),
        "the flipped image must be rejected, got {report:?}"
    );
    // Full WAL replay still rebuilt the state.
    let t = catalog.table("f").unwrap();
    assert_eq!(t.read().num_rows(), 15);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn transient_nth_op_error_on_file_store_is_absorbed_by_the_wal_retry() {
    let path = temp_path("nth-op");
    let _ = std::fs::remove_file(&path);
    let plan = FaultPlan {
        error_on_op: Some(2),
        ..FaultPlan::default()
    };
    let injector = FaultInjector::new(FileLogStore::open(&path).unwrap(), plan);
    let catalog = seeded_catalog_on(Box::new(injector), 8);
    // All appends landed despite the injected once-off error...
    assert_eq!(catalog.table("f").unwrap().read().num_rows(), 8);
    // ...and the WAL accounted for the absorbed retry.
    assert!(
        catalog.wal_stats().retries > 0,
        "the transient fault must surface in stats: {:?}",
        catalog.wal_stats()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn export_image_round_trips_through_mem_checkpoint_store() {
    // Control case pinning the bootstrap-image format the replication
    // layer ships: what export_image produces, scan_checkpoints accepts.
    let catalog = seeded_catalog_on(Box::new(pa_storage::MemLogStore::new()), 5);
    let (frame, fence, term) = catalog.export_image().unwrap();
    assert!(fence >= 1);
    assert_eq!(term, 0);
    let mut store = MemCheckpointStore::new();
    store.save(&frame).unwrap();
    let (image, why) = scan_checkpoints(&store.read_raw().unwrap());
    assert!(why.is_none(), "{why:?}");
    let image = image.unwrap();
    assert_eq!(image.lsn, fence);
    assert_eq!(image.tables.len(), 1);
    assert_eq!(image.tables[0].0, "f");
    assert_eq!(image.tables[0].1.num_rows(), 5);
    // StorageError is part of this test module's contract surface.
    let _: fn(&StorageError) -> bool = StorageError::is_transient;
}
