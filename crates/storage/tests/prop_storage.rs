//! Property tests for the storage substrate, each against a trivially
//! correct model.

use pa_storage::{read_csv, write_csv, Bitmap, Column, DataType, Dictionary, Schema, Table, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => Just(Value::Null),
        4 => (-100i64..100).prop_map(Value::Int),
    ]
}

fn str_value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        4 => "[a-c]{0,3}".prop_map(Value::str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_matches_vec_bool_model(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let mut bm = Bitmap::new();
        for &b in &bits {
            bm.push(b);
        }
        prop_assert_eq!(bm.len(), bits.len());
        prop_assert_eq!(bm.count_ones(), bits.iter().filter(|&&b| b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
        let collected: Vec<bool> = bm.iter().collect();
        prop_assert_eq!(collected, bits);
    }

    #[test]
    fn bitmap_set_matches_model(
        bits in prop::collection::vec(any::<bool>(), 1..200),
        flips in prop::collection::vec((0usize..200, any::<bool>()), 0..50),
    ) {
        let mut bm: Bitmap = bits.iter().copied().collect();
        let mut model = bits.clone();
        for (i, v) in flips {
            let i = i % model.len();
            bm.set(i, v);
            model[i] = v;
        }
        prop_assert_eq!(bm.count_ones(), model.iter().filter(|&&b| b).count());
        for (i, &b) in model.iter().enumerate() {
            prop_assert_eq!(bm.get(i), b);
        }
    }

    #[test]
    fn dictionary_is_a_bijection(words in prop::collection::vec("[a-d]{0,4}", 0..100)) {
        let mut d = Dictionary::new();
        let mut model: std::collections::HashMap<String, u32> = Default::default();
        for w in &words {
            let code = d.intern(w);
            let prev = model.insert(w.clone(), code);
            if let Some(prev) = prev {
                prop_assert_eq!(prev, code, "re-intern changed the code");
            }
            prop_assert_eq!(d.resolve(code).as_ref(), w.as_str());
        }
        prop_assert_eq!(d.len(), model.len());
    }

    #[test]
    fn int_column_round_trips(values in prop::collection::vec(value_strategy(), 0..200)) {
        let mut c = Column::new(DataType::Int);
        for v in &values {
            c.push(v.clone()).unwrap();
        }
        prop_assert_eq!(c.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&c.get(i), v);
        }
        prop_assert_eq!(c.null_count(), values.iter().filter(|v| v.is_null()).count());
    }

    #[test]
    fn str_column_take_matches_model(
        values in prop::collection::vec(str_value_strategy(), 1..100),
        picks in prop::collection::vec(0usize..100, 0..50),
    ) {
        let mut c = Column::new(DataType::Str);
        for v in &values {
            c.push(v.clone()).unwrap();
        }
        let rows: Vec<usize> = picks.into_iter().map(|p| p % values.len()).collect();
        let taken = c.take(&rows);
        for (out_i, &src_i) in rows.iter().enumerate() {
            prop_assert_eq!(&taken.get(out_i), &values[src_i]);
        }
    }

    #[test]
    fn column_set_then_get(values in prop::collection::vec(value_strategy(), 1..100)) {
        let mut c = Column::new(DataType::Int);
        for _ in 0..values.len() {
            c.push(Value::Int(0)).unwrap();
        }
        for (i, v) in values.iter().enumerate() {
            c.set(i, v.clone()).unwrap();
        }
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&c.get(i), v);
        }
    }

    #[test]
    fn table_sort_is_a_permutation_and_ordered(
        rows in prop::collection::vec((value_strategy(), str_value_strategy()), 0..100)
    ) {
        let schema = Schema::from_pairs(&[("n", DataType::Int), ("s", DataType::Str)])
            .unwrap()
            .into_shared();
        let mut t = Table::empty(schema);
        for (n, s) in &rows {
            t.push_row(&[n.clone(), s.clone()]).unwrap();
        }
        let sorted = t.sorted_by(&[0, 1]);
        prop_assert_eq!(sorted.num_rows(), t.num_rows());
        for i in 1..sorted.num_rows() {
            let prev = (sorted.get(i - 1, 0), sorted.get(i - 1, 1));
            let cur = (sorted.get(i, 0), sorted.get(i, 1));
            let ord = prev
                .0
                .total_cmp(&cur.0)
                .then_with(|| prev.1.total_cmp(&cur.1));
            prop_assert_ne!(ord, std::cmp::Ordering::Greater);
        }
        // Multiset preserved.
        let mut a: Vec<String> = t.rows().map(|r| format!("{r:?}")).collect();
        let mut b: Vec<String> = sorted.rows().map(|r| format!("{r:?}")).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn csv_round_trip(
        rows in prop::collection::vec(
            (value_strategy(), "[ -~]{0,8}", prop::option::of(-1000i64..1000)),
            0..60
        )
    ) {
        let schema = Schema::from_pairs(&[
            ("i", DataType::Int),
            ("s", DataType::Str),
            ("f", DataType::Float),
        ])
        .unwrap()
        .into_shared();
        let mut t = Table::empty(schema.clone());
        for (i, s, f) in &rows {
            t.push_row(&[
                i.clone(),
                Value::str(s),
                f.map(|x| Value::Float(x as f64 / 8.0)).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(schema, &mut &buf[..]).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            for c in 0..3 {
                prop_assert_eq!(back.get(r, c), t.get(r, c), "({}, {})", r, c);
            }
        }
    }

    #[test]
    fn value_key_eq_is_reflexive_symmetric_and_hash_consistent(
        a in value_strategy(),
        b in value_strategy(),
    ) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        prop_assert!(a.key_eq(&a));
        prop_assert_eq!(a.key_eq(&b), b.key_eq(&a));
        if a.key_eq(&b) {
            let mut ha = DefaultHasher::new();
            a.key_hash(&mut ha);
            let mut hb = DefaultHasher::new();
            b.key_hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }
}
