//! Replication chaos: seeded writers, misbehaving transports, compaction
//! races — every run reproducible from the printed seed.

use pa_storage::{
    Catalog, ChaosTransport, CheckpointPolicy, DirectTransport, MemCheckpointStore, ReplicaApplier,
    ReplicationStream, Table, Value,
};

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn seeded_row(state: &mut u64) -> Vec<Value> {
    vec![
        Value::Int((lcg(state) % 7) as i64),
        Value::str(["CA", "TX", "WA", "OR"][(lcg(state) % 4) as usize]),
        Value::Float((lcg(state) % 1000) as f64 / 10.0),
    ]
}

fn build_catalog() -> Catalog {
    let catalog = Catalog::new();
    let schema = pa_storage::Schema::from_pairs(&[
        ("d", pa_storage::DataType::Int),
        ("state", pa_storage::DataType::Str),
        ("amt", pa_storage::DataType::Float),
    ])
    .unwrap()
    .into_shared();
    catalog.create_table("f", Table::empty(schema)).unwrap();
    catalog
}

/// One seeded writer mutation through the logging funnel: mostly appends,
/// every fourth op a logged in-place update.
fn writer_op(catalog: &Catalog, state: &mut u64) {
    let shared = catalog.table("f").unwrap();
    let mut t = shared.write();
    if lcg(state).is_multiple_of(4) && t.num_rows() > 0 {
        let row = (lcg(state) as usize) % t.num_rows();
        let before = vec![t.column(2).get(row)];
        let after = vec![Value::Float((lcg(state) % 9) as f64)];
        t.column_mut(2).set(row, after[0].clone()).unwrap();
        catalog
            .with_wal_mutating("f", |w| w.log_update("f", row, &[2], &before, &after))
            .unwrap();
    } else {
        let start = t.num_rows();
        let row = seeded_row(state);
        t.push_row(&row).unwrap();
        catalog
            .with_wal_mutating("f", |w| w.log_bulk_insert("f", &t, start))
            .unwrap();
    }
}

/// (column names, sorted rows): the byte-identity fingerprint.
fn fingerprint(catalog: &Catalog) -> (Vec<String>, Vec<Vec<Value>>) {
    let shared = catalog.table("f").unwrap();
    let t = shared.read();
    let names: Vec<String> = t.schema().fields().iter().map(|f| f.name.clone()).collect();
    let all: Vec<usize> = (0..t.num_columns()).collect();
    (names, t.sorted_by(&all).rows().collect())
}

#[test]
fn chaos_transport_converges_to_byte_identity_under_interleaved_writes() {
    for seed in [3u64, 17, 99, 2024] {
        let primary = build_catalog();
        let replica = Catalog::new();
        let mut applier = ReplicaApplier::new();
        let mut stream =
            ReplicationStream::new(Box::new(ChaosTransport::seeded(seed))).with_max_rounds(200);
        let mut state = seed;
        // Interleave: write bursts, partial syncs, more writes.
        for _ in 0..8 {
            for _ in 0..25 {
                writer_op(&primary, &mut state);
            }
            // A mid-burst sync may or may not catch up; that's fine.
            stream.sync(&primary, &replica, &mut applier).unwrap();
        }
        let report = stream.sync(&primary, &replica, &mut applier).unwrap();
        assert!(report.caught_up, "[seed {seed}] {report:?}");
        assert_eq!(
            fingerprint(&primary),
            fingerprint(&replica),
            "[seed {seed}]"
        );
        // The chaos actually engaged: the transport misbehaved and the
        // applier saw (and survived) real faults.
        let stats = applier.stats();
        assert!(
            stats.rejected_corrupt + stats.duplicates > 0,
            "[seed {seed}] vacuous chaos run: {stats:?}"
        );
        // Replica cache state matches a fresh catalog's: everything cold.
        assert!(replica.combo_cache().is_empty(), "[seed {seed}]");
    }
}

#[test]
fn bootstrap_from_image_converges_identically_to_full_history_ship() {
    let seed = 0xB0075u64;
    // Primary A: full history retained. Primary B: same writes, then
    // checkpointed so the prefix is compacted away.
    let full = build_catalog();
    let compacted = build_catalog();
    let mut s1 = seed;
    let mut s2 = seed;
    for _ in 0..150 {
        writer_op(&full, &mut s1);
        writer_op(&compacted, &mut s2);
    }
    compacted.set_checkpoint_store(
        Box::new(MemCheckpointStore::new()),
        CheckpointPolicy::disabled(),
    );
    compacted.checkpoint_now().unwrap();
    assert!(
        compacted.with_wal(|w| w.ship_since(1)).unwrap().is_none(),
        "compaction must drop the prefix"
    );

    let via_frames = Catalog::new();
    let mut a1 = ReplicaApplier::new();
    let mut st1 = ReplicationStream::new(Box::new(DirectTransport));
    let r1 = st1.sync(&full, &via_frames, &mut a1).unwrap();
    assert!(r1.caught_up && r1.bootstraps == 0, "{r1:?}");

    let via_image = Catalog::new();
    let mut a2 = ReplicaApplier::new();
    let mut st2 = ReplicationStream::new(Box::new(DirectTransport));
    let r2 = st2.sync(&compacted, &via_image, &mut a2).unwrap();
    assert!(r2.caught_up && r2.bootstraps == 1, "{r2:?}");

    assert_eq!(fingerprint(&via_frames), fingerprint(&via_image));
    assert_eq!(fingerprint(&full), fingerprint(&via_frames));
}

#[test]
fn bootstrap_then_suffix_under_chaos_still_converges() {
    let seed = 0x5EED_CAFEu64;
    let primary = build_catalog();
    let mut state = seed;
    for _ in 0..80 {
        writer_op(&primary, &mut state);
    }
    primary.set_checkpoint_store(
        Box::new(MemCheckpointStore::new()),
        CheckpointPolicy::disabled(),
    );
    primary.checkpoint_now().unwrap();
    // More writes after the checkpoint: catch-up needs image + LSN suffix.
    for _ in 0..40 {
        writer_op(&primary, &mut state);
    }
    let replica = Catalog::new();
    let mut applier = ReplicaApplier::new();
    let mut stream =
        ReplicationStream::new(Box::new(ChaosTransport::seeded(seed))).with_max_rounds(300);
    let report = stream.sync(&primary, &replica, &mut applier).unwrap();
    assert!(report.caught_up, "[seed {seed}] {report:?}");
    assert!(
        applier.stats().bootstraps >= 1,
        "[seed {seed}] the compacted prefix must force a bootstrap: {:?}",
        applier.stats()
    );
    assert_eq!(
        fingerprint(&primary),
        fingerprint(&replica),
        "[seed {seed}]"
    );
}

#[test]
fn replica_at_old_lsn_matches_primary_snapshot_pinned_there() {
    // Freeze a replica at LSN L (stop syncing), keep writing on the
    // primary, and check the replica equals the primary's *pinned*
    // snapshot from that moment — the staleness contract.
    let primary = build_catalog();
    let mut state = 7u64;
    for _ in 0..60 {
        writer_op(&primary, &mut state);
    }
    let replica = Catalog::new();
    let mut applier = ReplicaApplier::new();
    let mut stream = ReplicationStream::new(Box::new(DirectTransport));
    stream.sync(&primary, &replica, &mut applier).unwrap();

    let pinned = primary.pin_table("f").expect("pin");
    let frozen_fingerprint = {
        let t = pinned.table().read();
        let all: Vec<usize> = (0..t.num_columns()).collect();
        t.sorted_by(&all).rows().collect::<Vec<Vec<Value>>>()
    };
    // Primary advances; the replica does not.
    for _ in 0..50 {
        writer_op(&primary, &mut state);
    }
    let (_, replica_rows) = fingerprint(&replica);
    assert_eq!(replica_rows, frozen_fingerprint);
    // After catch-up the replica leaves the old LSN and matches the head.
    stream.sync(&primary, &replica, &mut applier).unwrap();
    assert_eq!(fingerprint(&primary), fingerprint(&replica));
}

#[test]
fn drop_and_recreate_table_replicates_through() {
    let primary = build_catalog();
    let mut state = 11u64;
    for _ in 0..10 {
        writer_op(&primary, &mut state);
    }
    primary.drop_table("f").unwrap();
    let schema = pa_storage::Schema::from_pairs(&[("x", pa_storage::DataType::Int)])
        .unwrap()
        .into_shared();
    let mut t = Table::empty(schema);
    t.push_row(&[Value::Int(42)]).unwrap();
    primary.create_table("g", t).unwrap();

    let replica = Catalog::new();
    let mut applier = ReplicaApplier::new();
    let mut stream = ReplicationStream::new(Box::new(DirectTransport));
    let report = stream.sync(&primary, &replica, &mut applier).unwrap();
    assert!(report.caught_up, "{report:?}");
    assert!(replica.table("f").is_err(), "dropped table must not exist");
    let g = replica.table("g").unwrap();
    assert_eq!(g.read().get(0, 0), Value::Int(42));
}
