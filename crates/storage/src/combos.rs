//! Cached distinct-combination sets (the "combination catalog").
//!
//! Every horizontal strategy starts by discovering the distinct
//! `Dj+1..Dk` subgroup combinations of the fact table (`SELECT DISTINCT
//! Dj+1..Dk FROM F` — SIGMOD §3.1 step 2); the combinations define the
//! result columns. The set only changes when the table's data changes, so
//! the catalog memoizes it per `(table, dimension columns)` and serves
//! repeat queries without rescanning the fact table.
//!
//! Invalidation is funneled through [`crate::Catalog`]: every WAL-logged
//! mutation (bulk insert, per-row update) and every DDL replace/drop
//! invalidates the table's entries before the mutation is logged, and
//! recovery starts from an empty cache. Direct mutation through a
//! [`crate::SharedTable`] write guard bypasses the funnel; such callers
//! must call [`ComboCache::invalidate_table`] themselves.

use crate::value::Value;
use pa_obs::{Counter, MetricsRegistry};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Key: (table name, dimension column names in query order).
type ComboKey = (String, Vec<String>);

/// Counter handles mirroring the cache's traffic into a
/// [`MetricsRegistry`] (Prometheus names `pa_storage_combo_cache_*`).
#[derive(Debug)]
struct ComboMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    invalidations: Arc<Counter>,
}

impl ComboMetrics {
    fn register(registry: &MetricsRegistry) -> ComboMetrics {
        ComboMetrics {
            hits: registry.counter(
                "pa_storage_combo_cache_hits_total",
                "combination-catalog lookups served from cache",
            ),
            misses: registry.counter(
                "pa_storage_combo_cache_misses_total",
                "combination-catalog lookups that required a table scan",
            ),
            invalidations: registry.counter(
                "pa_storage_combo_cache_invalidations_total",
                "combination-catalog entries dropped by table mutations",
            ),
        }
    }
}

/// Cumulative traffic counters, snapshot via [`ComboCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComboCacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that missed (caller scanned and stored).
    pub misses: u64,
    /// Entries dropped by invalidation.
    pub invalidations: u64,
    /// Entries currently cached.
    pub entries: u64,
}

/// Memoized `(table, dims) → sorted distinct combinations` map.
///
/// Entries are shared out as `Arc` so a hit costs one map lookup and one
/// refcount bump — no cloning of the combination tuples.
#[derive(Debug, Default)]
pub struct ComboCache {
    entries: RwLock<BTreeMap<ComboKey, Arc<Vec<Vec<Value>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    metrics: RwLock<Option<ComboMetrics>>,
}

impl ComboCache {
    /// Empty cache.
    pub fn new() -> ComboCache {
        ComboCache::default()
    }

    /// Cached combination set for `dims` of `table`, counting the lookup
    /// as a hit or miss.
    pub fn get(&self, table: &str, dims: &[String]) -> Option<Arc<Vec<Vec<Value>>>> {
        let key = (table.to_string(), dims.to_vec());
        let found = self.entries.read().get(&key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &*self.metrics.read() {
                m.hits.inc();
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &*self.metrics.read() {
                m.misses.inc();
            }
        }
        found
    }

    /// Store a freshly discovered combination set (callers store it
    /// post-sort, so every consumer sees one canonical order). Returns the
    /// shared handle.
    pub fn store(
        &self,
        table: &str,
        dims: &[String],
        combos: Vec<Vec<Value>>,
    ) -> Arc<Vec<Vec<Value>>> {
        let key = (table.to_string(), dims.to_vec());
        let shared = Arc::new(combos);
        self.entries.write().insert(key, Arc::clone(&shared));
        shared
    }

    /// Drop every cached set for `table`. Called by the catalog's mutation
    /// funnel before any logged insert/update/replace/drop of the table.
    pub fn invalidate_table(&self, table: &str) {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|(t, _), _| t != table);
        let dropped = (before - entries.len()) as u64;
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
            if let Some(m) = &*self.metrics.read() {
                m.invalidations.add(dropped);
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Traffic counters snapshot.
    pub fn stats(&self) -> ComboCacheStats {
        ComboCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// Mirror this cache's counters into `registry` (Prometheus names
    /// `pa_storage_combo_cache_*`). Increments happen on the lookup path
    /// with relaxed ordering, like the WAL's metrics.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        *self.metrics.write() = Some(ComboMetrics::register(registry));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn combos() -> Vec<Vec<Value>> {
        vec![vec![Value::str("Mon")], vec![Value::str("Tue")]]
    }

    #[test]
    fn miss_store_hit_round_trip() {
        let cache = ComboCache::new();
        assert!(cache.get("F", &dims(&["dweek"])).is_none());
        cache.store("F", &dims(&["dweek"]), combos());
        let hit = cache.get("F", &dims(&["dweek"])).unwrap();
        assert_eq!(hit.len(), 2);
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
    }

    #[test]
    fn keys_distinguish_table_and_dims() {
        let cache = ComboCache::new();
        cache.store("F", &dims(&["a"]), combos());
        cache.store("F", &dims(&["a", "b"]), combos());
        cache.store("G", &dims(&["a"]), combos());
        assert_eq!(cache.len(), 3);
        assert!(cache.get("F", &dims(&["b"])).is_none());
        assert!(cache.get("F", &dims(&["a", "b"])).is_some());
    }

    #[test]
    fn invalidation_is_per_table_and_counted() {
        let cache = ComboCache::new();
        cache.store("F", &dims(&["a"]), combos());
        cache.store("F", &dims(&["b"]), combos());
        cache.store("G", &dims(&["a"]), combos());
        cache.invalidate_table("F");
        assert!(cache.get("F", &dims(&["a"])).is_none());
        assert!(cache.get("G", &dims(&["a"])).is_some());
        assert_eq!(cache.stats().invalidations, 2);
        // Invalidating an absent table is a counted no-op.
        cache.invalidate_table("F");
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn attached_registry_mirrors_traffic() {
        let reg = MetricsRegistry::new();
        let cache = ComboCache::new();
        cache.attach_metrics(&reg);
        cache.get("F", &dims(&["a"]));
        cache.store("F", &dims(&["a"]), combos());
        cache.get("F", &dims(&["a"]));
        cache.invalidate_table("F");
        let text = reg.render();
        assert!(
            text.contains("pa_storage_combo_cache_hits_total 1"),
            "{text}"
        );
        assert!(
            text.contains("pa_storage_combo_cache_misses_total 1"),
            "{text}"
        );
        assert!(
            text.contains("pa_storage_combo_cache_invalidations_total 1"),
            "{text}"
        );
    }
}
